// Out-of-core: runs WCC with the GraphChi-style Parallel Sliding Windows
// engine — the storage architecture of the paper's host system — and
// contrasts it with the in-memory engine and with autonomous
// (priority-driven) SSSP, covering all three execution substrates on one
// graph.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"

	"ndgraph"
)

func main() {
	g, err := ndgraph.Synthesize(ndgraph.WebBerkStan, 100, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (web-berkstan analog)\n\n", g.N(), g.M())

	// 1. In-memory nondeterministic WCC.
	wcc := ndgraph.NewWCC()
	memEng, memRes, err := ndgraph.Run(wcc, g, ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic, Threads: 4, Mode: ndgraph.ModeAtomic, MaxIters: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	want := wcc.Components(memEng)
	fmt.Printf("in-memory WCC:   %d iterations, %v\n", memRes.Iterations, memRes.Duration)

	// 2. Out-of-core (PSW) WCC over 4 disk shards.
	dir, err := os.MkdirTemp("", "ndgraph-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := ndgraph.BuildShards(g, dir, 4)
	if err != nil {
		log.Fatal(err)
	}
	usage, err := st.DiskUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded to disk: %d shards, %.1f KiB\n", st.NumShards(), float64(usage)/1024)

	for v := range st.Vertices {
		st.Vertices[v] = uint64(v)
	}
	if err := st.FillValues(^uint64(0)); err != nil {
		log.Fatal(err)
	}
	pswEng, err := ndgraph.NewShardEngine(st, ndgraph.ShardOptions{Threads: 4, Mode: ndgraph.ModeAtomic, MaxIters: 1000})
	if err != nil {
		log.Fatal(err)
	}
	pswEng.Frontier().ScheduleAll()
	pswRes, err := pswEng.Run(wcc.Update)
	if err != nil {
		log.Fatal(err)
	}
	for v := range want {
		if uint32(st.Vertices[v]) != want[v] {
			log.Fatalf("PSW label[%d] = %d, in-memory %d", v, st.Vertices[v], want[v])
		}
	}
	fmt.Printf("out-of-core WCC: %d iterations, %v, %.1f KiB read — labels identical\n\n",
		pswRes.Iterations, pswRes.Duration, float64(pswRes.BytesRead)/1024)

	// 3. Autonomous SSSP (Dijkstra-as-a-schedule) vs coordinated.
	src, best := uint32(0), -1
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > best {
			src, best = v, d
		}
	}
	sssp := ndgraph.NewSSSP(g, src, 5)
	_, coordRes, err := ndgraph.Run(sssp, g, ndgraph.Options{Scheduler: ndgraph.Deterministic, MaxIters: 1000})
	if err != nil {
		log.Fatal(err)
	}
	autoDist, autoRes, err := ndgraph.AutonomousSSSP(g, src, sssp.Weights)
	if err != nil {
		log.Fatal(err)
	}
	_ = autoDist
	fmt.Printf("coordinated SSSP: %5d updates, %v\n", coordRes.Updates, coordRes.Duration)
	fmt.Printf("autonomous SSSP:  %5d updates, %v (distance-ordered = Dijkstra)\n",
		autoRes.Updates, autoRes.Duration)
}
