// Components: a walkthrough of the paper's Fig. 2 — how a write-write
// conflict on an edge corrupts intermediate WCC state and how
// nondeterministic execution recovers from it (Theorem 2) — followed by a
// stress run on a social-network analog, comparing the eligible WCC
// against the NOT-eligible greedy coloring.
//
//	go run ./examples/components
package main

import (
	"fmt"
	"log"

	"ndgraph"
)

func main() {
	fig2Walkthrough()
	socialStress()
	ineligibleContrast()
}

// fig2Walkthrough reruns the paper's two-vertex example many times under
// racy execution with amplified race windows; per Theorem 2, every run
// must recover the correct minimum label despite write-write conflicts.
func fig2Walkthrough() {
	fmt.Println("--- Fig. 2: write-write conflict recovery on a single edge ---")
	g, err := ndgraph.BuildGraph([]ndgraph.Edge{{Src: 0, Dst: 1}}, ndgraph.GraphOptions{NumVertices: 2})
	if err != nil {
		log.Fatal(err)
	}
	wcc := ndgraph.NewWCC()

	profile, verdict, err := ndgraph.Probe(wcc, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe: %d WW conflict edge(s) → %s\n", profile.WW, firstLine(verdict.String()))

	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		eng, res, err := ndgraph.Run(wcc, g, ndgraph.Options{
			Scheduler: ndgraph.Nondeterministic,
			Threads:   2,
			Mode:      ndgraph.ModeAtomic,
			Amplify:   true,
			MaxIters:  1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		labels := wcc.Components(eng)
		if !res.Converged || labels[0] != 0 || labels[1] != 0 {
			log.Fatalf("trial %d: labels %v (converged %v) — recovery failed", trial, labels, res.Converged)
		}
	}
	fmt.Printf("%d racy trials, every one recovered labels [0 0]\n\n", trials)
}

// socialStress runs WCC on a soc-livejournal-like graph under all three
// atomicity methods and checks the labels match the deterministic run.
func socialStress() {
	fmt.Println("--- WCC on a soc-livejournal analog, all atomicity methods ---")
	g, err := ndgraph.Synthesize(ndgraph.SocLiveJournal, 500, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	wcc := ndgraph.NewWCC()
	detEng, detRes, err := ndgraph.Run(wcc, g, ndgraph.Options{Scheduler: ndgraph.Deterministic, MaxIters: 1000})
	if err != nil {
		log.Fatal(err)
	}
	want := wcc.Components(detEng)
	fmt.Printf("deterministic: %d iterations, %v\n", detRes.Iterations, detRes.Duration)

	for _, mode := range []ndgraph.EdgeMode{ndgraph.ModeLocked, ndgraph.ModeAligned, ndgraph.ModeAtomic} {
		eng, res, err := ndgraph.Run(wcc, g, ndgraph.Options{
			Scheduler: ndgraph.Nondeterministic,
			Threads:   8,
			Mode:      mode,
			MaxIters:  1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		got := wcc.Components(eng)
		for v := range want {
			if got[v] != want[v] {
				log.Fatalf("%v: vertex %d label %d, want %d", mode, v, got[v], want[v])
			}
		}
		fmt.Printf("nondet/%-6v %d iterations, %v — labels identical\n", mode, res.Iterations, res.Duration)
	}
	fmt.Println()
}

// ineligibleContrast shows the advisor rejecting greedy coloring: both
// endpoints of every edge write it (write-write conflicts) but the
// computation is not monotone, so Theorem 2 does not apply.
func ineligibleContrast() {
	fmt.Println("--- Contrast: greedy coloring is NOT eligible ---")
	g, err := ndgraph.Synthesize(ndgraph.SocLiveJournal, 2000, 4)
	if err != nil {
		log.Fatal(err)
	}
	coloring := ndgraph.NewColoring()
	profile, verdict, err := ndgraph.Probe(coloring, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe: %d RW, %d WW conflict edge(s)\n%s\n", profile.RW, profile.WW, verdict)
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
