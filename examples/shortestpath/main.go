// Shortest paths on a road-network-like grid, under every execution model
// the framework provides: deterministic, nondeterministic (pull mode,
// Theorem 1/2), pure asynchronous (barrier-free), and push mode with CAS.
// All four must produce identical distances because SSSP is monotone with
// an absolute convergence condition.
//
//	go run ./examples/shortestpath
package main

import (
	"fmt"
	"log"
	"math"

	"ndgraph"
)

const (
	rows, cols = 40, 40
	seed       = 99
)

func main() {
	g, err := ndgraph.GenGrid(rows, cols, true, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %dx%d (%d vertices, %d edges)\n\n", rows, cols, g.N(), g.M())

	source := uint32(0)
	sssp := ndgraph.NewSSSP(g, source, seed)

	// 1. Deterministic pull-mode baseline.
	detEng, detRes, err := ndgraph.Run(sssp, g, ndgraph.Options{Scheduler: ndgraph.Deterministic, MaxIters: 1000})
	if err != nil {
		log.Fatal(err)
	}
	ref := sssp.Distances(detEng)
	fmt.Printf("deterministic pull:  %4d iterations  %v\n", detRes.Iterations, detRes.Duration)

	// 2. Nondeterministic pull-mode (racy, per-operation atomicity only).
	ndEng, ndRes, err := ndgraph.Run(sssp, g, ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic, Threads: 8, Mode: ndgraph.ModeAtomic, MaxIters: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	check("nondeterministic pull", ref, sssp.Distances(ndEng))
	fmt.Printf("nondeterministic:    %4d iterations  %v\n", ndRes.Iterations, ndRes.Duration)

	// 3. Pure asynchronous (barrier-free) execution.
	seedEng, err := ndgraph.NewEngine(g, ndgraph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sssp.Setup(seedEng)
	x, err := ndgraph.NewAsyncExecutor(g, ndgraph.AsyncOptions{Threads: 8, Mode: ndgraph.ModeAtomic})
	if err != nil {
		log.Fatal(err)
	}
	if err := x.LoadFrom(seedEng); err != nil {
		log.Fatal(err)
	}
	asyncRes, err := x.Run(sssp.Update)
	if err != nil {
		log.Fatal(err)
	}
	asyncDist := make([]float64, g.N())
	for v := range asyncDist {
		asyncDist[v] = math.Float64frombits(x.Vertices[v])
	}
	check("pure asynchronous", ref, asyncDist)
	fmt.Printf("pure asynchronous:   %4d updates     %v\n", asyncRes.Updates, asyncRes.Duration)

	// 4. Push mode with CAS (Ligra-style).
	pushDist, pushRes, err := ndgraph.PushSSSP(g, source, sssp.Weights, ndgraph.PushModeCAS, 8)
	if err != nil {
		log.Fatal(err)
	}
	check("push mode (CAS)", ref, pushDist)
	fmt.Printf("push mode (CAS):     %4d iterations  %v\n\n", pushRes.Iterations, pushRes.Duration)

	fmt.Println("all four execution models agree; sample distances from corner (0,0):")
	for _, cell := range [][2]int{{0, 0}, {0, cols - 1}, {rows - 1, 0}, {rows - 1, cols - 1}, {rows / 2, cols / 2}} {
		v := cell[0]*cols + cell[1]
		fmt.Printf("  (%2d,%2d): %g\n", cell[0], cell[1], ref[v])
	}
}

func check(name string, want, got []float64) {
	for v := range want {
		if want[v] != got[v] {
			log.Fatalf("%s: dist[%d] = %v, want %v", name, v, got[v], want[v])
		}
	}
}
