// Quickstart: build a small graph, ask whether WCC is eligible for
// nondeterministic execution, then run it deterministically and
// nondeterministically and confirm the results agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndgraph"
)

func main() {
	// A graph of two communities joined by one bridge edge.
	edges := []ndgraph.Edge{
		// community A: 0-1-2 triangle
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		// community B: 3-4-5 triangle
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
		// bridge
		{Src: 2, Dst: 3},
		// an isolated pair
		{Src: 6, Dst: 7},
	}
	g, err := ndgraph.BuildGraph(edges, ndgraph.GraphOptions{NumVertices: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	wcc := ndgraph.NewWCC()

	// Step 1 — the paper's title question, answered mechanically: probe
	// the algorithm's potential edge conflicts and apply the sufficient
	// conditions of Theorems 1 and 2.
	profile, verdict, err := ndgraph.Probe(wcc, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict profile: %d RW edge(s), %d WW edge(s)\n", profile.RW, profile.WW)
	fmt.Printf("%s\n\n", verdict)

	// Step 2 — run deterministically (the GraphChi-style external
	// deterministic scheduler: sequential, label order).
	detEng, detRes, err := ndgraph.Run(wcc, g, ndgraph.Options{
		Scheduler: ndgraph.Deterministic,
		MaxIters:  1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic:    %d iterations, %d updates, %v\n",
		detRes.Iterations, detRes.Updates, detRes.Duration)

	// Step 3 — run nondeterministically: racy block-parallel execution,
	// edge words protected only by per-operation atomicity.
	ndEng, ndRes, err := ndgraph.Run(wcc, g, ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic,
		Threads:   4,
		Mode:      ndgraph.ModeAtomic,
		MaxIters:  1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nondeterministic: %d iterations, %d updates, %v\n\n",
		ndRes.Iterations, ndRes.Updates, ndRes.Duration)

	// Step 4 — Theorem 2 in action: identical final labels.
	det, nd := wcc.Components(detEng), wcc.Components(ndEng)
	for v := range det {
		if det[v] != nd[v] {
			log.Fatalf("vertex %d: deterministic label %d != nondeterministic label %d", v, det[v], nd[v])
		}
	}
	fmt.Println("components (identical under both executions):")
	for v, label := range det {
		fmt.Printf("  vertex %d → component %d\n", v, label)
	}
}
