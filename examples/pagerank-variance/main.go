// PageRank variance: a small-scale rendition of the paper's Section V-C
// study (Tables II/III). Runs PageRank repeatedly under deterministic and
// nondeterministic execution on a synthetic web graph and reports the
// difference degrees of the converged rank orderings — showing that
// nondeterministic runs vary run-to-run while the top-ranked pages stay
// stable.
//
//	go run ./examples/pagerank-variance
package main

import (
	"fmt"
	"log"

	"ndgraph"
)

const (
	runs = 5
	eps  = 1e-3
)

func main() {
	// A web-google-like synthetic graph (scale 1/500 of the original).
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (web-google analog)\n\n", g.N(), g.M())

	orderings := func(opts ndgraph.Options) [][]uint32 {
		var out [][]uint32
		for i := 0; i < runs; i++ {
			pr := ndgraph.NewPageRank(eps)
			eng, res, err := ndgraph.Run(pr, g, opts)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatal("run did not converge")
			}
			out = append(out, ndgraph.RankOrder(pr.Ranks(eng)))
		}
		return out
	}

	de := orderings(ndgraph.Options{Scheduler: ndgraph.Deterministic, MaxIters: 1000})
	ne := orderings(ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic,
		Threads:   8,
		Mode:      ndgraph.ModeAtomic,
		MaxIters:  1000,
		Amplify:   true, // widen race windows so variance shows on few cores
	})

	pairwise := func(group [][]uint32) (min, sum int) {
		min = g.N() + 1
		count := 0
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				dd := ndgraph.DifferenceDegree(group[i], group[j])
				if dd < min {
					min = dd
				}
				sum += dd
				count++
			}
		}
		return min, sum / count
	}

	dMin, dAvg := pairwise(de)
	nMin, nAvg := pairwise(ne)
	fmt.Printf("difference degree, DE vs DE:  min %d, avg %d (of %d vertices — identical runs reach |V|)\n",
		dMin, dAvg, g.N())
	fmt.Printf("difference degree, NE vs NE:  min %d, avg %d\n\n", nMin, nAvg)

	// Cross comparison and the paper's "top pages identical" observation.
	cross := ndgraph.DifferenceDegree(de[0], ne[0])
	fmt.Printf("difference degree, DE vs NE:  %d\n", cross)

	agree := 0
	k := 20
	for i := 0; i < k; i++ {
		if de[0][i] == ne[0][i] {
			agree++
		}
	}
	fmt.Printf("top-%d agreement DE vs NE:    %d/%d positions identical\n", k, agree, k)
	fmt.Println("\ntop 10 pages (DE ordering):")
	for i := 0; i < 10 && i < len(de[0]); i++ {
		fmt.Printf("  rank %2d: vertex %d\n", i, de[0][i])
	}
}
