// Eligibility: the paper's title question answered for every algorithm
// in the library. Probes each algorithm's potential edge conflicts on a
// web-graph analog and prints the advisor's verdict — which sufficient
// condition applies (Theorem 1 for read-write-only, Theorem 2 for
// monotone write-write), whether results reproduce exactly, and why the
// two counter-examples are rejected.
//
//	go run ./examples/eligibility
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ndgraph"
)

func main() {
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 500, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing on a web-google analog: %d vertices, %d edges\n\n", g.N(), g.M())

	// Traversal source: the highest-out-degree vertex, so BFS/SSSP
	// actually traverse a large region (an arbitrary vertex of a sparse
	// synthetic graph may have no out-edges at all).
	src, best := uint32(0), -1
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > best {
			src, best = v, d
		}
	}

	algos := []ndgraph.Algorithm{
		ndgraph.NewPageRank(1e-3),
		ndgraph.NewSpMV(g, 1e-3, 0.5, 1),
		ndgraph.NewWCC(),
		ndgraph.NewSSSP(g, src, 2),
		ndgraph.NewBFS(g, src),
		ndgraph.NewKCore(),
		ndgraph.NewLabelProp(),
		ndgraph.NewColoring(),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tRW edges\tWW edges\teligible\ttheorem\texact results")
	for _, a := range algos {
		profile, verdict, err := ndgraph.Probe(a, g)
		if err != nil {
			log.Fatalf("%s: %v", a.Name(), err)
		}
		theorem := "—"
		if verdict.Eligible {
			theorem = fmt.Sprintf("Thm %d", verdict.Theorem)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%s\t%v\n",
			a.Name(), profile.RW, profile.WW, verdict.Eligible, theorem, verdict.DeterministicResults)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwhy the rejections:")
	for _, a := range algos {
		_, verdict, err := ndgraph.Probe(a, g)
		if err != nil {
			log.Fatal(err)
		}
		if verdict.Eligible {
			continue
		}
		fmt.Printf("\n%s:\n%s\n", a.Name(), verdict)
	}
}
