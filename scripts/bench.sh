#!/usr/bin/env bash
# Benchmark pipeline: run the hot-path and dispatch benchmark families with
# -benchmem and emit a machine-readable BENCH_*.json (schema ndgraph-bench/v1,
# see cmd/benchjson). Usage:
#
#   scripts/bench.sh [out.json]          # default out: BENCH_PR2.json
#   BENCHTIME=1s scripts/bench.sh        # longer runs for a checked-in baseline
#   BENCH='HotPathIteration' scripts/bench.sh smoke.json
#
# The CI smoke (scripts/ci.sh) runs this with BENCHTIME=1x: one iteration per
# benchmark, just enough to prove the pipeline produces valid JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
bench="${BENCH:-HotPathIteration|PoolBlocks|PoolChunks|ParallelBlocks|ParallelChunks|ConvergenceSpeed|AblationDispatch|BFSEngines|NoSyncEngines|DelayClock|ResidualObserve}"
benchtime="${BENCHTIME:-1x}"

go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem \
    . ./internal/sched/ ./internal/obs/ |
    go run ./cmd/benchjson -out "$out"
go run ./cmd/benchjson -validate "$out"
echo "bench: wrote and validated $out"
