#!/usr/bin/env bash
# CI gate: vet, build, full test suite, then a race-detector pass over the
# concurrency-heavy packages. ModeAligned's deliberate benign races are
# excluded from race builds via build tags, so -race must stay clean.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== ndlint (go vet -vettool) =="
# The eligibility linter must stay clean over the whole tree: findings are
# either fixed or carry a justified //ndlint:ignore pragma.
ndlint_bin=$(mktemp -t ndlint.XXXXXX)
go build -o "$ndlint_bin" ./cmd/ndlint
go vet -vettool="$ndlint_bin" ./...
rm -f "$ndlint_bin"

echo "== eligibility certificates (registry freshness + tamper resistance) =="
# Re-derives the admission certificates of ./internal/algorithms from
# source and fails if the embedded registry (certs.json) has drifted, if
# any certified declaration is refuted, or if stale/tampered certificates
# are not rejected by the admission paths.
go run ./scripts/certsmoke
go run ./cmd/ndlint -certcheck internal/algorithms/certs.json ./internal/algorithms

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -shuffle=on (order-independence) =="
# Shuffled execution order flushes out tests that depend on state leaked by
# an earlier test in the same package.
go test -shuffle=on -count=1 ./...

echo "== go test -race (concurrency-heavy packages, short) =="
# internal/obs covers the lock-free delay clocks and striped residual
# estimator under concurrent Emit/WriteMetrics/Handler; internal/async
# covers the ε-aware stopping rule end to end (its epsilon tests do not
# short-skip); internal/eligibility covers the EpsilonStop admission gate.
go test -race -short ./internal/core/ ./internal/async/ ./internal/dist/ ./internal/fault/ ./internal/shard/ ./internal/trace/ ./internal/netdist/ ./internal/obs/ ./internal/push/ ./internal/hybrid/ ./internal/frontier/ ./internal/sched/ ./internal/eligibility/

echo "== go test -race (cross-engine differential, lock + atomic modes) =="
# The differential suite pins every executor to the sequential DE fixed
# point using ModeLocked/ModeAtomic only (ModeAligned is compiled out of
# race builds), so it doubles as the race gate for the full engine grid.
go test -race -run 'TestCrossEngine' -count=1 .

echo "== chaos smoke (netdist: SIGKILL + 30% drop window) =="
# Real worker processes via ExecLauncher: one worker SIGKILLed mid-run, a
# 30% frame-drop window opened and closed, and the result must still be
# byte-identical to the sequential reference after supervised recovery.
NDGRAPH_CHAOS=1 go test -run '^TestChaosSmoke$' -count=1 -v ./internal/netdist/ | grep -E 'chaos smoke|PASS|FAIL|ok '

echo "== fuzz smoke (\${FUZZTIME:-30s} per target) =="
# Each native fuzz target gets a short randomized run on top of its
# checked-in seed corpus; FUZZTIME=5s locally for a quicker gate.
FUZZTIME=${FUZZTIME:-30s}
for target in FuzzLoadEdgeList FuzzLoadMatrixMarket FuzzReadBinary; do
    go test -run "^${target}\$" -fuzz "^${target}\$" -fuzztime "$FUZZTIME" ./internal/loader/
done
go test -run '^FuzzCheckpointRestore$' -fuzz '^FuzzCheckpointRestore$' -fuzztime "$FUZZTIME" ./internal/core/

echo "== /statusz smoke (live progress plane) =="
# Polls /statusz WHILE a work-stealing PageRank is running and fails unless
# the endpoint serves well-formed JSON showing real mid-run progress (plus
# an HTML rendering). Guards the progress plane against becoming a
# post-mortem-only viewer.
go run ./scripts/statuszsmoke/

echo "== experiment smoke (staleness + ε-aware stopping study) =="
# One tiny-scale pass of the delay-clock staleness table and the ε-stopping
# table; exercises the full instrumented pipeline end to end.
go run ./cmd/ndbench -exp staleness -scale 2000 -eps 1e-2 >/dev/null

echo "== bench smoke (1x, JSON pipeline) =="
# One iteration per benchmark family through scripts/bench.sh; the pipeline
# validates its own JSON output, so a broken parser or benchmark fails CI.
smoke=$(mktemp -t bench_smoke.XXXXXX.json)
trap 'rm -f "$smoke"' EXIT
BENCHTIME=1x BENCH='HotPathIteration|PoolBlocks|PoolChunks|BFSEngines|NoSyncEngines' scripts/bench.sh "$smoke"

echo "CI OK"
