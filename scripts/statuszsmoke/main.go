// Command statuszsmoke is the CI probe for the /statusz progress plane: it
// starts a work-stealing PageRank with an observer attached, serves the
// observability endpoint on a loopback port, and polls /statusz WHILE the
// run is live, failing unless the endpoint returns well-formed JSON whose
// engine rows show real mid-run progress (and an HTML rendering on
// request). A /statusz that only works after the run would be a post-mortem
// viewer, not a progress plane.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/obs"
)

// payload mirrors the /statusz JSON shape loosely: unknown fields are
// ignored, so the smoke validates structure without freezing it.
type payload struct {
	Phase   string `json:"phase"`
	Engines []struct {
		Engine  string `json:"engine"`
		Updates int64  `json:"updates"`
	} `json:"engines"`
	Delay []struct {
		Engine string `json:"engine"`
		Count  int64  `json:"count"`
	} `json:"delay"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "statuszsmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	// soc-LiveJournal at modest scale: big enough that the run outlives
	// several poll rounds, small enough for a CI smoke.
	g, err := gen.Synthesize(gen.SocLiveJournal, 200, 7)
	if err != nil {
		return err
	}

	o := obs.New(obs.Options{WindowEvery: 50 * time.Millisecond})
	defer o.Close()
	srv, err := obs.Serve("127.0.0.1:0", o)
	if err != nil {
		return err
	}
	defer srv.Close()

	// PageRank with no local threshold: the run never locally converges,
	// so only the ε rule ends it — guaranteeing a long live phase to poll.
	pr := &algorithms.PageRank{Epsilon: 0, Damping: 0.85}
	v, err := algorithms.NoSyncVerdict(pr, g)
	if err != nil {
		return err
	}
	seed, err := core.NewEngine(g, core.Options{})
	if err != nil {
		return err
	}
	pr.Setup(seed)
	x, err := async.NewNoSync(g, async.NoSyncOptions{
		Threads: 4, Mode: edgedata.ModeAtomic,
		Verdict: &v, Observer: o,
		MaxUpdates: 1 << 26, Epsilon: 1e-10, ResidualDelta: pr.ResidualDelta,
	})
	if err != nil {
		return err
	}
	defer x.Close()
	if err := x.LoadFrom(seed); err != nil {
		return err
	}

	done := make(chan error, 1)
	var res async.NoSyncResult
	go func() {
		r, err := x.Run(pr.Update)
		res = r
		done <- err
	}()

	base := "http://" + srv.Addr()
	live, err := pollLive(base, done)
	if err != nil {
		return err
	}

	// HTML rendering must also serve during the run (or right after —
	// the page is the same either way).
	html, err := get(base + "/statusz?format=html")
	if err != nil {
		return err
	}
	if !strings.Contains(html, "<html") || !strings.Contains(html, "/statusz") {
		return fmt.Errorf("HTML rendering malformed: %.120q", html)
	}

	if err := <-done; err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("run did not converge (updates=%d)", res.Updates)
	}
	fmt.Printf("statusz smoke OK: live phase=%q engines=%d updates(live)=%d run updates=%d eps-stopped=%v\n",
		live.Phase, len(live.Engines), live.Engines[0].Updates, res.Updates, res.EpsilonStopped)
	return nil
}

// pollLive polls /statusz until a snapshot shows a live engine mid-run, or
// fails if the run finishes (or 30s pass) before one is seen.
func pollLive(base string, done chan error) (payload, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			if err != nil {
				return payload{}, err
			}
			return payload{}, fmt.Errorf("run finished before a live /statusz snapshot was captured")
		default:
		}
		body, err := get(base + "/statusz")
		if err != nil {
			return payload{}, err
		}
		var p payload
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			return payload{}, fmt.Errorf("/statusz returned malformed JSON: %w (%.120q)", err, body)
		}
		for _, e := range p.Engines {
			if e.Engine == "nosync" && e.Updates > 0 && strings.Contains(p.Phase, "running") {
				return p, nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return payload{}, fmt.Errorf("no live /statusz snapshot within 30s")
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), nil
}
