// Command certsmoke is the CI gate for the eligibility-certificate
// registry: it re-derives the certificates of ./internal/algorithms from
// source, demands that the embedded registry (certs.json) matches
// exactly — any drift means someone edited certified source without
// re-running `ndlint -cert` — and then exercises the failure paths the
// engines rely on: a perturbed hash must read as stale, and a tampered
// gate must make Verdict() refuse admission.
package main

import (
	"fmt"
	"os"
	"reflect"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/analysis"
	"ndgraph/internal/eligibility"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certsmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	pkgs, err := analysis.Load(".", "./internal/algorithms")
	if err != nil {
		return err
	}
	if len(pkgs) != 1 {
		return fmt.Errorf("loaded %d packages, want 1", len(pkgs))
	}
	fresh, diags, err := analysis.Certificates(pkgs[0])
	if err != nil {
		return err
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("%d diagnostic(s) while certifying — a refuted declaration must not certify", len(diags))
	}

	var updates, kernels int
	for _, c := range fresh {
		switch c.Kind {
		case "update":
			updates++
		case "kernel":
			kernels++
		}
	}
	if updates < 7 || kernels != 3 {
		return fmt.Errorf("derived %d update and %d kernel certificates, want >=7 and 3", updates, kernels)
	}

	embedded, err := algorithms.EligibilityCertificates()
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(fresh, embedded) {
		return fmt.Errorf("embedded registry is stale: re-run\n\tgo run ./cmd/ndlint -cert ./internal/algorithms > internal/algorithms/certs.json")
	}

	// The wire format must round-trip losslessly.
	data, err := eligibility.EncodeCertificates(fresh)
	if err != nil {
		return err
	}
	decoded, err := eligibility.DecodeCertificates(data)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(fresh, decoded) {
		return fmt.Errorf("certificates do not survive a JSON round-trip")
	}

	// Staleness: any hash movement must be detected.
	wcc, err := analysis.CertificateFor(fresh, "update", "wcc")
	if err != nil {
		return err
	}
	if wcc.Stale(wcc.SourceHash) {
		return fmt.Errorf("certificate reports stale against its own hash")
	}
	if !wcc.Stale(wcc.SourceHash + "0") {
		return fmt.Errorf("certificate does not report stale against a perturbed hash")
	}

	// Tamper resistance: a flipped gate must fail Verdict()'s
	// re-derivation, so a hand-edited certificate cannot admit anything.
	if _, err := wcc.Verdict(); err != nil {
		return fmt.Errorf("genuine wcc certificate refused: %w", err)
	}
	tampered := *wcc
	tampered.NoSyncOK = false
	if _, err := tampered.Verdict(); err == nil {
		return fmt.Errorf("tampered certificate (flipped NoSyncOK) still produced a verdict")
	}
	tampered = *wcc
	tampered.Theorem = 1
	if _, err := tampered.Verdict(); err == nil {
		return fmt.Errorf("tampered certificate (rewritten theorem) still produced a verdict")
	}

	fmt.Printf("certsmoke OK: %d update + %d kernel certificates current, stale/tampered certificates refused\n", updates, kernels)
	return nil
}
