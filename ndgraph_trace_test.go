package ndgraph_test

import (
	"bytes"
	"strings"
	"testing"

	"ndgraph"
)

// recordTrace runs WCC on a web-scale fixture with a recorder (and commit
// log) attached and returns the snapshot.
func recordTrace(t *testing.T, kind ndgraph.Options, withCommits bool) *ndgraph.Trace {
	t.Helper()
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := ndgraph.NewTraceRecorder(1 << 20)
	if withCommits {
		rec.EnableCommits(1<<21, g.M())
	}
	kind.Trace = rec
	_, res, err := ndgraph.Run(ndgraph.NewWCC(), g, kind)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	return rec.Snapshot(ndgraph.TraceMeta{Vertices: g.N(), Edges: g.M()})
}

// Two deterministic runs of the same configuration diff to an empty report.
func TestFacadeDeterministicTracesDiffEmpty(t *testing.T) {
	a := recordTrace(t, ndgraph.Options{Scheduler: ndgraph.Deterministic}, false)
	b := recordTrace(t, ndgraph.Options{Scheduler: ndgraph.Deterministic}, false)
	rep := ndgraph.DiffTraces(a, b)
	if !rep.Identical() {
		var sb strings.Builder
		rep.WriteReport(&sb)
		t.Fatalf("deterministic traces diverge:\n%s", sb.String())
	}
}

// Two nondeterministic runs on a web-scale fixture diverge, and the report
// carries the propagation-distance histogram.
func TestFacadeNondeterministicTracesDiverge(t *testing.T) {
	nd := ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic, Threads: 4,
		Mode: ndgraph.ModeAtomic, Amplify: true,
	}
	var rep *ndgraph.TraceDiffReport
	// A single racy pair is not guaranteed to diverge; retry a few pairs.
	for i := 0; i < 6; i++ {
		a := recordTrace(t, nd, false)
		b := recordTrace(t, nd, false)
		rep = ndgraph.DiffTraces(a, b)
		if !rep.Identical() {
			break
		}
	}
	if rep.Identical() {
		t.Skip("no divergence observed in 6 amplified pairs (single-core machine?)")
	}
	if rep.First == nil || rep.Diverged == 0 {
		t.Fatalf("divergent report lacks a first divergence: %+v", rep)
	}
	before, after, conc := rep.Hist.Totals()
	if rep.Diverged > 1 && before+after+conc == 0 {
		t.Fatalf("d-histogram empty for %d diverged updates", rep.Diverged)
	}
	var sb strings.Builder
	if err := rep.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"first divergence", "divergence frontier", "(≺)", "(≻)", "(∥)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// A recorded trace round-trips through the NDTR binary format and replays
// to the recorded fixed point via the facade surface.
func TestFacadeTraceRoundTripAndReplay(t *testing.T) {
	nd := ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic, Threads: 4, Mode: ndgraph.ModeAtomic,
	}
	tr := recordTrace(t, nd, true)
	var buf bytes.Buffer
	if err := ndgraph.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ndgraph.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) || len(back.Commits) != len(tr.Commits) {
		t.Fatalf("round trip lost records: %d/%d events, %d/%d commits",
			len(back.Events), len(tr.Events), len(back.Commits), len(tr.Commits))
	}
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ndgraph.NewEngine(g, ndgraph.Options{Scheduler: ndgraph.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	wcc := ndgraph.NewWCC()
	wcc.Setup(e)
	rep, err := e.ReplayTrace(back, wcc.Update)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DigestOK {
		t.Fatalf("replay digest mismatch: %+v", rep)
	}
}
