package main

import (
	"strings"
	"testing"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts(" 1, 2,4 ")
	if err != nil || len(ints) != 3 || ints[2] != 4 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
	floats, err := parseFloats("1e-1, 0.5")
	if err != nil || len(floats) != 2 || floats[0] != 0.1 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("0.1,y"); err == nil {
		t.Error("parseFloats accepted garbage")
	}
}

func TestExpListFlag(t *testing.T) {
	var e expList
	if err := e.Set("table1, fig3"); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("topk"); err != nil {
		t.Fatal(err)
	}
	if len(e) != 3 || e[0] != "table1" || e[2] != "topk" {
		t.Fatalf("expList = %v", e)
	}
	if e.String() != "table1,fig3,topk" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "table1", "-scale", "1000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "web-berkstan", "cage15"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunConflicts(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "conflicts", "-scale", "1000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "eligible (Thm 2)") || !strings.Contains(out, "not eligible") {
		t.Fatalf("census output missing verdicts:\n%s", out)
	}
}

func TestRunVarianceSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "table2,table3", "-scale", "1000", "-runs", "2", "-eps", "1e-1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table III") {
		t.Fatalf("variance output:\n%s", out)
	}
	if !strings.Contains(out, "DE vs. DE") || !strings.Contains(out, "8NE vs. 16NE") {
		t.Fatalf("variance rows missing:\n%s", out)
	}
}

func TestRunFig3Tiny(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "fig3", "-scale", "1000", "-threads", "2", "-no-aligned"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "NE-lock") {
		t.Fatalf("fig3 output:\n%s", out)
	}
	if strings.Contains(out, "NE-arch") {
		t.Fatalf("-no-aligned did not drop NE-arch:\n%s", out)
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-threads", "a,b"}, &sb); err == nil {
		t.Error("bad threads accepted")
	}
	if err := run([]string{"-eps", "zap"}, &sb); err == nil {
		t.Error("bad eps accepted")
	}
}

// Smoke the remaining experiment printers at minimal scale.
func TestRunExtensionExperiments(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "iters,async,topk", "-scale", "1000", "-runs", "2", "-eps", "1e-1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"iterations to convergence", "pure asynchronous", "top-K rank agreement"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunAblatePswDist(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "ablate,psw,dist", "-scale", "1000", "-runs", "2", "-eps", "1e-1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Ablations", "race amplifier", "out-of-core (PSW)", "distributed simulation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if !strings.Contains(out, "true") {
		t.Fatal("no identical-results confirmations in output")
	}
}
