// Command ndbench regenerates the paper's evaluation tables and figures
// (Section V of "Is Your Graph Algorithm Eligible for Nondeterministic
// Execution?", ICPP 2015) plus the repository's extension experiments.
//
// Usage:
//
//	ndbench -exp all                  # everything (default)
//	ndbench -exp table1               # graph inventory (Table I)
//	ndbench -exp fig3                 # computing-time grid (Fig. 3 a–p)
//	ndbench -exp table2 -exp table3   # PageRank difference degrees
//	ndbench -exp conflicts            # conflict census + eligibility
//	ndbench -exp iters                # convergence-speed comparison
//	ndbench -exp async                # barrier vs pure-async comparison
//	ndbench -exp topk                 # top-K rank agreement
//	ndbench -exp netdist              # TCP worker processes + fault injection
//	ndbench -exp hybrid               # direction-optimizing engine sweep
//	ndbench -exp nosync               # work-stealing no-sync tier sweep + drift
//	ndbench -exp staleness            # delay-clock staleness + ε-aware stopping
//
// Common flags: -scale (dataset scale divisor, default 50), -seed,
// -threads (comma list), -runs, -eps (comma list of ε).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"ndgraph/internal/experiments"
	"ndgraph/internal/obs"
)

type expList []string

func (e *expList) String() string { return strings.Join(*e, ",") }
func (e *expList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*e = append(*e, part)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ndbench", flag.ContinueOnError)
	var exps expList
	fs.Var(&exps, "exp", "experiment to run: all, table1, fig3, table2, table3, conflicts, iters, async, topk, ablate, psw, dist, netdist, fpvar, precision, divergence, hybrid, nosync, staleness (repeatable)")
	scale := fs.Int("scale", 50, "dataset scale divisor (1 = full paper size)")
	seed := fs.Uint64("seed", 42, "master random seed")
	threadsFlag := fs.String("threads", "1,2,4,8,16", "comma-separated worker counts for Fig. 3")
	runs := fs.Int("runs", 5, "independent runs per variance configuration")
	epsFlag := fs.String("eps", "1e-1,1e-2,1e-3", "comma-separated PageRank ε values")
	noAligned := fs.Bool("no-aligned", false, "skip the arch-support (benign-race) mode")
	telemetry := fs.String("telemetry", "", "write per-iteration telemetry as JSON lines to this file")
	telemetryAddr := fs.String("telemetry-addr", "", "serve live /metrics, /events, and /debug/pprof on this address (e.g. :6060)")
	tracePath := fs.String("trace", "", "save the divergence study's recorded run pairs as PREFIX-<algo>-{a,b}.ndt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(exps) == 0 {
		exps = expList{"all"}
	}

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	eps, err := parseFloats(*epsFlag)
	if err != nil {
		return fmt.Errorf("bad -eps: %w", err)
	}
	cfg := experiments.Config{
		Scale:     *scale,
		Seed:      *seed,
		Threads:   threads,
		Runs:      *runs,
		Epsilons:  eps,
		TracePath: *tracePath,
	}
	if *telemetry != "" || *telemetryAddr != "" {
		cfg.Observer = obs.New(obs.Options{})
		if *telemetry != "" {
			f, err := os.Create(*telemetry)
			if err != nil {
				return err
			}
			cfg.Observer.AttachSink(obs.NewJSONLSink(f))
		}
		if *telemetryAddr != "" {
			srv, err := obs.Serve(*telemetryAddr, cfg.Observer)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(out, "telemetry: serving /metrics and /debug/pprof on %s\n", srv.Addr())
		}
		cfg.Observer.PublishExpvar("ndbench")
		defer cfg.Observer.Close()
	}

	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	all := want["all"]

	if all || want["table1"] {
		if err := printTableI(out, cfg); err != nil {
			return err
		}
	}
	if all || want["fig3"] {
		if err := printFig3(out, cfg, !*noAligned); err != nil {
			return err
		}
	}
	if all || want["table2"] || want["table3"] {
		if err := printVariance(out, cfg, all || want["table2"], all || want["table3"]); err != nil {
			return err
		}
	}
	if all || want["conflicts"] {
		if err := printCensus(out, cfg); err != nil {
			return err
		}
	}
	if all || want["iters"] {
		if err := printIters(out, cfg); err != nil {
			return err
		}
	}
	if all || want["async"] {
		if err := printAsync(out, cfg); err != nil {
			return err
		}
	}
	if all || want["topk"] {
		if err := printTopK(out, cfg); err != nil {
			return err
		}
	}
	if all || want["ablate"] {
		if err := printAblations(out, cfg); err != nil {
			return err
		}
	}
	if all || want["psw"] {
		if err := printPSW(out, cfg); err != nil {
			return err
		}
	}
	if all || want["dist"] {
		if err := printDist(out, cfg); err != nil {
			return err
		}
	}
	if all || want["netdist"] {
		if err := printNetDist(out, cfg); err != nil {
			return err
		}
	}
	if all || want["fpvar"] {
		if err := printFPVar(out, cfg); err != nil {
			return err
		}
	}
	if all || want["precision"] {
		if err := printPrecision(out, cfg); err != nil {
			return err
		}
	}
	if all || want["divergence"] {
		if err := printDivergence(out, cfg); err != nil {
			return err
		}
	}
	if all || want["hybrid"] {
		if err := printHybrid(out, cfg); err != nil {
			return err
		}
	}
	if all || want["nosync"] {
		if err := printNoSync(out, cfg); err != nil {
			return err
		}
	}
	if all || want["staleness"] {
		if err := printStaleness(out, cfg); err != nil {
			return err
		}
	}
	return nil
}

func printNoSync(out io.Writer, cfg experiments.Config) error {
	scale, drift, err := experiments.NoSyncStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: barrier-free work-stealing (no-sync) tier ===")
	fmt.Fprintln(out, "BFS scaling sweep, best of 3; updates are engine-specific work units")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tengine\tthreads\ttime\tupdates\tsteals\tidle-trans")
	for _, r := range scale {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%d\t%d\t%d\n",
			r.Graph, r.Engine, r.Threads, r.Time.Round(10*time.Microsecond),
			r.Updates, r.Steals, r.IdleTransitions)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nexecution drift vs deterministic reference (WCC, trace-diffed):")
	for _, r := range drift {
		fmt.Fprintf(out, "\n%s, %d threads (det %d events vs nosync %d, results identical: %v):\n",
			r.Graph, r.Threads, r.DetEvents, r.NoSyncEvents, r.ResultsEqual)
		if err := r.Report.WriteReport(out); err != nil {
			return err
		}
	}
	return nil
}

func printStaleness(out io.Writer, cfg experiments.Config) error {
	stale, eps, err := experiments.StalenessStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: staleness & convergence observability ===")
	fmt.Fprintln(out, "delay-clock staleness of work-stealing WCC (delays in elapsed updates")
	fmt.Fprintln(out, "between a value's publish and its read), vs drift from the det reference")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tthreads\tupdates\tsteals\treads\tdelay-p50\tdelay-p99\tdelay-max\toverflow\tdiverged\tresults-equal")
	for _, r := range stale {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Graph, r.Threads, r.Updates, r.Steals, r.Reads,
			r.DelayP50, r.DelayP99, r.DelayMax, r.Overflow, r.Diverged, r.ResultsEqual)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nε-aware stopping (work-stealing PageRank; stop = windowed residual, full = exact quiescence):")
	w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tε\tstopped\tfinal-resid\tstop-updates\tfull-updates\tstop-maxerr\tfull-maxerr")
	for _, r := range eps {
		fmt.Fprintf(w, "%s\t%g\t%v\t%.3g\t%d\t%d\t%.3g\t%.3g\n",
			r.Graph, r.Epsilon, r.Stopped, r.FinalResidual,
			r.StopUpdates, r.FullUpdates, r.StopMaxErr, r.FullMaxErr)
	}
	return w.Flush()
}

func printHybrid(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.HybridStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: direction-optimizing (push/pull) hybrid engine ===")
	fmt.Fprintln(out, "trace: one letter per iteration, P = push (sparse, CAS), L = pull (dense, gather)")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgo\tthreads\titers\tswitches\thybrid\tall-push\tspeedup\ttrace")
	for _, r := range rows {
		speedup := float64(r.AllPush) / float64(r.Hybrid)
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%v\t%v\t%.2fx\t%s\n",
			r.Graph, r.Algo, r.Threads, r.Iterations, r.Switches,
			r.Hybrid.Round(10*time.Microsecond), r.AllPush.Round(10*time.Microsecond), speedup, r.Trace)
	}
	return w.Flush()
}

func printDivergence(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.DivergenceStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: execution-path divergence of repeated nondeterministic runs ===")
	for _, r := range rows {
		fmt.Fprintf(out, "\n%s on %s, %d threads (pair %d):\n", r.Algo, r.Graph, r.Threads, r.Pairs)
		if err := r.Report.WriteReport(out); err != nil {
			return err
		}
	}
	return nil
}

func printPrecision(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.PrecisionStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: error range of nondeterministic PageRank vs the true fixed point ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ε\tthreads\tmax L∞ error\tmean L∞ error\tmean L1/vertex")
	for _, r := range rows {
		fmt.Fprintf(w, "%g\t%d\t%.2e\t%.2e\t%.2e\n", r.Epsilon, r.Threads, r.MaxLInf, r.MeanLInf, r.MeanL1PerVertex)
	}
	return w.Flush()
}

func printFPVar(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.FixedPointVariance(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: fixed-point variance, PageRank vs SpMV (16NE, web-google analog) ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tε\tmean diff degree\tmean footrule")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%g\t%.1f\t%.4f\n", r.Algo, r.Epsilon, r.MeanDiff, r.Footrule)
	}
	return w.Flush()
}

func printPSW(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.PSWComparison(cfg, "")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: in-memory vs out-of-core (PSW) WCC ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tshards\tin-mem time(s)\tPSW time(s)\tPSW bytes read\tresults identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%d\t%v\n",
			r.Graph, r.Shards, r.InMemTime.Seconds(), r.PSWTime.Seconds(), r.PSWBytesRead, r.Identical)
	}
	return w.Flush()
}

func printDist(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.DistComparison(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: distributed simulation (reordered + duplicated delivery) ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgorithm\tworkers\tmessages\tduplicates\ttime(s)\tresults identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.4f\t%v\n",
			r.Graph, r.Algo, r.Workers, r.Messages, r.Duplicates, r.Duration.Seconds(), r.Identical)
	}
	return w.Flush()
}

func printNetDist(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.NetDistScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: real-transport distributed execution (TCP worker processes) ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgorithm\tworkers\tfaults\trestarts\tsweeps\ttime(s)\tresults identical")
	for _, r := range rows {
		faults := r.Faults
		if faults == "" {
			faults = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%d\t%d\t%.4f\t%v\n",
			r.Graph, r.Algo, r.Workers, faults, r.Restarts, r.Sweeps, r.Duration.Seconds(), r.Identical)
	}
	return w.Flush()
}

func printAblations(out io.Writer, cfg experiments.Config) error {
	dispatch, err := experiments.DispatchAblation(cfg)
	if err != nil {
		return err
	}
	labels, err := experiments.LabelOrderAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Ablations: dispatch policy and label order (web-berkstan analog, 4 threads) ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "study\talgorithm\tvariant\ttime(s)\titers\tupdates")
	for _, r := range append(dispatch, labels...) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%d\t%d\n", r.Study, r.Algo, r.Variant, r.Duration.Seconds(), r.Iters, r.Updates)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	amp, err := experiments.AmplifierAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Ablation: race amplifier (observed conflicts, WCC on web-google analog) ===")
	w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tRW off\tWW off\tRW on\tWW on\tresults identical")
	for _, r := range amp {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\n", r.Algo, r.RWOff, r.WWOff, r.RWOn, r.WWOn, r.ResultsIdentical)
	}
	return w.Flush()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printTableI(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.TableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n=== Table I: real-world graphs (paper) and synthetic analogs (scale 1/%d) ===\n", cfg.Scale)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tpaper |V|\tpaper |E|\tsynth |V|\tsynth |E|\tmax in\tmax out\tskew")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Name, r.PaperV, r.PaperE, r.SynthV, r.SynthE, r.MaxInDeg, r.MaxOutDeg, r.DegreeSkew)
	}
	return w.Flush()
}

func printFig3(out io.Writer, cfg experiments.Config, includeAligned bool) error {
	cells, err := experiments.Fig3(cfg, includeAligned)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Fig. 3: computing times (seconds; graph loading excluded) ===")
	// Group by (graph, algo) — one sub-plot per pair, as in the paper.
	type key struct{ graph, algo string }
	groups := map[key][]experiments.Fig3Cell{}
	var order []key
	for _, c := range cells {
		k := key{c.Graph, c.Algo}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		fmt.Fprintf(out, "\n--- %s on %s ---\n", k.algo, k.graph)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "exec\tthreads\ttime(s)\titers\tupdates")
		cs := groups[k]
		sort.SliceStable(cs, func(i, j int) bool {
			if cs[i].Exec != cs[j].Exec {
				return cs[i].Exec < cs[j].Exec
			}
			return cs[i].Threads < cs[j].Threads
		})
		for _, c := range cs {
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%d\t%d\n",
				c.Exec, c.Threads, c.Duration.Seconds(), c.Iterations, c.Updates)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func printVariance(out io.Writer, cfg experiments.Config, wantII, wantIII bool) error {
	ii, iii, err := experiments.VarianceTables(cfg)
	if err != nil {
		return err
	}
	printRows := func(title string, rows []experiments.VarianceRow) error {
		fmt.Fprintf(out, "\n=== %s (web-google analog, %d runs/config) ===\n", title, cfg.Runs)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "pair")
		for _, eps := range cfg.Epsilons {
			fmt.Fprintf(w, "\tε=%g", eps)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprint(w, r.Pair)
			for _, eps := range cfg.Epsilons {
				fmt.Fprintf(w, "\t%.1f", r.ByEpsilon[eps])
			}
			fmt.Fprintln(w)
		}
		return w.Flush()
	}
	if wantII {
		if err := printRows("Table II: avg difference degrees, same configurations", ii); err != nil {
			return err
		}
	}
	if wantIII {
		if err := printRows("Table III: avg difference degrees, different configurations", iii); err != nil {
			return err
		}
	}
	return nil
}

func printCensus(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.ConflictCensus(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: potential conflict census + eligibility verdicts ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgorithm\tRW edges\tWW edges\tverdict")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\n", r.Graph, r.Algo, r.RW, r.WW, r.Verdict)
	}
	return w.Flush()
}

func printIters(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.ConvergenceSpeed(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: iterations to convergence by execution model ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgorithm\tsync (BSP)\tdet (GS)\tnondet (4 threads)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", r.Graph, r.Algo, r.SyncIter, r.DetIter, r.NondetIter)
	}
	return w.Flush()
}

func printAsync(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.PureAsyncComparison(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: barrier-based vs pure asynchronous execution ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\talgorithm\tbarrier updates\tbarrier time(s)\tpure updates\tpure time(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%d\t%.4f\n",
			r.Graph, r.Algo, r.BarrierUpdates, r.BarrierTime.Seconds(), r.PureUpdates, r.PureTime.Seconds())
	}
	return w.Flush()
}

func printTopK(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.TopKAgreementStudy(cfg, []int{10, 100, 1000})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== Extension: top-K rank agreement, DE vs 16NE PageRank ===")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ε\tK\tagreement")
	for _, r := range rows {
		fmt.Fprintf(w, "%g\t%d\t%.3f\n", r.Epsilon, r.K, r.Agreement)
	}
	return w.Flush()
}
