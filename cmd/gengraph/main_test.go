package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/graph"
	"ndgraph/internal/loader"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "er", "pa", "banded", "grid", "ring", "chain", "star", "complete", "dataset"} {
		g, err := generate(kind, 64, 256, 4, 8, 8, 8, false, "web-google", 2000, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := generate("zap", 1, 1, 1, 1, 1, 1, false, "", 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunStatsOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "ring", "-n", "12"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vertices:     12") || !strings.Contains(out, "edges:        12") {
		t.Fatalf("stats output:\n%s", out)
	}
}

func TestRunWriteAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	var sb strings.Builder
	if err := run([]string{"-kind", "grid", "-rows", "5", "-cols", "5", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Fatalf("output:\n%s", sb.String())
	}
	g, err := loader.LoadFile(path, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 25 {
		t.Fatalf("round trip N = %d", g.N())
	}
	// Inspect mode.
	sb.Reset()
	if err := run([]string{"-i", path, "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vertices:     25") {
		t.Fatalf("inspect output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "zap"}, &sb); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-i", "/nonexistent/file.txt"}, &sb); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-kind", "dataset", "-dataset", "nope"}, &sb); err == nil {
		t.Error("unknown dataset accepted")
	}
}
