// Command gengraph generates synthetic graphs and writes them to disk, or
// inspects existing graph files.
//
// Examples:
//
//	gengraph -kind rmat -n 100000 -m 800000 -seed 1 -o web.txt
//	gengraph -kind dataset -dataset web-google -scale 50 -o google.bin
//	gengraph -kind grid -rows 100 -cols 100 -o grid.txt
//	gengraph -stats -i web.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/loader"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	kind := fs.String("kind", "rmat", "generator: rmat, er, pa, banded, grid, ring, chain, star, complete, dataset")
	n := fs.Int("n", 1000, "vertices")
	m := fs.Int("m", 8000, "edges (rmat, er)")
	k := fs.Int("k", 8, "per-vertex parameter (pa out-degree, banded degree)")
	bw := fs.Int("bw", 64, "bandwidth (banded)")
	rows := fs.Int("rows", 32, "grid rows")
	cols := fs.Int("cols", 32, "grid cols")
	bidir := fs.Bool("bidir", false, "bidirectional grid edges")
	dataset := fs.String("dataset", "web-google", "paper dataset analog (with -kind dataset)")
	scale := fs.Int("scale", 100, "dataset scale divisor")
	seed := fs.Uint64("seed", 42, "random seed")
	outPath := fs.String("o", "", "output path (.bin for binary; default: stats to stdout)")
	in := fs.String("i", "", "inspect an existing graph file instead of generating")
	stats := fs.Bool("stats", false, "print statistics for the generated/loaded graph")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	if *in != "" {
		g, err = loader.LoadFile(*in, graph.Options{})
	} else {
		g, err = generate(*kind, *n, *m, *k, *bw, *rows, *cols, *bidir, *dataset, *scale, *seed)
	}
	if err != nil {
		return err
	}

	if *outPath != "" {
		if err := loader.SaveFile(*outPath, g); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d vertices, %d edges\n", *outPath, g.N(), g.M())
	}
	if *stats || *outPath == "" {
		printStats(out, g)
	}
	return nil
}

func generate(kind string, n, m, k, bw, rows, cols int, bidir bool, dataset string, scale int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "rmat":
		return gen.RMAT(n, m, gen.DefaultRMAT, seed)
	case "er":
		return gen.ErdosRenyi(n, m, seed)
	case "pa":
		return gen.PreferentialAttachment(n, k, seed)
	case "banded":
		return gen.Banded(n, k, bw, seed)
	case "grid":
		return gen.Grid(rows, cols, bidir, seed)
	case "ring":
		return gen.Ring(n)
	case "chain":
		return gen.Chain(n)
	case "star":
		return gen.Star(n)
	case "complete":
		return gen.Complete(n)
	case "dataset":
		d, err := gen.ParseDataset(dataset)
		if err != nil {
			return nil, err
		}
		return gen.Synthesize(d, scale, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func printStats(out io.Writer, g *graph.Graph) {
	st := g.ComputeStats()
	fmt.Fprintf(out, "vertices:     %d\n", st.Vertices)
	fmt.Fprintf(out, "edges:        %d\n", st.Edges)
	fmt.Fprintf(out, "avg degree:   %.2f\n", st.AvgDeg)
	fmt.Fprintf(out, "max in-deg:   %d\n", st.MaxInDeg)
	fmt.Fprintf(out, "max out-deg:  %d\n", st.MaxOutDeg)
	fmt.Fprintf(out, "degree skew:  %.2f\n", st.DegreeSkew)
	fmt.Fprintf(out, "self loops:   %d\n", st.SelfLoops)
	fmt.Fprintf(out, "zero in-deg:  %d\n", st.ZeroInDeg)
	fmt.Fprintf(out, "zero out-deg: %d\n", st.ZeroOutDeg)
	fmt.Fprintf(out, "isolated:     %d\n", st.Isolated)
	fmt.Fprintf(out, "reciprocity:  %.3f\n", st.Reciprocity)
}
