// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_*.json format consumed by the repository's
// performance tracking (see scripts/bench.sh):
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_PR2.json
//	benchjson -validate BENCH_PR2.json
//
// The emitted document follows the "ndgraph-bench/v1" schema: a header
// identifying the machine (goos, goarch, cpu) and one entry per benchmark
// result line carrying the iteration count, the standard ns/op, B/op and
// allocs/op columns, and any custom b.ReportMetric units (e.g. updates/s)
// in a free-form metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema identifies the output document format.
const Schema = "ndgraph-bench/v1"

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full BENCH_*.json payload.
type Document struct {
	Schema     string      `json:"schema"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects the benchmark lines.
// Non-benchmark lines (PASS, ok, test logs) are ignored, so the full
// test-run transcript can be piped in unfiltered.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Schema: Schema}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine decodes one result line:
//
//	BenchmarkName-8  100  12345 ns/op  24 B/op  2 allocs/op  1e6 updates/s
//
// The fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// Validate checks that data is a well-formed non-empty v1 document.
func Validate(data []byte) error {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", doc.Schema, Schema)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("document contains no benchmarks")
	}
	for i, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark %d has no name", i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("benchmark %q has iterations %d", b.Name, b.Iterations)
		}
	}
	return nil
}

func main() {
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	validate := flag.String("validate", "", "validate an existing BENCH_*.json file and exit")
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatal(err)
		}
		if err := Validate(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *validate, err))
		}
		return
	}

	doc, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
