package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ndgraph
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHotPathIteration/det-8         	     100	    105520 ns/op	  43985370 updates/s	     392 B/op	       5 allocs/op
BenchmarkHotPathIteration/sync/P4-8     	      50	    173081 ns/op	  26644647 updates/s	   58648 B/op	      15 allocs/op
PASS
ok  	ndgraph	0.144s
pkg: ndgraph/internal/sched
BenchmarkPoolBlocks-8   	  123456	      9876 ns/op	       0 B/op	       0 allocs/op
some unrelated log line
FAIL
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header = %q/%q/%q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}

	det := doc.Benchmarks[0]
	if det.Name != "BenchmarkHotPathIteration/det-8" || det.Pkg != "ndgraph" {
		t.Fatalf("first benchmark = %q pkg %q", det.Name, det.Pkg)
	}
	if det.Iterations != 100 || det.NsPerOp != 105520 || det.BPerOp != 392 || det.AllocsPerOp != 5 {
		t.Fatalf("first benchmark fields = %+v", det)
	}
	if det.Metrics["updates/s"] != 43985370 {
		t.Fatalf("custom metric = %v", det.Metrics)
	}

	pool := doc.Benchmarks[2]
	if pool.Pkg != "ndgraph/internal/sched" {
		t.Fatalf("pkg tracking across blocks broken: %q", pool.Pkg)
	}
	if pool.BPerOp != 0 || pool.AllocsPerOp != 0 || pool.Metrics != nil {
		t.Fatalf("zero-alloc benchmark fields = %+v", pool)
	}
}

func TestParsedDocumentValidates(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("round-tripped document rejected: %v", err)
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"wrong schema":   `{"schema":"other/v9","benchmarks":[{"name":"B","iterations":1}]}`,
		"no benchmarks":  `{"schema":"` + Schema + `","benchmarks":[]}`,
		"unnamed entry":  `{"schema":"` + Schema + `","benchmarks":[{"iterations":1}]}`,
		"zero iteration": `{"schema":"` + Schema + `","benchmarks":[{"name":"B","iterations":0}]}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
