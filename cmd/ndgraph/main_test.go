package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/loader"
	"ndgraph/internal/trace"
)

func TestRunDatasetWCC(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algo", "wcc", "-dataset", "web-google", "-scale", "500",
		"-sched", "nondet", "-mode", "atomic", "-threads", "2", "-top", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"algorithm: wcc", "converged: true", "components:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunProbe(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algo", "coloring", "-dataset", "web-google", "-scale", "500", "-probe"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NOT ELIGIBLE") {
		t.Fatalf("probe output missing verdict:\n%s", sb.String())
	}
}

func TestRunAdvise(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algo", "wcc", "-dataset", "web-google", "-scale", "500", "-advise"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"static profile: WW", "[source: static]", "[source: probe]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("advise output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "disagree") {
		t.Fatalf("wcc verdicts should agree:\n%s", out)
	}

	sb.Reset()
	if err := run([]string{"-algo", "coloring", "-dataset", "web-google", "-scale", "500", "-advise"}, &sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "NOT ELIGIBLE"); got != 2 {
		t.Fatalf("coloring should be rejected by both sources, got %d rejections:\n%s", got, sb.String())
	}
}

func TestRunPageRankTopAndCensus(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algo", "pagerank", "-dataset", "web-google", "-scale", "500",
		"-sched", "det", "-eps", "1e-2", "-top", "5", "-census"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "observed conflicts") || !strings.Contains(out, "rank") {
		t.Fatalf("output missing sections:\n%s", out)
	}
}

func TestRunGraphFile(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ring.txt")
	if err := loader.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-algo", "bfs", "-graph", path, "-source", "0", "-top", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "16 vertices") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunAllAlgorithmsSmoke(t *testing.T) {
	for _, algo := range []string{"pagerank", "wcc", "sssp", "bfs", "spmv", "kcore", "labelprop", "coloring"} {
		var sb strings.Builder
		err := run([]string{"-algo", algo, "-dataset", "web-google", "-scale", "1000", "-sched", "det"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(sb.String(), "converged: true") {
			t.Fatalf("%s did not converge:\n%s", algo, sb.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no input":          {"-algo", "wcc"},
		"both inputs":       {"-algo", "wcc", "-graph", "x", "-dataset", "web-google"},
		"bad algo":          {"-algo", "zap", "-dataset", "web-google", "-scale", "1000"},
		"bad dataset":       {"-algo", "wcc", "-dataset", "nope"},
		"bad sched":         {"-algo", "wcc", "-dataset", "web-google", "-scale", "1000", "-sched", "zap"},
		"bad mode":          {"-algo", "wcc", "-dataset", "web-google", "-scale", "1000", "-mode", "zap"},
		"source range":      {"-algo", "bfs", "-dataset", "web-google", "-scale", "1000", "-source", "99999999"},
		"parallel seq mode": {"-algo", "wcc", "-dataset", "web-google", "-scale", "1000", "-sched", "nondet", "-mode", "seq", "-threads", "4"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunTraceAndDynamicDispatch(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ndt")
	csvPath := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	err := run([]string{"-algo", "wcc", "-dataset", "web-google", "-scale", "1000",
		"-sched", "nondet", "-mode", "atomic", "-threads", "2",
		"-dispatch", "dynamic", "-trace", tracePath, "-trace-csv", csvPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trace:") {
		t.Fatalf("output missing trace notice:\n%s", sb.String())
	}
	// -trace writes the NDTR binary container; the payload must be loadable
	// and carry the provenance needed by `ndtrace replay`.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatalf("reading NDTR trace: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("NDTR trace has no events")
	}
	for _, key := range []string{"algo", "dataset", "scale", "seed", "sched", "mode"} {
		if _, ok := tr.Meta.KV[key]; !ok {
			t.Errorf("NDTR trace meta missing provenance key %q", key)
		}
	}
	// -trace-csv keeps the human-readable flat form.
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "seq,iteration,worker,vertex,writes") {
		t.Fatalf("trace CSV header missing:\n%.100s", data)
	}
}

func TestRunBadDispatch(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algo", "wcc", "-dataset", "web-google", "-scale", "1000",
		"-dispatch", "guided"}, &sb)
	if err == nil {
		t.Fatal("unknown dispatch accepted")
	}
}
