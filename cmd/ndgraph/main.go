// Command ndgraph runs one graph algorithm on one graph under a chosen
// scheduler, atomicity mode, and thread count, and reports the run
// statistics — the CLI face of the library.
//
// Examples:
//
//	ndgraph -algo wcc -dataset web-google -scale 100 \
//	        -sched nondet -mode arch -threads 8
//	ndgraph -algo pagerank -graph my-edges.txt -eps 1e-4 -sched det -top 10
//	ndgraph -algo sssp -dataset cage15 -scale 200 -probe
//	ndgraph -algo wcc -dataset web-google -scale 100 -advise
//
// Input is either -graph FILE (edge list, .bin, or .mtx) or -dataset NAME
// with -scale (a synthetic analog of one of the paper's graphs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/loader"
	"ndgraph/internal/metrics"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndgraph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ndgraph", flag.ContinueOnError)
	algoName := fs.String("algo", "wcc", "algorithm: pagerank, wcc, sssp, bfs, spmv, kcore, labelprop, coloring")
	graphFile := fs.String("graph", "", "graph file (edge list, .bin, or .mtx)")
	dataset := fs.String("dataset", "", "synthetic dataset analog: web-berkstan, web-google, soc-livejournal1, cage15")
	scale := fs.Int("scale", 100, "dataset scale divisor (with -dataset)")
	seed := fs.Uint64("seed", 42, "random seed (graph synthesis, SSSP weights)")
	schedName := fs.String("sched", "det", "scheduler: det, nondet, sync, chromatic, dig")
	modeName := fs.String("mode", "atomic", "edge atomicity: seq, lock, arch, atomic")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	eps := fs.Float64("eps", 1e-3, "convergence threshold ε (pagerank, spmv)")
	source := fs.Int("source", -1, "traversal source vertex (-1 = highest out-degree)")
	top := fs.Int("top", 0, "print the top-K vertices by result value")
	probe := fs.Bool("probe", false, "probe conflicts and print the eligibility verdict instead of timing")
	advise := fs.Bool("advise", false, "print the static (ndlint) and probe-based eligibility verdicts side by side")
	amplify := fs.Bool("amplify", false, "inject scheduling yields to widen race windows")
	census := fs.Bool("census", false, "count observed conflicts during the run")
	dispatch := fs.String("dispatch", "static", "intra-iteration dispatch: static (Fig. 1 blocks) or dynamic (chunked)")
	tracePath := fs.String("trace", "", "record the execution path + commit log as an NDTR binary trace to this file (inspect with ndtrace)")
	traceCSV := fs.String("trace-csv", "", "write the execution path as CSV to this file")
	telemetry := fs.String("telemetry", "", "write per-iteration telemetry as JSON lines to this file")
	telemetryAddr := fs.String("telemetry-addr", "", "serve live /metrics, /events, and /debug/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadInput(*graphFile, *dataset, *scale, *seed)
	if err != nil {
		return err
	}
	st := g.ComputeStats()
	fmt.Fprintf(out, "graph: %d vertices, %d edges (max in %d, max out %d)\n",
		st.Vertices, st.Edges, st.MaxInDeg, st.MaxOutDeg)

	src := uint32(0)
	if *source >= 0 {
		if *source >= g.N() {
			return fmt.Errorf("source %d out of range (|V| = %d)", *source, g.N())
		}
		src = uint32(*source)
	} else {
		src = pickSource(g)
	}

	a, err := makeAlgorithm(*algoName, g, src, *eps, *seed)
	if err != nil {
		return err
	}

	if *advise {
		return runAdvise(out, a, g)
	}
	if *probe {
		profile, verdict, err := algorithms.Probe(a, g)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nalgorithm: %s\npotential conflicts: %d read-write edge(s), %d write-write edge(s)\n%s\n",
			a.Name(), profile.RW, profile.WW, verdict)
		return nil
	}

	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		return err
	}
	mode, err := edgedata.ParseMode(*modeName)
	if err != nil {
		return err
	}
	disp, ok := sched.ParseDispatch(*dispatch)
	if !ok {
		return fmt.Errorf("unknown dispatch policy %q", *dispatch)
	}
	var rec *trace.Recorder
	if *tracePath != "" || *traceCSV != "" {
		rec = trace.NewRecorder(1 << 22)
		if *tracePath != "" {
			// The binary trace carries the commit log so ndtrace replay can
			// force the recorded racy outcomes.
			rec.EnableCommits(1<<23, g.M())
		}
	}
	var observer *obs.Observer
	if *telemetry != "" || *telemetryAddr != "" {
		observer = obs.New(obs.Options{SampleConflicts: *census})
		if *telemetry != "" {
			f, err := os.Create(*telemetry)
			if err != nil {
				return err
			}
			observer.AttachSink(obs.NewJSONLSink(f))
		}
		if *telemetryAddr != "" {
			srv, err := obs.Serve(*telemetryAddr, observer)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(out, "telemetry: serving /metrics and /debug/pprof on %s\n", srv.Addr())
		}
		observer.PublishExpvar("ndgraph")
		defer observer.Close()
	}
	eng, res, err := algorithms.Run(a, g, core.Options{
		Scheduler:    kind,
		Threads:      *threads,
		Mode:         mode,
		Amplify:      *amplify,
		EnableCensus: *census,
		Dispatch:     disp,
		Trace:        rec,
		Observer:     observer,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nalgorithm: %s  scheduler: %s  mode: %s  threads: %d\n",
		a.Name(), kind, mode, eng.Options().Threads)
	fmt.Fprintf(out, "converged: %v  iterations: %d  updates: %d  time: %v\n",
		res.Converged, res.Iterations, res.Updates, res.Duration)
	if *census {
		fmt.Fprintf(out, "observed conflicts: %d read-write, %d write-write edge(s)\n",
			res.RWConflicts, res.WWConflicts)
	}
	if *top > 0 {
		printTop(out, eng, a, *top)
	}
	if rec != nil {
		snap := rec.Snapshot(trace.Meta{
			Vertices: g.N(), Edges: g.M(),
			KV: map[string]string{
				"algo":     *algoName,
				"graph":    *graphFile,
				"dataset":  *dataset,
				"scale":    fmt.Sprint(*scale),
				"seed":     fmt.Sprint(*seed),
				"sched":    kind.String(),
				"mode":     mode.String(),
				"threads":  fmt.Sprint(eng.Options().Threads),
				"eps":      fmt.Sprint(*eps),
				"source":   fmt.Sprint(src),
				"amplify":  fmt.Sprint(*amplify),
				"dispatch": *dispatch,
			},
		})
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			if err := trace.WriteBinary(f, snap); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace: %d events, %d commits written to %s\n",
				len(snap.Events), len(snap.Commits), *tracePath)
		}
		if *traceCSV != "" {
			f, err := os.Create(*traceCSV)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteCSV(f); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace: %d events written to %s\n", rec.Len(), *traceCSV)
		}
		observer.SetTraceSource(func(w io.Writer) error { return trace.WriteBinary(w, snap) })
	}
	return nil
}

func loadInput(file, dataset string, scale int, seed uint64) (*graph.Graph, error) {
	switch {
	case file != "" && dataset != "":
		return nil, fmt.Errorf("pass either -graph or -dataset, not both")
	case file != "":
		return loader.LoadFile(file, graph.Options{})
	case dataset != "":
		d, err := gen.ParseDataset(dataset)
		if err != nil {
			return nil, err
		}
		return gen.Synthesize(d, scale, seed)
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}

func pickSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// runAdvise prints both eligibility verdicts for a: the static one, from
// the registered worst-case access profile (what ndlint derives from
// source — graph-independent), and the probe one, from an instrumented
// run on g. A static ELIGIBLE holds for every input; a probe ELIGIBLE
// only for inputs whose census the probed graph dominates.
func runAdvise(out io.Writer, a algorithms.Algorithm, g *graph.Graph) error {
	sp, ok := algorithms.StaticProfiles()[a.Name()]
	if !ok {
		return fmt.Errorf("no static profile registered for %q", a.Name())
	}
	staticVerdict := eligibility.AdviseStatic(a.Properties(), sp)
	census, probeVerdict, err := algorithms.Probe(a, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nalgorithm: %s\nstatic profile: %s\nprobe census: %d read-write edge(s), %d write-write edge(s)\n\n%s\n\n%s\n",
		a.Name(), sp, census.RW, census.WW, staticVerdict, probeVerdict)
	if staticVerdict.Eligible != probeVerdict.Eligible {
		fmt.Fprintf(out, "\nnote: the sources disagree — the static worst-case conflict class did not materialize on this graph\n")
	}
	return nil
}

func makeAlgorithm(name string, g *graph.Graph, src uint32, eps float64, seed uint64) (algorithms.Algorithm, error) {
	switch name {
	case "pagerank":
		return algorithms.NewPageRank(eps), nil
	case "wcc":
		return algorithms.NewWCC(), nil
	case "sssp":
		return algorithms.NewSSSP(g, src, seed+1), nil
	case "bfs":
		return algorithms.NewBFS(g, src), nil
	case "spmv":
		return algorithms.NewSpMV(g, eps, 0.5, seed+2), nil
	case "kcore":
		return algorithms.NewKCore(), nil
	case "labelprop":
		return algorithms.NewLabelProp(), nil
	case "coloring":
		return algorithms.NewColoring(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func printTop(out io.Writer, eng *core.Engine, a algorithms.Algorithm, k int) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	defer w.Flush()
	switch alg := a.(type) {
	case *algorithms.PageRank:
		ranks := alg.Ranks(eng)
		order := metrics.RankOrder(ranks)
		fmt.Fprintln(w, "\nrank\tvertex\tscore")
		for i := 0; i < k && i < len(order); i++ {
			fmt.Fprintf(w, "%d\t%d\t%.6f\n", i, order[i], ranks[order[i]])
		}
	case *algorithms.SSSP:
		d := alg.Distances(eng)
		fmt.Fprintln(w, "\nvertex\tdistance")
		for v := 0; v < k && v < len(d); v++ {
			fmt.Fprintf(w, "%d\t%g\n", v, d[v])
		}
	case *algorithms.WCC:
		labels := alg.Components(eng)
		fmt.Fprintf(w, "\ncomponents: %d\n", algorithms.NumComponents(labels))
		fmt.Fprintln(w, "vertex\tcomponent")
		for v := 0; v < k && v < len(labels); v++ {
			fmt.Fprintf(w, "%d\t%d\n", v, labels[v])
		}
	default:
		fmt.Fprintln(w, "\n(-top not supported for this algorithm)")
	}
}
