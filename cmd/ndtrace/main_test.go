package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// recordFixture records one WCC run with the same provenance KV the ndgraph
// CLI writes, and saves it as an NDTR file.
func recordFixture(t *testing.T, dir, name string, kind sched.Kind, threads int) string {
	t.Helper()
	g, err := gen.Synthesize(gen.WebGoogle, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 20)
	rec.EnableCommits(1<<21, g.M())
	mode := edgedata.ModeAtomic
	a := algorithms.NewWCC()
	_, res, err := algorithms.Run(a, g, core.Options{
		Scheduler: kind, Threads: threads, Mode: mode, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fixture run did not converge")
	}
	snap := rec.Snapshot(trace.Meta{
		Vertices: g.N(), Edges: g.M(),
		KV: map[string]string{
			"algo":    "wcc",
			"dataset": "web-google",
			"scale":   "1000",
			"seed":    "42",
			"sched":   kind.String(),
			"mode":    mode.String(),
			"threads": fmt.Sprint(threads),
			"eps":     "0.001",
			"source":  "0",
		},
	})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, snap); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("ndtrace %v: %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestStatsAndCSV(t *testing.T) {
	dir := t.TempDir()
	p := recordFixture(t, dir, "det.ndt", sched.Deterministic, 1)
	out := runCLI(t, "stats", p)
	for _, want := range []string{"algo: wcc", "dataset: web-google", "events:", "commits:", "final-state digest:", "iterations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	csvOut := runCLI(t, "csv", p)
	if !strings.HasPrefix(csvOut, "seq,iteration,worker,vertex,writes,value\n") {
		t.Errorf("csv output lacks header:\n%.120s", csvOut)
	}
}

func TestDiffIdenticalDeterministicRuns(t *testing.T) {
	dir := t.TempDir()
	a := recordFixture(t, dir, "a.ndt", sched.Deterministic, 1)
	b := recordFixture(t, dir, "b.ndt", sched.Deterministic, 1)
	out := runCLI(t, "diff", a, b)
	if !strings.Contains(out, "identical") {
		t.Errorf("deterministic runs should diff identical:\n%s", out)
	}
}

func TestReplayRecordedRun(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		kind    sched.Kind
		threads int
	}{
		{"det.ndt", sched.Deterministic, 1},
		{"nondet.ndt", sched.Nondeterministic, 4},
	} {
		p := recordFixture(t, dir, tc.name, tc.kind, tc.threads)
		out := runCLI(t, "replay", p)
		if !strings.Contains(out, "byte-identical") {
			t.Errorf("%s: replay did not reach the recorded fixed point:\n%s", tc.name, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"diff", "only-one"}, &sb); err == nil {
		t.Error("diff with one file accepted")
	}
	if err := run([]string{"stats", "/nonexistent.ndt"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}
