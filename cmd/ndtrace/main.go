// Command ndtrace inspects, diffs, and replays NDTR execution-path traces
// recorded by ndgraph -trace (or any engine with an attached
// trace.Recorder).
//
//	ndtrace stats run.ndt             # provenance + per-iteration profile
//	ndtrace csv run.ndt               # dump the execution path as CSV
//	ndtrace diff a.ndt b.ndt          # first divergence, frontier, d-histogram
//	ndtrace replay run.ndt            # force the recorded outcomes, assert
//	                                  # the byte-identical fixed point
//
// diff answers "where did two runs of the same nondeterministic
// configuration part ways": the first divergent update, the per-iteration
// divergence frontier, and a propagation-distance histogram classifying
// every diverged update by the paper's happens-before (≺), happens-after
// (≻), and concurrent (∥) relations. replay is Lemmas 1–2 made executable:
// it rebuilds the recorded run's graph and algorithm from the trace's
// provenance, re-executes the path forcing every recorded racy commit, and
// asserts the final state digest matches the recorded one.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/loader"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndtrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: ndtrace stats FILE | csv FILE | diff FILE_A FILE_B | replay FILE")
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return usage()
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "stats":
		if len(rest) != 1 {
			return usage()
		}
		return stats(rest[0], out)
	case "csv":
		if len(rest) != 1 {
			return usage()
		}
		return csv(rest[0], out)
	case "diff":
		if len(rest) != 2 {
			return usage()
		}
		return diff(rest[0], rest[1], out)
	case "replay":
		if len(rest) != 1 {
			return usage()
		}
		return replay(rest[0], out)
	default:
		return usage()
	}
}

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := trace.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func stats(path string, out io.Writer) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %s\n", path)
	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", t.Meta.Vertices, t.Meta.Edges)
	if len(t.Meta.KV) > 0 {
		keys := make([]string, 0, len(t.Meta.KV))
		for k := range t.Meta.KV {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "  %s: %s\n", k, t.Meta.KV[k])
		}
	}
	fmt.Fprintf(out, "events: %d of %d retained\n", len(t.Events), t.TotalEvents)
	fmt.Fprintf(out, "commits: %d of %d retained\n", len(t.Commits), t.TotalCommits)
	if t.HasDigest {
		fmt.Fprintf(out, "final-state digest: %#016x\n", t.Digest)
	} else {
		fmt.Fprintln(out, "final-state digest: (absent)")
	}
	if t.Truncated() {
		fmt.Fprintln(out, "WARNING: trace is truncated; it will diff but not replay")
	}

	// Per-iteration profile: updates, edge writes, distinct workers.
	type iterStat struct {
		updates, writes int64
		workers         map[int32]struct{}
	}
	iters := map[int32]*iterStat{}
	var order []int32
	for i := range t.Events {
		ev := &t.Events[i]
		s := iters[ev.Iteration]
		if s == nil {
			s = &iterStat{workers: map[int32]struct{}{}}
			iters[ev.Iteration] = s
			order = append(order, ev.Iteration)
		}
		s.updates++
		s.writes += int64(ev.Writes)
		s.workers[ev.Worker] = struct{}{}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Fprintf(out, "iterations: %d\n", len(order))
	fmt.Fprintln(out, "iter\tupdates\twrites\tworkers")
	for _, it := range order {
		s := iters[it]
		fmt.Fprintf(out, "%d\t%d\t%d\t%d\n", it, s.updates, s.writes, len(s.workers))
	}
	return nil
}

func csv(path string, out io.Writer) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	return t.WriteCSV(out)
}

func diff(pathA, pathB string, out io.Writer) error {
	a, err := load(pathA)
	if err != nil {
		return err
	}
	b, err := load(pathB)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "diff %s %s\n", pathA, pathB)
	return trace.Diff(a, b).WriteReport(out)
}

func replay(path string, out io.Writer) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	g, a, err := rebuild(t.Meta)
	if err != nil {
		return fmt.Errorf("cannot rebuild the recorded run: %w", err)
	}
	e, err := core.NewEngine(g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		return err
	}
	a.Setup(e)
	rep, err := e.ReplayTrace(t, a.Update)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d updates, %d forced commits\n", rep.Updates, rep.Commits)
	fmt.Fprintf(out, "recomputation: %d writes matched, %d mismatched (racy reads), %d missing, %d extra, %d orphan commits\n",
		rep.WriteMatches, rep.WriteMismatches, rep.MissingWrites, rep.ExtraWrites, rep.OrphanCommits)
	fmt.Fprintf(out, "vertex values: %d matched, %d forced\n", rep.ValueMatches, rep.ValueMismatches)
	fmt.Fprintf(out, "fixed point: byte-identical (digest %#016x)\n", rep.Digest)
	return nil
}

// rebuild reconstructs the recorded run's graph and algorithm from the
// trace provenance written by ndgraph -trace.
func rebuild(m trace.Meta) (*graph.Graph, algorithms.Algorithm, error) {
	kv := func(k string) string { return m.KV[k] }
	var g *graph.Graph
	var err error
	switch {
	case kv("graph") != "":
		g, err = loader.LoadFile(kv("graph"), graph.Options{})
	case kv("dataset") != "":
		var d gen.Dataset
		d, err = gen.ParseDataset(kv("dataset"))
		if err == nil {
			scale := atoiDefault(kv("scale"), 100)
			seed := atouDefault(kv("seed"), 42)
			g, err = gen.Synthesize(d, scale, seed)
		}
	default:
		return nil, nil, fmt.Errorf("trace has no graph/dataset provenance")
	}
	if err != nil {
		return nil, nil, err
	}
	if m.Vertices != 0 && m.Vertices != g.N() {
		return nil, nil, fmt.Errorf("rebuilt graph has %d vertices, trace recorded %d", g.N(), m.Vertices)
	}

	seed := atouDefault(kv("seed"), 42)
	eps := atofDefault(kv("eps"), 1e-3)
	src := uint32(atoiDefault(kv("source"), 0))
	var a algorithms.Algorithm
	switch algo := kv("algo"); algo {
	case "pagerank":
		a = algorithms.NewPageRank(eps)
	case "wcc":
		a = algorithms.NewWCC()
	case "sssp":
		a = algorithms.NewSSSP(g, src, seed+1)
	case "bfs":
		a = algorithms.NewBFS(g, src)
	case "spmv":
		a = algorithms.NewSpMV(g, eps, 0.5, seed+2)
	case "kcore":
		a = algorithms.NewKCore()
	case "labelprop":
		a = algorithms.NewLabelProp()
	case "coloring":
		a = algorithms.NewColoring()
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q in trace provenance", algo)
	}
	return g, a, nil
}

func atoiDefault(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func atouDefault(s string, def uint64) uint64 {
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v
	}
	return def
}

func atofDefault(s string, def float64) float64 {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return def
}
