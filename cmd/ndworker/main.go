// Command ndworker is a netdist worker process. It listens on an
// ephemeral loopback port, announces the address on stdout as
// "LISTEN <addr>", and then serves the coordinator until told to shut
// down (or killed). All configuration — graph, algorithm, partition,
// peers — arrives over the wire in the coordinator's init frame, so the
// binary takes no flags.
package main

import (
	"context"
	"fmt"
	"net"
	"os"

	"ndgraph/internal/netdist"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndworker:", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if err := netdist.RunWorker(context.Background(), ln); err != nil {
		fmt.Fprintln(os.Stderr, "ndworker:", err)
		os.Exit(1)
	}
}
