package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The tests exercise the built binary through both entry points: the
// standalone package-pattern mode and the real `go vet -vettool`
// protocol, against this repository (must be clean) and against a
// scratch module with planted violations (must fail).

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ndlint-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "ndlint")
	cmd := exec.Command("go", "build", "-o", binPath, ".")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building ndlint:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

func runIn(dir string, name string, args ...string) (string, int) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		code = -1
	}
	return string(out), code
}

func TestVersionAndFlagsProtocol(t *testing.T) {
	out, code := runIn(".", binPath, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, out)
	}
	// cmd/go requires `<name> version <x>` with x != "devel" to build a
	// stable tool ID.
	if !regexp.MustCompile(`^ndlint version v[0-9][^\s]*\n$`).MatchString(out) {
		t.Errorf("-V=full output %q does not satisfy the vettool contract", out)
	}

	out, code = runIn(".", binPath, "-flags")
	if code != 0 {
		t.Fatalf("-flags exited %d: %s", code, out)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	want := map[string]bool{"scopecheck": false, "conflictclass": false, "determinism": false, "atomicity": false}
	for _, f := range flags {
		if !f.Bool {
			t.Errorf("flag %s not declared boolean", f.Name)
		}
		delete(want, f.Name)
	}
	if len(want) != 0 {
		t.Errorf("flags output missing analyzers: %v", want)
	}
}

func TestRepoIsCleanUnderGoVet(t *testing.T) {
	out, code := runIn(repoRoot(t), "go", "vet", "-vettool="+binPath, "./...")
	if code != 0 {
		t.Errorf("go vet -vettool=ndlint ./... exited %d:\n%s", code, out)
	}
}

func TestRepoIsCleanStandalone(t *testing.T) {
	out, code := runIn(repoRoot(t), binPath, "./...")
	if code != 0 {
		t.Errorf("ndlint ./... exited %d:\n%s", code, out)
	}
}

// scratchModule writes a module with one update function violating
// scopecheck (package-level counter) and determinism (wall clock), using
// a copy of the fixture core package for the VertexView interface.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	coreSrc, err := os.ReadFile(filepath.Join(repoRoot(t), "internal", "analysis", "testdata", "src", "core", "core.go"))
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod":       "module scratch\n\ngo 1.22\n",
		"core/core.go": string(coreSrc),
		"bad.go": `package scratch

import (
	"time"

	"scratch/core"
)

var hits int

func Update(ctx core.VertexView) {
	hits++
	if time.Now().UnixNano()%2 == 0 {
		ctx.SetVertex(1)
	}
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestGoVetFlagsViolations(t *testing.T) {
	dir := scratchModule(t)
	out, code := runIn(dir, "go", "vet", "-vettool="+binPath, "./...")
	if code == 0 {
		t.Fatalf("go vet on planted violations exited 0:\n%s", out)
	}
	for _, frag := range []string{"[scopecheck]", `package-level variable "hits"`, "[determinism]", "time.Now"} {
		if !strings.Contains(out, frag) {
			t.Errorf("go vet output missing %q:\n%s", frag, out)
		}
	}
}

func TestStandaloneFlagsViolationsAndPassSelection(t *testing.T) {
	dir := scratchModule(t)
	out, code := runIn(dir, binPath, "./...")
	if code != 2 {
		t.Fatalf("ndlint on planted violations exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "[scopecheck]") || !strings.Contains(out, "[determinism]") {
		t.Errorf("expected both passes to fire:\n%s", out)
	}

	// Restricting to one pass must silence the other.
	out, code = runIn(dir, binPath, "-determinism", "./...")
	if code != 2 {
		t.Fatalf("ndlint -determinism exited %d, want 2:\n%s", code, out)
	}
	if strings.Contains(out, "[scopecheck]") {
		t.Errorf("-determinism still ran scopecheck:\n%s", out)
	}
	if !strings.Contains(out, "[determinism]") {
		t.Errorf("-determinism did not report the wall-clock read:\n%s", out)
	}
}
