// Command ndlint statically answers the paper's title question for the
// update functions in a Go package tree: is your graph algorithm eligible
// for nondeterministic execution? It runs the four internal/analysis
// passes (scopecheck, conflictclass, determinism, atomicity) in one of
// two modes:
//
// Standalone, over go-list package patterns:
//
//	ndlint ./...
//	ndlint -conflictclass ./internal/algorithms
//
// As a `go vet` backend, speaking the vet-tool protocol (-V=full, -flags,
// and per-package vet.cfg invocations):
//
//	go build -o ndlint ./cmd/ndlint
//	go vet -vettool=$(pwd)/ndlint ./...
//
// With no pass flags every pass runs; naming one or more passes restricts
// the run to those. Diagnostics go to stderr as file:line:col: [pass]
// text; the exit status is 2 if any diagnostic fired, 1 on driver errors,
// 0 otherwise. Findings are suppressed per line with
// //ndlint:ignore <pass> <reason>.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ndgraph/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ndlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ndlint [-<pass>]... [package pattern... | vet.cfg]")
		fs.PrintDefaults()
	}
	vFlag := fs.String("V", "", "print version and exit (used by go vet: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags as JSON and exit (used by go vet)")
	enabled := map[string]*bool{}
	for _, a := range analysis.Default() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run the "+a.Name+" pass (default: all passes)")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// The go command interrogates the tool twice before any package:
	// `-V=full` for a stable tool identity (it feeds the build cache, so
	// it must not look like a devel build) and `-flags` for the flag
	// schema it may forward.
	if *vFlag != "" {
		fmt.Printf("ndlint version v0.1.0-%s\n", selfHash())
		return 0
	}
	if *flagsFlag {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analysis.Default() {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "run the " + a.Name + " pass"})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.Default() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		analyzers = analysis.Default()
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetMode(rest[0], analyzers)
	}
	return standalone(rest, analyzers)
}

// selfHash returns a short content hash of the running executable, so
// go vet's action cache invalidates when the tool is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// standalone loads package patterns from the current directory's module
// and analyzes them.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	status := 0
	for _, pkg := range pkgs {
		diags, _, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			status = 2
		}
	}
	return status
}

// vetConfig is the JSON payload the go command writes next to each
// package it vets (see cmd/go/internal/work.vetConfig). Fields this tool
// does not consume are omitted; unknown JSON keys are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes the single package described by a vet.cfg file.
func vetMode(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the facts file to exist afterwards even
	// though ndlint computes no cross-package facts.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return false
		}
		return true
	}

	// Dependency packages are vetted only for facts; skip the real work.
	if cfg.VetxOnly {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.TypeCheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}

	diags, _, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return 2
	}
	return 0
}
