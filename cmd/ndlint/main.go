// Command ndlint statically answers the paper's title question for the
// update functions in a Go package tree: is your graph algorithm eligible
// for nondeterministic execution? It runs the seven internal/analysis
// passes (scopecheck, conflictclass, determinism, atomicity, and the
// semantic trio propcheck, kernelcheck, admitcheck) in one of two modes:
//
// Standalone, over go-list package patterns:
//
//	ndlint ./...
//	ndlint -conflictclass ./internal/algorithms
//
// As a `go vet` backend, speaking the vet-tool protocol (-V=full, -flags,
// and per-package vet.cfg invocations):
//
//	go build -o ndlint ./cmd/ndlint
//	go vet -vettool=$(pwd)/ndlint ./...
//
// With no pass flags every pass runs; naming one or more passes restricts
// the run to those. Diagnostics go to stderr as file:line:col: [pass]
// text; -json switches to one JSON object per line (pass, pos, message,
// counter-example) for CI annotation tooling. The exit status is 2 if any
// diagnostic fired, 1 on driver errors, 0 otherwise. Findings are
// suppressed per line with //ndlint:ignore <pass> <reason>.
//
// Certificate modes (standalone only):
//
//	ndlint -cert ./internal/algorithms            # emit eligibility certificates as JSON
//	ndlint -certcheck certs.json ./internal/algorithms  # detect stale/tampered certificates
//
// -cert refuses to emit when any diagnostic fires (a refuted declaration
// must not certify); -certcheck re-analyzes the packages and reports
// every certificate whose source hash or facts no longer match.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ndgraph/internal/analysis"
	"ndgraph/internal/eligibility"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ndlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ndlint [-<pass>]... [package pattern... | vet.cfg]")
		fs.PrintDefaults()
	}
	vFlag := fs.String("V", "", "print version and exit (used by go vet: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags as JSON and exit (used by go vet)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON, one object per line")
	certFlag := fs.Bool("cert", false, "emit eligibility certificates for the packages as JSON (standalone only)")
	certCheckFlag := fs.String("certcheck", "", "compare the certificate `file` against fresh analysis and report stale entries (standalone only)")
	enabled := map[string]*bool{}
	for _, a := range analysis.Default() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run the "+a.Name+" pass (default: all passes)")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// The go command interrogates the tool twice before any package:
	// `-V=full` for a stable tool identity (it feeds the build cache, so
	// it must not look like a devel build) and `-flags` for the flag
	// schema it may forward.
	if *vFlag != "" {
		fmt.Printf("ndlint version v0.1.0-%s\n", selfHash())
		return 0
	}
	if *flagsFlag {
		type schemaFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out := []schemaFlag{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON, one object per line"}}
		for _, a := range analysis.Default() {
			out = append(out, schemaFlag{Name: a.Name, Bool: true, Usage: "run the " + a.Name + " pass"})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.Default() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		analyzers = analysis.Default()
	}

	rest := fs.Args()
	if *certFlag {
		return certMode(rest)
	}
	if *certCheckFlag != "" {
		return certCheckMode(*certCheckFlag, rest)
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetMode(rest[0], analyzers, *jsonFlag)
	}
	return standalone(rest, analyzers, *jsonFlag)
}

// printDiag renders one diagnostic in the selected format.
func printDiag(d analysis.Diagnostic, asJSON bool) {
	if !asJSON {
		fmt.Fprintln(os.Stderr, d)
		return
	}
	out := struct {
		Pass    string `json:"pass"`
		Pos     string `json:"pos"`
		Message string `json:"message"`
		Counter string `json:"counter,omitempty"`
	}{Pass: d.Category, Pos: d.Pos.String(), Message: d.Message, Counter: d.Counter}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return
	}
	fmt.Fprintln(os.Stderr, string(data))
}

// selfHash returns a short content hash of the running executable, so
// go vet's action cache invalidates when the tool is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// standalone loads package patterns from the current directory's module
// and analyzes them.
func standalone(patterns []string, analyzers []*analysis.Analyzer, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	status := 0
	for _, pkg := range pkgs {
		diags, _, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		for _, d := range diags {
			printDiag(d, asJSON)
			status = 2
		}
	}
	return status
}

// certMode emits the eligibility certificates of the given packages as
// JSON on stdout. Emission is refused when any diagnostic fires — a
// refuted declaration must not certify.
func certMode(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	var all []eligibility.Certificate
	for _, pkg := range pkgs {
		certs, diags, err := analysis.Certificates(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			fmt.Fprintln(os.Stderr, "ndlint: refusing to emit certificates while diagnostics fire")
			return 2
		}
		all = append(all, certs...)
	}
	data, err := eligibility.EncodeCertificates(all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// certCheckMode re-analyzes the packages and compares against a stored
// certificate file: every stored certificate must still exist with the
// same source hash and identical facts. Stale or tampered entries are
// reported and the exit status is 2.
func certCheckMode(file string, patterns []string) int {
	stored, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	oldCerts, err := eligibility.DecodeCertificates(stored)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	var fresh []eligibility.Certificate
	for _, pkg := range pkgs {
		certs, _, err := analysis.Certificates(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return 1
		}
		fresh = append(fresh, certs...)
	}
	status := 0
	for i := range oldCerts {
		old := &oldCerts[i]
		cur, err := analysis.CertificateFor(fresh, old.Kind, old.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndlint: certificate %s/%s no longer derivable: %v\n", old.Kind, old.Name, err)
			status = 2
			continue
		}
		if old.Stale(cur.SourceHash) {
			fmt.Fprintf(os.Stderr, "ndlint: certificate %s/%s is STALE: stored hash %s, source now hashes to %s — re-run ndlint -cert\n",
				old.Kind, old.Name, old.SourceHash, cur.SourceHash)
			status = 2
		}
	}
	if status == 0 {
		fmt.Printf("ndlint: %d certificate(s) current\n", len(oldCerts))
	}
	return status
}

// vetConfig is the JSON payload the go command writes next to each
// package it vets (see cmd/go/internal/work.vetConfig). Fields this tool
// does not consume are omitted; unknown JSON keys are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes the single package described by a vet.cfg file.
func vetMode(cfgFile string, analyzers []*analysis.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the facts file to exist afterwards even
	// though ndlint computes no cross-package facts.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ndlint:", err)
			return false
		}
		return true
	}

	// Dependency packages are vetted only for facts; skip the real work.
	if cfg.VetxOnly {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.TypeCheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}

	diags, _, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndlint:", err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			printDiag(d, asJSON)
		}
		return 2
	}
	return 0
}
