package ndgraph_test

import (
	"fmt"
	"log"

	"ndgraph"
)

// Example demonstrates the end-to-end flow: build a graph, ask whether the
// algorithm is eligible for nondeterministic execution, run it racily, and
// read the (provably deterministic) result.
func Example() {
	edges := []ndgraph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4},
	}
	g, err := ndgraph.BuildGraph(edges, ndgraph.GraphOptions{NumVertices: 5})
	if err != nil {
		log.Fatal(err)
	}

	wcc := ndgraph.NewWCC()
	_, verdict, err := ndgraph.Probe(wcc, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eligible:", verdict.Eligible, "theorem:", verdict.Theorem)

	eng, res, err := ndgraph.Run(wcc, g, ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic,
		Threads:   4,
		Mode:      ndgraph.ModeAtomic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("components:", wcc.Components(eng))
	// Output:
	// eligible: true theorem: 2
	// converged: true
	// components: [0 0 0 3 3]
}

// ExampleAdvise applies the paper's sufficient conditions directly to a
// declared property set and an observed conflict profile.
func ExampleAdvise() {
	verdict := ndgraph.Advise(ndgraph.Properties{
		Name:              "my-traversal",
		ConvergesDetAsync: true,
		Monotonic:         true,
	}, ndgraph.ConflictProfile{RW: 12, WW: 7})
	fmt.Println("eligible:", verdict.Eligible)
	fmt.Println("theorem:", verdict.Theorem)
	// Output:
	// eligible: true
	// theorem: 2
}

// ExampleDifferenceDegree reproduces the paper's own worked example of the
// Section V-C metric.
func ExampleDifferenceDegree() {
	r1 := []uint32{1, 2, 3, 5, 7}
	r2 := []uint32{1, 2, 3, 7, 5}
	fmt.Println(ndgraph.DifferenceDegree(r1, r2))
	// Output:
	// 3
}

// ExampleVerifyMonotonicity checks Theorem 2's premise at runtime instead
// of trusting the declaration.
func ExampleVerifyMonotonicity() {
	g, err := ndgraph.BuildGraph([]ndgraph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
		ndgraph.GraphOptions{NumVertices: 3})
	if err != nil {
		log.Fatal(err)
	}
	err = ndgraph.VerifyMonotonicity(ndgraph.NewWCC(), g, ndgraph.NonIncreasing)
	fmt.Println("monotone:", err == nil)
	// Output:
	// monotone: true
}
