// Root-level consistency test tying the three eligibility oracles
// together for every built-in algorithm:
//
//   - the hand-written registry algorithms.StaticProfiles (the paper's
//     worst-case conflict table),
//   - the ndlint conflictclass pass, which derives the same profiles from
//     the update functions' source, and
//   - the runtime probe census, which counts conflicts actually realized
//     on a concrete graph.
//
// The pass must reproduce the registry exactly, the static profile must
// over-approximate every probe census, and the statically extracted
// Properties and verdicts must agree with their runtime counterparts.
package ndgraph_test

import (
	"context"
	"reflect"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/analysis"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/hybrid"
)

// updateRecv maps algorithm names to the receiver type of their Update
// method, as the conflictclass pass labels its reports. BFS shares the
// SSSP update function.
var updateRecv = map[string]string{
	"pagerank":  "PageRank",
	"wcc":       "WCC",
	"sssp":      "SSSP",
	"bfs":       "SSSP",
	"spmv":      "SpMV",
	"kcore":     "KCore",
	"labelprop": "LabelProp",
	"coloring":  "Coloring",
}

func makeAlgorithm(t *testing.T, name string, g *graph.Graph) algorithms.Algorithm {
	t.Helper()
	switch name {
	case "pagerank":
		return algorithms.NewPageRank(1e-6)
	case "wcc":
		return algorithms.NewWCC()
	case "sssp":
		return algorithms.NewSSSP(g, 0, 11)
	case "bfs":
		return algorithms.NewBFS(g, 0)
	case "spmv":
		return algorithms.NewSpMV(g, 1e-6, 0.5, 12)
	case "kcore":
		return algorithms.NewKCore()
	case "labelprop":
		return algorithms.NewLabelProp()
	case "coloring":
		return algorithms.NewColoring()
	}
	t.Fatalf("unknown algorithm %q", name)
	return nil
}

func TestStaticProfilesConsistentWithProbe(t *testing.T) {
	pkgs, err := analysis.Load(".", "./internal/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	_, results, err := analysis.RunAnalyzers(pkgs[0], []*analysis.Analyzer{analysis.ConflictClass})
	if err != nil {
		t.Fatal(err)
	}
	byRecv := map[string]analysis.ClassReport{}
	for _, r := range results[analysis.ConflictClass.Name].([]analysis.ClassReport) {
		if r.Recv != "" {
			byRecv[r.Recv] = r
		}
	}

	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}

	registry := algorithms.StaticProfiles()
	names := []string{"pagerank", "wcc", "sssp", "bfs", "spmv", "kcore", "labelprop", "coloring"}
	if len(names) != len(registry) {
		t.Fatalf("registry has %d entries, want %d", len(registry), len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			want, ok := registry[name]
			if !ok {
				t.Fatalf("no StaticProfiles entry for %q", name)
			}
			report, ok := byRecv[updateRecv[name]]
			if !ok {
				t.Fatalf("conflictclass produced no report for receiver %q", updateRecv[name])
			}

			// Oracle 1 vs 2: pass-derived profile == hand-written registry.
			if report.Profile != want {
				t.Errorf("static profile mismatch: conflictclass derived %+v, registry says %+v",
					report.Profile, want)
			}

			// Oracle 2 vs 3: static worst case bounds the runtime census.
			a := makeAlgorithm(t, name, g)
			census, probeVerdict, err := algorithms.Probe(a, g)
			if err != nil {
				t.Fatal(err)
			}
			if !want.OverApproximates(census) {
				t.Errorf("static profile %s does not over-approximate probe census %+v", want, census)
			}

			// The statically extracted Properties must equal the declared
			// ones. Name is best-effort: SSSP/BFS share an update and set
			// it from a field, which no literal can reveal.
			props := a.Properties()
			if report.Props == nil {
				t.Fatalf("conflictclass extracted no Properties for %s", name)
			}
			extracted := *report.Props
			if extracted.Name == "" {
				extracted.Name = props.Name
			}
			if extracted != props {
				t.Errorf("extracted Properties %+v != runtime Properties %+v", extracted, props)
			}

			// Verdict agreement: a static ELIGIBLE is a worst-case
			// guarantee, so the probe on any concrete graph must agree;
			// and on this graph, where the census realizes the worst case,
			// the two verdicts must coincide exactly.
			staticVerdict := eligibility.AdviseStatic(props, want)
			if staticVerdict.Source != "static" || probeVerdict.Source != "probe" {
				t.Errorf("verdict sources = %q/%q, want static/probe", staticVerdict.Source, probeVerdict.Source)
			}
			if staticVerdict.Eligible && !probeVerdict.Eligible {
				t.Errorf("static verdict ELIGIBLE but probe says not: static=%v probe=%v",
					staticVerdict.Reasons, probeVerdict.Reasons)
			}
			if staticVerdict.Eligible != probeVerdict.Eligible {
				t.Errorf("verdicts diverge on a worst-case-realizing graph: static=%v probe=%v (census %+v)",
					staticVerdict.Eligible, probeVerdict.Eligible, census)
			}
		})
	}
}

// TestCertificatesConsistent adds the fourth oracle: the embedded
// eligibility-certificate registry (internal/algorithms/certs.json) must
// be byte-equivalent to certificates freshly re-derived from source —
// any hash or fact drift fails here until `ndlint -cert` is re-run — and
// each certificate's verdict must agree with the runtime probe on a
// worst-case-realizing graph, for all eight algorithms and all three
// hybrid kernels.
func TestCertificatesConsistent(t *testing.T) {
	pkgs, err := analysis.Load(".", "./internal/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	fresh, diags, err := analysis.Certificates(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic while certifying: %s", d)
	}
	embedded, err := algorithms.EligibilityCertificates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, embedded) {
		t.Fatalf("embedded certificate registry is stale: re-run\n\tgo run ./cmd/ndlint -cert ./internal/algorithms > internal/algorithms/certs.json\nfresh:    %+v\nembedded: %+v", fresh, embedded)
	}

	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	registry := algorithms.StaticProfiles()

	names := []string{"pagerank", "wcc", "sssp", "bfs", "spmv", "kcore", "labelprop", "coloring"}
	for _, name := range names {
		t.Run("update/"+name, func(t *testing.T) {
			cert, err := algorithms.CertificateFor("update", name)
			if err != nil {
				t.Fatal(err)
			}
			if cert.Profile == nil || *cert.Profile != registry[name] {
				t.Errorf("certificate profile %+v != registry %+v", cert.Profile, registry[name])
			}

			a := makeAlgorithm(t, name, g)
			_, probeVerdict, err := algorithms.Probe(a, g)
			if err != nil {
				t.Fatal(err)
			}
			probeNoSync := probeVerdict.NoSync() == nil
			probeEps := probeVerdict.EpsilonStop() == nil
			if cert.NoSyncOK != probeNoSync || cert.EpsilonStopOK != probeEps {
				t.Errorf("certificate gates (nosync=%v εstop=%v) disagree with probe census gates (nosync=%v εstop=%v)",
					cert.NoSyncOK, cert.EpsilonStopOK, probeNoSync, probeEps)
			}

			// The certificate's verdict — the engines' admission ticket —
			// must reconstruct and agree with the probe on this
			// worst-case-realizing graph.
			if cert.NoSyncOK || cert.EpsilonStopOK {
				v, err := cert.Verdict()
				if err != nil {
					t.Fatal(err)
				}
				if v.Source != "cert" {
					t.Errorf("verdict source = %q, want cert", v.Source)
				}
				if v.Eligible != probeVerdict.Eligible || v.Theorem != probeVerdict.Theorem {
					t.Errorf("cert verdict (eligible=%v theorem=%d) != probe verdict (eligible=%v theorem=%d)",
						v.Eligible, v.Theorem, probeVerdict.Eligible, probeVerdict.Theorem)
				}
			}
		})
	}

	kernels := map[string]algorithms.Kernel{
		"wcc":  algorithms.WCCKernel(),
		"bfs":  algorithms.BFSKernel(0),
		"sssp": algorithms.SSSPKernel(0, make([]float64, g.M())),
	}
	for name, k := range kernels {
		t.Run("kernel/"+name, func(t *testing.T) {
			cert, err := algorithms.CertificateFor("kernel", name)
			if err != nil {
				t.Fatal(err)
			}
			if !cert.Kernel.DirectionConsistent {
				t.Error("kernel not certified direction-consistent")
			}
			if err := cert.AdmitKernel(k.Name, k.EdgeIndexed, k.FirstOfferWins); err != nil {
				t.Errorf("certificate refuses its own kernel: %v", err)
			}
			// Flag drift must be refused.
			if err := cert.AdmitKernel(k.Name, !k.EdgeIndexed, k.FirstOfferWins); err == nil {
				t.Error("certificate admitted a kernel with a drifted EdgeIndexed flag")
			}
		})
	}
}

// TestCertificateAdmitsEngines drives both certificate-accepting
// admission paths end to end without a probe: a no-sync WCC run admitted
// purely on the embedded certificate must reach the engine fixed point,
// and a certified hybrid BFS run must match its uncertified twin.
func TestCertificateAdmitsEngines(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("nosync", func(t *testing.T) {
		cert, err := algorithms.CertificateFor("update", "wcc")
		if err != nil {
			t.Fatal(err)
		}
		a := algorithms.NewWCC()
		eng, err := core.NewEngine(g, core.Options{Mode: edgedata.ModeSequential})
		if err != nil {
			t.Fatal(err)
		}
		a.Setup(eng)
		x, err := async.NewNoSync(g, async.NoSyncOptions{
			Threads:     2,
			Mode:        edgedata.ModeAtomic,
			Certificate: cert, // no Verdict: the certificate IS the ticket
		})
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		if err := x.LoadFrom(eng); err != nil {
			t.Fatal(err)
		}
		res, err := x.Run(a.Update)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("certificate-admitted no-sync run did not converge")
		}

		// Same fixed point as the deterministic engine.
		ref, err := core.NewEngine(g, core.Options{Mode: edgedata.ModeSequential})
		if err != nil {
			t.Fatal(err)
		}
		a.Setup(ref)
		if _, err := ref.Run(a.Update); err != nil {
			t.Fatal(err)
		}
		for v := range x.Vertices {
			if x.Vertices[v] != ref.Vertices[v] {
				t.Fatalf("vertex %d: nosync %d != reference %d", v, x.Vertices[v], ref.Vertices[v])
			}
		}

		// A stale certificate must not admit.
		staleCert := *cert
		staleCert.NoSyncOK = false // tampered gate: Verdict() must refuse
		if _, err := async.NewNoSync(g, async.NoSyncOptions{
			Threads: 2, Mode: edgedata.ModeAtomic, Certificate: &staleCert,
		}); err == nil {
			t.Fatal("tampered certificate admitted a no-sync run")
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		cert, err := algorithms.CertificateFor("kernel", "bfs")
		if err != nil {
			t.Fatal(err)
		}
		und := g.Undirected()
		k := algorithms.BFSKernel(0)

		certified, err := hybrid.NewEngine(und, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer certified.Close()
		certified.Certify(cert)
		if _, err := certified.Run(context.Background(), k); err != nil {
			t.Fatal(err)
		}

		plain, err := hybrid.NewEngine(und, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		if _, err := plain.Run(context.Background(), k); err != nil {
			t.Fatal(err)
		}
		for v := range certified.Vertices {
			if certified.Vertices[v] != plain.Vertices[v] {
				t.Fatalf("vertex %d: certified %d != plain %d", v, certified.Vertices[v], plain.Vertices[v])
			}
		}

		// A certificate for a different kernel must be refused up front.
		wrong, err := algorithms.CertificateFor("kernel", "sssp")
		if err != nil {
			t.Fatal(err)
		}
		certified.Certify(wrong)
		if _, err := certified.Run(context.Background(), k); err == nil {
			t.Fatal("hybrid engine ran a BFS kernel under an SSSP certificate")
		}
	})
}
