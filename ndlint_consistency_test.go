// Root-level consistency test tying the three eligibility oracles
// together for every built-in algorithm:
//
//   - the hand-written registry algorithms.StaticProfiles (the paper's
//     worst-case conflict table),
//   - the ndlint conflictclass pass, which derives the same profiles from
//     the update functions' source, and
//   - the runtime probe census, which counts conflicts actually realized
//     on a concrete graph.
//
// The pass must reproduce the registry exactly, the static profile must
// over-approximate every probe census, and the statically extracted
// Properties and verdicts must agree with their runtime counterparts.
package ndgraph_test

import (
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/analysis"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

// updateRecv maps algorithm names to the receiver type of their Update
// method, as the conflictclass pass labels its reports. BFS shares the
// SSSP update function.
var updateRecv = map[string]string{
	"pagerank":  "PageRank",
	"wcc":       "WCC",
	"sssp":      "SSSP",
	"bfs":       "SSSP",
	"spmv":      "SpMV",
	"kcore":     "KCore",
	"labelprop": "LabelProp",
	"coloring":  "Coloring",
}

func makeAlgorithm(t *testing.T, name string, g *graph.Graph) algorithms.Algorithm {
	t.Helper()
	switch name {
	case "pagerank":
		return algorithms.NewPageRank(1e-6)
	case "wcc":
		return algorithms.NewWCC()
	case "sssp":
		return algorithms.NewSSSP(g, 0, 11)
	case "bfs":
		return algorithms.NewBFS(g, 0)
	case "spmv":
		return algorithms.NewSpMV(g, 1e-6, 0.5, 12)
	case "kcore":
		return algorithms.NewKCore()
	case "labelprop":
		return algorithms.NewLabelProp()
	case "coloring":
		return algorithms.NewColoring()
	}
	t.Fatalf("unknown algorithm %q", name)
	return nil
}

func TestStaticProfilesConsistentWithProbe(t *testing.T) {
	pkgs, err := analysis.Load(".", "./internal/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	_, results, err := analysis.RunAnalyzers(pkgs[0], []*analysis.Analyzer{analysis.ConflictClass})
	if err != nil {
		t.Fatal(err)
	}
	byRecv := map[string]analysis.ClassReport{}
	for _, r := range results[analysis.ConflictClass.Name].([]analysis.ClassReport) {
		if r.Recv != "" {
			byRecv[r.Recv] = r
		}
	}

	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}

	registry := algorithms.StaticProfiles()
	names := []string{"pagerank", "wcc", "sssp", "bfs", "spmv", "kcore", "labelprop", "coloring"}
	if len(names) != len(registry) {
		t.Fatalf("registry has %d entries, want %d", len(registry), len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			want, ok := registry[name]
			if !ok {
				t.Fatalf("no StaticProfiles entry for %q", name)
			}
			report, ok := byRecv[updateRecv[name]]
			if !ok {
				t.Fatalf("conflictclass produced no report for receiver %q", updateRecv[name])
			}

			// Oracle 1 vs 2: pass-derived profile == hand-written registry.
			if report.Profile != want {
				t.Errorf("static profile mismatch: conflictclass derived %+v, registry says %+v",
					report.Profile, want)
			}

			// Oracle 2 vs 3: static worst case bounds the runtime census.
			a := makeAlgorithm(t, name, g)
			census, probeVerdict, err := algorithms.Probe(a, g)
			if err != nil {
				t.Fatal(err)
			}
			if !want.OverApproximates(census) {
				t.Errorf("static profile %s does not over-approximate probe census %+v", want, census)
			}

			// The statically extracted Properties must equal the declared
			// ones. Name is best-effort: SSSP/BFS share an update and set
			// it from a field, which no literal can reveal.
			props := a.Properties()
			if report.Props == nil {
				t.Fatalf("conflictclass extracted no Properties for %s", name)
			}
			extracted := *report.Props
			if extracted.Name == "" {
				extracted.Name = props.Name
			}
			if extracted != props {
				t.Errorf("extracted Properties %+v != runtime Properties %+v", extracted, props)
			}

			// Verdict agreement: a static ELIGIBLE is a worst-case
			// guarantee, so the probe on any concrete graph must agree;
			// and on this graph, where the census realizes the worst case,
			// the two verdicts must coincide exactly.
			staticVerdict := eligibility.AdviseStatic(props, want)
			if staticVerdict.Source != "static" || probeVerdict.Source != "probe" {
				t.Errorf("verdict sources = %q/%q, want static/probe", staticVerdict.Source, probeVerdict.Source)
			}
			if staticVerdict.Eligible && !probeVerdict.Eligible {
				t.Errorf("static verdict ELIGIBLE but probe says not: static=%v probe=%v",
					staticVerdict.Reasons, probeVerdict.Reasons)
			}
			if staticVerdict.Eligible != probeVerdict.Eligible {
				t.Errorf("verdicts diverge on a worst-case-realizing graph: static=%v probe=%v (census %+v)",
					staticVerdict.Eligible, probeVerdict.Eligible, census)
			}
		})
	}
}
