// End-to-end observability: one shared Observer wired into all six
// executors, then scraped over the live HTTP endpoint. This is the
// integration counterpart of internal/obs's unit tests — it pins the
// acceptance criterion that a /metrics scrape during a run reports live
// counters for every engine type, through the same facade-exported
// surface (ndgraph.NewObserver, ndgraph.ServeTelemetry) a user would hold.
package ndgraph_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"ndgraph"
	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/autonomous"
	"ndgraph/internal/core"
	"ndgraph/internal/dist"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
)

func TestObserverCountsEveryEngine(t *testing.T) {
	g, err := gen.RMAT(160, 900, gen.DefaultRMAT, 321)
	if err != nil {
		t.Fatal(err)
	}
	o := ndgraph.NewObserver(ndgraph.ObserverOptions{SampleConflicts: true})
	defer o.Close()

	// core: barrier engine, Observer option; SampleConflicts implies the
	// conflict census, so RW/WW rates flow without a second flag.
	if _, res, err := algorithms.Run(algorithms.NewWCC(), g,
		core.Options{Scheduler: sched.Nondeterministic, Threads: 2, Mode: edgedata.ModeAtomic, Observer: o}); err != nil || !res.Converged {
		t.Fatalf("core: %v", err)
	}

	// async: barrier-free executor, Observer option.
	{
		wcc := algorithms.NewWCC()
		seedEng, err := core.NewEngine(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wcc.Setup(seedEng)
		x, err := async.NewExecutor(g, async.Options{Threads: 2, Mode: edgedata.ModeAtomic, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		if err := x.LoadFrom(seedEng); err != nil {
			t.Fatal(err)
		}
		if res, err := x.Run(wcc.Update); err != nil || !res.Converged {
			t.Fatalf("async: %v", err)
		}
	}

	// shard: out-of-core PSW engine, Observer option.
	{
		st, err := shard.Build(g, t.TempDir(), 3)
		if err != nil {
			t.Fatal(err)
		}
		for v := range st.Vertices {
			st.Vertices[v] = uint64(v)
		}
		if err := st.FillValues(^uint64(0)); err != nil {
			t.Fatal(err)
		}
		e, err := shard.NewEngine(st, shard.Options{Threads: 2, Mode: edgedata.ModeAtomic, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Frontier().ScheduleAll()
		wcc := algorithms.NewWCC()
		if res, err := e.Run(wcc.Update); err != nil || !res.Converged {
			t.Fatalf("shard: %v", err)
		}
	}

	// dist: simulated message passing with duplication and loss, Observer
	// option; the final aggregate event carries the dup/drop totals.
	if _, res, err := dist.WCC(g, dist.Options{Workers: 2, Seed: 3, DuplicateProb: 0.2, DropProb: 0.1, Observer: o}); err != nil || !res.Converged {
		t.Fatalf("dist: %v", err)
	}

	// push: CAS engine, Observe method (constructor takes positional args).
	{
		u := g.Undirected()
		e, err := push.NewEngine(u, push.ModeCAS, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Observe(o)
		for v := range e.Vertices {
			e.Vertices[v] = uint64(v)
		}
		e.Frontier().ScheduleAll()
		res, err := e.Run(context.Background(), push.Relax{
			Message: func(srcVal uint64, _ uint32) uint64 { return srcVal },
			Better:  func(c, cur uint64) bool { return c < cur },
		})
		if err != nil || !res.Converged {
			t.Fatalf("push: %v", err)
		}
	}

	// autonomous: sequential priority-driven engine, Observe method.
	{
		e, err := autonomous.NewEngine(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.Observe(o)
		src := uint32(0)
		inf := edgedata.FromFloat64(math.Inf(1))
		for v := range e.Vertices {
			e.Vertices[v] = inf
		}
		e.Vertices[src] = edgedata.FromFloat64(0)
		e.Post(src, 0)
		update := func(ctx core.VertexView, s *autonomous.Scheduler) {
			d := edgedata.ToFloat64(ctx.Vertex())
			for k := 0; k < ctx.OutDegree(); k++ {
				u := ctx.OutNeighbor(k)
				if cand := d + 1; cand < edgedata.ToFloat64(e.Vertices[u]) {
					e.Vertices[u] = edgedata.FromFloat64(cand)
					s.Post(u, cand)
				}
			}
		}
		if _, err := e.Run(update); err != nil {
			t.Fatalf("autonomous: %v", err)
		}
	}

	// Every engine kind must have folded at least one sample with real
	// update traffic into the shared observer.
	stats := o.Stats()
	byEngine := make(map[string]ndgraph.TelemetryEngineStats, len(stats))
	for _, s := range stats {
		byEngine[s.Engine] = s
	}
	for _, engine := range []string{"core", "async", "shard", "dist", "push", "autonomous"} {
		s, ok := byEngine[engine]
		if !ok {
			t.Fatalf("no stats row for engine %q", engine)
		}
		if s.Samples == 0 {
			t.Errorf("engine %q emitted no samples", engine)
		}
		if s.Updates == 0 {
			t.Errorf("engine %q counted no updates", engine)
		}
	}
	if byEngine["core"].RWConflicts < 0 {
		t.Error("core engine with SampleConflicts reported no census")
	}
	if byEngine["dist"].Duplicates == 0 || byEngine["dist"].Drops == 0 {
		t.Error("dist engine lost its duplicate/drop totals")
	}

	// Live scrape through the facade-exported server: every engine label
	// must appear in /metrics with a nonzero sample counter.
	srv, err := ndgraph.ServeTelemetry("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, %v", resp.StatusCode, err)
	}
	for _, engine := range []string{"core", "async", "shard", "dist", "push", "autonomous"} {
		prefix := fmt.Sprintf(`ndgraph_samples_total{engine=%q} `, engine)
		found := false
		for _, line := range strings.Split(string(body), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil || v <= 0 {
					t.Errorf("scrape: %s%s — want a positive count", prefix, rest)
				}
				found = true
				break
			}
		}
		if !found {
			t.Errorf("scrape: no %s line in /metrics", strings.TrimSpace(prefix))
		}
	}
}
