package async

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/fault"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

// setupAsync prepares an executor with an algorithm's initial state but does
// not run it, so tests can exercise error paths the runAsync helper fatals on.
func setupAsync(t *testing.T, a algorithms.Algorithm, g *graph.Graph, opts Options) *Executor {
	t.Helper()
	e, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(e)
	x, err := NewExecutor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.LoadFrom(e); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestAsyncContextCancelledBeforeRun(t *testing.T) {
	g, err := gen.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := setupAsync(t, algorithms.NewWCC(), g, Options{Threads: 2, Mode: edgedata.ModeAtomic, Context: ctx})
	res, err := x.Run(algorithms.NewWCC().Update)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("cancelled run reported convergence")
	}
}

func TestAsyncContextCancelMidRun(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 81)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	ctx, cancel := context.WithCancel(context.Background())
	x := setupAsync(t, wcc, g, Options{Threads: 4, Mode: edgedata.ModeAtomic, Context: ctx})
	var updates atomic.Int64
	res, err := x.Run(func(v core.VertexView) {
		if updates.Add(1) == 50 {
			cancel()
		}
		wcc.Update(v)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("cancelled run reported convergence")
	}
	if res.Updates == 0 {
		t.Fatal("cancelled run reports no partial progress")
	}
}

func TestAsyncUpdatePanicSurfacedAsError(t *testing.T) {
	g, err := gen.Ring(32)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	x := setupAsync(t, wcc, g, Options{Threads: 4, Mode: edgedata.ModeAtomic})
	_, err = x.Run(func(v core.VertexView) {
		if v.V() == 17 {
			panic("kaboom")
		}
		wcc.Update(v)
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if !strings.Contains(err.Error(), "panicked on vertex 17") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic error lacks context: %v", err)
	}
}

// The barrier-free executor under injection: the heal hook re-enqueues both
// endpoints of every faulted edge, so Theorem 2's retry argument applies
// without iterations — WCC must still drain to the exact reference labels.
func TestAsyncWCCReconvergesUnderInjection(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 82)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	want := algorithms.ReferenceWCC(g)
	var injected int64
	for _, seed := range []uint64{1, 2, 3} {
		inj := fault.MustInjector(fault.Plan{
			Seed:      seed,
			TornWrite: 0.02,
			DropWrite: 0.05,
			StaleRead: 0.05,
			MaxFaults: 5000,
		})
		x := setupAsync(t, wcc, g, Options{Threads: 4, Mode: edgedata.ModeAtomic, Inject: inj})
		res, err := x.Run(wcc.Update)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge (%v)", seed, inj.Stats())
		}
		for v := range want {
			if uint32(x.Vertices[v]) != want[v] {
				t.Fatalf("seed %d (%v): vertex %d = %d, want %d",
					seed, inj.Stats(), v, x.Vertices[v], want[v])
			}
		}
		injected += inj.Stats().Total()
	}
	if injected == 0 {
		t.Fatal("no faults injected: the recovery test exercised nothing")
	}
}
