// The no-sync tier: a true barrier-free execution engine. Where Executor
// drains one shared channel (a contention point every schedule and every
// receive serializes through), NoSync gives each worker a private
// Chase–Lev deque: an update's wakeups are pushed onto the posting
// worker's own deque, and every consumer — the owner included — takes the
// *oldest* task (the deque's steal end), so each worker drains its own
// backlog in FIFO order and a worker that runs dry steals from a randomly
// probed victim. Owner-side LIFO (the classic work-stealing order) is
// deliberately NOT used: label-correcting traversals under LIFO propagate
// distances depth-first along stale long paths and re-execute vertices
// Bellman-Ford-style — measured >170× more updates than FIFO on the cage15
// analog before the budget tripped. FIFO keeps the schedule level-ish
// while the per-worker queues still remove the shared channel's
// serialization. No worker ever waits on another: the only shared-write
// operations on the hot path are the per-vertex state CAS, one top-index
// CAS per dequeue, and the edge-word stores the algorithm itself performs.
//
// Initial seeds are handed out lazily: Run pre-marks every seed Scheduled
// (so mid-run improvements to a not-yet-run seed coalesce instead of
// enqueueing it early) and workers claim ascending seedChunk-sized runs
// off a shared cursor as their deques run dry. That keeps all workers
// inside one moving window of vertex IDs — the property that makes a
// global FIFO nearly re-execution-free — while staying self-balancing;
// any static deal either maximizes false sharing (per-vertex round-robin)
// or abandons the window (contiguous blocks, measured at double the
// update count on the banded cage15 analog).
//
// Three mechanisms replace the channel's implicit coordination:
//
//   - Coalescing scheduled states (frontier.States): duplicate wakeups
//     collapse into one queue slot per vertex, and an update can never
//     overlap itself — the system model's per-vertex exclusion — without
//     a second "active claims" bitset or a repost loop.
//   - Value reads in the hot loop are as relaxed as the edge-data mode
//     allows: vertex words are plain loads (only the vertex's own update
//     writes them, and updates on one vertex never overlap), edge words go
//     through the configured edgedata.Mode (ModeAligned's plain aligned
//     words outside race builds, ModeAtomic/ModeLocked under -race). Go's
//     atomics are sequentially consistent, so "relaxed" here means
//     choosing *which* accesses need atomicity at all, per Section III of
//     the paper.
//   - Distributed termination detection in the style of Mattern's double
//     counting (and internal/netdist's coordinator sweep): per-worker
//     enqueue/done counters plus an idle flag, confirmed by two
//     consecutive sweeps that observe all workers idle and identical
//     counter vectors with sum(enq) == sum(done). See DESIGN.md §14 for
//     the proof sketch; the counter ordering (enq before push, done after
//     finish, sweeps read done before enq) is what makes the racy reads
//     sound.
//
// Admission is gated by the paper's eligibility analysis: NewNoSync
// refuses any algorithm whose verdict is not covered by Theorem 1 or 2,
// because with no barriers there is nothing else standing between a
// conflict-ineligible update function and a corrupted fixed point.
package async

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/frontier"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/rng"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// NoSyncOptions configures a NoSync executor.
type NoSyncOptions struct {
	// Threads is the worker count; < 1 defaults to GOMAXPROCS.
	Threads int
	// Mode is the edge-store atomicity method. Multi-worker executors
	// refuse ModeSequential.
	Mode edgedata.Mode
	// MaxUpdates caps the total update count; 0 means 1<<26. Exceeding it
	// stops the run with Converged == false.
	MaxUpdates int64
	// Context, when non-nil, cancels the run: workers observe cancellation
	// between updates and stop; Run returns the partial result plus the
	// context's error.
	Context context.Context
	// Observer, when non-nil, receives one telemetry event per worker per
	// sampleWindow updates (EngineNoSync: update, steal, and idle-
	// transition counters) plus a final aggregate at quiescence.
	Observer *obs.Observer
	// Trace, when non-nil, records one event per executed update. Like the
	// channel-based executor, every event carries iteration 0 — there are
	// no iterations — so trace.Diff against a barriered engine's recording
	// quantifies execution drift directly.
	Trace *trace.Recorder
	// Verdict is the admission ticket: the eligibility verdict for the
	// algorithm about to run, from a probe (algorithms.Probe), static
	// analysis (eligibility.AdviseStatic / ndlint), or both. NewNoSync
	// refuses a nil, ineligible, or theorem-less verdict.
	Verdict *eligibility.Verdict
	// Certificate is the probe-free admission path: when Verdict is nil
	// and a certificate is supplied, NewNoSync derives the verdict from
	// the certificate (eligibility.Certificate.Verdict, which re-derives
	// the gates and refuses tampered facts). A certificate holder should
	// first check Stale against a fresh source hash — a stale certificate
	// certifies code that no longer exists. When both are set, Verdict
	// wins and the certificate is ignored.
	Certificate *eligibility.Certificate
	// StealSeed seeds the per-worker victim-selection RNG; 0 is a fixed
	// default. Different seeds explore different interleavings.
	StealSeed uint64
	// Epsilon, when > 0, arms the ε-aware stopping rule: the run terminates
	// (Converged == true, EpsilonStopped == true) once the windowed mean
	// residual per changed commit stays below Epsilon across consecutive
	// windows spanning two full passes of the graph (see epsilon.go),
	// instead of waiting for exact quiescence. Admission is gated through Verdict.EpsilonStop — only
	// Theorem-1 algorithms with approximate convergence contracts qualify
	// (Eedi et al.'s non-blocking PageRank is the model); Theorem-2
	// traversals are refused because their fixed points are byte-identical
	// by contract. Requires ResidualDelta.
	Epsilon float64
	// ResidualDelta maps a committed vertex transition to its residual
	// contribution (e.g. |Δrank| for PageRank; see
	// algorithms.PageRank.ResidualDelta). Mandatory when Epsilon > 0; also
	// used, when set, to sharpen the telemetry Residual gauge from the
	// active-fraction proxy to the measured value movement.
	ResidualDelta func(old, new uint64) float64
}

// NoSyncResult summarizes a no-sync run.
type NoSyncResult struct {
	Updates int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// IdleTransitions counts busy→idle transitions across all workers —
	// the load-imbalance signal a barrier-free engine has instead of
	// barrier-wait time.
	IdleTransitions int64
	Converged       bool
	// EpsilonStopped reports that the ε-aware stopping rule terminated the
	// run: the windowed residual fell below Options.Epsilon before exact
	// quiescence. Converged remains true — the values are within the
	// algorithm's approximate convergence contract.
	EpsilonStopped bool
	// FinalResidual is the last measured windowed mean residual per changed
	// commit (0 when no residual metric was armed or too few updates ran to
	// fill a measurement window).
	FinalResidual float64
	Duration      time.Duration
}

// nsWorker is one worker's shared-visible termination-detection state and
// owner-private counters, padded to its own cache line pair so sweeps by
// idle workers never false-share with busy workers' increments.
type nsWorker struct {
	// enq counts tasks pushed onto THIS worker's deque (by its owner:
	// wakeups, re-queues, and its share of the seeds). Incremented BEFORE
	// the push.
	enq atomic.Int64
	// done counts tasks this worker retired (popped or stolen from any
	// deque, then finished). Incremented AFTER the state Finish and any
	// resulting re-queue.
	done atomic.Int64
	// idle is 1 while the worker has no task and is probing/sweeping.
	idle atomic.Uint32
	// steals/idleTransitions are owner-private (read by Run after the
	// pool barrier).
	steals          int64
	idleTransitions int64
	_               [88]byte
}

// NoSync owns the shared state of one work-stealing barrier-free
// computation.
type NoSync struct {
	g    *graph.Graph
	opts NoSyncOptions

	// Edges and Vertices mirror core.Engine's layout so algorithm Setup
	// state can be transplanted with LoadFrom.
	Edges    edgedata.Store
	Vertices []uint64

	state    *frontier.States
	deques   []*sched.Deque
	workers  []nsWorker
	stealBuf [][]int // per-worker scratch for batch steals

	updates atomic.Int64
	// live is the deduplicated seed list of the current run (the seeds
	// whose initial Post won); seedCursor is the next unclaimed index into
	// it. Workers claim seedChunk-sized runs lazily (see claimChunk).
	live       []int
	seedCursor atomic.Int64
	stopped    atomic.Bool
	quiet      atomic.Bool
	samples    atomic.Int64
	seeds      []int

	pool  *sched.Pool
	views []nsView

	// clock measures read staleness (created when an Observer is attached;
	// epochs are executed updates, slots are edge words). residual
	// accumulates per-commit value movement (created when Epsilon > 0 or an
	// Observer is attached). Both are nil — and their hot-path hooks one
	// pointer test — when observation is off.
	clock    *obs.DelayClock
	residual *obs.ResidualEstimator

	// eps holds the ε-stopping flag and windowed-residual measurement (see
	// epsilon.go); only consulted when opts.Epsilon > 0.
	eps epsilonState

	panicked atomic.Pointer[updatePanic]
}

// NewNoSync builds a work-stealing barrier-free executor for g. The
// verdict in opts is mandatory: only Theorem-1/2-eligible algorithms may
// run without synchronization.
func NewNoSync(g *graph.Graph, opts NoSyncOptions) (*NoSync, error) {
	if g == nil {
		return nil, fmt.Errorf("async: nil graph")
	}
	if opts.Verdict == nil && opts.Certificate != nil {
		v, err := opts.Certificate.Verdict()
		if err != nil {
			return nil, fmt.Errorf("async: %w", err)
		}
		opts.Verdict = v
	}
	if err := opts.Verdict.NoSync(); err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	if opts.Epsilon > 0 {
		if err := opts.Verdict.EpsilonStop(); err != nil {
			return nil, fmt.Errorf("async: %w", err)
		}
		if opts.ResidualDelta == nil {
			return nil, fmt.Errorf("async: ε-stopping requires a ResidualDelta metric (the algorithm's |Δvalue| per commit)")
		}
	}
	if opts.Threads < 1 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Threads > 1 && opts.Mode == edgedata.ModeSequential {
		return nil, fmt.Errorf("async: %d workers require a concurrent edge-data mode", opts.Threads)
	}
	if opts.MaxUpdates <= 0 {
		opts.MaxUpdates = 1 << 26
	}
	x := &NoSync{
		g:        g,
		opts:     opts,
		Edges:    edgedata.New(opts.Mode, g.M()),
		Vertices: make([]uint64, g.N()),
		state:    frontier.NewStates(g.N()),
		deques:   make([]*sched.Deque, opts.Threads),
		workers:  make([]nsWorker, opts.Threads),
		stealBuf: make([][]int, opts.Threads),
		pool:     sched.NewPoolNamed(opts.Threads, "nosync"),
		views:    make([]nsView, opts.Threads),
	}
	for w := range x.deques {
		x.deques[w] = sched.NewDeque(0)
		x.stealBuf[w] = make([]int, stealBatchCap)
		x.views[w].x = x
		x.views[w].worker = w
	}
	if opts.Epsilon > 0 || opts.Observer != nil {
		x.residual = obs.NewResidualEstimator(opts.Threads, opts.ResidualDelta)
	}
	x.eps.span = epsilonSpan(g.N(), opts.Threads)
	if opts.Observer != nil {
		// One epoch per executed update; one stamp slot per edge word.
		x.clock = obs.NewDelayClock(opts.Threads, int(g.M()))
		opts.Observer.SetDelaySource(obs.EngineNoSync, x.clock.Hist)
	}
	return x, nil
}

// Graph returns the executor's graph.
func (x *NoSync) Graph() *graph.Graph { return x.g }

// Close releases the executor's persistent worker pool. The executor stays
// usable — a later Run re-creates the pool.
func (x *NoSync) Close() {
	if x.pool != nil {
		x.pool.Close()
		x.pool = nil
	}
}

// Seed marks v as initially scheduled.
func (x *NoSync) Seed(v uint32) { x.seeds = append(x.seeds, int(v)) }

// LoadFrom transplants initial state prepared by an algorithm's Setup on a
// barrier-based engine: vertex words, edge words, and the scheduled set
// become this executor's initial state. The engine must be freshly set up
// (not yet run) and share the same graph.
func (x *NoSync) LoadFrom(e *core.Engine) error {
	if e.Graph() != x.g {
		return fmt.Errorf("async: LoadFrom engine holds a different graph")
	}
	copy(x.Vertices, e.Vertices)
	snap := e.Edges.Snapshot()
	for i, w := range snap {
		x.Edges.Store(uint32(i), w)
	}
	x.seeds = x.seeds[:0]
	for _, v := range e.Frontier().Members() {
		x.seeds = append(x.seeds, v)
	}
	return nil
}

// post requests an execution of v on behalf of worker w: if the scheduled-
// state machine awards the queue slot, the task goes to w's own deque. The
// enqueue counter is incremented BEFORE the push — a task visible in a
// deque is always already visible in sum(enq), which the termination
// sweeps depend on.
func (x *NoSync) post(w, v int) {
	if x.stopped.Load() {
		return
	}
	if x.state.Post(v) {
		x.workers[w].enq.Add(1)
		x.deques[w].Push(v)
	}
}

// Run drains the computation to quiescence with no barriers and returns
// statistics. The update function receives views satisfying
// core.VertexView, so the same algorithm implementations run under every
// execution model in the repository.
func (x *NoSync) Run(update core.UpdateFunc) (NoSyncResult, error) {
	if update == nil {
		return NoSyncResult{}, fmt.Errorf("async: nil update function")
	}
	start := time.Now()
	res := NoSyncResult{Converged: true}
	if len(x.seeds) == 0 {
		return res, nil
	}
	x.panicked.Store(nil)
	if x.pool == nil { // re-create after Close
		x.pool = sched.NewPoolNamed(x.opts.Threads, "nosync")
	}
	x.state.Reset()
	for w := range x.workers {
		ww := &x.workers[w]
		ww.enq.Store(0)
		ww.done.Store(0)
		ww.idle.Store(0)
		ww.steals, ww.idleTransitions = 0, 0
		// A stopped previous run may have abandoned tasks; start fresh.
		x.deques[w] = sched.NewDeque(len(x.seeds)/len(x.workers) + 1)
	}
	x.stopped.Store(false)
	x.quiet.Store(false)
	x.updates.Store(0)
	x.clock.Reset()
	x.residual.Reset()
	x.eps.reset()
	x.opts.Observer.SetPhase("nosync: running")
	// Mark every seed Scheduled up front, but don't hand any out yet:
	// workers claim seedChunk-sized runs off a shared cursor as their
	// deques run dry (claimChunk). The two halves matter separately.
	// Pre-marking is the coalescing shield — a mid-run improvement to a
	// not-yet-claimed seed deduplicates against its Scheduled state
	// instead of enqueueing it early, so the seed runs once, late, seeing
	// every accumulated improvement. Lazy ascending claiming keeps all
	// workers inside one moving window of vertex IDs — the property that
	// makes the global-FIFO channel executor nearly re-execution-free —
	// and is self-balancing: a worker stuck on a hub claims fewer chunks.
	// Static deals lose one or the other: per-vertex round-robin maximizes
	// state/CSR false sharing, contiguous blocks abandon the window
	// (measured: double the update count on the banded cage15 analog),
	// and any fixed split lets fast workers run ahead of the window into
	// stale reads.
	x.live = x.live[:0]
	for _, v := range x.seeds {
		if x.state.Post(v) {
			x.live = append(x.live, v)
		}
	}
	if len(x.live) == 0 {
		return res, nil
	}
	x.seedCursor.Store(0)

	x.pool.RunEach(func(w int) { x.drain(w, update) })

	res.Updates = x.updates.Load()
	for w := range x.workers {
		res.Steals += x.workers[w].steals
		res.IdleTransitions += x.workers[w].idleTransitions
	}
	if x.stopped.Load() {
		res.Converged = false
		if res.Updates > x.opts.MaxUpdates {
			res.Updates = x.opts.MaxUpdates
		}
	}
	res.EpsilonStopped = x.eps.stopped.Load()
	res.FinalResidual = x.eps.finalResidual()
	res.Duration = time.Since(start)
	if o := x.opts.Observer; o != nil {
		// Final aggregate: fold every worker's leftover window into one
		// quiescence event. Workers are parked, so their views are safe to
		// read and reset here.
		agg := &x.views[0]
		for i := 1; i < len(x.views); i++ {
			vw := &x.views[i]
			agg.nUpdates += vw.nUpdates
			agg.nReads += vw.nReads
			agg.nWrites += vw.nWrites
			vw.nUpdates, vw.nReads, vw.nWrites = 0, 0, 0
		}
		x.emitNoSyncSample(o, agg, res.Duration.Nanoseconds())
		switch {
		case res.EpsilonStopped:
			o.SetPhase("nosync: ε-stopped")
		case res.Converged:
			o.SetPhase("nosync: quiescent")
		default:
			o.SetPhase("nosync: stopped")
		}
	}
	if p := x.panicked.Load(); p != nil {
		return res, fmt.Errorf("async: update function panicked on vertex %d: %v\n%s", p.vertex, p.value, p.stack)
	}
	if ctx := x.opts.Context; ctx != nil && ctx.Err() != nil && !res.Converged {
		return res, ctx.Err()
	}
	return res, nil
}

// drain is worker w's barrier-free work loop: pop own deque, steal when
// dry, and run distributed termination sweeps while idle.
func (x *NoSync) drain(w int, update core.UpdateFunc) {
	self := &x.workers[w]
	vw := &x.views[w]
	r := rng.New(x.opts.StealSeed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
	n := len(x.workers)
	prevDone, prevEnq := make([]int64, n), make([]int64, n)
	curDone, curEnq := make([]int64, n), make([]int64, n)
	havePrev := false
	idle := false
	fails := 0
	sinceClaim := 0
	for {
		if x.quiet.Load() || x.stopped.Load() || x.eps.stopped.Load() {
			return
		}
		if ctx := x.opts.Context; ctx != nil && ctx.Err() != nil {
			x.stopped.Store(true)
			return
		}
		// Consume the own deque from the steal end: FIFO order (see the
		// package comment for why owner-side LIFO is pathological here).
		// When dry, prefer claiming the next seed chunk (ordered, cheap)
		// over raiding another worker; steal only once the cursor is
		// exhausted. A worker therefore never observes the cursor
		// unexhausted and goes idle, which the termination sweeps rely on.
		v, ok := x.deques[w].Steal()
		if !ok && x.claimChunk(w) {
			continue
		}
		if !ok {
			var k int
			if v, k, ok = x.steal(w, r); ok {
				self.steals += int64(k)
			}
		}
		if ok {
			if idle {
				// Order matters: clear the idle flag before running, so a
				// sweep that still sees us idle is guaranteed to also see
				// our claimed task's enq > done mismatch.
				idle = false
				self.idle.Store(0)
			}
			havePrev = false
			fails = 0
			x.execute(w, vw, update, v)
			// Liveness: a self-sustaining workload — a fixed-point kernel
			// that never locally converges, exactly the ε-stopping case —
			// can keep every deque non-empty forever, so the dry-deque
			// claim alone would never advance the seed cursor and the
			// unclaimed seeds (pre-marked Scheduled, so mid-run posts
			// deduplicate against them) would starve at their initial
			// values. Claim a chunk every seedChunk executed tasks too;
			// once the cursor is exhausted this is a single atomic load.
			if sinceClaim++; sinceClaim >= seedChunk {
				sinceClaim = 0
				x.claimChunk(w)
			}
			continue
		}
		if !idle {
			idle = true
			self.idleTransitions++
			self.idle.Store(1)
		}
		allIdle := x.sweep(curDone, curEnq)
		if allIdle && sumEqual(curDone, curEnq) {
			if havePrev && vecEqual(prevDone, curDone) && vecEqual(prevEnq, curEnq) {
				// Two consecutive all-idle sweeps with identical counters
				// and sum(enq) == sum(done): the system was quiescent at
				// every instant between the sweeps. Quiescence is stable,
				// so announce termination.
				x.quiet.Store(true)
				return
			}
			prevDone, curDone = curDone, prevDone
			prevEnq, curEnq = curEnq, prevEnq
			havePrev = true
		} else {
			havePrev = false
		}
		if fails++; fails > 128 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// seedChunk is the claim granularity of the shared seed cursor (see
// claimChunk). 64 vertices cover four 16-state cache lines and a few KB
// of CSR edge data — enough for private streaming, small enough that the
// workers' shared ID window stays tight and load stays balanced.
const seedChunk = 64

// claimChunk claims the next run of up to seedChunk unclaimed seeds for
// worker w and moves them onto w's own deque, reporting whether the cursor
// still had seeds to hand out. Every vertex in live is already Scheduled
// (Run pre-marked it and mid-run posts deduplicate against that state), so
// the claim is a plain push — exactly the deferred half of post: the
// enqueue counter is incremented before each push, so a claimed seed is
// never visible in a deque without being counted in sum(enq).
func (x *NoSync) claimChunk(w int) bool {
	if x.seedCursor.Load() >= int64(len(x.live)) {
		return false
	}
	c := x.seedCursor.Add(seedChunk) - seedChunk
	if c >= int64(len(x.live)) {
		return false
	}
	end := c + seedChunk
	if end > int64(len(x.live)) {
		end = int64(len(x.live))
	}
	for _, v := range x.live[c:end] {
		x.workers[w].enq.Add(1)
		x.deques[w].Push(v)
	}
	return true
}

// stealBatchCap bounds one batch steal. Tasks posted together are a
// vertex neighbourhood, so migrating a run of them keeps the thief working
// on adjacent state; the cap keeps any one raid from emptying a deep
// victim into a single worker.
const stealBatchCap = 256

// steal probes every other worker's deque once, in a randomly rotated
// order. On the first hit it claims up to half the victim's backlog in one
// CAS, re-homes all but the first task into w's own deque, and returns
// that first task. Batch migration matters: one task per steal turns the
// endgame — one deep deque, many idle thieves — into a serial drain of the
// victim's top cache line, with every task (and its vertex data) bouncing
// to a different core.
func (x *NoSync) steal(w int, r *rng.Xoshiro256StarStar) (int, int, bool) {
	n := len(x.deques)
	if n == 1 {
		return 0, 0, false
	}
	buf := x.stealBuf[w]
	off := r.Intn(n - 1)
	for i := 0; i < n-1; i++ {
		victim := (w + 1 + (off+i)%(n-1)) % n
		if k := x.deques[victim].StealBatch(buf); k > 0 {
			for _, v := range buf[1:k] {
				x.deques[w].Push(v)
			}
			return buf[0], k, true
		}
	}
	return 0, 0, false
}

// sweep snapshots the termination counters: every done counter first, then
// every idle flag and enqueue counter. Reading done before enq means a
// racing task can only make the sums look *unequal* (its enqueue is
// visible before its completion), never spuriously equal.
func (x *NoSync) sweep(done, enq []int64) (allIdle bool) {
	for i := range x.workers {
		done[i] = x.workers[i].done.Load()
	}
	allIdle = true
	for i := range x.workers {
		if x.workers[i].idle.Load() == 0 {
			allIdle = false
		}
		enq[i] = x.workers[i].enq.Load()
	}
	return allIdle
}

func sumEqual(a, b []int64) bool {
	var sa, sb int64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	return sa == sb
}

func vecEqual(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// execute runs one claimed task through the scheduled-state machine,
// re-queueing the vertex if a wakeup arrived mid-run. The done counter is
// incremented only after the state transition AND any re-queue's enqueue
// increment, preserving the sweeps' enq-before-done visibility order.
func (x *NoSync) execute(w int, vw *nsView, update core.UpdateFunc, v int) {
	self := &x.workers[w]
	x.state.Begin(v)
	switch {
	case x.stopped.Load():
		// Draining a stopped run: retire the task unrun.
	case x.updates.Add(1) > x.opts.MaxUpdates:
		x.stopped.Store(true)
	default:
		// One delay-clock epoch per executed update: staleness is then "how
		// many updates ran between this value's publish and my read".
		x.clock.Advance()
		x.runNoSyncOne(vw, update, uint32(v))
		if x.opts.Epsilon > 0 {
			if vw.epsUpdates++; vw.epsUpdates >= sampleWindow {
				vw.epsUpdates = 0
				x.eps.check(x.residual, x.opts.Epsilon)
			}
		}
		if o := x.opts.Observer; o != nil {
			if vw.nUpdates++; vw.nUpdates >= sampleWindow {
				x.emitNoSyncSample(o, vw, 0)
			}
		}
	}
	if x.state.Finish(v) && !x.stopped.Load() {
		self.enq.Add(1)
		x.deques[w].Push(v)
	}
	self.done.Add(1)
}

// runNoSyncOne executes one update, converting a panic into a recorded
// failure that stops the run instead of crashing the process.
func (x *NoSync) runNoSyncOne(vw *nsView, update core.UpdateFunc, v uint32) {
	defer func() {
		if r := recover(); r != nil {
			x.panicked.CompareAndSwap(nil, &updatePanic{vertex: v, value: r, stack: debug.Stack()})
			x.stopped.Store(true)
		}
	}()
	vw.bind(v)
	update(vw)
	if t := x.opts.Trace; t != nil {
		t.Record(0, vw.worker, v, vw.uWrites, x.Vertices[v])
	}
}

// emitNoSyncSample emits one telemetry sample from worker-view vw's
// accumulated window and resets it. Only vw's owning worker (or the
// post-drain flush) may call this.
func (x *NoSync) emitNoSyncSample(o *obs.Observer, vw *nsView, durationNs int64) {
	var pending int64
	for i := range x.workers {
		pending += x.workers[i].enq.Load() - x.workers[i].done.Load()
	}
	if pending < 0 {
		pending = 0
	}
	self := &x.workers[vw.worker]
	// Residual: the active-fraction proxy, sharpened to the measured mean
	// value movement per update when a residual metric is armed.
	resid := float64(pending) / float64(x.g.N())
	if r := x.residual; r != nil && x.opts.ResidualDelta != nil {
		t := r.Totals()
		if dUp := t.Updates - vw.emittedResidUpdates; dUp > 0 {
			resid = (t.Sum - vw.emittedResidSum) / float64(dUp)
			vw.emittedResidSum, vw.emittedResidUpdates = t.Sum, t.Updates
		}
	}
	var p50, p99, dmax int64
	if cl := x.clock; cl != nil {
		h := cl.Hist()
		p50, p99, dmax = h.Quantile(0.50), h.Quantile(0.99), h.Max()
	}
	o.Emit(obs.Event{
		Engine:          obs.EngineNoSync,
		Iter:            x.samples.Add(1) - 1,
		Scheduled:       pending,
		Updates:         vw.nUpdates,
		EdgeReads:       vw.nReads,
		EdgeWrites:      vw.nWrites,
		RWConflicts:     -1,
		WWConflicts:     -1,
		Residual:        resid,
		DurationNanos:   durationNs,
		Steals:          self.steals - vw.emittedSteals,
		IdleTransitions: self.idleTransitions - vw.emittedIdle,
		DelayP50:        p50,
		DelayP99:        p99,
		DelayMax:        dmax,
	})
	vw.emittedSteals, vw.emittedIdle = self.steals, self.idleTransitions
	vw.nUpdates, vw.nReads, vw.nWrites = 0, 0, 0
}

// nsView adapts the executor to core.VertexView: writes schedule the
// opposite endpoint onto the writing worker's own deque immediately.
type nsView struct {
	x      *NoSync
	worker int
	v      uint32
	inSrc  []uint32
	inIdx  []uint32
	outDst []uint32
	outLo  uint32

	// Telemetry window accumulators; worker-private.
	nUpdates, nReads, nWrites  int64
	emittedSteals, emittedIdle int64
	// epsUpdates triggers the windowed ε check; emittedResid* snapshot the
	// global residual totals at this worker's last telemetry emit.
	epsUpdates          int64
	emittedResidSum     float64
	emittedResidUpdates int64
	// uWrites counts edge writes of the currently bound update, for the
	// execution-path trace.
	uWrites int
}

func (c *nsView) bind(v uint32) {
	g := c.x.g
	c.v = v
	c.inSrc = g.InNeighbors(v)
	c.inIdx = g.InEdgeIndices(v)
	c.outDst = g.OutNeighbors(v)
	c.outLo, _ = g.OutEdgeIndex(v)
	c.uWrites = 0
}

func (c *nsView) V() uint32      { return c.v }
func (c *nsView) Vertex() uint64 { return c.x.Vertices[c.v] }
func (c *nsView) SetVertex(w uint64) {
	if r := c.x.residual; r != nil {
		r.Observe(c.worker, c.x.Vertices[c.v], w)
	}
	c.x.Vertices[c.v] = w
}
func (c *nsView) InDegree() int            { return len(c.inSrc) }
func (c *nsView) OutDegree() int           { return len(c.outDst) }
func (c *nsView) InNeighbor(k int) uint32  { return c.inSrc[k] }
func (c *nsView) OutNeighbor(k int) uint32 { return c.outDst[k] }
func (c *nsView) InEdgeID(k int) uint32    { return c.inIdx[k] }
func (c *nsView) OutEdgeID(k int) uint32   { return c.outLo + uint32(k) }
func (c *nsView) InEdgeVal(k int) uint64 {
	c.nReads++
	e := c.inIdx[k]
	if cl := c.x.clock; cl != nil {
		cl.ObserveRead(c.worker, e)
	}
	return c.x.Edges.Load(e)
}
func (c *nsView) OutEdgeVal(k int) uint64 {
	c.nReads++
	e := c.outLo + uint32(k)
	if cl := c.x.clock; cl != nil {
		cl.ObserveRead(c.worker, e)
	}
	return c.x.Edges.Load(e)
}
func (c *nsView) ScheduleSelf() { c.x.post(c.worker, int(c.v)) }
func (c *nsView) Yield()        {}

func (c *nsView) SetInEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	e := c.inIdx[k]
	c.x.Edges.Store(e, w)
	if cl := c.x.clock; cl != nil {
		cl.Stamp(e)
	}
	c.x.post(c.worker, int(c.inSrc[k]))
}

func (c *nsView) SetOutEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	e := c.outLo + uint32(k)
	c.x.Edges.Store(e, w)
	if cl := c.x.clock; cl != nil {
		cl.Stamp(e)
	}
	c.x.post(c.worker, int(c.outDst[k]))
}

var _ core.VertexView = (*nsView)(nil)
