package async

import (
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/metrics"
)

// runAsync sets an algorithm up on a scratch barrier-based engine, then
// transplants the initial state into a barrier-free executor and drains it.
func runAsync(t *testing.T, a algorithms.Algorithm, g *graph.Graph, opts Options) (*Executor, Result) {
	t.Helper()
	e, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(e)
	x, err := NewExecutor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.LoadFrom(e); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(a.Update)
	if err != nil {
		t.Fatal(err)
	}
	return x, res
}

func TestNewExecutorValidation(t *testing.T) {
	g, _ := gen.Ring(4)
	if _, err := NewExecutor(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewExecutor(g, Options{Threads: 4, Mode: edgedata.ModeSequential}); err == nil {
		t.Error("multi-worker sequential mode accepted")
	}
}

func TestRunNilUpdate(t *testing.T) {
	g, _ := gen.Ring(4)
	x, err := NewExecutor(g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(nil); err == nil {
		t.Fatal("nil update accepted")
	}
}

func TestEmptySeedsConverges(t *testing.T) {
	g, _ := gen.Ring(4)
	x, err := NewExecutor(g, Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(func(core.VertexView) {})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Updates != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLoadFromRejectsOtherGraph(t *testing.T) {
	g1, _ := gen.Ring(4)
	g2, _ := gen.Ring(4)
	e, err := core.NewEngine(g1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExecutor(g2, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.LoadFrom(e); err == nil {
		t.Fatal("cross-graph LoadFrom accepted")
	}
}

func TestAsyncWCCIdenticalToReference(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 71)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	want := algorithms.ReferenceWCC(g)
	for _, threads := range []int{1, 4, 8} {
		x, res := runAsync(t, wcc, g, Options{Threads: threads, Mode: edgedata.ModeAtomic})
		if !res.Converged {
			t.Fatalf("threads=%d: did not converge", threads)
		}
		for v := range want {
			if uint32(x.Vertices[v]) != want[v] {
				t.Fatalf("threads=%d: vertex %d = %d, want %d", threads, v, x.Vertices[v], want[v])
			}
		}
	}
}

func TestAsyncBFSIdenticalToReference(t *testing.T) {
	g, err := gen.Grid(8, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := algorithms.NewBFS(g, 0)
	x, res := runAsync(t, b, g, Options{Threads: 4, Mode: edgedata.ModeAtomic})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			got := edgedata.ToFloat64(x.Vertices[r*8+c])
			if got != float64(r+c) {
				t.Fatalf("dist[%d,%d] = %v, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestAsyncSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 72)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 1, 9)
	want := algorithms.ReferenceSSSP(g, 1, s.Weights)
	x, res := runAsync(t, s, g, Options{Threads: 4, Mode: edgedata.ModeAtomic})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if got := edgedata.ToFloat64(x.Vertices[v]); got != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestAsyncPageRankCloseToFixedPoint(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 73)
	if err != nil {
		t.Fatal(err)
	}
	pr := algorithms.NewPageRank(1e-6)
	want := algorithms.ReferencePageRank(g, pr.Damping, 1e-10, 10000)
	x, res := runAsync(t, pr, g, Options{Threads: 4, Mode: edgedata.ModeAtomic})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := make([]float64, g.N())
	for v := range got {
		got[v] = edgedata.ToFloat64(x.Vertices[v])
	}
	if d := metrics.LInfDistance(got, want); d > 0.05 {
		t.Fatalf("LInf = %v", d)
	}
}

func TestMaxUpdatesCap(t *testing.T) {
	g, err := gen.Ring(100)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	x, res := runAsync(t, wcc, g, Options{Threads: 2, Mode: edgedata.ModeAtomic, MaxUpdates: 10})
	if res.Converged {
		t.Fatal("capped run reported convergence")
	}
	if res.Updates > 10 {
		t.Fatalf("Updates = %d beyond cap", res.Updates)
	}
	_ = x
}

func TestSeedAPI(t *testing.T) {
	g, _ := gen.Chain(3)
	x, err := NewExecutor(g, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Min-label over a chain seeded at vertex 0 only.
	for v := range x.Vertices {
		x.Vertices[v] = uint64(v)
	}
	x.Edges.Fill(^uint64(0))
	x.Seed(0)
	update := func(ctx core.VertexView) {
		min := ctx.Vertex()
		for k := 0; k < ctx.InDegree(); k++ {
			if w := ctx.InEdgeVal(k); w < min {
				min = w
			}
		}
		ctx.SetVertex(min)
		for k := 0; k < ctx.OutDegree(); k++ {
			if ctx.OutEdgeVal(k) > min {
				ctx.SetOutEdgeVal(k, min)
			}
		}
	}
	res, err := x.Run(update)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v, w := range x.Vertices {
		if w != 0 {
			t.Fatalf("vertex %d = %d", v, w)
		}
	}
}

func BenchmarkAsyncWCC(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 74)
	if err != nil {
		b.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := core.NewEngine(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wcc.Setup(e)
		x, err := NewExecutor(g, Options{Threads: 4, Mode: edgedata.ModeAtomic})
		if err != nil {
			b.Fatal(err)
		}
		if err := x.LoadFrom(e); err != nil {
			b.Fatal(err)
		}
		if _, err := x.Run(wcc.Update); err != nil {
			b.Fatal(err)
		}
	}
}
