package async

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/rng"
)

// runNoSync mirrors runAsync for the work-stealing tier: set the algorithm
// up on a scratch barrier-based engine, transplant the state, drain. The
// eligibility verdict comes from the static advisor unless the caller
// already supplied one.
func runNoSync(t *testing.T, a algorithms.Algorithm, g *graph.Graph, opts NoSyncOptions) (*NoSync, NoSyncResult) {
	t.Helper()
	if opts.Verdict == nil {
		v, err := algorithms.NoSyncVerdict(a, g)
		if err != nil {
			t.Fatal(err)
		}
		opts.Verdict = &v
	}
	e, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(e)
	x, err := NewNoSync(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(x.Close)
	if err := x.LoadFrom(e); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(a.Update)
	if err != nil {
		t.Fatal(err)
	}
	return x, res
}

// testVerdict is a hand-built admission ticket for synthetic update
// functions in these tests (monotone by construction, Theorem 2 shape).
func testVerdict() *eligibility.Verdict {
	return &eligibility.Verdict{Eligible: true, Theorem: 2, Source: "test"}
}

func TestNoSyncGateRefusals(t *testing.T) {
	g, _ := gen.Ring(8)
	// No verdict at all: the tier must refuse to run blind.
	if _, err := NewNoSync(g, NoSyncOptions{Threads: 1}); err == nil {
		t.Error("nil verdict accepted")
	}
	// Ineligible verdict.
	bad := &eligibility.Verdict{Eligible: false, Reasons: []string{"not monotonic"}}
	if _, err := NewNoSync(g, NoSyncOptions{Threads: 1, Verdict: bad}); err == nil {
		t.Error("ineligible verdict accepted")
	} else if !strings.Contains(err.Error(), "not monotonic") {
		t.Errorf("refusal does not carry the verdict's reasons: %v", err)
	}
	// Eligible but covered by no theorem: a malformed ticket.
	odd := &eligibility.Verdict{Eligible: true, Theorem: 0}
	if _, err := NewNoSync(g, NoSyncOptions{Threads: 1, Verdict: odd}); err == nil {
		t.Error("theorem-less verdict accepted")
	}
	// Coloring has write-write conflicts and is not monotone: the static
	// advisor must refuse it end to end.
	v, err := algorithms.NoSyncVerdict(algorithms.NewColoring(), g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Eligible {
		t.Fatal("static advisor marked coloring eligible")
	}
	if _, err := NewNoSync(g, NoSyncOptions{Threads: 1, Verdict: &v}); err == nil {
		t.Error("coloring admitted to the no-sync tier")
	}
	// Structural refusals shared with the channel executor.
	if _, err := NewNoSync(nil, NoSyncOptions{Verdict: testVerdict()}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewNoSync(g, NoSyncOptions{Threads: 4, Mode: edgedata.ModeSequential, Verdict: testVerdict()}); err == nil {
		t.Error("multi-worker sequential mode accepted")
	}
}

func TestNoSyncEmptySeedsConverges(t *testing.T) {
	g, _ := gen.Ring(4)
	x, err := NewNoSync(g, NoSyncOptions{Threads: 2, Mode: edgedata.ModeAtomic, Verdict: testVerdict()})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	res, err := x.Run(func(core.VertexView) {})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Updates != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestNoSyncWCCIdenticalToReference(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 71)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	want := algorithms.ReferenceWCC(g)
	for _, threads := range []int{1, 4, 8} {
		x, res := runNoSync(t, wcc, g, NoSyncOptions{Threads: threads, Mode: edgedata.ModeAtomic})
		if !res.Converged {
			t.Fatalf("threads=%d: did not converge", threads)
		}
		for v := range want {
			if uint32(x.Vertices[v]) != want[v] {
				t.Fatalf("threads=%d: vertex %d = %d, want %d", threads, v, x.Vertices[v], want[v])
			}
		}
	}
}

func TestNoSyncBFSIdenticalToReference(t *testing.T) {
	g, err := gen.Grid(8, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := algorithms.NewBFS(g, 0)
	x, res := runNoSync(t, b, g, NoSyncOptions{Threads: 4, Mode: edgedata.ModeAtomic})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			got := edgedata.ToFloat64(x.Vertices[r*8+c])
			if got != float64(r+c) {
				t.Fatalf("dist[%d,%d] = %v, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestNoSyncSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 72)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 1, 9)
	want := algorithms.ReferenceSSSP(g, 1, s.Weights)
	x, res := runNoSync(t, s, g, NoSyncOptions{Threads: 4, Mode: edgedata.ModeAtomic})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if got := edgedata.ToFloat64(x.Vertices[v]); got != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestNoSyncMaxUpdatesCap(t *testing.T) {
	g, err := gen.Ring(100)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	_, res := runNoSync(t, wcc, g, NoSyncOptions{Threads: 2, Mode: edgedata.ModeAtomic, MaxUpdates: 10})
	if res.Converged {
		t.Fatal("capped run reported convergence")
	}
	if res.Updates > 10 {
		t.Fatalf("Updates = %d beyond cap", res.Updates)
	}
}

func TestNoSyncContextCancel(t *testing.T) {
	g, err := gen.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: workers must stop without draining
	x, err := NewNoSync(g, NoSyncOptions{Threads: 2, Mode: edgedata.ModeAtomic, Context: ctx, Verdict: testVerdict()})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for v := 0; v < g.N(); v++ {
		x.Seed(uint32(v))
	}
	res, err := x.Run(func(c core.VertexView) { c.ScheduleSelf() })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("canceled run reported convergence")
	}
}

// TestNoSyncTerminationStorm is the distributed-termination stress: across
// randomized worker counts and steal seeds, every vertex carries a work
// budget and keeps re-scheduling itself (and waking its ring neighbor, so
// bursts cross worker deques) until the budget is spent. The detector must
// neither quiesce early — a leftover budget means a vertex was still
// scheduled when termination was declared — nor hang, which a watchdog
// bounds.
func TestNoSyncTerminationStorm(t *testing.T) {
	const n = 257 // prime-ish, so ring wakeups stripe across workers
	g, err := gen.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(0xdecaf)
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		threads := 1 + r.Intn(8)
		seed := uint64(trial)*0x9e3779b97f4a7c15 + 1
		budgets := make([]atomic.Int64, n)
		var total int64
		for v := range budgets {
			b := int64(1 + (v*7+trial)%13)
			budgets[v].Store(b)
			total += b
		}
		var tick atomic.Uint64
		update := func(c core.VertexView) {
			for {
				cur := budgets[c.V()].Load()
				if cur == 0 {
					return // woken after exhaustion: legitimate no-op
				}
				if budgets[c.V()].CompareAndSwap(cur, cur-1) {
					if cur-1 > 0 {
						c.ScheduleSelf()
					}
					// Wake the ring successor with a fresh edge value:
					// a cross-vertex (often cross-worker) re-enqueue burst.
					c.SetOutEdgeVal(0, tick.Add(1))
					return
				}
			}
		}
		x, err := NewNoSync(g, NoSyncOptions{
			Threads: threads, Mode: edgedata.ModeAtomic,
			Verdict: testVerdict(), StealSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			x.Seed(uint32(v))
		}
		type outcome struct {
			res NoSyncResult
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := x.Run(update)
			done <- outcome{res, err}
		}()
		var out outcome
		select {
		case out = <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("trial %d (threads=%d seed=%#x): termination detector hung", trial, threads, seed)
		}
		x.Close()
		if out.err != nil {
			t.Fatalf("trial %d: %v", trial, out.err)
		}
		if !out.res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		var left int64
		for v := range budgets {
			if b := budgets[v].Load(); b != 0 {
				left += b
				if b < 0 {
					t.Fatalf("trial %d: vertex %d budget went negative (%d): update overlapped itself", trial, v, b)
				}
			}
		}
		if left != 0 {
			t.Fatalf("trial %d (threads=%d seed=%#x): quiesced early with %d/%d budget unspent", trial, threads, seed, left, total)
		}
		if out.res.Updates < total {
			t.Fatalf("trial %d: %d updates < %d budgeted executions", trial, out.res.Updates, total)
		}
	}
}

// TestNoSyncMonotonicity pins Theorem 2's premise on the tier itself:
// under concurrent barrier-free execution of WCC, every committed vertex
// value only improves under the kernel's Better relation (labels strictly
// decrease or stay). A violation would mean an update read torn or
// resurrected state and committed a regression.
func TestNoSyncMonotonicity(t *testing.T) {
	g, err := gen.RMAT(500, 3000, gen.DefaultRMAT, 75)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	better := func(c, cur uint64) bool { return c < cur } // WCC's merge: min-label
	var violations atomic.Int64
	wrapped := func(c core.VertexView) {
		before := c.Vertex()
		wcc.Update(c)
		after := c.Vertex()
		if after != before && !better(after, before) {
			violations.Add(1)
		}
	}
	e, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wcc.Setup(e)
	v, err := algorithms.NoSyncVerdict(wcc, g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewNoSync(g, NoSyncOptions{Threads: 8, Mode: edgedata.ModeAtomic, Verdict: &v})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.LoadFrom(e); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d committed values regressed under Better", n)
	}
	want := algorithms.ReferenceWCC(g)
	for u := range want {
		if uint32(x.Vertices[u]) != want[u] {
			t.Fatalf("vertex %d = %d, want %d", u, x.Vertices[u], want[u])
		}
	}
}

// TestNoSyncStealsObserved forces a maximally imbalanced dynamic load:
// only the hub of a star is seeded, so the seed cursor is exhausted after
// one claim and the hub's single update posts every spoke onto the
// executing worker's deque — the other seven workers can make progress
// only by stealing. Pin that the steal counters actually move and that
// every spoke still executes exactly once.
func TestNoSyncStealsObserved(t *testing.T) {
	g, err := gen.Star(4096)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewNoSync(g, NoSyncOptions{Threads: 8, Mode: edgedata.ModeAtomic, Verdict: testVerdict()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(x.Close)
	x.Seed(0) // hub only: spokes arrive solely as dynamic posts
	upd := func(vw core.VertexView) {
		if vw.V() == 0 {
			// Fan out: every out-edge write posts its far endpoint onto
			// the executing worker's own deque. Out-edges only — a second
			// post per spoke could legitimately re-execute one that
			// finished in between, breaking the exactly-once check below.
			for k := 0; k < vw.OutDegree(); k++ {
				vw.SetOutEdgeVal(k, 1)
			}
		}
		vw.SetVertex(vw.Vertex() + 1)
		// Yield after each task so the loaded worker cannot drain its
		// whole backlog in one scheduling quantum on a small GOMAXPROCS —
		// the thieves must actually get on CPU for a steal to happen.
		runtime.Gosched()
	}
	res, err := x.Run(upd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Steals == 0 {
		t.Fatal("8-thread hub-seeded star run recorded zero steals")
	}
	for v, w := range x.Vertices {
		if w != 1 {
			t.Fatalf("vertex %d executed %d times, want 1", v, w)
		}
	}
}

// TestAsyncQueueOverflowNoDeadlock is the regression test for the channel
// executor's historical blocking-send hazard: with a full queue, a worker
// re-enqueueing a burst of wakeups blocked inside its own update while
// every other worker blocked the same way — no receiver left, deadlock.
// QueueCap=1 on a star graph (one hub update schedules every leaf at once)
// reproduced it deterministically before the overflow list existed.
func TestAsyncQueueOverflowNoDeadlock(t *testing.T) {
	g, err := gen.Star(512)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	want := algorithms.ReferenceWCC(g)
	for _, threads := range []int{1, 4} {
		e, err := core.NewEngine(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wcc.Setup(e)
		x, err := NewExecutor(g, Options{Threads: threads, Mode: edgedata.ModeAtomic, QueueCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := x.LoadFrom(e); err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			res Result
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := x.Run(wcc.Update)
			done <- outcome{res, err}
		}()
		var out outcome
		select {
		case out = <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("threads=%d: executor deadlocked with QueueCap=1", threads)
		}
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !out.res.Converged {
			t.Fatalf("threads=%d: did not converge", threads)
		}
		for v := range want {
			if uint32(x.Vertices[v]) != want[v] {
				t.Fatalf("threads=%d: vertex %d = %d, want %d", threads, v, x.Vertices[v], want[v])
			}
		}
	}
}

// TestNoSyncReRunAfterStop pins that a budget-stopped run leaves the
// executor reusable: the next Run resets states, deques, and counters.
func TestNoSyncReRunAfterStop(t *testing.T) {
	g, err := gen.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	wcc := algorithms.NewWCC()
	v, err := algorithms.NoSyncVerdict(wcc, g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wcc.Setup(e)
	x, err := NewNoSync(g, NoSyncOptions{Threads: 4, Mode: edgedata.ModeAtomic, MaxUpdates: 5, Verdict: &v})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.LoadFrom(e); err != nil {
		t.Fatal(err)
	}
	if res, err := x.Run(wcc.Update); err != nil || res.Converged {
		t.Fatalf("capped run: res=%+v err=%v", res, err)
	}
	// Reload and lift the cap: must now drain to the true fixed point.
	e2, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wcc.Setup(e2)
	x.opts.MaxUpdates = 1 << 26
	if err := x.LoadFrom(e2); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(wcc.Update)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("re-run did not converge")
	}
	for u := range x.Vertices {
		if x.Vertices[u] != 0 {
			t.Fatalf("vertex %d = %d, want 0", u, x.Vertices[u])
		}
	}
}
