// The ε-aware stopping rule, shared by both barrier-free executors (the
// channel-draining Executor and the work-stealing NoSync): terminate when
// the windowed mean residual per update falls below ε instead of waiting
// for exact quiescence. The rule is admitted per algorithm through
// eligibility.Verdict.EpsilonStop — Theorem-1 fixed-point kernels with
// approximate convergence contracts only (Eedi et al.'s non-blocking
// PageRank is the model); Theorem-2 traversals keep their byte-identical
// fixed points by running to quiescence.
package async

import (
	"math"
	"sync"
	"sync/atomic"

	"ndgraph/internal/obs"
)

// epsilonState is the measurement-and-flag half of the stopping rule. The
// hot path touches only the per-worker epsUpdates counters in the views;
// check runs once per sampleWindow updates per worker and serializes the
// snapshot difference under a mutex.
type epsilonState struct {
	// stopped is the termination flag workers poll between tasks.
	stopped atomic.Bool
	// lastWindow holds the float64 bits of the most recent windowed mean
	// residual, for results and telemetry.
	lastWindow atomic.Uint64
	// span is the number of consecutive sub-ε updates required before the
	// stop arms, set at construction to max(2·sampleWindow, 2·P·|V|).
	span int64

	mu          sync.Mutex
	lastSum     float64
	lastUpdates int64
	lastChanged int64
	subEps      int64
}

// epsilonSpan sizes the required sub-ε run for a graph with n vertices
// drained by p workers. The span must guarantee that every scheduled vertex
// was executed during the sub-ε stretch, or a still-moving wavefront parked
// in one queue could hide behind converged regions spinning zero-delta
// updates. A worker's private FIFO can hold up to n tasks while receiving
// only ~1/p of the execution slots, so one guaranteed full rotation of the
// worst-case queue costs p·n global updates; the stop demands two.
func epsilonSpan(n, p int) int64 {
	span := int64(2 * sampleWindow)
	if s := 2 * int64(p) * int64(n); s > span {
		span = s
	}
	return span
}

// reset clears the state for a new run.
func (e *epsilonState) reset() {
	e.stopped.Store(false)
	e.lastWindow.Store(0)
	e.mu.Lock()
	e.lastSum, e.lastUpdates, e.lastChanged, e.subEps = 0, 0, 0, 0
	e.mu.Unlock()
}

// check measures the windowed residual against eps and arms the stop flag
// when it stays below. Two deliberate conservatisms keep a stop inside the
// ε contract:
//
//   - The residual is the mean movement per CHANGED commit, not per update.
//     Barrier-free schedules re-execute vertices whose inputs did not move;
//     those zero-delta commits would dilute a per-update mean below ε while
//     a handful of still-active vertices move far more than ε each — the
//     diluted mean is a liveness signal, not a convergence one. Dividing by
//     the changed count asks "when a value moves, how far?", which is the
//     quantity the contract bounds. A window with no changed commits at all
//     is exact quiescence over the window and scores 0.
//   - One sub-ε window is not enough: windows are only trusted at
//     sampleWindow commits, and a short sub-ε stretch can be a lull — on a
//     graph larger than the window, a propagation wave parked elsewhere in
//     the work queue is invisible to a window that cycles through only part
//     of the scheduled set. The residual must stay below ε across a run of
//     consecutive windows spanning two guaranteed rotations of the
//     worst-case work queue before the stop arms — the
//     windowed analog of the termination detector's double sweep (see
//     epsilonSpan for why the span scales with workers × vertices).
func (e *epsilonState) check(r *obs.ResidualEstimator, eps float64) {
	e.mu.Lock()
	t := r.Totals()
	dSum := t.Sum - e.lastSum
	dUp := t.Updates - e.lastUpdates
	if dUp < sampleWindow {
		e.mu.Unlock()
		return
	}
	dChanged := t.Changed - e.lastChanged
	e.lastSum, e.lastUpdates, e.lastChanged = t.Sum, t.Updates, t.Changed
	mean := 0.0
	if dChanged > 0 {
		mean = dSum / float64(dChanged)
	}
	e.lastWindow.Store(math.Float64bits(mean))
	stop := false
	if mean < eps {
		if e.subEps += dUp; e.subEps >= e.span {
			stop = true
		}
	} else {
		e.subEps = 0
	}
	e.mu.Unlock()
	if stop {
		e.stopped.Store(true)
	}
}

// finalResidual returns the last measured windowed mean (0 if no window
// ever filled).
func (e *epsilonState) finalResidual() float64 {
	return math.Float64frombits(e.lastWindow.Load())
}
