package async

import (
	"strings"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/metrics"
)

// epsilonPageRank returns a PageRank whose local threshold is zero, so every
// update scatters and reschedules its neighbors: the run never reaches exact
// quiescence and only the ε-aware stopping rule (or the MaxUpdates fuse) can
// terminate it. This isolates the stopping rule from PageRank's own local
// convergence cutoff.
func epsilonPageRank() *algorithms.PageRank {
	return &algorithms.PageRank{Epsilon: 0, Damping: 0.85}
}

func TestNoSyncEpsilonStopPageRank(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 73)
	if err != nil {
		t.Fatal(err)
	}
	pr := epsilonPageRank()
	// Stop three orders of magnitude below the comparison tolerance: a
	// windowed per-commit residual of ε amplifies into rank error of up to
	// ~ max-indegree · d/(1−d) · ε (each in-error feeds the damped gather),
	// a few hundred ε on this graph, so the stop threshold sits well inside.
	const tol = 1e-4
	const eps = tol / 1000
	const cap = int64(1 << 20)
	x, res := runNoSync(t, pr, g, NoSyncOptions{
		Threads:       4,
		Mode:          edgedata.ModeAtomic,
		MaxUpdates:    cap,
		Epsilon:       eps,
		ResidualDelta: pr.ResidualDelta,
	})
	if !res.EpsilonStopped {
		t.Fatalf("ε-stop did not fire: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("ε-stopped run must report convergence: %+v", res)
	}
	if res.Updates >= cap {
		t.Fatalf("run hit the MaxUpdates fuse (%d updates) instead of stopping early", res.Updates)
	}
	if res.FinalResidual < 0 || res.FinalResidual >= eps {
		t.Fatalf("FinalResidual = %g, want in [0, %g)", res.FinalResidual, eps)
	}
	want := algorithms.ReferencePageRank(g, pr.Damping, 1e-12, 10000)
	got := make([]float64, g.N())
	for v := range got {
		got[v] = edgedata.ToFloat64(x.Vertices[v])
	}
	if d := metrics.LInfDistance(got, want); d > tol {
		t.Fatalf("LInf vs deterministic fixed point = %g, want <= %g", d, tol)
	}
}

func TestExecutorEpsilonStopPageRank(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 73)
	if err != nil {
		t.Fatal(err)
	}
	pr := epsilonPageRank()
	v, err := algorithms.NoSyncVerdict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-4
	const eps = tol / 1000 // see TestNoSyncEpsilonStopPageRank on the margin
	const cap = int64(1 << 20)
	x, res := runAsync(t, pr, g, Options{
		Threads:       4,
		Mode:          edgedata.ModeAtomic,
		MaxUpdates:    cap,
		Epsilon:       eps,
		ResidualDelta: pr.ResidualDelta,
		Verdict:       &v,
	})
	if !res.EpsilonStopped {
		t.Fatalf("ε-stop did not fire: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("ε-stopped run must report convergence: %+v", res)
	}
	if res.Updates >= cap {
		t.Fatalf("run hit the MaxUpdates fuse (%d updates) instead of stopping early", res.Updates)
	}
	if res.FinalResidual < 0 || res.FinalResidual >= eps {
		t.Fatalf("FinalResidual = %g, want in [0, %g)", res.FinalResidual, eps)
	}
	want := algorithms.ReferencePageRank(g, pr.Damping, 1e-12, 10000)
	got := make([]float64, g.N())
	for v := range got {
		got[v] = edgedata.ToFloat64(x.Vertices[v])
	}
	if d := metrics.LInfDistance(got, want); d > tol {
		t.Fatalf("LInf vs deterministic fixed point = %g, want <= %g", d, tol)
	}
}

func TestNoSyncEpsilonGateRefusals(t *testing.T) {
	g, _ := gen.Ring(8)
	pr := epsilonPageRank()
	// Theorem-2 verdict: exact fixed points are the contract; ε-stopping
	// must be refused even though the verdict admits barrier-free runs.
	if _, err := NewNoSync(g, NoSyncOptions{
		Threads: 1, Verdict: testVerdict(),
		Epsilon: 1e-6, ResidualDelta: pr.ResidualDelta,
	}); err == nil {
		t.Error("ε-stopping accepted with a Theorem-2 verdict")
	} else if !strings.Contains(err.Error(), "quiescence") {
		t.Errorf("refusal does not explain the exact-quiescence contract: %v", err)
	}
	// Theorem-1 verdict but no residual metric: nothing to measure against ε.
	v, err := algorithms.NoSyncVerdict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNoSync(g, NoSyncOptions{
		Threads: 1, Verdict: &v, Epsilon: 1e-6,
	}); err == nil {
		t.Error("ε-stopping accepted without a ResidualDelta metric")
	}
	// Epsilon off: the same options construct fine (historical behavior).
	x, err := NewNoSync(g, NoSyncOptions{Threads: 1, Verdict: &v})
	if err != nil {
		t.Fatalf("plain construction broken: %v", err)
	}
	x.Close()
}

func TestExecutorEpsilonGateRefusals(t *testing.T) {
	g, _ := gen.Ring(8)
	pr := epsilonPageRank()
	// The channel executor historically runs without any verdict; arming
	// Epsilon must demand the admission ticket.
	if _, err := NewExecutor(g, Options{
		Threads: 1, Epsilon: 1e-6, ResidualDelta: pr.ResidualDelta,
	}); err == nil {
		t.Error("ε-stopping accepted without a verdict")
	}
	if _, err := NewExecutor(g, Options{
		Threads: 1, Verdict: testVerdict(),
		Epsilon: 1e-6, ResidualDelta: pr.ResidualDelta,
	}); err == nil {
		t.Error("ε-stopping accepted with a Theorem-2 verdict")
	}
	v, err := algorithms.NoSyncVerdict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(g, Options{
		Threads: 1, Verdict: &v, Epsilon: 1e-6,
	}); err == nil {
		t.Error("ε-stopping accepted without a ResidualDelta metric")
	}
	// Plain runs to quiescence keep the ungated construction path.
	if _, err := NewExecutor(g, Options{Threads: 1}); err != nil {
		t.Fatalf("plain construction broken: %v", err)
	}
}
