// Package async implements the *pure* asynchronous execution model the
// paper defers to future work ("extending the applicability of results in
// this paper to more scenarios, such as pure asynchronous model"): no
// iterations, no barriers — worker goroutines drain a shared work queue of
// update tasks, and an update that writes an incident edge immediately
// enqueues the opposite endpoint. The GRACE result the paper cites (a
// synchronous implementation of the asynchronous model has comparable
// runtime to pure asynchrony) can be checked empirically by comparing this
// executor against the barrier-based engine.
//
// A vertex appears at most once in the queue at any moment (a pending
// bitset dedups enqueues); clearing the pending bit *before* running the
// update guarantees that a write arriving mid-update re-enqueues the
// vertex, so no wakeup is lost. A second bitset of *active* claims keeps
// two workers from running the same vertex's update concurrently — the
// system model never overlaps an update with itself, and without the
// claim a re-enqueued vertex could race its still-running update on the
// vertex data word.
package async

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/fault"
	"ndgraph/internal/frontier"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// sampleWindow is the per-worker update count between telemetry samples.
// Barrier-free executors have no iteration boundary to hang an event on, so
// each worker emits one event per window of updates it executes.
const sampleWindow = 4096

// Options configures an Executor.
type Options struct {
	// Threads is the worker count; < 1 defaults to GOMAXPROCS.
	Threads int
	// Mode is the edge-store atomicity method. Multi-worker executors
	// refuse ModeSequential.
	Mode edgedata.Mode
	// MaxUpdates caps the total update count (the barrier-free analog of
	// an iteration cap); 0 means 1<<26. Exceeding it stops the run with
	// Converged == false.
	MaxUpdates int64
	// Context, when non-nil, cancels the run: workers observe cancellation
	// before each update, stop scheduling new work, drain the queue, and
	// Run returns the partial Result plus the context's error.
	Context context.Context
	// Inject, when non-nil, arms the fault injector for the duration of
	// the run (see package fault); faulted edges re-enqueue both endpoints.
	Inject *fault.Injector
	// Observer, when non-nil, receives one telemetry event per worker per
	// sampleWindow updates plus a final aggregate at quiescence.
	Observer *obs.Observer
	// Trace, when non-nil, records one event per executed update (worker,
	// vertex, write count, committed vertex value). Barrier-free runs have
	// no iterations, so every event records iteration 0; capture order is
	// the real execution order the queue produced.
	Trace *trace.Recorder
	// QueueCap bounds the shared channel's capacity; 0 picks the default
	// min(N + Threads + 1, 1<<14). Historically the queue was always
	// allocated at N+Threads+1 — a per-Run O(N) allocation — because a
	// schedule was an unconditional blocking send: with any smaller
	// capacity, a worker whose update re-enqueued vertices into a full
	// queue blocked inside the update while every other worker could block
	// the same way, deadlocking the run. Sends now spill to an overflow
	// list instead of blocking (see Executor.send), so any capacity ≥ 1 is
	// safe and the default stays modest.
	QueueCap int
	// Epsilon, when > 0, arms the ε-aware stopping rule (see
	// NoSyncOptions.Epsilon): the run terminates once the windowed mean
	// residual per changed commit stays below Epsilon across consecutive
	// windows spanning two full passes of the graph, instead of draining
	// to exact quiescence. Requires Verdict (gated through
	// Verdict.EpsilonStop) and ResidualDelta.
	Epsilon float64
	// ResidualDelta maps a committed vertex transition to its residual
	// contribution; mandatory when Epsilon > 0, and used when set to
	// sharpen the telemetry Residual gauge.
	ResidualDelta func(old, new uint64) float64
	// Verdict is the ε-stopping admission ticket, only consulted when
	// Epsilon > 0 (plain runs to quiescence keep the executor's historical
	// ungated construction).
	Verdict *eligibility.Verdict
}

// Result summarizes a barrier-free run.
type Result struct {
	Updates   int64
	Converged bool
	// EpsilonStopped reports that the ε-aware stopping rule terminated the
	// run before exact quiescence; Converged remains true.
	EpsilonStopped bool
	// FinalResidual is the last measured windowed mean residual per changed
	// commit (0 when no residual metric was armed or no window filled).
	FinalResidual float64
	Duration      time.Duration
}

// Executor owns the shared state of one barrier-free computation.
type Executor struct {
	g    *graph.Graph
	opts Options

	// Edges and Vertices mirror core.Engine's layout so algorithm Setup
	// state can be transplanted with LoadFrom.
	Edges    edgedata.Store
	Vertices []uint64

	pending *frontier.Bitset
	active  *frontier.Bitset
	queue   chan int
	// overflow holds scheduled vertices that found the channel full; the
	// pair (append + refill) under ovMu plus a refill after every receive
	// maintains the invariant "channel full OR overflow empty", so no task
	// can strand while workers sleep on an empty channel. ovCount mirrors
	// len(overflow) for a lock-free fast path.
	ovMu     sync.Mutex
	overflow []int
	ovCount  atomic.Int64
	inFlite  atomic.Int64
	updates  atomic.Int64
	stopped  atomic.Bool
	samples  atomic.Int64 // telemetry sample sequence
	seeds    []int

	// pool hosts the drain loops: repeated Runs reuse the same parked
	// workers instead of spawning Threads goroutines per call.
	pool *sched.Pool
	// views holds one preallocated VertexView adapter per worker.
	views []view

	// clock/residual/eps are the staleness-and-convergence observation
	// hooks (nil / untouched when observation and ε-stopping are off); see
	// nosync.go for the field-by-field story.
	clock    *obs.DelayClock
	residual *obs.ResidualEstimator
	eps      epsilonState

	// panicked records the first recovered UpdateFunc panic; Run surfaces
	// it as an error instead of letting a worker kill the process.
	panicked atomic.Pointer[updatePanic]
}

// updatePanic captures a recovered UpdateFunc panic.
type updatePanic struct {
	vertex uint32
	value  any
	stack  []byte
}

// NewExecutor builds a barrier-free executor for g.
func NewExecutor(g *graph.Graph, opts Options) (*Executor, error) {
	if g == nil {
		return nil, fmt.Errorf("async: nil graph")
	}
	if opts.Epsilon > 0 {
		if err := opts.Verdict.EpsilonStop(); err != nil {
			return nil, fmt.Errorf("async: %w", err)
		}
		if opts.ResidualDelta == nil {
			return nil, fmt.Errorf("async: ε-stopping requires a ResidualDelta metric (the algorithm's |Δvalue| per commit)")
		}
	}
	if opts.Threads < 1 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Threads > 1 && opts.Mode == edgedata.ModeSequential {
		return nil, fmt.Errorf("async: %d workers require a concurrent edge-data mode", opts.Threads)
	}
	if opts.MaxUpdates <= 0 {
		opts.MaxUpdates = 1 << 26
	}
	x := &Executor{
		g:        g,
		opts:     opts,
		Edges:    edgedata.New(opts.Mode, g.M()),
		Vertices: make([]uint64, g.N()),
		pending:  frontier.NewBitset(g.N()),
		active:   frontier.NewBitset(g.N()),
		pool:     sched.NewPoolNamed(opts.Threads, "async"),
		views:    make([]view, opts.Threads),
	}
	for i := range x.views {
		x.views[i].x = x
		x.views[i].worker = i
	}
	if opts.Inject != nil {
		x.Edges = opts.Inject.Wrap(x.Edges)
	}
	if opts.Epsilon > 0 || opts.Observer != nil {
		x.residual = obs.NewResidualEstimator(opts.Threads, opts.ResidualDelta)
	}
	x.eps.span = epsilonSpan(g.N(), opts.Threads)
	if opts.Observer != nil {
		// One epoch per executed update; one stamp slot per edge word.
		x.clock = obs.NewDelayClock(opts.Threads, int(g.M()))
		opts.Observer.SetDelaySource(obs.EngineAsync, x.clock.Hist)
	}
	return x, nil
}

// Graph returns the executor's graph.
func (x *Executor) Graph() *graph.Graph { return x.g }

// Close releases the executor's persistent worker pool. The executor stays
// usable — a later Run re-creates the pool — but Close makes the release
// deterministic instead of waiting for the pool's finalizer.
func (x *Executor) Close() {
	if x.pool != nil {
		x.pool.Close()
		x.pool = nil
	}
}

// Seed marks v as initially scheduled.
func (x *Executor) Seed(v uint32) { x.seeds = append(x.seeds, int(v)) }

// LoadFrom transplants initial state prepared by an algorithm's Setup on a
// barrier-based engine: vertex words, edge words, and the scheduled set
// become this executor's initial state. The engine must be freshly set up
// (not yet run) and share the same graph.
func (x *Executor) LoadFrom(e *core.Engine) error {
	if e.Graph() != x.g {
		return fmt.Errorf("async: LoadFrom engine holds a different graph")
	}
	copy(x.Vertices, e.Vertices)
	snap := e.Edges.Snapshot()
	for i, w := range snap {
		x.Edges.Store(uint32(i), w)
	}
	x.seeds = x.seeds[:0]
	for _, v := range e.Frontier().Members() {
		x.seeds = append(x.seeds, v)
	}
	return nil
}

// schedule enqueues v unless it is already pending or the run is stopping.
func (x *Executor) schedule(v int) {
	if x.stopped.Load() {
		return
	}
	if x.pending.SetAtomic(v) {
		x.inFlite.Add(1)
		x.send(v)
	}
}

// send delivers a scheduled vertex without ever blocking the caller. The
// fast path is a non-blocking channel send; when the channel is full the
// vertex joins the overflow list, and the same critical section refills
// the channel so the "channel full OR overflow empty" invariant is
// restored before the lock drops. Blocking here deadlocked the old
// executor under small queue capacities: the sender is a worker holding an
// active-vertex claim mid-update, so with all workers blocked in sends
// nobody was left to receive.
func (x *Executor) send(v int) {
	select {
	case x.queue <- v:
		return
	default:
	}
	x.ovMu.Lock()
	x.overflow = append(x.overflow, v)
	x.fillLocked()
	x.ovMu.Unlock()
}

// fill drains overflow into the channel; called by workers after each
// receive (every receive frees exactly the capacity one overflow task
// needs). The atomic count keeps the common empty-overflow case lock-free.
func (x *Executor) fill() {
	if x.ovCount.Load() == 0 {
		return
	}
	x.ovMu.Lock()
	x.fillLocked()
	x.ovMu.Unlock()
}

// fillLocked moves overflow tasks into the channel until one side is
// exhausted. Caller holds ovMu.
func (x *Executor) fillLocked() {
	for len(x.overflow) > 0 {
		select {
		case x.queue <- x.overflow[len(x.overflow)-1]:
			x.overflow = x.overflow[:len(x.overflow)-1]
		default:
			x.ovCount.Store(int64(len(x.overflow)))
			return
		}
	}
	x.ovCount.Store(0)
}

// Run drains the computation to quiescence and returns statistics. The
// update function receives views satisfying core.VertexView, so the same
// algorithm implementations run under both execution models.
func (x *Executor) Run(update core.UpdateFunc) (Result, error) {
	if update == nil {
		return Result{}, fmt.Errorf("async: nil update function")
	}
	start := time.Now()
	res := Result{Converged: true}
	if len(x.seeds) == 0 {
		return res, nil
	}
	x.panicked.Store(nil)
	if inj := x.opts.Inject; inj != nil {
		// Heal rule: a faulted edge re-enqueues both endpoints, the
		// barrier-free analog of the task-generation retry (see fault).
		inj.Arm(func(e uint32) {
			src, dst := x.g.EdgeEndpoints(e)
			x.schedule(int(src))
			x.schedule(int(dst))
		})
		defer inj.Disarm()
	}
	if x.pool == nil { // re-create after Close
		x.pool = sched.NewPoolNamed(x.opts.Threads, "async")
	}
	// Queue capacity: a vertex can be pending at most once, so N+Threads+1
	// can never overflow — but allocating that per Run is O(N). The
	// default caps the channel at 16Ki slots and lets the overflow list
	// absorb the (rare) excess on larger graphs.
	cap := x.opts.QueueCap
	if cap <= 0 {
		if cap = x.g.N() + x.opts.Threads + 1; cap > 1<<14 {
			cap = 1 << 14
		}
	}
	x.queue = make(chan int, cap)
	x.overflow = x.overflow[:0]
	x.ovCount.Store(0)
	x.stopped.Store(false)
	x.inFlite.Store(0)
	x.updates.Store(0)
	x.clock.Reset()
	x.residual.Reset()
	x.eps.reset()
	x.opts.Observer.SetPhase("async: running")
	for _, v := range x.seeds {
		x.schedule(v)
	}
	if x.inFlite.Load() == 0 {
		return res, nil
	}

	x.pool.RunEach(func(w int) {
		vw := &x.views[w]
		for v := range x.queue {
			// The receive freed a slot; restore "channel full OR overflow
			// empty" before doing anything that could block on this task.
			x.fill()
			x.pending.ClearAtomic(v)
			if ctx := x.opts.Context; ctx != nil && ctx.Err() != nil {
				// Cancellation: stop running updates and scheduling new
				// work; the queue drains through the in-flight counter.
				x.stopped.Store(true)
			}
			if !x.active.SetAtomic(v) {
				// f(v) is running on another worker right now. Repost
				// the wakeup (transferring our in-flight unit) unless
				// someone already re-pended it, in which case this
				// unit is redundant and simply retires.
				if x.pending.SetAtomic(v) {
					x.send(v)
					runtime.Gosched()
					continue
				}
				if x.inFlite.Add(-1) == 0 {
					close(x.queue)
				}
				continue
			}
			switch {
			case x.stopped.Load():
				// Draining a stopped run: retire the task unrun.
			case x.opts.Epsilon > 0 && x.eps.stopped.Load():
				// ε-stopped: the values are within the contract; retire the
				// remaining queue unrun (Converged stays true).
			case x.updates.Add(1) > x.opts.MaxUpdates:
				x.stopped.Store(true)
			default:
				x.clock.Advance()
				x.runOne(vw, update, uint32(v))
				if x.opts.Epsilon > 0 {
					if vw.epsUpdates++; vw.epsUpdates >= sampleWindow {
						vw.epsUpdates = 0
						x.eps.check(x.residual, x.opts.Epsilon)
					}
				}
				if o := x.opts.Observer; o != nil {
					if vw.nUpdates++; vw.nUpdates >= sampleWindow {
						x.emitSample(o, vw, 0)
					}
				}
			}
			x.active.ClearAtomic(v)
			if x.inFlite.Add(-1) == 0 {
				close(x.queue)
			}
		}
	})
	res.Updates = x.updates.Load()
	if x.stopped.Load() {
		res.Converged = false
		if res.Updates > x.opts.MaxUpdates {
			res.Updates = x.opts.MaxUpdates
		}
	}
	res.EpsilonStopped = x.eps.stopped.Load()
	res.FinalResidual = x.eps.finalResidual()
	res.Duration = time.Since(start)
	if o := x.opts.Observer; o != nil {
		// Final aggregate: fold every worker's leftover window into one
		// quiescence event. The workers are parked, so their view counters
		// are safe to read and reset here.
		agg := &x.views[0]
		for i := 1; i < len(x.views); i++ {
			vw := &x.views[i]
			agg.nUpdates += vw.nUpdates
			agg.nReads += vw.nReads
			agg.nWrites += vw.nWrites
			vw.nUpdates, vw.nReads, vw.nWrites = 0, 0, 0
		}
		x.emitSample(o, agg, res.Duration.Nanoseconds())
		switch {
		case res.EpsilonStopped:
			o.SetPhase("async: ε-stopped")
		case res.Converged:
			o.SetPhase("async: quiescent")
		default:
			o.SetPhase("async: stopped")
		}
	}
	if p := x.panicked.Load(); p != nil {
		return res, fmt.Errorf("async: update function panicked on vertex %d: %v\n%s", p.vertex, p.value, p.stack)
	}
	if ctx := x.opts.Context; ctx != nil && ctx.Err() != nil && !res.Converged {
		return res, ctx.Err()
	}
	return res, nil
}

// runOne executes one update, converting a panic into a recorded failure
// that stops the run instead of crashing the process.
func (x *Executor) runOne(view *view, update core.UpdateFunc, v uint32) {
	defer func() {
		if r := recover(); r != nil {
			x.panicked.CompareAndSwap(nil, &updatePanic{vertex: v, value: r, stack: debug.Stack()})
			x.stopped.Store(true)
		}
	}()
	view.bind(v)
	update(view)
	if t := x.opts.Trace; t != nil {
		t.Record(0, view.worker, v, view.uWrites, x.Vertices[v])
	}
}

// emitSample emits one telemetry sample from worker-view vw's accumulated
// window and resets it. The pending-task count doubles as the scheduled-set
// gauge and the convergence residual — it trends to zero at quiescence.
// Only vw's owning worker (or the post-drain flush) may call this.
func (x *Executor) emitSample(o *obs.Observer, vw *view, durationNs int64) {
	inflight := x.inFlite.Load()
	resid := float64(inflight) / float64(x.g.N())
	if r := x.residual; r != nil && x.opts.ResidualDelta != nil {
		t := r.Totals()
		if dUp := t.Updates - vw.emittedResidUpdates; dUp > 0 {
			resid = (t.Sum - vw.emittedResidSum) / float64(dUp)
			vw.emittedResidSum, vw.emittedResidUpdates = t.Sum, t.Updates
		}
	}
	var p50, p99, dmax int64
	if cl := x.clock; cl != nil {
		h := cl.Hist()
		p50, p99, dmax = h.Quantile(0.50), h.Quantile(0.99), h.Max()
	}
	o.Emit(obs.Event{
		Engine:        obs.EngineAsync,
		Iter:          x.samples.Add(1) - 1,
		Scheduled:     inflight,
		Updates:       vw.nUpdates,
		EdgeReads:     vw.nReads,
		EdgeWrites:    vw.nWrites,
		RWConflicts:   -1,
		WWConflicts:   -1,
		Residual:      resid,
		DurationNanos: durationNs,
		DelayP50:      p50,
		DelayP99:      p99,
		DelayMax:      dmax,
	})
	vw.nUpdates, vw.nReads, vw.nWrites = 0, 0, 0
}

// view adapts the executor to core.VertexView. Unlike the barrier-based
// Ctx there is no "next iteration": writes schedule the opposite endpoint
// onto the live queue immediately.
type view struct {
	x      *Executor
	worker int
	v      uint32
	inSrc  []uint32
	inIdx  []uint32
	outDst []uint32
	outLo  uint32

	// nUpdates/nReads/nWrites accumulate this worker's telemetry window;
	// worker-private, drained by emitSample.
	nUpdates, nReads, nWrites int64
	// epsUpdates triggers the windowed ε check; emittedResid* snapshot the
	// global residual totals at this worker's last telemetry emit.
	epsUpdates          int64
	emittedResidSum     float64
	emittedResidUpdates int64
	// uWrites counts edge writes of the currently bound update, for the
	// execution-path trace.
	uWrites int
}

func (c *view) bind(v uint32) {
	g := c.x.g
	c.v = v
	c.inSrc = g.InNeighbors(v)
	c.inIdx = g.InEdgeIndices(v)
	c.outDst = g.OutNeighbors(v)
	c.outLo, _ = g.OutEdgeIndex(v)
	c.uWrites = 0
}

func (c *view) V() uint32      { return c.v }
func (c *view) Vertex() uint64 { return c.x.Vertices[c.v] }
func (c *view) SetVertex(w uint64) {
	if r := c.x.residual; r != nil {
		r.Observe(c.worker, c.x.Vertices[c.v], w)
	}
	c.x.Vertices[c.v] = w
}
func (c *view) InDegree() int           { return len(c.inSrc) }
func (c *view) OutDegree() int          { return len(c.outDst) }
func (c *view) InNeighbor(k int) uint32 { return c.inSrc[k] }
func (c *view) OutNeighbor(k int) uint32 {
	return c.outDst[k]
}
func (c *view) InEdgeID(k int) uint32  { return c.inIdx[k] }
func (c *view) OutEdgeID(k int) uint32 { return c.outLo + uint32(k) }
func (c *view) InEdgeVal(k int) uint64 {
	c.nReads++
	e := c.inIdx[k]
	if cl := c.x.clock; cl != nil {
		cl.ObserveRead(c.worker, e)
	}
	return c.x.Edges.Load(e)
}
func (c *view) OutEdgeVal(k int) uint64 {
	c.nReads++
	e := c.outLo + uint32(k)
	if cl := c.x.clock; cl != nil {
		cl.ObserveRead(c.worker, e)
	}
	return c.x.Edges.Load(e)
}
func (c *view) ScheduleSelf() { c.x.schedule(int(c.v)) }
func (c *view) Yield()        {}

func (c *view) SetInEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	e := c.inIdx[k]
	c.x.Edges.Store(e, w)
	if cl := c.x.clock; cl != nil {
		cl.Stamp(e)
	}
	c.x.schedule(int(c.inSrc[k]))
}

func (c *view) SetOutEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	e := c.outLo + uint32(k)
	c.x.Edges.Store(e, w)
	if cl := c.x.clock; cl != nil {
		cl.Stamp(e)
	}
	c.x.schedule(int(c.outDst[k]))
}

var _ core.VertexView = (*view)(nil)
