package async

import (
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/trace"
)

// The async executor records one trace event per executed update, tagged
// with the executing worker.
func TestAsyncTraceRecordsUpdates(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 77)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 18)
	x, res := runAsync(t, algorithms.NewWCC(), g, Options{
		Threads: 4, Mode: edgedata.ModeAtomic, Trace: rec,
	})
	defer x.Close()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if rec.Total() != res.Updates {
		t.Fatalf("trace recorded %d events for %d updates", rec.Total(), res.Updates)
	}
	// Worker ids must be valid; whether more than one worker got to the
	// queue before it drained is timing-dependent, so it is not asserted.
	for _, ev := range rec.Events() {
		if int(ev.Vertex) >= g.N() {
			t.Fatalf("event names vertex %d outside the graph", ev.Vertex)
		}
		if ev.Worker < 0 || ev.Worker >= 4 {
			t.Fatalf("event carries worker %d outside the pool", ev.Worker)
		}
	}
}
