// Recovery tests: the executable form of the paper's Theorem 2. Monotone
// algorithms (WCC, SSSP/BFS) must reconverge to the exact sequential fixed
// point under injected torn writes, dropped writes, and stale reads (each
// fault healed by rescheduling the edge's endpoints — the task-generation
// retry a real racing competitor provides); the fixed-point family
// (PageRank, Theorem 1) must still converge to the same fixed point; the
// non-monotone Coloring must demonstrably NOT recover.
package fault_test

import (
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/fault"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

func testGraph(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// corruptingPlan injects all three value-corrupting fault kinds with a
// finite budget, so the run eventually proceeds fault-free and terminates.
func corruptingPlan(seed uint64) fault.Plan {
	return fault.Plan{
		Seed:      seed,
		TornWrite: 0.02,
		DropWrite: 0.05,
		StaleRead: 0.05,
		MaxFaults: 5000,
	}
}

func TestWCCReconvergesUnderInjection(t *testing.T) {
	g := testGraph(t, 101)
	wcc := algorithms.NewWCC()
	want := algorithms.ReferenceWCC(g)
	var injected int64
	for _, seed := range []uint64{1, 2, 3} {
		inj := fault.MustInjector(corruptingPlan(seed))
		e, res, err := algorithms.Run(wcc, g, core.Options{
			Scheduler: sched.Nondeterministic,
			Threads:   4,
			Mode:      edgedata.ModeAtomic,
			Inject:    inj,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge (%v)", seed, inj.Stats())
		}
		got := wcc.Components(e)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d (%v): vertex %d = %d, want %d",
					seed, inj.Stats(), v, got[v], want[v])
			}
		}
		injected += inj.Stats().Total()
	}
	if injected == 0 {
		t.Fatal("no faults injected: the recovery test exercised nothing")
	}
}

func TestSSSPReconvergesUnderInjection(t *testing.T) {
	g := testGraph(t, 102)
	ss := algorithms.NewSSSP(g, 0, 99)
	want := algorithms.ReferenceSSSP(g, 0, ss.Weights)
	var injected int64
	for _, seed := range []uint64{4, 5, 6} {
		inj := fault.MustInjector(corruptingPlan(seed))
		e, res, err := algorithms.Run(ss, g, core.Options{
			Scheduler: sched.Nondeterministic,
			Threads:   4,
			Mode:      edgedata.ModeAtomic,
			Inject:    inj,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge (%v)", seed, inj.Stats())
		}
		got := ss.Distances(e)
		for v := range want {
			// Integer weights: distances must match the Dijkstra oracle
			// exactly, torn floats included (tears of small-integer float64
			// words reproduce exactly the old or the new value).
			if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("seed %d (%v): vertex %d dist %v, want %v",
					seed, inj.Stats(), v, got[v], want[v])
			}
		}
		injected += inj.Stats().Total()
	}
	if injected == 0 {
		t.Fatal("no faults injected: the recovery test exercised nothing")
	}
}

func TestBFSReconvergesUnderInjection(t *testing.T) {
	g := testGraph(t, 103)
	bfs := algorithms.NewBFS(g, 1)
	want := algorithms.ReferenceSSSP(g, 1, bfs.Weights)
	inj := fault.MustInjector(corruptingPlan(8))
	e, res, err := algorithms.Run(bfs, g, core.Options{
		Scheduler: sched.Nondeterministic,
		Threads:   4,
		Mode:      edgedata.ModeAtomic,
		Inject:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge (%v)", inj.Stats())
	}
	got := bfs.Distances(e)
	for v := range want {
		if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("vertex %d dist %v, want %v (%v)", v, got[v], want[v], inj.Stats())
		}
	}
}

// PageRank is the Theorem 1 case, and the injection menu is matched to the
// theorem: stale reads and delays are exactly the read-write overlap
// Theorem 1 tolerates, so the run must land on the same fixed point up to
// the local convergence tolerance. Dropped writes are deliberately NOT
// injected — a lost update is a write-write fault, Theorem 2 territory,
// and PageRank's locally-converged vertices never republish a dropped
// contribution (its real executions never produce WW conflicts, which is
// precisely why its eligibility rests on Theorem 1 alone).
func TestPageRankConvergesUnderInjection(t *testing.T) {
	g := testGraph(t, 104)
	pr := algorithms.NewPageRank(1e-7)
	eRef, _, err := algorithms.Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	want := pr.Ranks(eRef)

	inj := fault.MustInjector(fault.Plan{Seed: 21, StaleRead: 0.05, Delay: 0.05, MaxFaults: 3000})
	e, res, err := algorithms.Run(pr, g, core.Options{
		Scheduler: sched.Nondeterministic,
		Threads:   4,
		Mode:      edgedata.ModeAtomic,
		Inject:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge (%v)", inj.Stats())
	}
	got := pr.Ranks(e)
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > 1e-2 {
			t.Fatalf("vertex %d rank %v, reference %v (Δ %v, faults %v)",
				v, got[v], want[v], d, inj.Stats())
		}
	}
	if inj.Stats().Total() == 0 {
		t.Fatal("no faults injected")
	}
}

// coloringStateDamage counts edges whose published half disagrees with the
// final color of the publishing endpoint. A fault-free run always converges
// with zero damage (a vertex that changes color republishes every incident
// half, so its last publish matches its final color); under the monotone
// algorithms above, faults leave zero damage too — the whole point of the
// recovery tests. Surviving damage is therefore unrepaired corruption.
func coloringStateDamage(e *core.Engine, colors []uint32) int {
	g := e.Graph()
	snap := e.Edges.Snapshot()
	damage := 0
	for idx, w := range snap {
		src, dst := g.EdgeEndpoints(uint32(idx))
		if uint32(w) != colors[src] || uint32(w>>32) != colors[dst] {
			damage++
		}
	}
	return damage
}

// Coloring is the negative control: non-monotone, so Theorem 2's retry
// argument does not apply. Injected stale reads and torn writes corrupt
// the packed color halves, and a rescheduled vertex whose own color still
// matches its vertex word early-exits without republishing — so the
// corruption survives to convergence (and with enough of it, adjacent
// vertices end up sharing a color). The run is otherwise deterministic —
// single-threaded Gauss–Seidel — so every surviving defect is attributable
// to injection alone.
func TestColoringDoesNotRecover(t *testing.T) {
	g := testGraph(t, 105)
	col := algorithms.NewColoring()
	damaged, invalid := 0, 0
	var injected int64
	for seed := uint64(1); seed <= 8; seed++ {
		inj := fault.MustInjector(fault.Plan{
			Seed:      seed,
			TornWrite: 0.10,
			DropWrite: 0.10,
			StaleRead: 0.20,
			MaxFaults: 20000,
		})
		e, res, err := algorithms.Run(col, g, core.Options{
			Scheduler: sched.Deterministic,
			MaxIters:  500,
			Inject:    inj,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		injected += inj.Stats().Total()
		colors := col.ColorsOf(e)
		if !res.Converged || !algorithms.ValidColoring(g, colors) {
			invalid++
		}
		if coloringStateDamage(e, colors) > 0 {
			damaged++
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected")
	}
	if damaged == 0 {
		t.Fatal("coloring left no corrupted edge state under any injection seed; expected the non-monotone counter-example to retain damage")
	}
	t.Logf("coloring: %d/8 seeds left corrupted edge state, %d/8 produced an invalid or non-converged coloring", damaged, invalid)
}
