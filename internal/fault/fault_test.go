package fault

import (
	"strings"
	"testing"

	"ndgraph/internal/edgedata"
)

func mustInj(t *testing.T, p Plan) *Injector {
	t.Helper()
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{TornWrite: -0.1},
		{TornWrite: 1},
		{DropWrite: 1.5},
		{StaleRead: -1},
		{Delay: 1},
		{MaxFaults: -1},
		{CrashIter: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %+v accepted", p)
		}
		if _, err := NewInjector(p); err == nil {
			t.Errorf("NewInjector accepted %+v", p)
		}
	}
	good := Plan{Seed: 1, TornWrite: 0.5, DropWrite: 0.99, StaleRead: 0, Delay: 0.1, MaxFaults: 10, CrashIter: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestDisarmedTransparent(t *testing.T) {
	in := mustInj(t, Plan{Seed: 7, TornWrite: 0.9, DropWrite: 0.9, StaleRead: 0.9, Delay: 0.9})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 16))
	for e := uint32(0); e < 16; e++ {
		st.Store(e, uint64(e)*3+1)
	}
	for e := uint32(0); e < 16; e++ {
		if got := st.Load(e); got != uint64(e)*3+1 {
			t.Fatalf("disarmed Load(%d) = %d, want %d", e, got, uint64(e)*3+1)
		}
	}
	if s := in.Stats(); s.Total() != 0 || s.Delays != 0 {
		t.Fatalf("disarmed injector committed faults: %v", s)
	}
}

func TestDropWriteKeepsOldValue(t *testing.T) {
	in := mustInj(t, Plan{Seed: 3, DropWrite: 0.7})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 64))
	st.Fill(1)
	var healed []uint32
	in.Arm(func(e uint32) { healed = append(healed, e) })
	defer in.Disarm()
	for e := uint32(0); e < 64; e++ {
		st.Store(e, 9)
	}
	s := in.Stats()
	if s.DropWrites == 0 {
		t.Fatal("no drops at probability 0.7 over 64 stores")
	}
	dropped := 0
	for e := uint32(0); e < 64; e++ {
		switch w := st.Snapshot()[e]; w {
		case 1:
			dropped++
		case 9:
		default:
			t.Fatalf("edge %d holds %d, want 1 (dropped) or 9 (committed)", e, w)
		}
	}
	if int64(dropped) != s.DropWrites {
		t.Fatalf("%d words kept old value, stats say %d drops", dropped, s.DropWrites)
	}
	if int64(len(healed)) != s.Healed || s.Healed < s.DropWrites {
		t.Fatalf("healed %d hook calls, stats %d, drops %d", len(healed), s.Healed, s.DropWrites)
	}
}

func TestTornWriteMixesHalves(t *testing.T) {
	const old, new = uint64(0x1111111122222222), uint64(0xAAAAAAAABBBBBBBB)
	mixes := map[uint64]bool{
		new: true,
		(old &^ uint64(0xFFFFFFFF)) | (new & 0xFFFFFFFF): true,
		(new &^ uint64(0xFFFFFFFF)) | (old & 0xFFFFFFFF): true,
	}
	in := mustInj(t, Plan{Seed: 11, TornWrite: 0.6})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 64))
	st.Fill(old)
	in.Arm(func(uint32) {})
	defer in.Disarm()
	for e := uint32(0); e < 64; e++ {
		st.Store(e, new)
	}
	if s := in.Stats(); s.TornWrites == 0 {
		t.Fatal("no tears at probability 0.6 over 64 stores")
	}
	for e := uint32(0); e < 64; e++ {
		if w := st.Snapshot()[e]; !mixes[w] {
			t.Fatalf("edge %d holds %#x: not the new value or an old/new half mix", e, w)
		}
	}
}

func TestStaleReadSeesPreviousValue(t *testing.T) {
	in := mustInj(t, Plan{Seed: 5, StaleRead: 0.6})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 4))
	st.Fill(5)
	in.Arm(func(uint32) {})
	defer in.Disarm()
	st.Store(0, 7) // prev[0] = 5
	sawStale := false
	for i := 0; i < 50; i++ {
		switch got := st.Load(0); got {
		case 7:
		case 5:
			sawStale = true
		default:
			t.Fatalf("Load returned %d, want current 7 or previous 5", got)
		}
	}
	if !sawStale {
		t.Fatal("no stale read at probability 0.6 over 50 loads")
	}
	if s := in.Stats(); s.StaleReads == 0 {
		t.Fatalf("stats recorded no stale reads: %v", s)
	}
}

func TestFillResetsShadow(t *testing.T) {
	in := mustInj(t, Plan{Seed: 9, StaleRead: 0.999999})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 4))
	st.Store(2, 42) // disarmed: shadow collapses onto 42
	st.Fill(3)
	in.Arm(func(uint32) {})
	defer in.Disarm()
	for i := 0; i < 20; i++ {
		if got := st.Load(2); got != 3 {
			t.Fatalf("post-Fill Load = %d, want 3 (stale shadow must reset)", got)
		}
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := mustInj(t, Plan{Seed: 2, DropWrite: 0.9, StaleRead: 0.9, MaxFaults: 5})
	st := in.Wrap(edgedata.New(edgedata.ModeSequential, 256))
	in.Arm(func(uint32) {})
	defer in.Disarm()
	for e := uint32(0); e < 256; e++ {
		st.Store(e, 1)
		st.Load(e)
	}
	if s := in.Stats(); s.Total() > 5 {
		t.Fatalf("budget 5 exceeded: %v", s)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		in := mustInj(t, Plan{Seed: 77, TornWrite: 0.1, DropWrite: 0.1, StaleRead: 0.1, Delay: 0.1})
		st := in.Wrap(edgedata.New(edgedata.ModeSequential, 128))
		in.Arm(func(uint32) {})
		defer in.Disarm()
		for e := uint32(0); e < 128; e++ {
			st.Store(e, uint64(e))
			st.Load(e)
			st.Store(e, uint64(e)+1)
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same plan, same operations, different stats: %v vs %v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("replay test injected nothing")
	}
}

func TestCrashNowFiresOnce(t *testing.T) {
	in := mustInj(t, Plan{CrashIter: 4})
	in.Arm(func(uint32) {})
	defer in.Disarm()
	for iter := 0; iter < 4; iter++ {
		if in.CrashNow(iter) {
			t.Fatalf("crash fired at iteration %d, planned for 4", iter)
		}
	}
	if !in.CrashNow(4) {
		t.Fatal("crash did not fire at the planned iteration")
	}
	if in.CrashNow(4) {
		t.Fatal("crash fired twice")
	}
	if s := in.Stats(); s.Crashes != 1 {
		t.Fatalf("stats crashes = %d, want 1", s.Crashes)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{TornWrites: 1, DropWrites: 2, StaleReads: 3, Delays: 4, Crashes: 1}
	str := s.String()
	for _, want := range []string{"1 torn", "2 dropped", "3 stale", "4 delayed", "1 crashes"} {
		if !strings.Contains(str, want) {
			t.Fatalf("Stats.String() = %q, missing %q", str, want)
		}
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6 (delays and crashes excluded)", s.Total())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{TornWrite: "torn-write", DropWrite: "drop-write", StaleRead: "stale-read", Delay: "delay"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
