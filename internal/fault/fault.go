// Package fault is a seeded, deterministic fault injector for the engines:
// it turns the paper's recovery claims (Lemmas 1–2, Theorem 2) from static
// arguments into executable experiments by deliberately corrupting the
// edge-data plane while a computation runs.
//
// The injector wraps an edgedata.Store and, with configured probabilities,
// perturbs individual operations:
//
//   - torn writes commit a word mixing the 32-bit halves of the old and new
//     values — the corruption per-operation atomicity (Section III) exists
//     to exclude;
//   - dropped writes silently commit the old value — the lost-update
//     outcome of a write-write race;
//   - stale reads observe the pre-write value of the word — the ∥-overlap
//     staleness of the paper's system model;
//   - delays yield the processor mid-operation, widening race windows
//     (straggler simulation);
//   - a crash aborts the run at a configured iteration boundary (simulated
//     worker loss), to be resumed from a checkpoint.
//
// Every injected fault invokes the heal hook installed by the host engine,
// which schedules both endpoints of the affected edge — exactly the
// task-generation rule a *real* racing competitor would have applied. With
// that retry path, Theorem 2 predicts monotone algorithms (WCC, SSSP, BFS)
// reconverge to the sequential fixed point, while non-monotone algorithms
// (Coloring) may converge to corrupted results; the package's tests check
// both directions.
//
// Fault decisions are a pure function of (Seed, operation counter, edge,
// kind), so a single-threaded run under injection is fully reproducible.
package fault

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/rng"
)

// ErrCrash is returned (wrapped) by an engine whose run was killed by an
// injected worker crash. State up to the last checkpoint survives.
var ErrCrash = errors.New("fault: injected worker crash")

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// TornWrite commits a mix of the old and new 32-bit word halves.
	TornWrite Kind = iota
	// DropWrite silently discards a write (the word keeps its old value).
	DropWrite
	// StaleRead returns the word's previous value instead of the current.
	StaleRead
	// Delay yields the processor before the operation (straggler).
	Delay
	numKinds
)

// String names the kind for stats output.
func (k Kind) String() string {
	switch k {
	case TornWrite:
		return "torn-write"
	case DropWrite:
		return "drop-write"
	case StaleRead:
		return "stale-read"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan configures an Injector. All probabilities are per individual edge
// operation and must lie in [0, 1).
type Plan struct {
	// Seed drives every fault decision.
	Seed uint64
	// TornWrite is the probability a committed write tears at the 32-bit
	// boundary, mixing old and new halves.
	TornWrite float64
	// DropWrite is the probability a write is lost (the lost-update race).
	DropWrite float64
	// StaleRead is the probability a read observes the word's previous
	// value.
	StaleRead float64
	// Delay is the probability an operation yields first (straggler).
	Delay float64
	// MaxFaults caps the total number of injected faults (delays included);
	// 0 means unlimited. A finite budget guarantees the run eventually
	// proceeds fault-free, so recovery tests terminate deterministically.
	MaxFaults int64
	// CrashIter, when > 0, simulates a worker crash at that iteration
	// boundary: the engine aborts with ErrCrash. The crash fires at most
	// once per Injector, so a resumed run passes the boundary cleanly.
	CrashIter int
}

// Validate reports whether the plan's probabilities are well-formed. Errors
// name the offending field so a misconfigured experiment points at exactly
// the knob to fix.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"TornWrite", p.TornWrite}, {"DropWrite", p.DropWrite}, {"StaleRead", p.StaleRead}, {"Delay", p.Delay}} {
		if pr.v < 0 || pr.v >= 1 {
			return fmt.Errorf("fault: invalid Plan.%s = %v: per-operation probability must be in [0, 1)", pr.name, pr.v)
		}
	}
	if p.MaxFaults < 0 {
		return fmt.Errorf("fault: invalid Plan.MaxFaults = %d: fault budget cannot be negative (0 means unlimited)", p.MaxFaults)
	}
	if p.CrashIter < 0 {
		return fmt.Errorf("fault: invalid Plan.CrashIter = %d: crash iteration cannot be negative (0 disables the crash)", p.CrashIter)
	}
	return nil
}

// Stats tallies the faults an Injector has committed.
type Stats struct {
	TornWrites int64
	DropWrites int64
	StaleReads int64
	Delays     int64
	Crashes    int64
	Healed     int64 // heal-hook invocations (endpoint reschedules)
}

// Total returns the number of value-corrupting faults (tears, drops, stale
// reads — delays and crashes excluded).
func (s Stats) Total() int64 { return s.TornWrites + s.DropWrites + s.StaleReads }

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%d torn, %d dropped, %d stale, %d delayed, %d crashes",
		s.TornWrites, s.DropWrites, s.StaleReads, s.Delays, s.Crashes)
}

// Injector decides and applies faults. One Injector serves one engine run
// at a time; Wrap may be called repeatedly (the shard engine wraps each
// interval's window store).
type Injector struct {
	plan    Plan
	armed   atomic.Bool
	ops     atomic.Uint64 // per-operation counter feeding the decision hash
	spent   atomic.Int64  // faults charged against MaxFaults
	crashed atomic.Bool
	counts  [numKinds]atomic.Int64
	healed  atomic.Int64

	// onFault is installed by the host engine while quiescent (Arm) and
	// invoked from worker goroutines; it must be safe for concurrent use.
	onFault func(e uint32)
}

// NewInjector builds an injector for the given plan. The injector starts
// disarmed: all operations pass through until the host engine arms it, so
// algorithm Setup never sees faults.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// MustInjector is NewInjector for tests and examples with known-good plans.
func MustInjector(plan Plan) *Injector {
	in, err := NewInjector(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the injector's configuration.
func (in *Injector) Plan() Plan { return in.plan }

// Arm enables injection and installs the engine's heal hook (called with
// the canonical index of every faulted edge; the engine reschedules both
// endpoints, simulating the task generation of the phantom competitor the
// fault stands in for). Must be called while no workers are running.
func (in *Injector) Arm(onFault func(e uint32)) {
	in.onFault = onFault
	in.armed.Store(true)
}

// Disarm stops injection; wrapped stores become transparent. The heal hook
// is retained so late stragglers heal rather than crash.
func (in *Injector) Disarm() { in.armed.Store(false) }

// CrashNow reports whether an injected crash should kill the run at
// iteration boundary iter. It fires at most once per Injector.
func (in *Injector) CrashNow(iter int) bool {
	if !in.armed.Load() || in.plan.CrashIter <= 0 || iter != in.plan.CrashIter {
		return false
	}
	return in.crashed.CompareAndSwap(false, true)
}

// Stats returns the fault tallies so far.
func (in *Injector) Stats() Stats {
	s := Stats{
		TornWrites: in.counts[TornWrite].Load(),
		DropWrites: in.counts[DropWrite].Load(),
		StaleReads: in.counts[StaleRead].Load(),
		Delays:     in.counts[Delay].Load(),
		Healed:     in.healed.Load(),
	}
	if in.crashed.Load() {
		s.Crashes = 1
	}
	return s
}

// roll decides whether to inject a fault of the given kind on edge e,
// charging the budget and tallying on success. The decision hashes (seed,
// op counter, edge, kind), so single-threaded runs are reproducible.
func (in *Injector) roll(kind Kind, prob float64, e uint32) bool {
	if prob <= 0 || !in.armed.Load() {
		return false
	}
	k := in.ops.Add(1)
	h := rng.Mix64(in.plan.Seed ^ k*0x9e3779b97f4a7c15 ^ uint64(e)<<40 ^ uint64(kind)<<33)
	if float64(h>>11)/(1<<53) >= prob {
		return false
	}
	if in.plan.MaxFaults > 0 && in.spent.Add(1) > in.plan.MaxFaults {
		return false
	}
	in.counts[kind].Add(1)
	return true
}

// heal invokes the engine's reschedule hook for edge e.
func (in *Injector) heal(e uint32) {
	if in.onFault != nil {
		in.healed.Add(1)
		in.onFault(e)
	}
}

// Wrap returns a store that applies this injector's plan to every Load and
// Store of inner. Fill and Snapshot pass through untouched (they are
// barrier-time, single-threaded operations outside the fault model), as
// does CompareAndSwap (the push-mode extension supplies its own atomicity
// discipline). The wrapper keeps a one-deep per-word write history to serve
// stale reads, seeded from the store's current contents so a stale read
// never fabricates a value outside the algorithm's domain.
func (in *Injector) Wrap(inner edgedata.Store) edgedata.Store {
	return &faultyStore{in: in, inner: inner, prev: inner.Snapshot()}
}

// faultyStore is the injecting edgedata.Store decorator.
type faultyStore struct {
	in    *Injector
	inner edgedata.Store
	prev  []uint64 // previous committed value per word (atomic access)
}

func (s *faultyStore) Len() int            { return s.inner.Len() }
func (s *faultyStore) Mode() edgedata.Mode { return s.inner.Mode() }

func (s *faultyStore) Load(e uint32) uint64 {
	in := s.in
	if in.roll(Delay, in.plan.Delay, e) {
		runtime.Gosched()
	}
	if in.roll(StaleRead, in.plan.StaleRead, e) {
		// The reader observes the pre-write value, as if it overlapped (∥)
		// the competing writer; the heal models that writer's task
		// generation, so the reader is eventually re-run against fresh data.
		in.heal(e)
		return atomic.LoadUint64(&s.prev[e])
	}
	return s.inner.Load(e)
}

func (s *faultyStore) Store(e uint32, v uint64) {
	in := s.in
	if !in.armed.Load() {
		// Setup-time store: commit transparently and collapse the write
		// history onto the committed value, so a stale read after arming
		// observes a genuine past value, never a pre-setup zero.
		s.inner.Store(e, v)
		atomic.StoreUint64(&s.prev[e], v)
		return
	}
	if in.roll(Delay, in.plan.Delay, e) {
		runtime.Gosched()
	}
	old := s.inner.Load(e)
	atomic.StoreUint64(&s.prev[e], old)
	if in.roll(DropWrite, in.plan.DropWrite, e) {
		// Lost update: the phantom competitor's value (the old word) won
		// the race. Heal reschedules both endpoints so the loser retries.
		in.heal(e)
		return
	}
	if in.roll(TornWrite, in.plan.TornWrite, e) {
		// Tear at the 32-bit boundary; which half commits alternates with
		// the operation counter.
		var torn uint64
		if in.ops.Load()&1 == 0 {
			torn = (old &^ uint64(0xFFFFFFFF)) | (v & 0xFFFFFFFF)
		} else {
			torn = (v &^ uint64(0xFFFFFFFF)) | (old & 0xFFFFFFFF)
		}
		s.inner.Store(e, torn)
		in.heal(e)
		return
	}
	s.inner.Store(e, v)
}

func (s *faultyStore) CompareAndSwap(e uint32, old, new uint64) bool {
	return s.inner.CompareAndSwap(e, old, new)
}

func (s *faultyStore) Fill(v uint64) {
	s.inner.Fill(v)
	for i := range s.prev {
		s.prev[i] = v
	}
}

func (s *faultyStore) Snapshot() []uint64 { return s.inner.Snapshot() }

func (s *faultyStore) SnapshotInto(dst []uint64) []uint64 { return s.inner.SnapshotInto(dst) }

var _ edgedata.Store = (*faultyStore)(nil)
