package fault

import (
	"strings"
	"testing"
)

// Validate must name the offending field, so a failed experiment config
// points at the exact knob instead of a generic "bad plan".
func TestPlanValidateNamesOffendingField(t *testing.T) {
	cases := []struct {
		plan  Plan
		field string
	}{
		{Plan{TornWrite: -0.1}, "Plan.TornWrite"},
		{Plan{TornWrite: 1.0}, "Plan.TornWrite"},
		{Plan{DropWrite: -1e-9}, "Plan.DropWrite"},
		{Plan{DropWrite: 2}, "Plan.DropWrite"},
		{Plan{StaleRead: -0.5}, "Plan.StaleRead"},
		{Plan{StaleRead: 1}, "Plan.StaleRead"},
		{Plan{Delay: -3}, "Plan.Delay"},
		{Plan{Delay: 1.0001}, "Plan.Delay"},
		{Plan{MaxFaults: -1}, "Plan.MaxFaults"},
		{Plan{CrashIter: -1}, "Plan.CrashIter"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("plan %+v accepted", tc.plan)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("plan %+v: error %q does not name %s", tc.plan, err, tc.field)
		}
	}
}

// CrashIter == 0 is the documented "crash disabled" state, not a crash at
// iteration 0: the plan must validate and an armed injector must never fire
// the crash, including at iteration 0 itself.
func TestPlanCrashIterZeroDisablesCrash(t *testing.T) {
	p := Plan{Seed: 42, CrashIter: 0}
	if err := p.Validate(); err != nil {
		t.Fatalf("CrashIter 0 rejected: %v", err)
	}
	in := mustInj(t, p)
	in.Arm(func(uint32) {})
	for iter := 0; iter < 10; iter++ {
		if in.CrashNow(iter) {
			t.Fatalf("CrashIter 0 fired a crash at iteration %d", iter)
		}
	}
	if s := in.Stats(); s.Crashes != 0 {
		t.Fatalf("disabled crash tallied %d crashes", s.Crashes)
	}
}

// The first boundary an engine can crash at is iteration 1 (the injector is
// armed after setup); a plan asking for iteration 1 must fire exactly once.
func TestPlanCrashIterFiresOnceAtBoundary(t *testing.T) {
	in := mustInj(t, Plan{Seed: 1, CrashIter: 1})
	in.Arm(func(uint32) {})
	if in.CrashNow(0) {
		t.Fatal("crash fired at iteration 0 with CrashIter 1")
	}
	if !in.CrashNow(1) {
		t.Fatal("crash did not fire at its planned boundary")
	}
	if in.CrashNow(1) {
		t.Fatal("crash fired twice")
	}
	if s := in.Stats(); s.Crashes != 1 {
		t.Fatalf("Stats.Crashes = %d, want 1", s.Crashes)
	}
}

// Probabilities at the extreme valid ends of [0, 1) must pass.
func TestPlanValidateBoundaryValues(t *testing.T) {
	good := []Plan{
		{},
		{TornWrite: 0, DropWrite: 0, StaleRead: 0, Delay: 0},
		{TornWrite: 0.999999, DropWrite: 0.999999, StaleRead: 0.999999, Delay: 0.999999},
		{MaxFaults: 0},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %+v rejected: %v", p, err)
		}
	}
}
