// Package sched implements the scheduling strategies of the paper's system
// model (Section II) and related work (Section VI):
//
//   - Deterministic: the analog of GraphChi's external deterministic
//     scheduler. Updates of an iteration execute sequentially in ascending
//     label order; results are visible immediately (Gauss–Seidel). The
//     paper observes this scheduler "does not scale (the updates are
//     actually conducted sequentially due to the data dependences)".
//   - Nondeterministic: the paper's contribution target. The scheduled set
//     is dispatched over P worker threads in contiguous label blocks
//     (Fig. 1, OpenMP-static style); each worker runs its block
//     small-label-first; a barrier separates iterations. Updates race on
//     shared edges, protected only by per-operation atomicity.
//   - Synchronous: the BSP baseline. Reads observe the previous
//     iteration's edge values (the engine snapshots at the barrier), so
//     updates of one iteration never see each other's writes.
//   - Chromatic: the chromatic-scheduler baseline (Kaler et al., SPAA'14).
//     Vertices are greedily colored so that no two adjacent vertices share
//     a color; color classes execute in sequence with parallelism inside
//     each class, which is conflict-free by construction.
package sched

import (
	"fmt"
	"sync"
)

// Kind selects a scheduling strategy.
type Kind int

const (
	// Deterministic is sequential ascending-label Gauss–Seidel execution.
	Deterministic Kind = iota
	// Nondeterministic is the paper's racy block-parallel execution.
	Nondeterministic
	// Synchronous is BSP execution (reads see the previous iteration).
	Synchronous
	// Chromatic is color-class parallel deterministic execution.
	Chromatic
	// DIG is the deterministic-interference-graph scheduler (Galois):
	// per-iteration maximal-independent-set rounds, parallel within a
	// round, deterministic by greedy label order.
	DIG
	numKinds
)

// String returns the kind's harness name.
func (k Kind) String() string {
	switch k {
	case Deterministic:
		return "det"
	case Nondeterministic:
		return "nondet"
	case Synchronous:
		return "sync"
	case Chromatic:
		return "chromatic"
	case DIG:
		return "dig"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a name produced by String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown scheduler %q", s)
}

// Block returns the contiguous sub-slice of items assigned to the given
// worker of p workers under the paper's Fig. 1 dispatch: worker i receives
// positions [i*len/p, (i+1)*len/p). Items are assumed sorted ascending, so
// each block is processed small-label-first by construction.
func Block(items []int, worker, p int) []int {
	n := len(items)
	lo := worker * n / p
	hi := (worker + 1) * n / p
	return items[lo:hi]
}

// ParallelBlocks dispatches items over p workers per Fig. 1 and blocks
// until all workers finish (the iteration barrier). fn is invoked as
// fn(worker, item); items within a worker run in slice order. p <= 1 or a
// single-block input degrades to a sequential loop with no goroutines.
func ParallelBlocks(items []int, p int, fn func(worker, item int)) {
	if p <= 1 || len(items) <= 1 {
		for _, it := range items {
			fn(0, it)
		}
		return
	}
	if p > len(items) {
		p = len(items)
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		block := Block(items, w, p)
		if len(block) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, block []int) {
			defer wg.Done()
			for _, it := range block {
				fn(w, it)
			}
		}(w, block)
	}
	wg.Wait()
}

// Sequential runs fn over items in order with worker id 0 — the
// deterministic scheduler's dispatch.
func Sequential(items []int, fn func(worker, item int)) {
	for _, it := range items {
		fn(0, it)
	}
}
