package sched

import (
	"sync"
	"sync/atomic"
)

// Dispatch selects how a parallel scheduler assigns scheduled updates to
// workers within an iteration.
type Dispatch int

const (
	// Static is the paper's Fig. 1 policy: contiguous label blocks, one
	// per worker, fixed before the iteration starts (OpenMP static).
	Static Dispatch = iota
	// Dynamic hands out fixed-size chunks from a shared cursor as workers
	// free up (OpenMP dynamic). It trades the predictable π order — and
	// with it the paper's order model — for load balance on skewed
	// degree distributions.
	Dynamic
)

// String names the dispatch policy.
func (d Dispatch) String() string {
	if d == Static {
		return "static"
	}
	return "dynamic"
}

// ParseDispatch maps a name back to a Dispatch.
func ParseDispatch(s string) (Dispatch, bool) {
	switch s {
	case "static":
		return Static, true
	case "dynamic":
		return Dynamic, true
	default:
		return 0, false
	}
}

// DefaultChunk is the dynamic-dispatch chunk size: large enough to
// amortize the shared-cursor contention, small enough to balance hubs.
const DefaultChunk = 64

// ParallelChunks dispatches items over p workers dynamically: workers
// claim consecutive chunks of the given size from an atomic cursor until
// the items are exhausted, then the call returns (the iteration barrier).
// Items within a chunk run in slice order, so ascending inputs still run
// small-label-first *within a chunk*; across chunks the assignment is
// timing-dependent.
func ParallelChunks(items []int, p, chunk int, fn func(worker, item int)) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p <= 1 || len(items) <= chunk {
		for _, it := range items {
			fn(0, it)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= len(items) {
					return
				}
				hi := lo + chunk
				if hi > len(items) {
					hi = len(items)
				}
				for _, it := range items[lo:hi] {
					fn(w, it)
				}
			}
		}(w)
	}
	wg.Wait()
}
