package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a persistent worker pool for iteration dispatch. The one-shot
// dispatchers (ParallelBlocks, ParallelChunks) spawn P goroutines per call,
// which under the barrier-per-iteration engine means a spawn/join cycle per
// iteration — and per *color class* under Chromatic/DIG. A Pool keeps P
// long-lived workers parked on per-worker wake channels and re-dispatches
// them for every call, so the steady-state per-iteration cost is two
// channel operations per worker and zero heap allocations.
//
// A Pool is NOT safe for concurrent dispatch: exactly one goroutine may
// call RunBlocks/RunChunks/RunEach at a time (the engine's barrier loop
// satisfies this by construction). Close releases the workers; a Pool that
// is never closed is released by a finalizer when it becomes unreachable,
// so abandoned engines do not leak goroutines permanently.
type Pool struct{ *pool }

// taskKind selects what parked workers execute on the next wake.
type taskKind int

const (
	taskNone taskKind = iota
	// taskBlocks is the Fig. 1 static dispatch: worker w runs
	// Block(items, w, eff) in slice order.
	taskBlocks
	// taskChunks is the dynamic dispatch: workers claim chunks from the
	// shared cursor until the items are exhausted.
	taskChunks
	// taskEach runs eachFn once per worker — the generic entry point for
	// executors that host their own work loops on pooled workers.
	taskEach
)

// pool is the worker-visible state. Workers reference only this inner
// struct, so the outer Pool handle stays collectable while they park —
// which is what lets the finalizer release an abandoned pool.
type pool struct {
	workers int
	name    string          // pprof "engine" label for the workers ("" = unlabeled)
	wake    []chan struct{} // per-worker wake tokens (nil when workers == 1)
	quit    chan struct{}
	done    sync.WaitGroup

	// Barrier timing, enabled by SetTimed for observability. busyNs[w] is
	// written only by worker w during a dispatch and read by the
	// dispatching goroutine after the barrier; the WaitGroup orders the
	// accesses. accWallNs/accWaitNs accumulate across dispatches (several
	// per iteration under Chromatic/DIG) until TakeBarrierStats drains
	// them — only the dispatching goroutine touches those.
	timed     atomic.Bool
	busyNs    []int64
	accWallNs int64
	accWaitNs int64

	// Dispatch parameters. Written by the dispatching goroutine before the
	// wake sends and read by workers after the receives; the channel
	// operations order the accesses, so no further synchronization is
	// needed.
	task   taskKind
	items  []int
	itemFn func(worker, item int)
	eachFn func(worker int)
	eff    int // effective worker count for taskBlocks (≤ workers)
	chunk  int
	cursor atomic.Int64

	// panicked records the first recovered task panic of a dispatch; the
	// barrier re-raises it on the dispatching goroutine so a panicking
	// update cannot wedge or kill a parked worker.
	panicked atomic.Pointer[taskPanic]
	closed   atomic.Bool
}

// taskPanic captures a recovered worker panic for re-raising at the barrier.
type taskPanic struct {
	value any
	stack []byte
}

// NewPool starts a pool of the given number of workers. workers < 1 is
// treated as 1; a one-worker pool spawns no goroutines and runs every
// dispatch inline on the caller.
func NewPool(workers int) *Pool { return NewPoolNamed(workers, "") }

// NewPoolNamed starts a pool whose workers carry the pprof goroutine label
// engine=name, so CPU and block profiles attribute worker time to the
// owning engine (core, async, shard, push, ...). An empty name labels
// nothing and is identical to NewPool.
func NewPoolNamed(workers int, name string) *Pool {
	if workers < 1 {
		workers = 1
	}
	in := &pool{workers: workers, name: name, quit: make(chan struct{}), busyNs: make([]int64, workers)}
	if workers > 1 {
		in.wake = make([]chan struct{}, workers)
		for w := range in.wake {
			in.wake[w] = make(chan struct{}, 1)
			go in.labeledLoop(w)
		}
	}
	out := &Pool{in}
	runtime.SetFinalizer(out, func(p *Pool) { p.pool.close() })
	return out
}

// labeledLoop applies the pool's pprof label set to the worker goroutine
// and enters the park/wake cycle.
func (in *pool) labeledLoop(w int) {
	if in.name != "" {
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("engine", in.name, "role", "pool-worker")))
	}
	in.loop(w)
}

// SetTimed enables (or disables) barrier timing: while on, every dispatch
// records its wall time and each participating worker's busy time, and the
// summed per-worker barrier wait (wall − busy, the load imbalance) is
// accumulated for TakeBarrierStats. Off by default; the observability
// layer turns it on. Must not be toggled concurrently with a dispatch.
func (p *Pool) SetTimed(on bool) { p.pool.timed.Store(on) }

// TakeBarrierStats returns the wall time and summed per-worker barrier
// wait accumulated by timed dispatches since the previous call, and resets
// the accumulators. Single-worker (inline) dispatches contribute wall time
// but no wait — there is no barrier to wait at. Must be called from the
// dispatching goroutine (the engine's barrier loop).
func (p *Pool) TakeBarrierStats() (wall, wait time.Duration) {
	in := p.pool
	wall, wait = time.Duration(in.accWallNs), time.Duration(in.accWaitNs)
	in.accWallNs, in.accWaitNs = 0, 0
	return wall, wait
}

// Workers returns the pool's worker count P.
func (p *Pool) Workers() int { return p.pool.workers }

// Close releases the parked workers. Close is idempotent and must not be
// called concurrently with a dispatch; a closed pool must not be
// dispatched again.
func (p *Pool) Close() {
	p.pool.close()
	runtime.SetFinalizer(p, nil)
}

func (in *pool) close() {
	if in.closed.CompareAndSwap(false, true) {
		close(in.quit)
	}
}

// RunBlocks dispatches items over the pooled workers with the paper's
// Fig. 1 contiguous-block assignment and blocks until all workers finish
// (the iteration barrier). Worker and block assignment are identical to
// ParallelBlocks, so per-worker execution order — and with it the trace
// path of any deterministic schedule — is preserved exactly; only the
// goroutine spawn/join per call is gone.
func (p *Pool) RunBlocks(items []int, fn func(worker, item int)) {
	in := p.pool
	if len(in.wake) == 0 || len(items) <= 1 {
		in.runInline(items, fn)
		return
	}
	eff := in.workers
	if eff > len(items) {
		eff = len(items)
	}
	in.task, in.items, in.itemFn, in.eff = taskBlocks, items, fn, eff
	in.dispatch()
	in.items, in.itemFn = nil, nil
}

// RunChunks dispatches items over the pooled workers with the dynamic
// chunk-claiming policy of ParallelChunks and blocks until the items are
// exhausted. chunk <= 0 selects DefaultChunk.
func (p *Pool) RunChunks(items []int, chunk int, fn func(worker, item int)) {
	in := p.pool
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if len(in.wake) == 0 || len(items) <= chunk {
		in.runInline(items, fn)
		return
	}
	in.task, in.items, in.itemFn, in.chunk = taskChunks, items, fn, chunk
	in.cursor.Store(0)
	in.dispatch()
	in.items, in.itemFn = nil, nil
}

// RunEach invokes fn once per worker (worker ids 0..P-1) concurrently and
// blocks until every invocation returns. Barrier-free executors use it to
// host their drain loops on pooled workers instead of spawning fresh
// goroutines per run.
func (p *Pool) RunEach(fn func(worker int)) {
	in := p.pool
	if len(in.wake) == 0 {
		fn(0)
		return
	}
	in.task, in.eachFn = taskEach, fn
	in.dispatch()
	in.eachFn = nil
}

// runInline executes a dispatch on the calling goroutine (single-worker
// pools and degenerate item counts), contributing wall time — but no
// barrier wait — to the timing accumulators when timing is on.
func (in *pool) runInline(items []int, fn func(worker, item int)) {
	timed := in.timed.Load()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	for _, it := range items {
		fn(0, it)
	}
	if timed {
		in.accWallNs += time.Since(t0).Nanoseconds()
	}
}

// dispatch wakes every worker, waits for the barrier, and re-raises the
// first recovered worker panic on the caller.
func (in *pool) dispatch() {
	if in.closed.Load() {
		panic("sched: dispatch on closed Pool")
	}
	timed := in.timed.Load()
	var t0 time.Time
	if timed {
		t0 = time.Now()
		for w := range in.busyNs {
			in.busyNs[w] = 0
		}
	}
	in.done.Add(len(in.wake))
	for _, c := range in.wake {
		c <- struct{}{}
	}
	in.done.Wait()
	if timed {
		wallNs := time.Since(t0).Nanoseconds()
		in.accWallNs += wallNs
		// Barrier wait is wall − busy per participating worker: the time a
		// finished worker idled at the barrier while stragglers ran — the
		// observable cost of the paper's Fig. 1 static-block skew.
		participants := len(in.wake)
		if in.task == taskBlocks && in.eff < participants {
			participants = in.eff
		}
		for w := 0; w < participants; w++ {
			if d := wallNs - in.busyNs[w]; d > 0 {
				in.accWaitNs += d
			}
		}
	}
	in.task = taskNone
	if p := in.panicked.Swap(nil); p != nil {
		panic(fmt.Sprintf("sched: pool task panicked: %v\n%s", p.value, p.stack))
	}
}

// loop is worker w's park/wake cycle.
func (in *pool) loop(w int) {
	for {
		select {
		case <-in.wake[w]:
		case <-in.quit:
			return
		}
		in.run(w)
		in.done.Done()
	}
}

// run executes worker w's share of the current task, converting a panic
// into a recorded failure so the worker survives to park again.
func (in *pool) run(w int) {
	defer func() {
		if r := recover(); r != nil {
			in.panicked.CompareAndSwap(nil, &taskPanic{value: r, stack: debug.Stack()})
		}
	}()
	timed := in.timed.Load()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	switch in.task {
	case taskBlocks:
		if w < in.eff {
			for _, it := range Block(in.items, w, in.eff) {
				in.itemFn(w, it)
			}
		}
	case taskChunks:
		n := len(in.items)
		for {
			lo := int(in.cursor.Add(int64(in.chunk))) - in.chunk
			if lo >= n {
				break
			}
			hi := lo + in.chunk
			if hi > n {
				hi = n
			}
			for _, it := range in.items[lo:hi] {
				in.itemFn(w, it)
			}
		}
	case taskEach:
		in.eachFn(w)
	}
	if timed {
		in.busyNs[w] = time.Since(t0).Nanoseconds()
	}
}
