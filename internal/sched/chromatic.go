package sched

import "ndgraph/internal/graph"

// Colors greedily colors the conflict graph of g — two vertices conflict
// if any edge connects them in either direction, since their update
// functions would then share that edge's data word — and returns the color
// of each vertex plus the number of colors used. Vertices are colored in
// ascending label order with the smallest color not used by an already
// colored conflicting neighbor, the standard greedy bound of Δ+1 colors.
//
// The chromatic scheduler executes one color class at a time; within a
// class no two updates share an edge, so intra-class parallelism is
// conflict-free and the overall execution is deterministic.
func Colors(g *graph.Graph) ([]uint32, int) {
	n := g.N()
	colors := make([]uint32, n)
	for i := range colors {
		colors[i] = ^uint32(0) // uncolored
	}
	numColors := 0
	var used []bool
	for v := uint32(0); int(v) < n; v++ {
		if cap(used) < numColors+2 {
			used = make([]bool, 0, 2*(numColors+2))
		}
		used = used[:numColors+1]
		for i := range used {
			used[i] = false
		}
		mark := func(u uint32) {
			if c := colors[u]; c != ^uint32(0) && int(c) < len(used) {
				used[c] = true
			}
		}
		for _, u := range g.OutNeighbors(v) {
			mark(u)
		}
		for _, u := range g.InNeighbors(v) {
			mark(u)
		}
		c := uint32(0)
		for int(c) < len(used) && used[c] {
			c++
		}
		colors[v] = c
		if int(c) == numColors {
			numColors++
		}
	}
	if n == 0 {
		return colors, 0
	}
	return colors, numColors
}

// ValidateColoring checks that no two adjacent vertices of g share a
// color. Self-loops are ignored (a vertex trivially shares its own color).
func ValidateColoring(g *graph.Graph, colors []uint32) bool {
	if len(colors) != g.N() {
		return false
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, u := range g.OutNeighbors(v) {
			if u != v && colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// ColorClasses partitions the scheduled items (ascending vertex labels)
// into per-color slices, preserving ascending order inside each class.
// Classes for colors that have no scheduled member are empty slices.
func ColorClasses(items []int, colors []uint32, numColors int) [][]int {
	classes := make([][]int, numColors)
	for _, v := range items {
		c := colors[v]
		classes[c] = append(classes[c], v)
	}
	return classes
}
