package sched

import "sync/atomic"

// Deque is a Chase–Lev work-stealing deque of non-negative int work items
// (vertex IDs). One goroutine — the owner — pushes and pops at the bottom
// (LIFO, cache-hot); any number of thieves steal from the top (FIFO, oldest
// work first). The owner side is wait-free except when growing; a steal
// retries its claiming CAS until it wins an item or observes the deque
// empty — lock-free, since a failed CAS means some other consumer
// succeeded — and a thief never blocks an owner.
//
// The implementation is the classic Chase & Lev growable circular array.
// top and bottom only ever increase; their difference is the live window
// into a power-of-two buffer indexed modulo its length, which makes the
// top CAS immune to ABA. Go's sync/atomic operations are sequentially
// consistent, strictly stronger than the acquire/release/relaxed fences of
// the C11 formulation (Lê et al.), so no additional fencing is needed.
//
// Growth is owner-only: Push installs a doubled buffer via an atomic
// pointer store and never mutates the old one, so a thief holding a stale
// buffer still reads the correct value for any index its top CAS can win —
// the slot for index t is rewritten only when bottom reaches t+len, which
// forces a grow first.
type Deque struct {
	top    atomic.Int64 // next index to steal (only increases)
	bottom atomic.Int64 // next index to push (owner-written)
	buf    atomic.Pointer[dequeBuf]
}

// dequeBuf is one immutable-length circular buffer generation.
type dequeBuf struct {
	mask  int64 // len(items) - 1; len is a power of two
	items []atomic.Int64
}

// minDequeCap is the smallest buffer allocated; deques start small because
// a no-sync run keeps one per worker and most stay shallow.
const minDequeCap = 64

// NewDeque returns an empty deque with capacity for at least hint items
// before the first grow.
func NewDeque(hint int) *Deque {
	n := minDequeCap
	for n < hint {
		n *= 2
	}
	d := &Deque{}
	d.buf.Store(&dequeBuf{mask: int64(n - 1), items: make([]atomic.Int64, n)})
	return d
}

// Push appends v at the bottom. Owner-only.
func (d *Deque) Push(v int) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t > buf.mask {
		buf = d.grow(buf, b, t)
	}
	buf.items[b&buf.mask].Store(int64(v))
	d.bottom.Store(b + 1)
}

// Pop removes and returns the most recently pushed item. Owner-only.
func (d *Deque) Pop() (int, bool) {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Empty: undo the reservation.
		d.bottom.Store(t)
		return 0, false
	}
	v := int(buf.items[b&buf.mask].Load())
	if b > t {
		return v, true
	}
	// Last item: race thieves for it through the top CAS.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return 0, false
	}
	return v, true
}

// Steal removes and returns the oldest item. Safe for any goroutine. A
// false return means the deque was observed empty; a lost top CAS retries
// rather than reporting failure — some party always wins it (lock-free),
// and giving up on contention makes an owner consuming its own deque from
// the top desert a non-empty backlog and go raid other workers, cascading
// task migration (measured: ~80% of all tasks ended up stolen in an
// 8-thread WCC run before this retried).
func (d *Deque) Steal() (int, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return 0, false
		}
		buf := d.buf.Load()
		v := int(buf.items[t&buf.mask].Load())
		if d.top.CompareAndSwap(t, t+1) {
			return v, true
		}
	}
}

// StealBatch removes up to half of the deque's items — at most len(buf) —
// from the top in one CAS and copies them into buf in FIFO order,
// returning the count. A single CAS claims the whole run, so a thief that
// relocates the batch into its own deque migrates a contiguous
// neighbourhood of work at one-task cost instead of bouncing the victim's
// top cache line once per task.
//
// CAVEAT: safe against Push, Steal and other StealBatch calls, but NOT
// against a concurrent owner Pop: Pop claims items below the last one
// without a CAS, so a multi-item claim could overlap it. Use only on
// deques whose owner consumes via Steal (FIFO), as the no-sync executor
// does.
func (d *Deque) StealBatch(buf []int) int {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		n := b - t
		if n <= 0 {
			return 0
		}
		k := (n + 1) / 2
		if k > int64(len(buf)) {
			k = int64(len(buf))
		}
		db := d.buf.Load()
		for i := int64(0); i < k; i++ {
			buf[i] = int(db.items[(t+i)&db.mask].Load())
		}
		if d.top.CompareAndSwap(t, t+k) {
			return int(k)
		}
	}
}

// Len reports the current item count as observed racily; exact only when
// no other party is operating on the deque.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap reports the current buffer capacity (for tests).
func (d *Deque) Cap() int { return len(d.buf.Load().items) }

// grow doubles the buffer, copying the live window [t, b). Owner-only; the
// old buffer is left intact for thieves holding stale pointers.
func (d *Deque) grow(old *dequeBuf, b, t int64) *dequeBuf {
	nb := &dequeBuf{mask: old.mask*2 + 1, items: make([]atomic.Int64, 2*len(old.items))}
	for i := t; i < b; i++ {
		nb.items[i&nb.mask].Store(old.items[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}
