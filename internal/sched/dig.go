package sched

import "ndgraph/internal/graph"

// This file implements the Deterministic Interference Graph (DIG)
// scheduler of Deterministic Galois (Nguyen, Lenharth & Pingali,
// ASPLOS'14), the last deterministic scheduler the paper's related-work
// section names. Unlike the chromatic scheduler's static whole-graph
// coloring, DIG partitions each iteration's *scheduled set* into rounds:
// two scheduled updates interfere when their vertices are adjacent (they
// would share an edge's data word), and each round is a maximal
// independent set of the interference graph, selected greedily in
// ascending label order so the partition — and therefore the execution —
// is deterministic. Updates within a round touch disjoint edges and run
// in parallel safely; rounds execute in sequence.
//
// Because only *scheduled* vertices interfere, DIG usually needs far
// fewer rounds per iteration than the chromatic scheduler has colors,
// at the cost of rebuilding the partition every iteration — exactly the
// "huge time overheads" of deterministic execution-path plotting the
// paper attributes to this scheduler family.

// DIGRounds partitions the scheduled items (ascending vertex labels) into
// deterministic rounds: greedy maximal independent sets of the
// interference graph induced by g on items. Items within each round are
// ascending; every item appears in exactly one round.
func DIGRounds(g *graph.Graph, items []int) [][]int {
	if len(items) == 0 {
		return nil
	}
	// state: 0 = unplaced, 1 = placed in some round, 2 = in current round.
	inRound := make([]bool, g.N())
	placed := make([]bool, g.N())
	scheduled := make([]bool, g.N())
	for _, v := range items {
		scheduled[v] = true
	}
	remaining := len(items)
	var rounds [][]int
	for remaining > 0 {
		var round []int
		for _, vi := range items {
			v := uint32(vi)
			if placed[v] {
				continue
			}
			conflict := false
			for _, u := range g.OutNeighbors(v) {
				if u != v && scheduled[u] && inRound[u] {
					conflict = true
					break
				}
			}
			if !conflict {
				for _, u := range g.InNeighbors(v) {
					if u != v && scheduled[u] && inRound[u] {
						conflict = true
						break
					}
				}
			}
			if conflict {
				continue
			}
			inRound[v] = true
			round = append(round, vi)
		}
		for _, vi := range round {
			inRound[uint32(vi)] = false
			placed[uint32(vi)] = true
		}
		remaining -= len(round)
		rounds = append(rounds, round)
	}
	return rounds
}

// ValidateDIGRounds checks the invariants: every item appears exactly
// once, and no round contains two adjacent vertices.
func ValidateDIGRounds(g *graph.Graph, items []int, rounds [][]int) bool {
	seen := make(map[int]bool, len(items))
	for _, round := range rounds {
		inRound := make(map[uint32]bool, len(round))
		for _, vi := range round {
			if seen[vi] {
				return false
			}
			seen[vi] = true
			inRound[uint32(vi)] = true
		}
		for _, vi := range round {
			v := uint32(vi)
			for _, u := range g.OutNeighbors(v) {
				if u != v && inRound[u] {
					return false
				}
			}
		}
	}
	return len(seen) == len(items)
}
