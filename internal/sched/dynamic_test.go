package sched

import (
	"sync"
	"testing"
)

func TestDispatchStringParse(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("Dispatch.String mismatch")
	}
	if d, ok := ParseDispatch("static"); !ok || d != Static {
		t.Fatal("ParseDispatch(static)")
	}
	if d, ok := ParseDispatch("dynamic"); !ok || d != Dynamic {
		t.Fatal("ParseDispatch(dynamic)")
	}
	if _, ok := ParseDispatch("guided"); ok {
		t.Fatal("ParseDispatch accepted unknown policy")
	}
}

func TestParallelChunksVisitsAllOnce(t *testing.T) {
	const n = 5000
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	for _, p := range []int{1, 2, 4, 16} {
		for _, chunk := range []int{1, 7, 64, 10000} {
			var mu sync.Mutex
			seen := make(map[int]int, n)
			ParallelChunks(items, p, chunk, func(_, item int) {
				mu.Lock()
				seen[item]++
				mu.Unlock()
			})
			if len(seen) != n {
				t.Fatalf("p=%d chunk=%d: visited %d distinct items", p, chunk, len(seen))
			}
			for item, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d chunk=%d: item %d visited %d times", p, chunk, item, c)
				}
			}
		}
	}
}

func TestParallelChunksDefaultChunk(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	count := 0
	var mu sync.Mutex
	ParallelChunks(items, 4, 0, func(_, item int) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if count != 500 {
		t.Fatalf("count = %d", count)
	}
}

func TestParallelChunksEmpty(t *testing.T) {
	called := false
	ParallelChunks(nil, 4, 8, func(_, _ int) { called = true })
	if called {
		t.Fatal("fn called on empty input")
	}
}

func TestParallelChunksAscendingWithinChunk(t *testing.T) {
	const n, chunk = 1024, 32
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	var mu sync.Mutex
	lastPerWorker := map[int]int{}
	ParallelChunks(items, 4, chunk, func(w, item int) {
		mu.Lock()
		defer mu.Unlock()
		last, ok := lastPerWorker[w]
		// Within a chunk items ascend; across chunks a worker's next chunk
		// starts at a multiple of the chunk size.
		if ok && item != last+1 && item%chunk != 0 {
			t.Errorf("worker %d jumped from %d to %d mid-chunk", w, last, item)
		}
		lastPerWorker[w] = item
	})
}

func BenchmarkParallelChunks(b *testing.B) {
	items := make([]int, 1<<16)
	for i := range items {
		items[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sinks [4]int64
		ParallelChunks(items, 4, 64, func(w, item int) { sinks[w] += int64(item) })
		_ = sinks
	}
}
