package sched

import (
	"sync"
	"testing"
	"testing/quick"

	"ndgraph/internal/gen"
	"ndgraph/internal/rng"
)

func TestKindStringParse(t *testing.T) {
	for _, k := range []Kind{Deterministic, Nondeterministic, Synchronous, Chromatic} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted unknown")
	}
	if Kind(42).String() == "" {
		t.Error("unknown Kind String empty")
	}
}

func TestBlockPartition(t *testing.T) {
	items := make([]int, 10)
	for i := range items {
		items[i] = i * 10
	}
	// Blocks must be contiguous, disjoint, and cover everything.
	for _, p := range []int{1, 2, 3, 4, 7, 10} {
		covered := 0
		prevEnd := 0
		for w := 0; w < p; w++ {
			b := Block(items, w, p)
			covered += len(b)
			if len(b) > 0 {
				if b[0] != items[prevEnd] {
					t.Fatalf("p=%d worker %d: block not contiguous", p, w)
				}
				prevEnd += len(b)
			}
		}
		if covered != len(items) {
			t.Fatalf("p=%d: blocks cover %d of %d items", p, covered, len(items))
		}
	}
}

func TestParallelBlocksVisitsAllOnce(t *testing.T) {
	const n = 1000
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	for _, p := range []int{1, 2, 4, 16, 1000, 5000} {
		var mu sync.Mutex
		seen := make(map[int]int)
		ParallelBlocks(items, p, func(_, item int) {
			mu.Lock()
			seen[item]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("p=%d: visited %d distinct items", p, len(seen))
		}
		for item, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: item %d visited %d times", p, item, c)
			}
		}
	}
}

func TestParallelBlocksSmallLabelFirstWithinWorker(t *testing.T) {
	const n = 256
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	var mu sync.Mutex
	lastPerWorker := map[int]int{}
	ParallelBlocks(items, 4, func(w, item int) {
		mu.Lock()
		defer mu.Unlock()
		if last, ok := lastPerWorker[w]; ok && last >= item {
			t.Errorf("worker %d processed %d after %d", w, item, last)
		}
		lastPerWorker[w] = item
	})
}

func TestParallelBlocksEmpty(t *testing.T) {
	called := false
	ParallelBlocks(nil, 4, func(_, _ int) { called = true })
	if called {
		t.Fatal("fn called on empty items")
	}
}

func TestSequentialOrder(t *testing.T) {
	items := []int{5, 1, 9}
	var got []int
	Sequential(items, func(w, item int) {
		if w != 0 {
			t.Fatalf("worker = %d", w)
		}
		got = append(got, item)
	})
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("Sequential reordered: %v", got)
		}
	}
}

func TestPiEqualBlocks(t *testing.T) {
	// With nv divisible by p, π(v) = l % (nv/p), the paper's formula.
	nv, p := 100, 4
	for l := 0; l < nv; l++ {
		if got, want := Pi(l, nv, p), l%(nv/p); got != want {
			t.Fatalf("Pi(%d,%d,%d) = %d, want %d", l, nv, p, got, want)
		}
	}
}

func TestPiSingleThread(t *testing.T) {
	for l := 0; l < 10; l++ {
		if Pi(l, 10, 1) != l {
			t.Fatal("Pi with p=1 must be identity")
		}
	}
}

func TestPiUnevenBlocksValid(t *testing.T) {
	// Property: π is the offset within the containing block, so for every
	// worker the π values of its block are 0,1,2,...
	f := func(nvRaw, pRaw uint8) bool {
		nv := int(nvRaw)%200 + 1
		p := int(pRaw)%8 + 1
		items := make([]int, nv)
		for i := range items {
			items[i] = i
		}
		for w := 0; w < p; w++ {
			for off, l := range Block(items, w, p) {
				if Pi(l, nv, p) != off {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSameThread(t *testing.T) {
	nv, p := 100, 4 // blocks of 25
	if !SameThread(0, 24, nv, p) {
		t.Error("0 and 24 should share a thread")
	}
	if SameThread(24, 25, nv, p) {
		t.Error("24 and 25 should not share a thread")
	}
	if !SameThread(3, 99, nv, 1) {
		t.Error("p=1 all share")
	}
}

func TestRelationDefinitions(t *testing.T) {
	nv, p, d := 100, 4, 5 // blocks of 25
	// Same thread: strict π order.
	if Relation(3, 7, nv, p, d) != Before {
		t.Error("same-thread π(v)<π(u) should be Before")
	}
	if Relation(7, 3, nv, p, d) != After {
		t.Error("same-thread π(v)>π(u) should be After")
	}
	// Different threads, π gap >= d: ordered.
	// v=0 (π=0, thread 0), u=35 (π=10, thread 1): π(u)-π(v)=10 >= 5.
	if Relation(0, 35, nv, p, d) != Before {
		t.Error("cross-thread with large positive gap should be Before")
	}
	if Relation(35, 0, nv, p, d) != After {
		t.Error("cross-thread with large negative gap should be After")
	}
	// Different threads, |gap| < d: overlap.
	// v=0 (π=0), u=27 (π=2): |2-0| = 2 < 5.
	if Relation(0, 27, nv, p, d) != Overlap {
		t.Error("cross-thread with small gap should be Overlap")
	}
	if Overlap.String() != "∥" || Before.String() != "≺" || After.String() != "≻" {
		t.Error("Order.String mismatch")
	}
	if Order(9).String() != "?" {
		t.Error("unknown Order String")
	}
}

func TestRelationAntisymmetry(t *testing.T) {
	f := func(vRaw, uRaw, pRaw, dRaw uint8) bool {
		nv := 128
		v, u := int(vRaw)%nv, int(uRaw)%nv
		p := int(pRaw)%8 + 1
		d := int(dRaw)%10 + 1
		if v == u {
			return true
		}
		rv, ru := Relation(v, u, nv, p, d), Relation(u, v, nv, p, d)
		switch rv {
		case Before:
			return ru == After
		case After:
			return ru == Before
		default:
			return ru == Overlap
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColorsValid(t *testing.T) {
	g, err := gen.RMAT(500, 3000, gen.DefaultRMAT, 11)
	if err != nil {
		t.Fatal(err)
	}
	colors, k := Colors(g)
	if !ValidateColoring(g, colors) {
		t.Fatal("greedy coloring invalid")
	}
	if k <= 0 {
		t.Fatalf("numColors = %d", k)
	}
	maxDeg := 0
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if k > maxDeg+1 {
		t.Fatalf("greedy used %d colors, exceeds Δ+1 = %d", k, maxDeg+1)
	}
}

func TestColorsRingNeedsTwoOrThree(t *testing.T) {
	g, err := gen.Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	colors, k := Colors(g)
	if !ValidateColoring(g, colors) {
		t.Fatal("invalid ring coloring")
	}
	if k < 2 || k > 3 {
		t.Fatalf("ring colored with %d colors", k)
	}
}

func TestColorsEmptyGraph(t *testing.T) {
	g, err := gen.Chain(1)
	if err != nil {
		t.Fatal(err)
	}
	colors, k := Colors(g)
	if len(colors) != 1 || k != 1 {
		t.Fatalf("single vertex: colors=%v k=%d", colors, k)
	}
}

func TestColorClasses(t *testing.T) {
	colors := []uint32{0, 1, 0, 2, 1}
	items := []int{0, 1, 2, 3, 4}
	classes := ColorClasses(items, colors, 3)
	if len(classes) != 3 {
		t.Fatalf("classes = %d", len(classes))
	}
	want := [][]int{{0, 2}, {1, 4}, {3}}
	for c := range want {
		if len(classes[c]) != len(want[c]) {
			t.Fatalf("class %d = %v, want %v", c, classes[c], want[c])
		}
		for i := range want[c] {
			if classes[c][i] != want[c][i] {
				t.Fatalf("class %d = %v, want %v", c, classes[c], want[c])
			}
		}
	}
}

func TestValidateColoringRejectsBad(t *testing.T) {
	g, err := gen.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	if ValidateColoring(g, []uint32{0, 0, 1}) {
		t.Fatal("accepted adjacent same-color")
	}
	if ValidateColoring(g, []uint32{0}) {
		t.Fatal("accepted short color slice")
	}
}

func TestColorsQuickValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := gen.ErdosRenyi(60, 200+r.Intn(200), seed)
		if err != nil {
			return false
		}
		colors, _ := Colors(g)
		return ValidateColoring(g, colors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelBlocks(b *testing.B) {
	items := make([]int, 1<<16)
	for i := range items {
		items[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sinks [4]int64
		ParallelBlocks(items, 4, func(w, item int) { sinks[w] += int64(item) })
		_ = sinks
	}
}

func BenchmarkColorsRMAT(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Colors(g)
	}
}

func TestDIGRoundsValid(t *testing.T) {
	g, err := gen.RMAT(300, 2000, gen.DefaultRMAT, 161)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]int, g.N())
	for i := range items {
		items[i] = i
	}
	rounds := DIGRounds(g, items)
	if !ValidateDIGRounds(g, items, rounds) {
		t.Fatal("DIG rounds invalid")
	}
	if len(rounds) < 2 {
		t.Fatalf("only %d rounds on a dense graph", len(rounds))
	}
}

func TestDIGRoundsDeterministic(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 600, 162)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]int, g.N())
	for i := range items {
		items[i] = i
	}
	a := DIGRounds(g, items)
	b := DIGRounds(g, items)
	if len(a) != len(b) {
		t.Fatal("round counts differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("round sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("round contents differ")
			}
		}
	}
}

func TestDIGRoundsSubsetScheduling(t *testing.T) {
	// With only non-adjacent vertices scheduled, one round suffices even
	// though the whole graph needs many colors.
	g, err := gen.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	rounds := DIGRounds(g, []int{3})
	if len(rounds) != 1 || len(rounds[0]) != 1 {
		t.Fatalf("singleton schedule rounds = %v", rounds)
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rounds = DIGRounds(g, all)
	if len(rounds) != 8 {
		t.Fatalf("complete graph rounds = %d, want 8", len(rounds))
	}
	if !ValidateDIGRounds(g, all, rounds) {
		t.Fatal("invalid")
	}
}

func TestDIGRoundsEmpty(t *testing.T) {
	g, err := gen.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if DIGRounds(g, nil) != nil {
		t.Fatal("empty items should give nil rounds")
	}
}

func TestValidateDIGRoundsRejects(t *testing.T) {
	g, err := gen.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	items := []int{0, 1, 2}
	// Adjacent vertices 0,1 in one round: invalid.
	if ValidateDIGRounds(g, items, [][]int{{0, 1}, {2}}) {
		t.Fatal("adjacent round accepted")
	}
	// Missing item.
	if ValidateDIGRounds(g, items, [][]int{{0}, {2}}) {
		t.Fatal("missing item accepted")
	}
	// Duplicate item.
	if ValidateDIGRounds(g, items, [][]int{{0}, {0}, {1}, {2}}) {
		t.Fatal("duplicate accepted")
	}
}
