package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := NewDeque(0)
	if _, ok := d.Pop(); ok {
		t.Fatal("pop of empty deque succeeded")
	}
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if got := d.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("pop after drain succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque(0)
	for i := 0; i < 5; i++ {
		d.Push(i)
	}
	for i := 0; i < 5; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal of empty deque succeeded")
	}
}

func TestDequeGrowPreservesWindow(t *testing.T) {
	d := NewDeque(0)
	cap0 := d.Cap()
	// Interleave pushes and pops so the live window wraps before growing.
	for i := 0; i < cap0/2; i++ {
		d.Push(-1)
		if _, ok := d.Pop(); !ok {
			t.Fatal("warmup pop failed")
		}
	}
	n := 4*cap0 + 3
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Cap() <= cap0 {
		t.Fatalf("deque did not grow: cap %d", d.Cap())
	}
	for i := 0; i < n; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("post-grow Steal = %d,%v, want %d,true", v, ok, i)
		}
	}
}

// TestDequeConcurrentConservation hammers one owner (push/pop) against
// several thieves and checks every pushed item is consumed exactly once —
// the Chase–Lev safety property the no-sync tier's termination detection
// leans on.
func TestDequeConcurrentConservation(t *testing.T) {
	const (
		items   = 1 << 15
		thieves = 3
	)
	d := NewDeque(0)
	seen := make([]atomic.Int32, items)
	var consumed atomic.Int64
	take := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("item %d consumed twice", v)
		}
		consumed.Add(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					take(v)
					continue
				}
				select {
				case <-stop:
					// Final drain: the owner is done pushing, so an empty
					// observation is now conclusive for this thief.
					if v, ok := d.Steal(); ok {
						take(v)
						continue
					}
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				take(v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		take(v)
	}
	close(stop)
	wg.Wait()
	// Anything left after the thieves exited belongs to the owner.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		take(v)
	}
	if got := consumed.Load(); got != items {
		t.Fatalf("consumed %d items, want %d", got, items)
	}
	for v := range seen {
		if seen[v].Load() != 1 {
			t.Fatalf("item %d consumed %d times", v, seen[v].Load())
		}
	}
}
