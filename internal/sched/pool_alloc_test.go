//go:build !race

package sched

import "testing"

// The race detector instruments channel operations with allocating
// bookkeeping, so the zero-allocation guarantees only hold — and are only
// asserted — in non-race builds.

// A warm pool dispatch must not allocate: the wake tokens, the WaitGroup
// barrier, and the parameter handoff all reuse pool-owned state. This is the
// property that makes the engine's steady-state iteration allocation-free.
func TestPoolDispatchDoesNotAllocate(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	items := make([]int, 1024)
	for i := range items {
		items[i] = i
	}
	var sinks [4]int64
	fn := func(w, item int) { sinks[w] += int64(item) }
	pool.RunBlocks(items, fn) // warm up: park the workers once
	pool.RunChunks(items, 64, fn)

	if avg := testing.AllocsPerRun(100, func() { pool.RunBlocks(items, fn) }); avg != 0 {
		t.Errorf("RunBlocks allocates %.1f per dispatch, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { pool.RunChunks(items, 64, fn) }); avg != 0 {
		t.Errorf("RunChunks allocates %.1f per dispatch, want 0", avg)
	}
}
