package sched

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// collect runs dispatch and records the per-worker item sequences.
func collect(p int, dispatch func(fn func(worker, item int))) map[int][]int {
	var mu sync.Mutex
	got := map[int][]int{}
	dispatch(func(w, item int) {
		mu.Lock()
		got[w] = append(got[w], item)
		mu.Unlock()
	})
	return got
}

// The pool's static dispatch must assign exactly the blocks ParallelBlocks
// assigns — same worker ids, same per-worker order — so deterministic
// schedules trace identically through either path.
func TestPoolRunBlocksMatchesParallelBlocks(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			items := make([]int, n)
			for i := range items {
				items[i] = 3 * i
			}
			pool := NewPool(p)
			fromPool := collect(p, func(fn func(w, it int)) { pool.RunBlocks(items, fn) })
			reference := collect(p, func(fn func(w, it int)) { ParallelBlocks(items, p, fn) })
			pool.Close()
			if len(fromPool) != len(reference) {
				t.Fatalf("p=%d n=%d: pool used %d workers, reference %d", p, n, len(fromPool), len(reference))
			}
			for w, want := range reference {
				gotSeq := fromPool[w]
				if len(gotSeq) != len(want) {
					t.Fatalf("p=%d n=%d worker %d: pool ran %d items, reference %d", p, n, w, len(gotSeq), len(want))
				}
				for i := range want {
					if gotSeq[i] != want[i] {
						t.Fatalf("p=%d n=%d worker %d position %d: pool %d, reference %d", p, n, w, i, gotSeq[i], want[i])
					}
				}
			}
		}
	}
}

func TestPoolRunChunksVisitsAllOnce(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		seen := make([]int, n)
		var mu sync.Mutex
		pool.RunChunks(items, 16, func(_, item int) {
			mu.Lock()
			seen[item]++
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: item %d visited %d times", n, i, c)
			}
		}
	}
}

func TestPoolRunEachInvokesEveryWorkerOnce(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		pool := NewPool(p)
		counts := make([]int, p)
		var mu sync.Mutex
		pool.RunEach(func(w int) {
			mu.Lock()
			counts[w]++
			mu.Unlock()
		})
		pool.Close()
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: worker %d invoked %d times, want 1", p, w, c)
			}
		}
	}
}

// Repeated dispatches must reuse the same parked workers: the pool's
// goroutine count is paid once at construction, not per barrier.
func TestPoolReusesWorkersAcrossDispatches(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	items := make([]int, 256)
	for i := range items {
		items[i] = i
	}
	var sinks [4]int64
	fn := func(w, it int) { sinks[w] += int64(it) }
	pool.RunBlocks(items, fn) // workers are up after the first barrier
	base := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		pool.RunBlocks(items, fn)
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across dispatches: %d -> %d", base, now)
	}
}

// A panicking task must surface at the dispatch barrier on the caller and
// leave the parked workers alive and reusable — no leak, no wedge.
func TestPoolPanicDoesNotWedgeWorkers(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	items := make([]int, 128)
	for i := range items {
		items[i] = i
	}
	var sinks [4]int64
	warm := func(w, it int) { sinks[w] += int64(it) }
	pool.RunBlocks(items, warm)
	before := runtime.NumGoroutine()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic in pool task did not propagate to the dispatcher")
			}
			if !strings.Contains(r.(string), "boom-13") {
				t.Fatalf("propagated panic lost the task's value: %v", r)
			}
		}()
		pool.RunBlocks(items, func(_, it int) {
			if it == 13 {
				panic("boom-13")
			}
		})
	}()

	// The pool must still dispatch correctly after the panic.
	var mu sync.Mutex
	sum := 0
	pool.RunBlocks(items, func(_, it int) {
		mu.Lock()
		sum += it
		mu.Unlock()
	})
	if want := 127 * 128 / 2; sum != want {
		t.Fatalf("post-panic dispatch sum = %d, want %d", sum, want)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("panic leaked workers: %d -> %d goroutines", before, after)
	}
}

// settledGoroutines waits for the goroutine count to stop moving (workers
// from pools closed by earlier tests exit asynchronously) before reading it.
func settledGoroutines() int {
	prev := runtime.NumGoroutine()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func TestPoolCloseReleasesWorkers(t *testing.T) {
	before := settledGoroutines()
	pool := NewPool(8)
	items := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	pool.RunBlocks(items, func(_, _ int) {})
	if during := runtime.NumGoroutine(); during < before+8 {
		t.Fatalf("expected 8 parked workers, goroutines %d -> %d", before, during)
	}
	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("Close left workers parked: %d -> %d goroutines", before, after)
	}
}

func TestPoolSingleWorkerRunsInline(t *testing.T) {
	before := settledGoroutines()
	pool := NewPool(1)
	defer pool.Close()
	order := []int{}
	pool.RunBlocks([]int{4, 5, 6}, func(w, it int) {
		if w != 0 {
			t.Fatalf("single-worker pool used worker %d", w)
		}
		order = append(order, it)
	})
	if len(order) != 3 || order[0] != 4 || order[2] != 6 {
		t.Fatalf("inline dispatch order %v", order)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("one-worker pool spawned goroutines: %d -> %d", before, after)
	}
}

func BenchmarkPoolBlocks(b *testing.B) {
	pool := NewPool(4)
	defer pool.Close()
	items := make([]int, 4096)
	for i := range items {
		items[i] = i
	}
	var sinks [4]int64
	fn := func(w, item int) { sinks[w] += int64(item) }
	pool.RunBlocks(items, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.RunBlocks(items, fn)
	}
}

func BenchmarkPoolChunks(b *testing.B) {
	pool := NewPool(4)
	defer pool.Close()
	items := make([]int, 4096)
	for i := range items {
		items[i] = i
	}
	var sinks [4]int64
	fn := func(w, item int) { sinks[w] += int64(item) }
	pool.RunChunks(items, 64, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.RunChunks(items, 64, fn)
	}
}
