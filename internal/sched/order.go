package sched

// This file implements the analytical order model of Section II: the
// absolute scheduling order π and the partial orders ≺ (happens-before),
// ≻ (happens-after), and ∥ (overlapped) between two updates of the same
// iteration, parameterized by the result-propagation distance d. The
// engine never consults this model at runtime — nondeterministic execution
// has no predefined order — but the eligibility analyzer and the tests use
// it to enumerate the order cases of the Theorem 1/2 proofs.

// Order is the relation between two updates f(v), f(u) of one iteration.
type Order int

const (
	// Before means f(v) ≺ f(u): f(u) can use the results of f(v).
	Before Order = iota
	// After means f(v) ≻ f(u): f(v) can use the results of f(u).
	After
	// Overlap means f(v) ∥ f(u): neither sees the other's results.
	Overlap
)

// String names the relation with the paper's symbols.
func (o Order) String() string {
	switch o {
	case Before:
		return "≺"
	case After:
		return "≻"
	case Overlap:
		return "∥"
	default:
		return "?"
	}
}

// Pi computes the absolute scheduling order π(v) for vertex label l under
// the Fig. 1 dispatch of nv scheduled updates over p threads:
// π(v) = position of v within its thread's block. With equal blocks this
// is l % (nv/p), matching the paper's formula; uneven tails use the exact
// block geometry.
func Pi(l, nv, p int) int {
	if p <= 1 {
		return l
	}
	items := nv
	// Find the worker whose block [w*items/p, (w+1)*items/p) contains l.
	w := l * p / items
	for w*items/p > l {
		w--
	}
	for (w+1)*items/p <= l {
		w++
	}
	return l - w*items/p
}

// SameThread reports whether labels a and b land on the same worker under
// the Fig. 1 dispatch of nv updates over p threads.
func SameThread(a, b, nv, p int) bool {
	if p <= 1 {
		return true
	}
	worker := func(l int) int {
		w := l * p / nv
		for w*nv/p > l {
			w--
		}
		for (w+1)*nv/p <= l {
			w++
		}
		return w
	}
	return worker(a) == worker(b)
}

// Relation classifies the order between f(v) and f(u) (by their labels)
// under the system model with propagation distance d, per Definitions 1–3:
//
//   - same thread: π decides strictly (Before if π(v) < π(u));
//   - different threads: Before if π(u) − π(v) ≥ d, After if
//     π(v) − π(u) ≥ d, Overlap if |π(v) − π(u)| < d.
//
// d is the time, measured in updates, for a result to propagate between
// threads (cache-coherence latency in the paper's machine model).
func Relation(v, u, nv, p, d int) Order {
	pv, pu := Pi(v, nv, p), Pi(u, nv, p)
	if SameThread(v, u, nv, p) {
		if pv < pu {
			return Before
		}
		if pv > pu {
			return After
		}
		return Overlap // same update; degenerate
	}
	switch {
	case pu-pv >= d:
		return Before
	case pv-pu >= d:
		return After
	default:
		return Overlap
	}
}
