package autonomous

import (
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 0); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := gen.Ring(4)
	e, err := NewEngine(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err == nil {
		t.Error("nil update accepted")
	}
}

func TestEmptyQueueConverges(t *testing.T) {
	g, _ := gen.Ring(4)
	e, err := NewEngine(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(func(core.VertexView, *Scheduler) {})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Updates != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	s := newScheduler(10)
	s.Post(3, 5.0)
	s.Post(7, 1.0)
	s.Post(1, 3.0)
	s.Post(3, 0.5) // decrease-key
	want := []uint32{3, 7, 1}
	for _, w := range want {
		if got := s.pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
	if s.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestSchedulerIncreaseIgnored(t *testing.T) {
	s := newScheduler(4)
	s.Post(2, 1.0)
	s.Post(2, 9.0) // must not raise priority
	s.Post(3, 2.0)
	if got := s.pop(); got != 2 {
		t.Fatalf("first pop = %d", got)
	}
}

func TestAutonomousSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 141)
	if err != nil {
		t.Fatal(err)
	}
	ref := algorithms.NewSSSP(g, 3, 5)
	want := algorithms.ReferenceSSSP(g, 3, ref.Weights)
	dist, res, err := SSSP(g, 3, ref.Weights)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// The paper's claim for autonomous scheduling: the algorithm-chosen
// execution path accelerates convergence. Distance-ordered SSSP must do
// strictly fewer updates than the coordinated engine's iteration sweeps.
func TestAutonomousSSSPDoesLessWork(t *testing.T) {
	g, err := gen.RMAT(600, 4800, gen.DefaultRMAT, 142)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 0, 7)
	src := uint32(0)
	// Pick a well-connected source.
	for v := uint32(0); int(v) < g.N(); v++ {
		if g.OutDegree(v) > g.OutDegree(src) {
			src = v
		}
	}
	s = algorithms.NewSSSP(g, src, 7)
	_, coordRes, err := algorithms.Run(s, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	_, autoRes, err := SSSP(g, src, s.Weights)
	if err != nil {
		t.Fatal(err)
	}
	if autoRes.Updates >= coordRes.Updates {
		t.Fatalf("autonomous did %d updates, coordinated %d — expected fewer", autoRes.Updates, coordRes.Updates)
	}
}

func TestDeltaPageRankMatchesReference(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 143)
	if err != nil {
		t.Fatal(err)
	}
	const damping = 0.85
	want := algorithms.ReferencePageRank(g, damping, 1e-12, 20000)
	rank, res, err := DeltaPageRank(g, damping, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if d := metrics.LInfDistance(rank, want); d > 1e-5 {
		t.Fatalf("LInf(delta, reference) = %v", d)
	}
}

func TestDeltaPageRankRanksFinite(t *testing.T) {
	g, err := gen.PreferentialAttachment(500, 4, 144)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := DeltaPageRank(g, 0.85, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range rank {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0.15-1e-6 {
			t.Fatalf("rank[%d] = %v", v, r)
		}
	}
}

func TestMaxUpdatesCap(t *testing.T) {
	g, err := gen.Ring(100)
	if err != nil {
		t.Fatal(err)
	}
	ref := algorithms.NewBFS(g, 0)
	e, err := NewEngine(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	inf := math.Float64bits(math.Inf(1))
	for v := range e.Vertices {
		e.Vertices[v] = inf
	}
	e.Vertices[0] = 0
	e.Post(0, 0)
	res, err := e.Run(func(ctx core.VertexView, s *Scheduler) {
		d := math.Float64frombits(ctx.Vertex())
		for k := 0; k < ctx.OutDegree(); k++ {
			u := ctx.OutNeighbor(k)
			cand := d + ref.Weights[ctx.OutEdgeID(k)]
			if cand < math.Float64frombits(e.Vertices[u]) {
				e.Vertices[u] = math.Float64bits(cand)
				s.Post(u, cand)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Updates != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func BenchmarkAutonomousSSSP(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 145)
	if err != nil {
		b.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 0, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SSSP(g, 0, s.Weights); err != nil {
			b.Fatal(err)
		}
	}
}
