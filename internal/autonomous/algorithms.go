package autonomous

import (
	"math"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
)

// SSSP runs single-source shortest paths under autonomous scheduling with
// priority = candidate distance. The smallest-distance-first order makes
// each vertex settle on its first execution — Dijkstra's algorithm
// recovered as a scheduling policy. Returns distances and the run result
// (Updates ≈ number of reachable vertices, plus decrease-key refreshes).
func SSSP(g *graph.Graph, source uint32, weights []float64) ([]float64, Result, error) {
	e, err := NewEngine(g, 0)
	if err != nil {
		return nil, Result{}, err
	}
	inf := edgedata.FromFloat64(math.Inf(1))
	for v := range e.Vertices {
		e.Vertices[v] = inf
	}
	e.Vertices[source] = edgedata.FromFloat64(0)
	e.Post(source, 0)

	update := func(ctx core.VertexView, s *Scheduler) {
		d := edgedata.ToFloat64(ctx.Vertex())
		// Relax out-edges; improved neighbors are posted with their new
		// candidate distance as priority.
		for k := 0; k < ctx.OutDegree(); k++ {
			u := ctx.OutNeighbor(k)
			cand := d + weights[ctx.OutEdgeID(k)]
			if cand < edgedata.ToFloat64(e.Vertices[u]) {
				e.Vertices[u] = edgedata.FromFloat64(cand)
				s.Post(u, cand)
			}
		}
	}
	res, err := e.Run(update)
	if err != nil {
		return nil, Result{}, err
	}
	dist := make([]float64, g.N())
	for v, w := range e.Vertices {
		dist[v] = edgedata.ToFloat64(w)
	}
	return dist, res, nil
}

// DeltaPageRank runs residual-driven PageRank under autonomous scheduling
// with priority = −residual (largest pending change first). Every vertex
// accumulates a residual of incoming rank mass; executing a vertex folds
// the residual into its rank and pushes damped shares to its successors.
// Converges when all residuals fall below eps.
func DeltaPageRank(g *graph.Graph, damping, eps float64) ([]float64, Result, error) {
	e, err := NewEngine(g, 0)
	if err != nil {
		return nil, Result{}, err
	}
	n := g.N()
	rank := make([]float64, n)
	residual := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1 - damping
		residual[v] = 1 - damping // bootstrap residual, standard push PR
		e.Post(uint32(v), -residual[v])
	}
	update := func(ctx core.VertexView, s *Scheduler) {
		v := ctx.V()
		r := residual[v]
		if r < eps {
			return
		}
		residual[v] = 0
		rank[v] += r
		out := ctx.OutDegree()
		if out == 0 {
			return
		}
		share := damping * r / float64(out)
		for k := 0; k < out; k++ {
			u := ctx.OutNeighbor(k)
			residual[u] += share
			if residual[u] >= eps {
				s.Post(u, -residual[u])
			}
		}
	}
	res, err := e.Run(update)
	if err != nil {
		return nil, Result{}, err
	}
	// Offset bootstrap: the push formulation accumulates (1-d) once via
	// the initial residual on top of the (1-d) base, so rebase.
	for v := range rank {
		rank[v] -= 1 - damping
	}
	return rank, res, nil
}
