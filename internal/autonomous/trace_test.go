package autonomous

import (
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/trace"
)

// The autonomous executor records one trace event per executed update, in
// execution order — the priority queue's drain order IS the path.
func TestAutonomousTraceRecordsDrainOrder(t *testing.T) {
	g, err := gen.RMAT(200, 1200, gen.DefaultRMAT, 151)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 16)
	e.Trace(rec)
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	for v := 0; v < g.N(); v++ {
		e.Post(uint32(v), float64(v))
	}
	res, err := e.Run(func(ctx core.VertexView, s *Scheduler) {
		min := ctx.Vertex()
		for k := 0; k < ctx.OutDegree(); k++ {
			if u := uint64(ctx.OutNeighbor(k)); u < min {
				min = u
			}
		}
		ctx.SetVertex(min)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() != res.Updates {
		t.Fatalf("trace recorded %d events for %d updates", rec.Total(), res.Updates)
	}
	// Priority = vertex id and no reposts, so the drain order is ascending.
	for i, ev := range rec.Events() {
		if int(ev.Vertex) != i {
			t.Fatalf("event %d executed vertex %d; priority order violated", i, ev.Vertex)
		}
		if ev.Worker != 0 || ev.Iteration != 0 {
			t.Fatalf("sequential executor recorded worker %d iteration %d", ev.Worker, ev.Iteration)
		}
	}
}
