// Package autonomous implements the paper's *other* scheduling category:
// "by autonomous scheduling, a graph algorithm is allowed to define the
// execution path of the updates so as to accelerate its convergence"
// (Section I, citing GraphLab/Galois). Where the coordinated engine
// executes fixed per-iteration sets, the autonomous executor drains a
// priority queue: the algorithm attaches a priority to every scheduled
// update, and the executor always runs the most urgent one.
//
// Two classic payoffs are reproducible with this executor:
//
//   - SSSP with priority = candidate distance degenerates to Dijkstra's
//     algorithm: every vertex settles with its final distance the first
//     time it executes, so the update count drops to ~|V| against the
//     coordinated engine's per-iteration resweeps;
//   - delta-based PageRank with priority = pending residual focuses work
//     on the vertices that still move the solution.
//
// The executor is sequential by design — autonomous scheduling's value is
// the *order*, and a strict global priority order is inherently serial
// (the paper's deterministic/nondeterministic dichotomy applies to the
// coordinated engines; parallel relaxations of priority order are the
// domain of Galois-style speculation, out of scope).
package autonomous

import (
	"container/heap"
	"fmt"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/trace"
)

// sampleWindow is the update count between telemetry samples; the executor
// is sequential, so a plain counter in the drain loop suffices.
const sampleWindow = 4096

// UpdateFunc is an autonomous update: it receives the vertex view plus a
// scheduler handle for posting prioritized work.
type UpdateFunc func(ctx core.VertexView, s *Scheduler)

// Result reports an autonomous run.
type Result struct {
	Updates   int64
	Converged bool
	Duration  time.Duration
}

// Scheduler is the priority queue the update function posts into.
// Smaller priority value = more urgent (natural for distances; negate
// residuals for largest-first).
type Scheduler struct {
	heap    workHeap
	pos     []int32 // vertex -> heap index, -1 if absent
	prio    []float64
	pending int
}

func newScheduler(n int) *Scheduler {
	s := &Scheduler{pos: make([]int32, n), prio: make([]float64, n)}
	s.heap.s = s
	for i := range s.pos {
		s.pos[i] = -1
	}
	return s
}

// Post schedules v with the given priority; if v is already queued, its
// priority is lowered to the minimum of old and new (decrease-key).
func (s *Scheduler) Post(v uint32, priority float64) {
	if s.pos[v] >= 0 {
		if priority < s.prio[v] {
			s.prio[v] = priority
			heap.Fix(&s.heap, int(s.pos[v]))
		}
		return
	}
	s.prio[v] = priority
	heap.Push(&s.heap, v)
}

// Len returns the number of queued updates.
func (s *Scheduler) Len() int { return s.heap.Len() }

func (s *Scheduler) pop() uint32 {
	return heap.Pop(&s.heap).(uint32)
}

// workHeap implements heap.Interface over vertex ids keyed by the
// scheduler's priority array. It needs access to the parent's slices, so
// it is embedded by pointer arithmetic via closure-free indirection: the
// heap stores the vertices and the Scheduler owns prio/pos.
type workHeap struct {
	items []uint32
	s     *Scheduler
}

func (h workHeap) Len() int { return len(h.items) }
func (h workHeap) Less(i, j int) bool {
	return h.s.prio[h.items[i]] < h.s.prio[h.items[j]]
}
func (h workHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.s.pos[h.items[i]] = int32(i)
	h.s.pos[h.items[j]] = int32(j)
}
func (h *workHeap) Push(x any) {
	v := x.(uint32)
	h.s.pos[v] = int32(len(h.items))
	h.items = append(h.items, v)
}
func (h *workHeap) Pop() any {
	last := len(h.items) - 1
	v := h.items[last]
	h.items = h.items[:last]
	h.s.pos[v] = -1
	return v
}

// Engine executes autonomous computations over the same vertex/edge state
// layout as the coordinated engine.
type Engine struct {
	g *graph.Graph

	Edges    edgedata.Store
	Vertices []uint64

	sched      *Scheduler
	maxUpdates int64

	// observer, when non-nil, receives one event per sampleWindow updates
	// plus a final one at quiescence; set with Observe before Run.
	observer *obs.Observer
	samples  int64

	// trace, when non-nil, records one event per executed update; set with
	// Trace before Run.
	trace *trace.Recorder
}

// NewEngine builds an autonomous executor for g. maxUpdates caps the run
// (0 = 1<<26).
func NewEngine(g *graph.Graph, maxUpdates int64) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("autonomous: nil graph")
	}
	if maxUpdates <= 0 {
		maxUpdates = 1 << 26
	}
	e := &Engine{
		g:          g,
		Edges:      edgedata.New(edgedata.ModeSequential, g.M()),
		Vertices:   make([]uint64, g.N()),
		sched:      newScheduler(g.N()),
		maxUpdates: maxUpdates,
	}
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Post seeds the scheduler before Run.
func (e *Engine) Post(v uint32, priority float64) { e.sched.Post(v, priority) }

// Observe attaches an observer; nil detaches. Call before Run.
func (e *Engine) Observe(o *obs.Observer) { e.observer = o }

// Trace attaches an execution-path recorder: every executed update records
// one event (iteration 0, worker 0 — the executor is sequential, so the
// event sequence IS the execution path). Call before Run; nil detaches.
func (e *Engine) Trace(rec *trace.Recorder) { e.trace = rec }

// emitSample emits one telemetry window and resets the view's counters.
func (e *Engine) emitSample(view *autoView, updates, durationNs int64) {
	queued := int64(e.sched.Len())
	e.observer.Emit(obs.Event{
		Engine:        obs.EngineAutonomous,
		Iter:          e.samples,
		Scheduled:     queued,
		Updates:       updates,
		EdgeReads:     view.nReads,
		EdgeWrites:    view.nWrites,
		RWConflicts:   -1,
		WWConflicts:   -1,
		Residual:      float64(queued) / float64(e.g.N()),
		DurationNanos: durationNs,
	})
	e.samples++
	view.nReads, view.nWrites = 0, 0
}

// Run drains the priority queue to quiescence.
func (e *Engine) Run(update UpdateFunc) (Result, error) {
	if update == nil {
		return Result{}, fmt.Errorf("autonomous: nil update function")
	}
	res := Result{Converged: true}
	start := time.Now()
	view := &autoView{e: e}
	window := int64(0)
	for e.sched.Len() > 0 {
		if res.Updates >= e.maxUpdates {
			res.Converged = false
			break
		}
		v := e.sched.pop()
		view.bind(v)
		update(view, e.sched)
		res.Updates++
		if t := e.trace; t != nil {
			t.Record(0, 0, v, view.uWrites, e.Vertices[v])
		}
		if e.observer != nil {
			if window++; window >= sampleWindow {
				e.emitSample(view, window, 0)
				window = 0
			}
		}
	}
	res.Duration = time.Since(start)
	if e.observer != nil {
		e.emitSample(view, window, res.Duration.Nanoseconds())
	}
	return res, nil
}

// autoView adapts the engine to core.VertexView. Writing an edge does NOT
// auto-schedule the opposite endpoint — the autonomous algorithm owns its
// execution path and posts work itself via the Scheduler (the whole point
// of the category).
type autoView struct {
	e      *Engine
	v      uint32
	inSrc  []uint32
	inIdx  []uint32
	outDst []uint32
	outLo  uint32

	// nReads/nWrites accumulate the telemetry window's edge accesses;
	// uWrites counts the current update's edge writes for the trace.
	nReads, nWrites int64
	uWrites         int
}

func (c *autoView) bind(v uint32) {
	g := c.e.g
	c.v = v
	c.inSrc = g.InNeighbors(v)
	c.inIdx = g.InEdgeIndices(v)
	c.outDst = g.OutNeighbors(v)
	c.outLo, _ = g.OutEdgeIndex(v)
	c.uWrites = 0
}

func (c *autoView) V() uint32                { return c.v }
func (c *autoView) Vertex() uint64           { return c.e.Vertices[c.v] }
func (c *autoView) SetVertex(w uint64)       { c.e.Vertices[c.v] = w }
func (c *autoView) InDegree() int            { return len(c.inSrc) }
func (c *autoView) OutDegree() int           { return len(c.outDst) }
func (c *autoView) InNeighbor(k int) uint32  { return c.inSrc[k] }
func (c *autoView) OutNeighbor(k int) uint32 { return c.outDst[k] }
func (c *autoView) InEdgeID(k int) uint32    { return c.inIdx[k] }
func (c *autoView) OutEdgeID(k int) uint32   { return c.outLo + uint32(k) }
func (c *autoView) InEdgeVal(k int) uint64 {
	c.nReads++
	return c.e.Edges.Load(c.inIdx[k])
}
func (c *autoView) OutEdgeVal(k int) uint64 {
	c.nReads++
	return c.e.Edges.Load(c.outLo + uint32(k))
}
func (c *autoView) SetInEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	c.e.Edges.Store(c.inIdx[k], w)
}
func (c *autoView) SetOutEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	c.e.Edges.Store(c.outLo+uint32(k), w)
}
func (c *autoView) ScheduleSelf() {}
func (c *autoView) Yield()        {}

var _ core.VertexView = (*autoView)(nil)
