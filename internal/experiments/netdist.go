package experiments

import (
	"context"
	"math"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/netdist"
)

// NetDistRow reports one real-transport distributed run: worker-process
// count, agreement with the sequential reference, and the supervision
// counters (restarts observed under fault injection, quiescence sweeps).
type NetDistRow struct {
	Graph     string
	Algo      string
	Workers   int
	Faults    string // "" for clean runs
	Restarts  int
	Sweeps    int
	Identical bool
	Duration  time.Duration
}

// NetDistScaling exercises internal/netdist — worker processes on real
// TCP transport — on an R-MAT analog: WCC and SSSP across a worker-count
// sweep, each checked byte-identically against the sequential reference,
// plus one faulted 4-worker run per algorithm that survives a worker kill
// and a full data-plane partition mid-run. It is the process-level
// counterpart of DistComparison's in-memory simulation.
func NetDistScaling(cfg Config) ([]NetDistRow, error) {
	cfg.validate()
	n := 200_000 / cfg.Scale
	if n < 500 {
		n = 500
	}
	spec := netdist.GraphSpec{Kind: "rmat", N: n, M: 5 * n, Seed: cfg.Seed}
	g, err := spec.Build()
	if err != nil {
		return nil, err
	}
	src := PickSource(g)
	wantWCC := algorithms.ReferenceWCC(g)
	weights := algorithms.NewSSSP(g, src, cfg.Seed+1).Weights
	wantSSSP := algorithms.ReferenceSSSP(g, src, weights)

	algos := []struct {
		name string
		spec netdist.AlgoSpec
		same func(res *netdist.Result) bool
	}{
		{"wcc", netdist.AlgoSpec{Name: "wcc"}, func(res *netdist.Result) bool {
			got := res.Labels()
			for v := range wantWCC {
				if got[v] != wantWCC[v] {
					return false
				}
			}
			return true
		}},
		{"sssp", netdist.AlgoSpec{Name: "sssp", Source: src, WeightSeed: cfg.Seed + 1}, func(res *netdist.Result) bool {
			got := res.Floats()
			for v := range wantSSSP {
				if math.Float64bits(got[v]) != math.Float64bits(wantSSSP[v]) {
					return false
				}
			}
			return true
		}},
	}

	var rows []NetDistRow
	for _, a := range algos {
		for _, workers := range []int{1, 2, 4} {
			opt := netdist.Options{
				Workers:   workers,
				Graph:     spec,
				Algo:      a.spec,
				Observer:  cfg.Observer,
				RTO:       50 * time.Millisecond,
				Heartbeat: 25 * time.Millisecond,
			}
			res, err := netdist.Run(context.Background(), opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, NetDistRow{
				Graph: "rmat", Algo: a.name, Workers: workers,
				Restarts: res.Restarts, Sweeps: res.Sweeps,
				Identical: a.same(res), Duration: res.Duration,
			})
		}

		// Faulted run: kill one worker and partition another mid-run; the
		// supervisor must restore from checkpoint and ripple-repair the
		// boundary, and the result must still match exactly.
		proxy := netdist.NewProxy()
		launcher := netdist.NewLocalLauncher()
		proxy.Isolate(2)
		go func() {
			time.Sleep(400 * time.Millisecond)
			_ = launcher.Kill(1)
			time.Sleep(500 * time.Millisecond)
			proxy.Heal()
		}()
		opt := netdist.Options{
			Workers:   4,
			Graph:     spec,
			Algo:      a.spec,
			Proxy:     proxy,
			Launcher:  launcher,
			Observer:  cfg.Observer,
			RTO:       50 * time.Millisecond,
			Heartbeat: 25 * time.Millisecond,
			CkptOps:   256,
		}
		res, err := netdist.Run(context.Background(), opt)
		proxy.Close()
		launcher.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, NetDistRow{
			Graph: "rmat", Algo: a.name, Workers: 4,
			Faults: "kill+partition", Restarts: res.Restarts, Sweeps: res.Sweeps,
			Identical: a.same(res), Duration: res.Duration,
		})
	}
	return rows, nil
}
