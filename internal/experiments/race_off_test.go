//go:build !race

package experiments

// raceEnabled mirrors the race build tag for test-time configuration.
const raceEnabled = false
