package experiments

import (
	"context"
	"fmt"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/gen"
	"ndgraph/internal/hybrid"
)

// HybridRow is one graph × algorithm line of the direction-optimizing
// sweep: how the Beamer policy scheduled directions, and what that bought
// over forcing every iteration through the push kernel.
type HybridRow struct {
	Graph      string
	Algo       string
	Threads    int
	Iterations int
	// Switches counts direction changes between consecutive iterations.
	Switches int
	// Trace is one character per iteration: 'P' push, 'L' pull.
	Trace string
	// Hybrid is the wall time under the default Beamer policy; AllPush is
	// the same engine forced to push every iteration.
	Hybrid, AllPush time.Duration
}

// HybridStudy runs the paired push/pull kernels (WCC, BFS, SSSP) on every
// benchmark graph through the direction-optimizing engine, once under the
// default Beamer policy and once forced all-push, reporting the recorded
// direction trace and both times (best of three runs). WCC runs on the
// symmetrized graph, per its kernel contract.
func HybridStudy(cfg Config) ([]HybridRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	threads := 4
	rows := make([]HybridRow, 0, 12)
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		src := PickSource(g)
		weights := algorithms.NewSSSP(g, src, cfg.Seed).Weights
		kernels := []struct {
			name string
			k    algorithms.Kernel
		}{
			{"wcc", algorithms.WCCKernel()},
			{"bfs", algorithms.BFSKernel(src)},
			{"sssp", algorithms.SSSPKernel(src, weights)},
		}
		for _, kc := range kernels {
			kg := g
			if kc.k.Undirected {
				kg = g.Undirected()
			}
			e, err := hybrid.NewEngine(kg, threads)
			if err != nil {
				return nil, fmt.Errorf("hybrid %s/%s: %w", d, kc.name, err)
			}
			if cfg.Observer != nil {
				e.Observe(cfg.Observer)
			}
			var last hybrid.Result
			run := func() (time.Duration, error) {
				best := time.Duration(1<<63 - 1)
				for i := 0; i < 3; i++ {
					res, err := e.Run(context.Background(), kc.k)
					if err != nil {
						return 0, fmt.Errorf("hybrid %s/%s: %w", d, kc.name, err)
					}
					if !res.Converged {
						return 0, fmt.Errorf("hybrid %s/%s: did not converge", d, kc.name)
					}
					if res.Duration < best {
						best = res.Duration
					}
					last = res
				}
				return best, nil
			}
			hybridT, err := run()
			if err != nil {
				e.Close()
				return nil, err
			}
			beamer := last
			e.Policy = func(hybrid.Stats) hybrid.Direction { return hybrid.Push }
			pushT, err := run()
			e.Close()
			if err != nil {
				return nil, err
			}
			rows = append(rows, HybridRow{
				Graph:      d.String(),
				Algo:       kc.name,
				Threads:    threads,
				Iterations: beamer.Iterations,
				Switches:   beamer.Switches,
				Trace:      beamer.SwitchTrace(),
				Hybrid:     hybridT,
				AllPush:    pushT,
			})
		}
	}
	return rows, nil
}
