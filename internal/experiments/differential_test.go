package experiments

import (
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/autonomous"
	"ndgraph/internal/core"
	"ndgraph/internal/dist"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
)

// Differential testing across every executor in the repository: the same
// monotone algorithm on the same random graph must converge to the same
// fixed point under
//
//	core (det / nondet / sync / chromatic / DIG) · async · shard (PSW)
//	· dist (message passing) · push (CAS) · autonomous (priority)
//
// with the sequential reference implementations as the oracles. This is
// the strongest executable statement of the paper's thesis: the final
// results of eligible algorithms are execution-model-independent.

func diffGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(200, 1200, gen.DefaultRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func coreVariants() map[string]core.Options {
	return map[string]core.Options{
		"core-det":       {Scheduler: sched.Deterministic},
		"core-nondet":    {Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true},
		"core-dynamic":   {Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Dispatch: sched.Dynamic},
		"core-sync":      {Scheduler: sched.Synchronous, Threads: 2, Mode: edgedata.ModeAtomic},
		"core-chromatic": {Scheduler: sched.Chromatic, Threads: 4, Mode: edgedata.ModeAtomic},
		"core-dig":       {Scheduler: sched.DIG, Threads: 4, Mode: edgedata.ModeAtomic},
	}
}

func TestDifferentialWCCAllExecutors(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := diffGraph(t, 170+seed)
		want := algorithms.ReferenceWCC(g)
		check := func(name string, got []uint32) {
			t.Helper()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed %d, %s: label[%d] = %d, union-find %d", seed, name, v, got[v], want[v])
				}
			}
		}

		// Core engine variants.
		for name, opts := range coreVariants() {
			wcc := algorithms.NewWCC()
			e, res, err := algorithms.Run(wcc, g, opts)
			if err != nil || !res.Converged {
				t.Fatalf("%s: %v (converged=%v)", name, err, res.Converged)
			}
			check(name, wcc.Components(e))
		}

		// Pure asynchronous.
		{
			wcc := algorithms.NewWCC()
			seedEng, err := core.NewEngine(g, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wcc.Setup(seedEng)
			x, err := async.NewExecutor(g, async.Options{Threads: 4, Mode: edgedata.ModeAtomic})
			if err != nil {
				t.Fatal(err)
			}
			if err := x.LoadFrom(seedEng); err != nil {
				t.Fatal(err)
			}
			res, err := x.Run(wcc.Update)
			if err != nil || !res.Converged {
				t.Fatalf("async: %v", err)
			}
			labels := make([]uint32, g.N())
			for v, w := range x.Vertices {
				labels[v] = uint32(w)
			}
			check("async", labels)
		}

		// Out-of-core PSW.
		{
			st, err := shard.Build(g, t.TempDir(), 3)
			if err != nil {
				t.Fatal(err)
			}
			for v := range st.Vertices {
				st.Vertices[v] = uint64(v)
			}
			if err := st.FillValues(^uint64(0)); err != nil {
				t.Fatal(err)
			}
			e, err := shard.NewEngine(st, shard.Options{Threads: 2, Mode: edgedata.ModeAtomic})
			if err != nil {
				t.Fatal(err)
			}
			e.Frontier().ScheduleAll()
			wcc := algorithms.NewWCC()
			res, err := e.Run(wcc.Update)
			if err != nil || !res.Converged {
				t.Fatalf("shard: %v", err)
			}
			labels := make([]uint32, g.N())
			for v, w := range st.Vertices {
				labels[v] = uint32(w)
			}
			check("shard", labels)
		}

		// Distributed message passing with duplication.
		{
			labels, res, err := dist.WCC(g, dist.Options{Workers: 4, Seed: seed, DuplicateProb: 0.2})
			if err != nil || !res.Converged {
				t.Fatalf("dist: %v", err)
			}
			check("dist", labels)
		}

		// Push mode with CAS.
		{
			labels, res, err := push.WCC(g, push.ModeCAS, 4)
			if err != nil || !res.Converged {
				t.Fatalf("push: %v", err)
			}
			check("push", labels)
		}
	}
}

func TestDifferentialSSSPAllExecutors(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := diffGraph(t, 180+seed)
		src := PickSource(g)
		ref := algorithms.NewSSSP(g, src, seed+1)
		want := algorithms.ReferenceSSSP(g, src, ref.Weights)
		check := func(name string, got []float64) {
			t.Helper()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed %d, %s: dist[%d] = %v, dijkstra %v", seed, name, v, got[v], want[v])
				}
			}
		}

		for name, opts := range coreVariants() {
			s := algorithms.NewSSSP(g, src, seed+1)
			e, res, err := algorithms.Run(s, g, opts)
			if err != nil || !res.Converged {
				t.Fatalf("%s: %v", name, err)
			}
			check(name, s.Distances(e))
		}

		{
			s := algorithms.NewSSSP(g, src, seed+1)
			seedEng, err := core.NewEngine(g, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s.Setup(seedEng)
			x, err := async.NewExecutor(g, async.Options{Threads: 4, Mode: edgedata.ModeAtomic})
			if err != nil {
				t.Fatal(err)
			}
			if err := x.LoadFrom(seedEng); err != nil {
				t.Fatal(err)
			}
			res, err := x.Run(s.Update)
			if err != nil || !res.Converged {
				t.Fatalf("async: %v", err)
			}
			got := make([]float64, g.N())
			for v, w := range x.Vertices {
				got[v] = math.Float64frombits(w)
			}
			check("async", got)
		}

		{
			got, res, err := push.SSSP(g, src, ref.Weights, push.ModeCAS, 4)
			if err != nil || !res.Converged {
				t.Fatalf("push: %v", err)
			}
			check("push", got)
		}

		{
			got, res, err := dist.SSSP(g, src, ref.Weights, dist.Options{Workers: 4, Seed: seed, DuplicateProb: 0.1})
			if err != nil || !res.Converged {
				t.Fatalf("dist: %v", err)
			}
			check("dist", got)
		}

		{
			got, res, err := autonomous.SSSP(g, src, ref.Weights)
			if err != nil || !res.Converged {
				t.Fatalf("autonomous: %v", err)
			}
			check("autonomous", got)
		}
	}
}

// PageRank (approximate convergence) across execution models: values need
// not be identical, but every model's converged vector must sit near the
// true fixed point.
func TestDifferentialPageRankAllExecutors(t *testing.T) {
	g := diffGraph(t, 190)
	const eps = 1e-7
	want := algorithms.ReferencePageRank(g, 0.85, 1e-12, 20000)
	closeEnough := func(name string, got []float64) {
		t.Helper()
		for v := range want {
			if math.Abs(got[v]-want[v]) > 0.02 {
				t.Fatalf("%s: rank[%d] = %v, reference %v", name, v, got[v], want[v])
			}
		}
	}

	for name, opts := range coreVariants() {
		pr := algorithms.NewPageRank(eps)
		e, res, err := algorithms.Run(pr, g, opts)
		if err != nil || !res.Converged {
			t.Fatalf("%s: %v", name, err)
		}
		closeEnough(name, pr.Ranks(e))
	}

	// Autonomous delta-PageRank.
	rank, res, err := autonomous.DeltaPageRank(g, 0.85, 1e-10)
	if err != nil || !res.Converged {
		t.Fatalf("autonomous: %v", err)
	}
	closeEnough("autonomous", rank)

	// ε-stopped work-stealing run: no local threshold (the run would spin at
	// exact quiescence forever), terminated solely by the windowed-residual
	// rule, and still required to land at the same fixed point as every
	// engine above. The stopping threshold sits three decades under the
	// comparison tolerance; per-commit residual amplifies into rank error by
	// roughly max-indegree · d/(1−d) on this graph.
	{
		const stopEps = 1e-5
		pr := &algorithms.PageRank{Epsilon: 0, Damping: 0.85}
		v, err := algorithms.NoSyncVerdict(pr, g)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := core.NewEngine(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr.Setup(seed)
		x, err := async.NewNoSync(g, async.NoSyncOptions{
			Threads: 4, Mode: edgedata.ModeAtomic, Verdict: &v,
			MaxUpdates: 1 << 22, Epsilon: stopEps, ResidualDelta: pr.ResidualDelta,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		if err := x.LoadFrom(seed); err != nil {
			t.Fatal(err)
		}
		nres, err := x.Run(pr.Update)
		if err != nil {
			t.Fatal(err)
		}
		if !nres.Converged || !nres.EpsilonStopped {
			t.Fatalf("nosync-εstop: res = %+v, want ε-stopped convergence", nres)
		}
		if nres.FinalResidual >= stopEps {
			t.Fatalf("nosync-εstop: final residual %g, want < %g", nres.FinalResidual, stopEps)
		}
		ranks := make([]float64, g.N())
		for u := range ranks {
			ranks[u] = edgedata.ToFloat64(x.Vertices[u])
		}
		closeEnough("nosync-εstop", ranks)
	}
}

// Sanity: every executor pair really did run — count them so a silently
// skipped branch cannot pass.
func TestDifferentialCoverageManifest(t *testing.T) {
	if len(coreVariants()) != 6 {
		t.Fatalf("core variants = %d, want 6", len(coreVariants()))
	}
}
