package experiments

import (
	"testing"
	"time"
)

// tinyConfig keeps experiment tests fast: graphs a few hundred to a few
// thousand vertices, two runs, two epsilons.
func tinyConfig() Config {
	return Config{
		Scale:       500,
		Seed:        7,
		Threads:     []int{1, 4},
		Runs:        2,
		Epsilons:    []float64{1e-1, 1e-2},
		PageRankEps: 1e-2,
	}
}

func TestDefaultConfigFillsZeroes(t *testing.T) {
	var c Config
	c.validate()
	d := DefaultConfig()
	if c.Scale != d.Scale || c.Runs != d.Runs || len(c.Threads) != len(d.Threads) {
		t.Fatalf("validate() = %+v", c)
	}
}

func TestGraphsAllDatasets(t *testing.T) {
	gs, err := Graphs(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d graphs", len(gs))
	}
	for name, g := range gs {
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SynthV == 0 || r.SynthE == 0 || r.PaperV == 0 {
			t.Fatalf("row %+v has zero sizes", r)
		}
		if r.SynthV != r.PaperV/500 {
			t.Fatalf("%s: SynthV %d != PaperV/scale %d", r.Name, r.SynthV, r.PaperV/500)
		}
	}
}

func TestNewAlgorithmAllNames(t *testing.T) {
	cfg := tinyConfig()
	gs, err := Graphs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := gs["web-google"]
	for _, name := range append(AlgoNames(), "spmv", "coloring") {
		a, err := NewAlgorithm(name, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("NewAlgorithm(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := NewAlgorithm("nope", g, cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPickSource(t *testing.T) {
	gs, err := Graphs(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range gs {
		src := PickSource(g)
		if g.OutDegree(src) == 0 {
			t.Fatalf("%s: source %d has zero out-degree", name, src)
		}
	}
}

func TestExecKinds(t *testing.T) {
	with := ExecKinds(true)
	without := ExecKinds(false)
	if len(with) != 4 || len(without) != 3 {
		t.Fatalf("kinds = %d / %d", len(with), len(without))
	}
	if with[0].Label != "DE" {
		t.Fatalf("first kind = %q", with[0].Label)
	}
}

func TestFig3SmallGrid(t *testing.T) {
	cfg := tinyConfig()
	cfg.Threads = []int{2}
	cells, err := Fig3(cfg, !raceEnabled)
	if err != nil {
		t.Fatal(err)
	}
	// 4 graphs × 4 algorithms × (1 DE + nNE×1 thread-count).
	kinds := 3
	if raceEnabled {
		kinds = 2
	}
	want := 4 * 4 * (1 + kinds)
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Duration <= 0 {
			t.Fatalf("cell %+v has non-positive duration", c)
		}
		if c.Iterations == 0 || c.Updates == 0 {
			t.Fatalf("cell %+v did no work", c)
		}
	}
}

func TestVarianceTables(t *testing.T) {
	cfg := tinyConfig()
	ii, iii, err := VarianceTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ii) != 4 {
		t.Fatalf("Table II rows = %d, want 4", len(ii))
	}
	if len(iii) != 6 {
		t.Fatalf("Table III rows = %d, want C(4,2)=6", len(iii))
	}
	// DE vs DE must be perfectly reproducible: difference degree = |V|.
	gs, err := Graphs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(gs["web-google"].N())
	for _, eps := range cfg.Epsilons {
		if got := ii[0].ByEpsilon[eps]; got != n {
			t.Fatalf("DE vs DE at ε=%v: %v, want %v (identical orderings)", eps, got, n)
		}
	}
	for _, row := range append(ii, iii...) {
		for eps, v := range row.ByEpsilon {
			if v < 0 || v > n {
				t.Fatalf("%s at ε=%v: difference degree %v out of range", row.Pair, eps, v)
			}
		}
	}
}

func TestConflictCensus(t *testing.T) {
	rows, err := ConflictCensus(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*8 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	for _, r := range rows {
		switch r.Algo {
		case "pagerank", "sssp", "bfs", "spmv", "labelprop":
			if r.WW != 0 {
				t.Fatalf("%s on %s has WW conflicts: %+v", r.Algo, r.Graph, r)
			}
		case "wcc", "kcore", "coloring":
			if r.WW == 0 {
				t.Fatalf("%s on %s has no WW conflicts: %+v", r.Algo, r.Graph, r)
			}
		}
		switch r.Algo {
		case "coloring", "labelprop":
			if r.Verdict != "not eligible" {
				t.Fatalf("%s verdict = %q", r.Algo, r.Verdict)
			}
		default:
			if r.Verdict == "not eligible" {
				t.Fatalf("%s on %s verdict = %q", r.Algo, r.Graph, r.Verdict)
			}
		}
	}
}

func TestConvergenceSpeed(t *testing.T) {
	rows, err := ConvergenceSpeed(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		if r.SyncIter == 0 || r.DetIter == 0 || r.NondetIter == 0 {
			t.Fatalf("row %+v has zero iterations", r)
		}
		// The paper's motivation: async (GS) needs no more iterations than
		// sync for the all-scheduled algorithms. Single-source traversals
		// advance one hop per iteration under both, so only compare the
		// all-scheduled ones.
		if r.Algo == "pagerank" || r.Algo == "wcc" {
			if r.DetIter > r.SyncIter {
				t.Fatalf("%s on %s: det iterations %d > sync %d", r.Algo, r.Graph, r.DetIter, r.SyncIter)
			}
		}
	}
}

func TestPureAsyncComparison(t *testing.T) {
	rows, err := PureAsyncComparison(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.BarrierUpdates == 0 || r.PureUpdates == 0 {
			t.Fatalf("row %+v did no work", r)
		}
		if r.BarrierTime <= 0 || r.PureTime <= 0 {
			t.Fatalf("row %+v has missing timings", r)
		}
	}
}

func TestTopKAgreementStudy(t *testing.T) {
	cfg := tinyConfig()
	rows, err := TopKAgreementStudy(cfg, []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Epsilons)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Agreement < 0 || r.Agreement > 1 {
			t.Fatalf("agreement %v out of range", r.Agreement)
		}
	}
}

func TestFig3DurationsPlausible(t *testing.T) {
	cfg := tinyConfig()
	cfg.Threads = []int{1}
	cells, err := Fig3(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Duration > time.Minute {
			t.Fatalf("cell %+v implausibly slow for tiny scale", c)
		}
	}
}

func TestDispatchAblation(t *testing.T) {
	rows, err := DispatchAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Duration <= 0 || r.Updates == 0 {
			t.Fatalf("row %+v did no work", r)
		}
		if r.Variant != "static" && r.Variant != "dynamic" {
			t.Fatalf("unexpected variant %q", r.Variant)
		}
	}
}

func TestLabelOrderAblation(t *testing.T) {
	rows, err := LabelOrderAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Variant] = true
	}
	for _, v := range []string{"natural", "degree-desc", "degree-interleave"} {
		if !seen[v] {
			t.Fatalf("missing variant %q", v)
		}
	}
}

func TestAmplifierAblation(t *testing.T) {
	rows, err := AmplifierAblation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if !r.ResultsIdentical {
		t.Fatal("amplifier changed WCC results — it must only change interleavings")
	}
}

func TestPSWComparison(t *testing.T) {
	rows, err := PSWComparison(tinyConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("%s: PSW results differ from reference", r.Graph)
		}
		if r.PSWBytesRead == 0 {
			t.Fatalf("%s: no PSW I/O recorded", r.Graph)
		}
	}
}

func TestDistComparison(t *testing.T) {
	rows, err := DistComparison(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("%s/%s: distributed results differ from reference", r.Graph, r.Algo)
		}
		if r.Messages == 0 {
			t.Fatalf("%s/%s: no messages delivered", r.Graph, r.Algo)
		}
	}
}

func TestFixedPointVariance(t *testing.T) {
	cfg := tinyConfig()
	rows, err := FixedPointVariance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(cfg.Epsilons) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanDiff < 0 || r.Footrule < 0 || r.Footrule > 1 {
			t.Fatalf("row %+v out of range", r)
		}
	}
}

func TestFixedPointOrderingsUnknownAlgo(t *testing.T) {
	cfg := tinyConfig()
	gs, err := Graphs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FixedPointOrderings(gs["web-google"], "wcc", cfg, 1e-2, 4, false); err == nil {
		t.Fatal("non-fixed-point algorithm accepted")
	}
}

func TestPrecisionStudy(t *testing.T) {
	cfg := tinyConfig()
	rows, err := PrecisionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Epsilons)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Error must shrink (weakly) as ε tightens, per thread count.
	byThreads := map[int][]PrecisionRow{}
	for _, r := range rows {
		byThreads[r.Threads] = append(byThreads[r.Threads], r)
		if r.MaxLInf < 0 || r.MeanLInf > r.MaxLInf+1e-15 {
			t.Fatalf("row %+v inconsistent", r)
		}
	}
	for threads, rs := range byThreads {
		for i := 1; i < len(rs); i++ {
			// Epsilons are ordered loosest-first in tinyConfig.
			if rs[i].MeanLInf > rs[i-1].MeanLInf*3+1e-9 {
				t.Fatalf("threads=%d: error grew sharply with tighter ε: %+v -> %+v", threads, rs[i-1], rs[i])
			}
		}
	}
}

func TestStalenessStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full staleness sweep")
	}
	stale, eps, err := StalenessStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 graphs x 4 thread counts.
	if want := 4 * 4; len(stale) != want {
		t.Fatalf("staleness rows = %d, want %d", len(stale), want)
	}
	for _, r := range stale {
		if !r.ResultsEqual {
			t.Fatalf("%s/P%d: instrumented no-sync WCC fixed point differs from reference", r.Graph, r.Threads)
		}
		if r.Updates == 0 || r.Reads == 0 {
			t.Fatalf("%s/P%d: delay clock observed nothing: %+v", r.Graph, r.Threads, r)
		}
		if r.DelayP50 > r.DelayP99 || r.DelayP99 > r.DelayMax {
			t.Fatalf("%s/P%d: staleness quantiles out of order: %+v", r.Graph, r.Threads, r)
		}
	}
	// 4 graphs x 2 epsilons (tinyConfig).
	if want := 4 * 2; len(eps) != want {
		t.Fatalf("ε-stop rows = %d, want %d", len(eps), want)
	}
	for _, r := range eps {
		// Either the rule fired, or the run reached exact quiescence on its
		// own; both must land within the ε the cell asked about.
		if r.StopMaxErr > r.Epsilon {
			t.Fatalf("%s/ε=%g: ε-stopped ranks off by %g", r.Graph, r.Epsilon, r.StopMaxErr)
		}
		if r.StopUpdates == 0 || r.FullUpdates == 0 {
			t.Fatalf("%s/ε=%g: empty cell: %+v", r.Graph, r.Epsilon, r)
		}
	}
}

func TestNoSyncStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine sweep")
	}
	scale, drift, err := NoSyncStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 graphs x 5 engines x 2 thread counts.
	if want := 4 * len(NoSyncEngines()) * 2; len(scale) != want {
		t.Fatalf("scale rows = %d, want %d", len(scale), want)
	}
	for _, r := range scale {
		if r.Time <= 0 || r.Updates == 0 {
			t.Fatalf("row %+v did no work", r)
		}
		if r.Engine != "nosync" && (r.Steals != 0 || r.IdleTransitions != 0) {
			t.Fatalf("row %+v reports steals for a non-stealing engine", r)
		}
	}
	if len(drift) != 4 {
		t.Fatalf("drift rows = %d, want 4", len(drift))
	}
	for _, r := range drift {
		if !r.ResultsEqual {
			t.Fatalf("%s: no-sync WCC fixed point differs from deterministic reference", r.Graph)
		}
		if r.DetEvents == 0 || r.NoSyncEvents == 0 {
			t.Fatalf("%s: empty trace recorded", r.Graph)
		}
		if r.Report == nil {
			t.Fatalf("%s: missing diff report", r.Graph)
		}
	}
}
