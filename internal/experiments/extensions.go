package experiments

import (
	"fmt"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

// This file implements the extension experiments DESIGN.md lists beyond
// the paper's own tables and figures: the conflict census (quantifying the
// Section III conflict classes per algorithm), the convergence-speed
// comparison (future-work item 3), the barrier-free executor comparison
// (future-work item 4 / the GRACE claim), and the top-K rank agreement
// behind the paper's "top pages identical" observation.

// CensusRow reports one algorithm's conflict classes and eligibility
// verdict on one graph.
type CensusRow struct {
	Graph   string
	Algo    string
	RW, WW  uint64
	Verdict string
}

// ConflictCensus probes every evaluated algorithm (plus SpMV and the
// deliberately ineligible coloring) on every dataset analog.
func ConflictCensus(cfg Config) ([]CensusRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	names := append(AlgoNames(), "spmv", "kcore", "labelprop", "coloring")
	var rows []CensusRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, name := range names {
			a, err := NewAlgorithm(name, g, cfg)
			if err != nil {
				return nil, err
			}
			profile, verdict, err := algorithms.Probe(a, g)
			if err != nil {
				return nil, err
			}
			label := "not eligible"
			if verdict.Eligible {
				label = fmt.Sprintf("eligible (Thm %d)", verdict.Theorem)
				if verdict.DeterministicResults {
					label += ", exact"
				}
			}
			rows = append(rows, CensusRow{
				Graph: d.String(), Algo: name,
				RW: profile.RW, WW: profile.WW, Verdict: label,
			})
		}
	}
	return rows, nil
}

// IterRow compares iterations-to-convergence across execution models for
// one algorithm on one graph (the paper's motivation: "synchronous model
// generally needs to conduct more iterations than asynchronous model").
type IterRow struct {
	Graph      string
	Algo       string
	SyncIter   int
	DetIter    int
	NondetIter int
}

// ConvergenceSpeed measures iterations under BSP, deterministic
// Gauss–Seidel, and nondeterministic execution.
func ConvergenceSpeed(cfg Config) ([]IterRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	var rows []IterRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, name := range AlgoNames() {
			row := IterRow{Graph: d.String(), Algo: name}
			for i, opts := range []core.Options{
				{Scheduler: sched.Synchronous, Threads: 1},
				{Scheduler: sched.Deterministic},
				{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic},
			} {
				a, err := NewAlgorithm(name, g, cfg)
				if err != nil {
					return nil, err
				}
				_, res, err := algorithms.Run(a, g, opts)
				if err != nil {
					return nil, err
				}
				if !res.Converged {
					return nil, fmt.Errorf("experiments: %s on %s did not converge under %v", name, d, opts.Scheduler)
				}
				switch i {
				case 0:
					row.SyncIter = res.Iterations
				case 1:
					row.DetIter = res.Iterations
				case 2:
					row.NondetIter = res.Iterations
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AsyncRow compares the barrier-based nondeterministic engine against the
// barrier-free pure asynchronous executor (updates processed and wall
// time) — the empirical check of the GRACE comparability claim the paper
// relies on when adopting the "synchronous implementation of the
// asynchronous model".
type AsyncRow struct {
	Graph          string
	Algo           string
	BarrierUpdates int64
	BarrierTime    time.Duration
	PureUpdates    int64
	PureTime       time.Duration
}

// PureAsyncComparison runs WCC and BFS under both executors.
func PureAsyncComparison(cfg Config) ([]AsyncRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AsyncRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, name := range []string{"wcc", "bfs"} {
			a, err := NewAlgorithm(name, g, cfg)
			if err != nil {
				return nil, err
			}
			_, barrierRes, err := algorithms.Run(a, g, core.Options{
				Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic,
			})
			if err != nil {
				return nil, err
			}
			// Fresh setup engine for the transplant.
			seedEng, err := core.NewEngine(g, core.Options{})
			if err != nil {
				return nil, err
			}
			a.Setup(seedEng)
			x, err := async.NewExecutor(g, async.Options{Threads: 4, Mode: edgedata.ModeAtomic})
			if err != nil {
				return nil, err
			}
			if err := x.LoadFrom(seedEng); err != nil {
				return nil, err
			}
			pureRes, err := x.Run(a.Update)
			if err != nil {
				return nil, err
			}
			if !barrierRes.Converged || !pureRes.Converged {
				return nil, fmt.Errorf("experiments: %s on %s did not converge in async comparison", name, d)
			}
			rows = append(rows, AsyncRow{
				Graph: d.String(), Algo: name,
				BarrierUpdates: barrierRes.Updates, BarrierTime: barrierRes.Duration,
				PureUpdates: pureRes.Updates, PureTime: pureRes.Duration,
			})
		}
	}
	return rows, nil
}

// TopKRow reports rank agreement between DE and NE PageRank orderings.
type TopKRow struct {
	Epsilon   float64
	K         int
	Agreement float64 // fraction of identical positions in the top K
}

// TopKAgreementStudy quantifies the paper's closing observation of
// Section V-C: high-rank pages agree across configurations.
func TopKAgreementStudy(cfg Config, ks []int) ([]TopKRow, error) {
	cfg.validate()
	g, err := webGoogleAnalog(cfg)
	if err != nil {
		return nil, err
	}
	var rows []TopKRow
	for _, eps := range cfg.Epsilons {
		de, err := RankOrderings(g, eps, 1, true, 1)
		if err != nil {
			return nil, err
		}
		ne, err := RankOrderings(g, eps, 16, false, cfg.Runs)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			agree := 0.0
			for _, ord := range ne {
				agree += metrics.TopKAgreement(de[0], ord, k)
			}
			rows = append(rows, TopKRow{Epsilon: eps, K: k, Agreement: agree / float64(len(ne))})
		}
	}
	return rows, nil
}
