package experiments

import (
	"fmt"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/metrics"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// This file is the staleness-and-convergence study: it instruments
// barrier-free runs with the delay clocks of internal/obs and asks the two
// questions the observability plane exists to answer. First, how stale are
// the values a work-stealing run actually reads — measured in elapsed
// updates between a value's publish and its read — and how does that
// staleness relate to execution-path drift as workers are added, while the
// Theorem-2 fixed point stays byte-identical? Second, what does the ε-aware
// stopping rule buy a Theorem-1 algorithm: how many updates does stopping
// at a windowed residual below ε save over draining to exact quiescence,
// and how far from the deterministic fixed point do the published values
// land?

// StalenessRow is one (graph, threads) cell of the staleness-vs-drift
// study: a delay-clock-instrumented work-stealing WCC run diffed against
// the deterministic reference.
type StalenessRow struct {
	Graph   string
	Threads int
	// Updates is the run's executed update count; Steals its migrations.
	Updates, Steals int64
	// Reads counts delay-clock read observations (edge reads of published
	// values); Overflow the reads staler than the histogram's last bucket.
	Reads, Overflow int64
	// DelayP50/P99/DelayMax are staleness quantiles in elapsed updates
	// between a value's publish and its read.
	DelayP50, DelayP99, DelayMax int64
	// Diverged counts execution-path events that differ from the
	// deterministic reference; ResultsEqual reports whether the converged
	// labels are nonetheless byte-identical (Theorem 2's claim).
	Diverged     int64
	ResultsEqual bool
}

// EpsilonStopRow is one (graph, ε) cell of the ε-aware stopping study: a
// work-stealing PageRank with the stopping rule armed, against the same
// configuration drained to exact quiescence, both scored against the
// deterministic power-iteration fixed point.
type EpsilonStopRow struct {
	Graph string
	// Epsilon is the stopping threshold fed to the engine (windowed mean
	// residual per changed commit).
	Epsilon float64
	Threads int
	// Stopped reports that the ε rule fired. False means the run reached
	// exact quiescence on its own first — with no local threshold that only
	// happens once every rank sits at its float-precision fixed point, so
	// the cell is still valid, just without the early exit.
	Stopped bool
	// FinalResidual is the last measured windowed residual at stop.
	FinalResidual float64
	// StopUpdates / FullUpdates are the executed update counts of the
	// ε-stopped run and the exact-quiescence baseline (local threshold ε).
	StopUpdates, FullUpdates int64
	// StopMaxErr / FullMaxErr are the L∞ distances of each run's ranks
	// from the deterministic reference fixed point.
	StopMaxErr, FullMaxErr float64
}

// stalenessThreads is the worker sweep of the staleness study; drift and
// staleness both grow with workers, which is the correlation on display.
var stalenessThreads = []int{1, 2, 4, 8}

// StalenessStudy runs both halves of the staleness-and-convergence study
// over the benchmark graph suite.
func StalenessStudy(cfg Config) ([]StalenessRow, []EpsilonStopRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, nil, err
	}
	var stale []StalenessRow
	var eps []EpsilonStopRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, p := range stalenessThreads {
			row, err := stalenessOnce(g, d.String(), p)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: staleness %s/P%d: %w", d, p, err)
			}
			stale = append(stale, row)
		}
		for _, e := range cfg.Epsilons {
			row, err := epsilonStopOnce(g, d.String(), e)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: ε-stop %s/ε=%g: %w", d, e, err)
			}
			eps = append(eps, row)
		}
	}
	return stale, eps, nil
}

// stalenessOnce runs one delay-instrumented work-stealing WCC and diffs it
// against the deterministic reference.
func stalenessOnce(g *graph.Graph, name string, threads int) (StalenessRow, error) {
	meta := trace.Meta{Vertices: g.N(), Edges: g.M()}
	detRec := trace.NewRecorder(1 << 21)
	detEng, detRes, err := algorithms.Run(algorithms.NewWCC(), g, core.Options{
		Scheduler: sched.Deterministic, Trace: detRec,
	})
	if err != nil {
		return StalenessRow{}, err
	}
	if !detRes.Converged {
		return StalenessRow{}, fmt.Errorf("deterministic reference did not converge")
	}

	wcc := algorithms.NewWCC()
	v, err := algorithms.NoSyncVerdict(wcc, g)
	if err != nil {
		return StalenessRow{}, err
	}
	seed, err := core.NewEngine(g, core.Options{})
	if err != nil {
		return StalenessRow{}, err
	}
	wcc.Setup(seed)
	// A private sink-less observer: its only job is to make the engine
	// attach a delay clock and register it as a delay source.
	o := obs.New(obs.Options{})
	defer o.Close()
	nsRec := trace.NewRecorder(1 << 21)
	x, err := async.NewNoSync(g, async.NoSyncOptions{
		Threads: threads, Mode: edgedata.ModeAtomic,
		Trace: nsRec, Verdict: &v, Observer: o,
	})
	if err != nil {
		return StalenessRow{}, err
	}
	defer x.Close()
	if err := x.LoadFrom(seed); err != nil {
		return StalenessRow{}, err
	}
	res, err := x.Run(wcc.Update)
	if err != nil {
		return StalenessRow{}, err
	}
	if !res.Converged {
		return StalenessRow{}, fmt.Errorf("did not converge")
	}

	row := StalenessRow{
		Graph: name, Threads: threads,
		Updates: res.Updates, Steals: res.Steals,
		ResultsEqual: true,
	}
	for u := range x.Vertices {
		if x.Vertices[u] != detEng.Vertices[u] {
			row.ResultsEqual = false
			break
		}
	}
	for _, s := range o.DelaySnapshots() {
		if s.Engine == "nosync" {
			row.Reads, row.Overflow = s.Count, s.Overflow
			row.DelayP50, row.DelayP99, row.DelayMax = s.P50, s.P99, s.Max
		}
	}
	rep := trace.Diff(detRec.Snapshot(meta), nsRec.Snapshot(meta))
	row.Diverged = rep.Diverged
	return row, nil
}

// epsilonStopThreads is the ε-stopping study's fixed worker count.
const epsilonStopThreads = 4

// epsilonStopOnce races one ε-stopped work-stealing PageRank against the
// exact-quiescence baseline at the same ε and scores both against the
// deterministic fixed point.
func epsilonStopOnce(g *graph.Graph, name string, eps float64) (EpsilonStopRow, error) {
	ref := algorithms.ReferencePageRank(g, 0.85, 1e-12, 10000)

	// Baseline: the paper's local-threshold formulation drained to exact
	// quiescence — a vertex stops scattering once its own rank moves < ε.
	fullUpdates, fullRanks, _, err := noSyncPageRank(g, eps, 0)
	if err != nil {
		return EpsilonStopRow{}, fmt.Errorf("baseline: %w", err)
	}

	// ε-stopped: no local threshold at all (the run would spin forever),
	// terminated solely by the windowed-residual rule. The engine threshold
	// sits three decades under ε: per-commit residual amplifies into rank
	// error by roughly max-indegree · d/(1−d) (each in-error feeds the
	// damped gather), so the margin keeps the published ranks within the
	// ε the caller asked about.
	stopUpdates, stopRanks, stopRes, err := noSyncPageRank(g, 0, eps/1000)
	if err != nil {
		return EpsilonStopRow{}, fmt.Errorf("ε-stopped: %w", err)
	}

	return EpsilonStopRow{
		Graph: name, Epsilon: eps, Threads: epsilonStopThreads,
		Stopped:       stopRes.EpsilonStopped,
		FinalResidual: stopRes.FinalResidual,
		StopUpdates:   stopUpdates, FullUpdates: fullUpdates,
		StopMaxErr: metrics.LInfDistance(stopRanks, ref),
		FullMaxErr: metrics.LInfDistance(fullRanks, ref),
	}, nil
}

// noSyncPageRank runs one work-stealing PageRank with local threshold
// localEps and engine stopping threshold stopEps (0 = rule off) and returns
// (updates, ranks, result).
func noSyncPageRank(g *graph.Graph, localEps, stopEps float64) (int64, []float64, async.NoSyncResult, error) {
	pr := &algorithms.PageRank{Epsilon: localEps, Damping: 0.85}
	v, err := algorithms.NoSyncVerdict(pr, g)
	if err != nil {
		return 0, nil, async.NoSyncResult{}, err
	}
	seed, err := core.NewEngine(g, core.Options{})
	if err != nil {
		return 0, nil, async.NoSyncResult{}, err
	}
	pr.Setup(seed)
	opts := async.NoSyncOptions{
		Threads: epsilonStopThreads, Mode: edgedata.ModeAtomic,
		Verdict: &v, MaxUpdates: 1 << 24,
	}
	if stopEps > 0 {
		opts.Epsilon = stopEps
		opts.ResidualDelta = pr.ResidualDelta
	}
	x, err := async.NewNoSync(g, opts)
	if err != nil {
		return 0, nil, async.NoSyncResult{}, err
	}
	defer x.Close()
	if err := x.LoadFrom(seed); err != nil {
		return 0, nil, async.NoSyncResult{}, err
	}
	res, err := x.Run(pr.Update)
	if err != nil {
		return 0, nil, async.NoSyncResult{}, err
	}
	if !res.Converged {
		return 0, nil, async.NoSyncResult{}, fmt.Errorf("did not converge (updates=%d)", res.Updates)
	}
	ranks := make([]float64, g.N())
	for u := range ranks {
		ranks[u] = edgedata.ToFloat64(x.Vertices[u])
	}
	return res.Updates, ranks, res, nil
}
