package experiments

import (
	"fmt"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

// This file reproduces Section V-C: the run-to-run variance of PageRank
// results under nondeterministic execution, measured as difference degrees
// of the converged rank orderings (Tables II and III). The paper's
// configurations are DE (deterministic) and NE with 4, 8, and 16
// processing cores; each configuration runs 5 times.

// VarianceConfigName labels a variance-study configuration.
func VarianceConfigName(threads int, deterministic bool) string {
	if deterministic {
		return "DE"
	}
	return fmt.Sprintf("%dNE", threads)
}

// RankOrderings runs PageRank `runs` times under one configuration and
// returns the converged rank orderings. Nondeterministic runs enable the
// race amplifier so scheduling noise is present even on machines with few
// cores (the paper's 16-core testbed gets such noise for free; see
// EXPERIMENTS.md).
func RankOrderings(g *graph.Graph, eps float64, threads int, deterministic bool, runs int) ([][]uint32, error) {
	out := make([][]uint32, 0, runs)
	for i := 0; i < runs; i++ {
		pr := algorithms.NewPageRank(eps)
		opts := core.Options{Scheduler: sched.Deterministic}
		if !deterministic {
			opts = core.Options{
				Scheduler: sched.Nondeterministic,
				Threads:   threads,
				Mode:      edgedata.ModeAtomic,
				Amplify:   true,
			}
		}
		e, res, err := algorithms.Run(pr, g, opts)
		if err != nil {
			return nil, err
		}
		if !res.Converged {
			return nil, fmt.Errorf("experiments: pagerank variance run did not converge")
		}
		out = append(out, metrics.RankOrder(pr.Ranks(e)))
	}
	return out, nil
}

// VarianceRow is one line of Table II or III.
type VarianceRow struct {
	// Pair names the compared configurations, e.g. "4NE vs. 4NE" (Table
	// II, within one configuration) or "DE vs. 16NE" (Table III, across
	// configurations).
	Pair string
	// ByEpsilon maps each ε to the mean difference degree.
	ByEpsilon map[float64]float64
}

// varianceConfigs are the paper's four configurations.
type varianceConfig struct {
	threads       int
	deterministic bool
}

func paperVarianceConfigs() []varianceConfig {
	return []varianceConfig{
		{threads: 1, deterministic: true}, // DE
		{threads: 4},                      // 4NE
		{threads: 8},                      // 8NE
		{threads: 16},                     // 16NE
	}
}

// varianceOrderings gathers all runs for all configurations and epsilons:
// result[ε][configIndex] = orderings of that configuration's runs.
func varianceOrderings(g *graph.Graph, cfg Config) (map[float64][][][]uint32, error) {
	cfg.validate()
	configs := paperVarianceConfigs()
	out := make(map[float64][][][]uint32, len(cfg.Epsilons))
	for _, eps := range cfg.Epsilons {
		perConfig := make([][][]uint32, len(configs))
		for ci, vc := range configs {
			ords, err := RankOrderings(g, eps, vc.threads, vc.deterministic, cfg.Runs)
			if err != nil {
				return nil, err
			}
			perConfig[ci] = ords
		}
		out[eps] = perConfig
	}
	return out, nil
}

// VarianceTables computes Tables II and III in one pass (sharing the
// underlying runs): Table II holds average difference degrees within each
// configuration, Table III across configurations, on the web-google
// analog, for each ε.
func VarianceTables(cfg Config) (tableII, tableIII []VarianceRow, err error) {
	cfg.validate()
	g, err := webGoogleAnalog(cfg)
	if err != nil {
		return nil, nil, err
	}
	all, err := varianceOrderings(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	configs := paperVarianceConfigs()
	tableII = make([]VarianceRow, len(configs))
	for ci, vc := range configs {
		name := VarianceConfigName(vc.threads, vc.deterministic)
		row := VarianceRow{Pair: name + " vs. " + name, ByEpsilon: map[float64]float64{}}
		for _, eps := range cfg.Epsilons {
			row.ByEpsilon[eps] = metrics.MeanPairwiseDifferenceDegree(all[eps][ci])
		}
		tableII[ci] = row
	}
	for i := 0; i < len(configs); i++ {
		for j := i + 1; j < len(configs); j++ {
			row := VarianceRow{
				Pair: VarianceConfigName(configs[i].threads, configs[i].deterministic) +
					" vs. " + VarianceConfigName(configs[j].threads, configs[j].deterministic),
				ByEpsilon: map[float64]float64{},
			}
			for _, eps := range cfg.Epsilons {
				row.ByEpsilon[eps] = metrics.MeanCrossDifferenceDegree(all[eps][i], all[eps][j])
			}
			tableIII = append(tableIII, row)
		}
	}
	return tableII, tableIII, nil
}

// TableII computes the paper's Table II (within-configuration difference
// degrees). Prefer VarianceTables when Table III is also needed.
func TableII(cfg Config) ([]VarianceRow, error) {
	ii, _, err := VarianceTables(cfg)
	return ii, err
}

// TableIII computes the paper's Table III (cross-configuration difference
// degrees). Prefer VarianceTables when Table II is also needed.
func TableIII(cfg Config) ([]VarianceRow, error) {
	_, iii, err := VarianceTables(cfg)
	return iii, err
}

func webGoogleAnalog(cfg Config) (*graph.Graph, error) {
	return genSynth(cfg, "web-google")
}

func genSynth(cfg Config, name string) (*graph.Graph, error) {
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	g, ok := gs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no dataset %q", name)
	}
	return g, nil
}

// FixedPointOrderings generalizes RankOrderings to any value-producing
// fixed-point algorithm ("pagerank" or "spmv"), addressing the paper's
// closing caveat that its PageRank variance conclusions "may not apply to
// other fixed point iteration algorithms".
func FixedPointOrderings(g *graph.Graph, algoName string, cfg Config, eps float64, threads int, deterministic bool) ([][]uint32, error) {
	cfg.validate()
	out := make([][]uint32, 0, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		opts := core.Options{Scheduler: sched.Deterministic}
		if !deterministic {
			opts = core.Options{
				Scheduler: sched.Nondeterministic,
				Threads:   threads,
				Mode:      edgedata.ModeAtomic,
				Amplify:   true,
			}
		}
		var values []float64
		switch algoName {
		case "pagerank":
			pr := algorithms.NewPageRank(eps)
			e, res, err := algorithms.Run(pr, g, opts)
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("experiments: %s variance run did not converge", algoName)
			}
			values = pr.Ranks(e)
		case "spmv":
			sv := algorithms.NewSpMV(g, eps, 0.5, cfg.Seed+2)
			e, res, err := algorithms.Run(sv, g, opts)
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("experiments: %s variance run did not converge", algoName)
			}
			values = sv.Values(e)
		default:
			return nil, fmt.Errorf("experiments: %q is not a value-producing fixed-point algorithm", algoName)
		}
		out = append(out, metrics.RankOrder(values))
	}
	return out, nil
}

// FixedPointVarianceRow compares PageRank and SpMV run-to-run variance
// under the same nondeterministic configuration.
type FixedPointVarianceRow struct {
	Algo     string
	Epsilon  float64
	MeanDiff float64 // mean pairwise difference degree
	Footrule float64 // mean pairwise Spearman footrule
}

// FixedPointVariance measures both fixed-point algorithms at each ε on
// the web-google analog (16 nondeterministic threads, the paper's most
// perturbed configuration).
func FixedPointVariance(cfg Config) ([]FixedPointVarianceRow, error) {
	cfg.validate()
	g, err := webGoogleAnalog(cfg)
	if err != nil {
		return nil, err
	}
	var rows []FixedPointVarianceRow
	for _, algoName := range []string{"pagerank", "spmv"} {
		for _, eps := range cfg.Epsilons {
			ords, err := FixedPointOrderings(g, algoName, cfg, eps, 16, false)
			if err != nil {
				return nil, err
			}
			foot, pairs := 0.0, 0
			for i := 0; i < len(ords); i++ {
				for j := i + 1; j < len(ords); j++ {
					foot += metrics.SpearmanFootrule(ords[i], ords[j])
					pairs++
				}
			}
			if pairs > 0 {
				foot /= float64(pairs)
			}
			rows = append(rows, FixedPointVarianceRow{
				Algo: algoName, Epsilon: eps,
				MeanDiff: metrics.MeanPairwiseDifferenceDegree(ords),
				Footrule: foot,
			})
		}
	}
	return rows, nil
}

// PrecisionRow quantifies the paper's future-work item 2 — "more
// discussions (e.g., on precision, range of errors) on the variations in
// the results of fixed point iteration algorithms" — as the empirical
// error of nondeterministically converged PageRank vectors against the
// true fixed point.
type PrecisionRow struct {
	Epsilon         float64
	Threads         int
	MaxLInf         float64 // worst run's max component error vs the fixed point
	MeanLInf        float64 // mean over runs
	MeanL1PerVertex float64
}

// PrecisionStudy runs PageRank nondeterministically at each ε and
// measures component-wise error against a tightly converged reference on
// the web-google analog. The paper's local-convergence argument predicts
// the error scales with ε (each vertex stops within ε of its fixed
// point, and neighbors amplify by at most the damping geometric series).
func PrecisionStudy(cfg Config) ([]PrecisionRow, error) {
	cfg.validate()
	g, err := webGoogleAnalog(cfg)
	if err != nil {
		return nil, err
	}
	truth := algorithms.ReferencePageRank(g, 0.85, 1e-13, 50000)
	var rows []PrecisionRow
	for _, eps := range cfg.Epsilons {
		for _, threads := range []int{4, 16} {
			row := PrecisionRow{Epsilon: eps, Threads: threads}
			var linfs []float64
			var l1s []float64
			for i := 0; i < cfg.Runs; i++ {
				pr := algorithms.NewPageRank(eps)
				e, res, err := algorithms.Run(pr, g, core.Options{
					Scheduler: sched.Nondeterministic,
					Threads:   threads,
					Mode:      edgedata.ModeAtomic,
					Amplify:   true,
				})
				if err != nil {
					return nil, err
				}
				if !res.Converged {
					return nil, fmt.Errorf("experiments: precision run did not converge")
				}
				ranks := pr.Ranks(e)
				linfs = append(linfs, metrics.LInfDistance(ranks, truth))
				l1s = append(l1s, metrics.L1Distance(ranks, truth)/float64(g.N()))
			}
			sLinf := metrics.Summarize(linfs)
			sL1 := metrics.Summarize(l1s)
			row.MaxLInf = sLinf.Max
			row.MeanLInf = sLinf.Mean
			row.MeanL1PerVertex = sL1.Mean
			rows = append(rows, row)
		}
	}
	return rows, nil
}
