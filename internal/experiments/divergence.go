package experiments

import (
	"fmt"
	"os"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// This file is the execution-path counterpart of the Section V-C variance
// study: instead of comparing converged *results*, it records the full
// execution path of two runs of the same nondeterministic configuration
// and diffs them — reporting where the runs first parted ways, how the
// divergence frontier evolved per iteration, and the propagation-distance
// histogram that classifies each diverged update by the paper's
// happens-before (≺), happens-after (≻), and concurrent (∥) relations.

// divergencePairCap bounds the record-and-diff attempts per algorithm: a
// racy schedule is not *guaranteed* to diverge on any single pair, so the
// study retries fresh pairs until it catches one (or gives up and reports
// the identical pair — itself a meaningful observation at small scales).
const divergencePairCap = 6

// DivergenceRow is one algorithm's record/diff outcome.
type DivergenceRow struct {
	// Algo names the algorithm; Graph names the dataset analog.
	Algo, Graph string
	// Threads is the worker count both recorded runs used.
	Threads int
	// Pairs is how many recorded pairs were diffed before one diverged
	// (== divergencePairCap if none did).
	Pairs int
	// Report is the canonical diff of the last recorded pair.
	Report *trace.DiffReport
}

// traceRecordedRun executes one nondeterministic run of a on g with an
// attached recorder and returns the snapshot trace.
func traceRecordedRun(a algorithms.Algorithm, g *graph.Graph, threads int, meta trace.Meta) (*trace.Trace, error) {
	rec := trace.NewRecorder(1 << 21)
	_, res, err := algorithms.Run(a, g, core.Options{
		Scheduler: sched.Nondeterministic,
		Threads:   threads,
		Mode:      edgedata.ModeAtomic,
		Amplify:   true,
		Trace:     rec,
	})
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("experiments: divergence run did not converge")
	}
	return rec.Snapshot(meta), nil
}

// DivergenceStudy records pairs of nondeterministic runs (threads=4,
// amplified, atomic edge data) of PageRank and WCC on the web-google
// analog and diffs each pair's execution paths. When cfg.TracePath is set,
// the last recorded pair is saved as TracePath-a.ndt / TracePath-b.ndt for
// offline inspection with ndtrace.
func DivergenceStudy(cfg Config) ([]DivergenceRow, error) {
	cfg.validate()
	g, err := gen.Synthesize(gen.WebGoogle, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	meta := trace.Meta{Vertices: g.N(), Edges: g.M()}
	const threads = 4
	mk := map[string]func() algorithms.Algorithm{
		"pagerank": func() algorithms.Algorithm { return algorithms.NewPageRank(1e-3) },
		"wcc":      func() algorithms.Algorithm { return algorithms.NewWCC() },
	}
	rows := make([]DivergenceRow, 0, len(mk))
	for _, name := range []string{"pagerank", "wcc"} {
		row := DivergenceRow{Algo: name, Graph: gen.WebGoogle.String(), Threads: threads}
		var a, b *trace.Trace
		for row.Pairs = 1; row.Pairs <= divergencePairCap; row.Pairs++ {
			if a, err = traceRecordedRun(mk[name](), g, threads, meta); err != nil {
				return nil, err
			}
			if b, err = traceRecordedRun(mk[name](), g, threads, meta); err != nil {
				return nil, err
			}
			row.Report = trace.Diff(a, b)
			if !row.Report.Identical() {
				break
			}
		}
		if row.Pairs > divergencePairCap {
			row.Pairs = divergencePairCap
		}
		if cfg.TracePath != "" {
			for suffix, t := range map[string]*trace.Trace{"-a.ndt": a, "-b.ndt": b} {
				f, err := os.Create(cfg.TracePath + "-" + name + suffix)
				if err != nil {
					return nil, err
				}
				if err := trace.WriteBinary(f, t); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
