//go:build race

package experiments

// raceEnabled lets experiment tests drop ModeAligned (benign races by
// design) under the race detector.
const raceEnabled = true
