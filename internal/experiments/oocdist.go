package experiments

import (
	"fmt"
	"os"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/dist"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
)

// This file hosts the two remaining extension experiments: the
// out-of-core (PSW) engine comparison against the in-memory engine, and
// the distributed message-passing simulation of the paper's last
// future-work scenario.

// PSWRow compares in-memory and out-of-core execution of WCC.
type PSWRow struct {
	Graph        string
	Shards       int
	InMemTime    time.Duration
	PSWTime      time.Duration
	PSWBytesRead int64
	Identical    bool
}

// PSWComparison runs WCC on every dataset analog with the in-memory
// nondeterministic engine and the sharded PSW engine, verifying identical
// results (Theorem 2 holds across storage engines) and reporting the I/O
// volume PSW pays.
func PSWComparison(cfg Config, workDir string) ([]PSWRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "ndgraph-psw-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	var rows []PSWRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		wcc := algorithms.NewWCC()
		_, inMemRes, err := algorithms.Run(wcc, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic,
		})
		if err != nil {
			return nil, err
		}
		want := algorithms.ReferenceWCC(g)

		const shards = 4
		st, err := shard.Build(g, fmt.Sprintf("%s/%s", workDir, d), shards)
		if err != nil {
			return nil, err
		}
		for v := range st.Vertices {
			st.Vertices[v] = uint64(v)
		}
		if err := st.FillValues(^uint64(0)); err != nil {
			return nil, err
		}
		e, err := shard.NewEngine(st, shard.Options{Threads: 4, Mode: edgedata.ModeAtomic})
		if err != nil {
			return nil, err
		}
		e.Frontier().ScheduleAll()
		pswRes, err := e.Run(wcc.Update)
		if err != nil {
			return nil, err
		}
		if !inMemRes.Converged || !pswRes.Converged {
			return nil, fmt.Errorf("experiments: PSW comparison on %s did not converge", d)
		}
		identical := true
		for v := range want {
			if uint32(st.Vertices[v]) != want[v] {
				identical = false
				break
			}
		}
		rows = append(rows, PSWRow{
			Graph: d.String(), Shards: shards,
			InMemTime: inMemRes.Duration, PSWTime: pswRes.Duration,
			PSWBytesRead: pswRes.BytesRead, Identical: identical,
		})
	}
	return rows, nil
}

// DistRow reports a distributed-simulation run.
type DistRow struct {
	Graph      string
	Algo       string
	Workers    int
	Messages   int64
	Duplicates int64
	Identical  bool
	Duration   time.Duration
}

// DistComparison runs distributed WCC and SSSP (with duplication and
// delivery reordering) on each dataset analog and checks the results
// against the sequential references — the future-work claim that the
// paper's monotone results carry to message-passing systems.
func DistComparison(cfg Config) ([]DistRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	var rows []DistRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		opts := dist.Options{Workers: 4, Seed: cfg.Seed, DuplicateProb: 0.1}

		labels, res, err := dist.WCC(g, opts)
		if err != nil {
			return nil, err
		}
		wantWCC := algorithms.ReferenceWCC(g)
		identical := res.Converged
		for v := range wantWCC {
			if labels[v] != wantWCC[v] {
				identical = false
				break
			}
		}
		rows = append(rows, DistRow{
			Graph: d.String(), Algo: "wcc", Workers: opts.Workers,
			Messages: res.Messages, Duplicates: res.Duplicates,
			Identical: identical, Duration: res.Duration,
		})

		src := PickSource(g)
		s := algorithms.NewSSSP(g, src, cfg.Seed+1)
		distances, sres, err := dist.SSSP(g, src, s.Weights, opts)
		if err != nil {
			return nil, err
		}
		wantSSSP := algorithms.ReferenceSSSP(g, src, s.Weights)
		identical = sres.Converged
		for v := range wantSSSP {
			if distances[v] != wantSSSP[v] {
				identical = false
				break
			}
		}
		rows = append(rows, DistRow{
			Graph: d.String(), Algo: "sssp", Workers: opts.Workers,
			Messages: sres.Messages, Duplicates: sres.Duplicates,
			Identical: identical, Duration: sres.Duration,
		})
	}
	return rows, nil
}
