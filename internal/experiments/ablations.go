package experiments

import (
	"fmt"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

// This file implements the ablation experiments DESIGN.md calls out: the
// design choices of the paper's system model that are assumptions rather
// than results, each varied in isolation.
//
//   - Dispatch: Fig. 1's static contiguous label blocks vs dynamic
//     chunked claiming. On skewed graphs the static policy can strand one
//     worker with all the hubs.
//   - Label order: the paper dispatches by label, so *which* vertices
//     carry small labels changes both load balance and the π order.
//     Compared: the generator's natural order, descending-degree
//     (adversarial: all hubs in worker 0's block), and degree-interleaved
//     (hubs dealt evenly).
//   - Amplifier: conflict counts with and without yield injection, to
//     show the amplifier changes interleaving frequency, not outcomes.

// AblationRow is one configuration's measurement.
type AblationRow struct {
	Study    string // "dispatch" or "labels"
	Graph    string
	Algo     string
	Variant  string
	Duration time.Duration
	Iters    int
	Updates  int64
}

// DispatchAblation compares static and dynamic dispatch for WCC and
// PageRank on the most skewed analog (web-berkstan).
func DispatchAblation(cfg Config) ([]AblationRow, error) {
	cfg.validate()
	g, err := genSynth(cfg, "web-berkstan")
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, algoName := range []string{"pagerank", "wcc"} {
		for _, d := range []sched.Dispatch{sched.Static, sched.Dynamic} {
			a, err := NewAlgorithm(algoName, g, cfg)
			if err != nil {
				return nil, err
			}
			_, res, err := algorithms.Run(a, g, core.Options{
				Scheduler: sched.Nondeterministic,
				Threads:   4,
				Mode:      edgedata.ModeAtomic,
				Dispatch:  d,
			})
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("experiments: dispatch ablation %s/%v did not converge", algoName, d)
			}
			rows = append(rows, AblationRow{
				Study: "dispatch", Graph: "web-berkstan", Algo: algoName, Variant: d.String(),
				Duration: res.Duration, Iters: res.Iterations, Updates: res.Updates,
			})
		}
	}
	return rows, nil
}

// LabelOrderAblation compares label orders under static dispatch: the
// natural generator order, descending degree, and degree-interleaved.
// Traversal results must stay identical across orders (they are graph
// isomorphisms); only scheduling behavior may change.
func LabelOrderAblation(cfg Config) ([]AblationRow, error) {
	cfg.validate()
	base, err := genSynth(cfg, "web-berkstan")
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		g    *graph.Graph
	}{{name: "natural", g: base}}

	hubFirst, err := graph.Relabel(base, graph.DegreeDescOrder(base))
	if err != nil {
		return nil, err
	}
	variants = append(variants, struct {
		name string
		g    *graph.Graph
	}{"degree-desc", hubFirst})

	interleaved, err := graph.Relabel(base, graph.DegreeInterleaveOrder(base, 4))
	if err != nil {
		return nil, err
	}
	variants = append(variants, struct {
		name string
		g    *graph.Graph
	}{"degree-interleave", interleaved})

	var rows []AblationRow
	for _, v := range variants {
		for _, algoName := range []string{"pagerank", "wcc"} {
			a, err := NewAlgorithm(algoName, v.g, cfg)
			if err != nil {
				return nil, err
			}
			_, res, err := algorithms.Run(a, v.g, core.Options{
				Scheduler: sched.Nondeterministic,
				Threads:   4,
				Mode:      edgedata.ModeAtomic,
			})
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("experiments: label ablation %s/%s did not converge", algoName, v.name)
			}
			rows = append(rows, AblationRow{
				Study: "labels", Graph: "web-berkstan", Algo: algoName, Variant: v.name,
				Duration: res.Duration, Iters: res.Iterations, Updates: res.Updates,
			})
		}
	}
	return rows, nil
}

// AmplifierRow reports observed conflict counts with and without the race
// amplifier.
type AmplifierRow struct {
	Algo             string
	RWOff, WWOff     uint64
	RWOn, WWOn       uint64
	ResultsIdentical bool // for traversal algorithms
}

// AmplifierAblation measures observed (not potential) conflicts for WCC
// under nondeterministic execution with the amplifier off and on, and
// verifies the converged labels stay correct either way.
func AmplifierAblation(cfg Config) ([]AmplifierRow, error) {
	cfg.validate()
	g, err := genSynth(cfg, "web-google")
	if err != nil {
		return nil, err
	}
	want := algorithms.ReferenceWCC(g)
	var rows []AmplifierRow
	row := AmplifierRow{Algo: "wcc", ResultsIdentical: true}
	for _, amplify := range []bool{false, true} {
		wcc := algorithms.NewWCC()
		e, res, err := algorithms.Run(wcc, g, core.Options{
			Scheduler:    sched.Nondeterministic,
			Threads:      8,
			Mode:         edgedata.ModeAtomic,
			Amplify:      amplify,
			EnableCensus: true,
		})
		if err != nil {
			return nil, err
		}
		if !res.Converged {
			return nil, fmt.Errorf("experiments: amplifier ablation did not converge")
		}
		got := wcc.Components(e)
		for v := range want {
			if got[v] != want[v] {
				row.ResultsIdentical = false
			}
		}
		if amplify {
			row.RWOn, row.WWOn = res.RWConflicts, res.WWConflicts
		} else {
			row.RWOff, row.WWOff = res.RWConflicts, res.WWConflicts
		}
	}
	rows = append(rows, row)
	return rows, nil
}
