// Package experiments reproduces the paper's evaluation (Section V): the
// Table I graph inventory, the Fig. 3 computing-time grid, and the
// Table II/III PageRank difference-degree studies, plus the extension
// experiments DESIGN.md calls out (conflict census, convergence-speed
// comparison, barrier-free executor comparison). The same functions back
// the top-level testing.B benchmarks and the ndbench CLI.
package experiments

import (
	"fmt"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Scale divides the paper's graph sizes (1 = full size; the default
	// CLI scale of 50 runs the whole suite in minutes).
	Scale int
	// Seed drives all synthetic inputs.
	Seed uint64
	// Threads is the worker-count sweep; the paper uses {4, 8, 16}, with
	// 1 and 2 added for scaling context.
	Threads []int
	// Runs is the number of independent runs per configuration in the
	// variance study (paper: 5).
	Runs int
	// Epsilons is the PageRank convergence-threshold sweep for
	// Tables II/III (paper: three decreasing values).
	Epsilons []float64
	// PageRankEps is the threshold used in Fig. 3 timing runs.
	PageRankEps float64
	// Observer, when non-nil, streams telemetry from the Fig. 3 timing
	// grid's engine runs (ndbench -telemetry / -telemetry-addr).
	Observer *obs.Observer
	// TracePath, when non-empty, makes the divergence study save each
	// algorithm's recorded run pair as TracePath-<algo>-a.ndt / -b.ndt.
	TracePath string
}

// DefaultConfig returns the defaults used by the CLI and benches.
func DefaultConfig() Config {
	return Config{
		Scale:       50,
		Seed:        42,
		Threads:     []int{1, 2, 4, 8, 16},
		Runs:        5,
		Epsilons:    []float64{1e-1, 1e-2, 1e-3},
		PageRankEps: 1e-3,
	}
}

// validate fills zero fields with defaults.
func (c *Config) validate() {
	d := DefaultConfig()
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if c.Runs <= 0 {
		c.Runs = d.Runs
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = d.Epsilons
	}
	if c.PageRankEps <= 0 {
		c.PageRankEps = d.PageRankEps
	}
}

// Graphs synthesizes the four Table I analogs at the configured scale.
// The result map is keyed by dataset name.
func Graphs(cfg Config) (map[string]*graph.Graph, error) {
	cfg.validate()
	out := make(map[string]*graph.Graph, 4)
	for _, d := range gen.AllDatasets() {
		g, err := gen.Synthesize(d, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d, err)
		}
		out[d.String()] = g
	}
	return out, nil
}

// TableIRow is one graph's inventory line (paper Table I plus the
// synthetic analog's actual size).
type TableIRow struct {
	Name                string
	PaperV, PaperE      int
	SynthV, SynthE      int
	MaxInDeg, MaxOutDeg int
	DegreeSkew          float64
}

// TableI builds the graph-inventory table.
func TableI(cfg Config) ([]TableIRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]TableIRow, 0, len(gs))
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		st := g.ComputeStats()
		pv, pe := d.PaperSize()
		rows = append(rows, TableIRow{
			Name:   d.String(),
			PaperV: pv, PaperE: pe,
			SynthV: st.Vertices, SynthE: st.Edges,
			MaxInDeg: st.MaxInDeg, MaxOutDeg: st.MaxOutDeg,
			DegreeSkew: st.DegreeSkew,
		})
	}
	return rows, nil
}

// AlgoNames lists the four evaluated algorithms in paper order.
func AlgoNames() []string { return []string{"pagerank", "wcc", "sssp", "bfs"} }

// NewAlgorithm constructs the named algorithm for g using cfg's seeds and
// thresholds. SSSP/BFS use the highest-out-degree vertex as source so the
// traversal reaches a large fraction of every synthetic graph.
func NewAlgorithm(name string, g *graph.Graph, cfg Config) (algorithms.Algorithm, error) {
	cfg.validate()
	switch name {
	case "pagerank":
		return algorithms.NewPageRank(cfg.PageRankEps), nil
	case "wcc":
		return algorithms.NewWCC(), nil
	case "sssp":
		return algorithms.NewSSSP(g, PickSource(g), cfg.Seed+1), nil
	case "bfs":
		return algorithms.NewBFS(g, PickSource(g)), nil
	case "spmv":
		return algorithms.NewSpMV(g, cfg.PageRankEps, 0.5, cfg.Seed+2), nil
	case "kcore":
		return algorithms.NewKCore(), nil
	case "labelprop":
		return algorithms.NewLabelProp(), nil
	case "coloring":
		return algorithms.NewColoring(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// PickSource returns the vertex with the highest out-degree — a stable,
// well-connected traversal source for synthetic graphs.
func PickSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// ExecKind identifies one execution configuration of Fig. 3.
type ExecKind struct {
	// Label is the figure legend entry ("DE", "NE-lock", "NE-arch",
	// "NE-atomic").
	Label string
	// Scheduler and Mode define the engine configuration.
	Scheduler sched.Kind
	Mode      edgedata.Mode
}

// ExecKinds returns the four Fig. 3 execution configurations: the
// deterministic baseline and nondeterministic execution under each of the
// three atomicity methods. Set includeAligned false under the race
// detector (ModeAligned's benign races trip it by design).
func ExecKinds(includeAligned bool) []ExecKind {
	kinds := []ExecKind{
		{Label: "DE", Scheduler: sched.Deterministic, Mode: edgedata.ModeSequential},
		{Label: "NE-lock", Scheduler: sched.Nondeterministic, Mode: edgedata.ModeLocked},
	}
	if includeAligned {
		kinds = append(kinds, ExecKind{Label: "NE-arch", Scheduler: sched.Nondeterministic, Mode: edgedata.ModeAligned})
	}
	kinds = append(kinds, ExecKind{Label: "NE-atomic", Scheduler: sched.Nondeterministic, Mode: edgedata.ModeAtomic})
	return kinds
}

// Fig3Cell is one bar of the Fig. 3 grid: the computing time of one
// algorithm on one graph under one execution configuration and thread
// count (graph-loading time excluded, as in the paper).
type Fig3Cell struct {
	Graph      string
	Algo       string
	Exec       string
	Threads    int
	Duration   time.Duration
	Iterations int
	Updates    int64
}

// Fig3 runs the computing-time grid. DE runs once per (graph, algo) —
// thread count is irrelevant to the sequential deterministic scheduler, as
// the paper notes ("the updates are actually conducted sequentially") —
// and NE configurations sweep cfg.Threads.
func Fig3(cfg Config, includeAligned bool) ([]Fig3Cell, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, err
	}
	var cells []Fig3Cell
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, algoName := range AlgoNames() {
			for _, kind := range ExecKinds(includeAligned) {
				threadSweep := cfg.Threads
				if kind.Scheduler == sched.Deterministic {
					threadSweep = []int{1}
				}
				for _, p := range threadSweep {
					a, err := NewAlgorithm(algoName, g, cfg)
					if err != nil {
						return nil, err
					}
					_, res, err := algorithms.Run(a, g, core.Options{
						Scheduler: kind.Scheduler,
						Threads:   p,
						Mode:      kind.Mode,
						Observer:  cfg.Observer,
					})
					if err != nil {
						return nil, err
					}
					if !res.Converged {
						return nil, fmt.Errorf("experiments: %s on %s (%s, P=%d) did not converge",
							algoName, d, kind.Label, p)
					}
					cells = append(cells, Fig3Cell{
						Graph: d.String(), Algo: algoName, Exec: kind.Label, Threads: p,
						Duration: res.Duration, Iterations: res.Iterations, Updates: res.Updates,
					})
				}
			}
		}
	}
	return cells, nil
}
