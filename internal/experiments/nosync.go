package experiments

import (
	"context"
	"fmt"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/hybrid"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// This file is the evaluation of the work-stealing no-sync tier: a BFS
// scaling sweep racing it against every other in-memory engine, and a
// drift measurement that records the tier's execution path and diffs it
// against the deterministic reference — putting a number on "how
// nondeterministic" barrier-free execution actually is, rather than only
// checking that its fixed point lands in the right place.

// NoSyncScaleRow is one (graph, engine, threads) timing cell of the
// no-sync scaling sweep.
type NoSyncScaleRow struct {
	Graph   string
	Engine  string // core-nondet | push | hybrid | async | nosync
	Threads int
	// Time is the best wall time over noSyncRuns runs.
	Time time.Duration
	// Updates counts the engine's unit of work (vertex updates, pushes, or
	// hybrid offers adopted); engines count differently, so compare within
	// a column, not across.
	Updates int64
	// Steals and IdleTransitions are the work-stealing tier's imbalance
	// telemetry; zero for every other engine.
	Steals          int64
	IdleTransitions int64
}

// NoSyncDriftRow quantifies execution drift of one barrier-free
// work-stealing WCC run against the deterministic reference on the same
// input.
type NoSyncDriftRow struct {
	Graph   string
	Threads int
	// DetEvents / NoSyncEvents are the recorded update counts of each side.
	DetEvents, NoSyncEvents int64
	// Diverged counts updates whose (writes, committed value) differ
	// between the two execution paths.
	Diverged int64
	// PathIdentical reports whether the *execution paths* were identical —
	// almost never true for a work-stealing run, which is the point.
	PathIdentical bool
	// ResultsEqual reports whether the converged vertex labels are
	// byte-identical — which Theorem 2 demands despite path divergence.
	ResultsEqual bool
	// Report carries the full canonical diff (first divergence, frontier
	// evolution, ≺/≻/∥ histogram).
	Report *trace.DiffReport
}

// noSyncRuns is the best-of count per timing cell.
const noSyncRuns = 3

// noSyncBFSOnce runs one BFS instance through the named engine and
// returns (wall time, work units, steals, idle transitions).
func noSyncBFSOnce(engine string, g *graph.Graph, src uint32, threads int) (time.Duration, int64, int64, int64, error) {
	switch engine {
	case "core-nondet":
		a := algorithms.NewBFS(g, src)
		_, res, err := algorithms.Run(a, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: threads, Mode: edgedata.ModeAtomic,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !res.Converged {
			return 0, 0, 0, 0, fmt.Errorf("did not converge")
		}
		return res.Duration, res.Updates, 0, 0, nil
	case "push":
		_, res, err := push.BFS(g, src, push.ModeCAS, threads)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !res.Converged {
			return 0, 0, 0, 0, fmt.Errorf("did not converge")
		}
		return res.Duration, res.Wins, 0, 0, nil
	case "hybrid":
		e, err := hybrid.NewEngine(g, threads)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer e.Close()
		res, err := e.Run(context.Background(), algorithms.BFSKernel(src))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !res.Converged {
			return 0, 0, 0, 0, fmt.Errorf("did not converge")
		}
		return res.Duration, res.Updates, 0, 0, nil
	case "async":
		a := algorithms.NewBFS(g, src)
		seed, err := core.NewEngine(g, core.Options{})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		a.Setup(seed)
		x, err := async.NewExecutor(g, async.Options{Threads: threads, Mode: edgedata.ModeAtomic})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer x.Close()
		if err := x.LoadFrom(seed); err != nil {
			return 0, 0, 0, 0, err
		}
		res, err := x.Run(a.Update)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !res.Converged {
			return 0, 0, 0, 0, fmt.Errorf("did not converge")
		}
		return res.Duration, res.Updates, 0, 0, nil
	case "nosync":
		a := algorithms.NewBFS(g, src)
		v, err := algorithms.NoSyncVerdict(a, g)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		seed, err := core.NewEngine(g, core.Options{})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		a.Setup(seed)
		x, err := async.NewNoSync(g, async.NoSyncOptions{
			Threads: threads, Mode: edgedata.ModeAtomic, Verdict: &v,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer x.Close()
		if err := x.LoadFrom(seed); err != nil {
			return 0, 0, 0, 0, err
		}
		res, err := x.Run(a.Update)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !res.Converged {
			return 0, 0, 0, 0, fmt.Errorf("did not converge")
		}
		return res.Duration, res.Updates, res.Steals, res.IdleTransitions, nil
	}
	return 0, 0, 0, 0, fmt.Errorf("unknown engine %q", engine)
}

// NoSyncEngines lists the sweep's contenders in display order.
func NoSyncEngines() []string {
	return []string{"core-nondet", "push", "hybrid", "async", "nosync"}
}

// NoSyncStudy produces the work-stealing tier's evaluation: a BFS scaling
// sweep over every benchmark graph × engine × thread count (best of
// noSyncRuns), plus one WCC drift row per graph diffing a trace-recorded
// no-sync run against the deterministic reference.
func NoSyncStudy(cfg Config) ([]NoSyncScaleRow, []NoSyncDriftRow, error) {
	cfg.validate()
	gs, err := Graphs(cfg)
	if err != nil {
		return nil, nil, err
	}
	var scale []NoSyncScaleRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		src := PickSource(g)
		for _, engine := range NoSyncEngines() {
			for _, p := range cfg.Threads {
				row := NoSyncScaleRow{Graph: d.String(), Engine: engine, Threads: p, Time: 1<<63 - 1}
				for i := 0; i < noSyncRuns; i++ {
					t, updates, steals, idles, err := noSyncBFSOnce(engine, g, src, p)
					if err != nil {
						return nil, nil, fmt.Errorf("experiments: nosync sweep %s/%s/P%d: %w", d, engine, p, err)
					}
					if t < row.Time {
						row.Time = t
						row.Updates = updates
						row.Steals = steals
						row.IdleTransitions = idles
					}
				}
				scale = append(scale, row)
			}
		}
	}
	drift, err := noSyncDrift(cfg, gs)
	if err != nil {
		return nil, nil, err
	}
	return scale, drift, nil
}

// noSyncDrift records a deterministic WCC run and a work-stealing WCC run
// on each graph and diffs their execution paths.
func noSyncDrift(cfg Config, gs map[string]*graph.Graph) ([]NoSyncDriftRow, error) {
	const threads = 4
	var rows []NoSyncDriftRow
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		meta := trace.Meta{Vertices: g.N(), Edges: g.M()}
		// Deterministic reference, trace-recorded.
		detRec := trace.NewRecorder(1 << 21)
		detEng, detRes, err := algorithms.Run(algorithms.NewWCC(), g, core.Options{
			Scheduler: sched.Deterministic, Trace: detRec,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: nosync drift det %s: %w", d, err)
		}
		if !detRes.Converged {
			return nil, fmt.Errorf("experiments: nosync drift det %s: did not converge", d)
		}
		// Work-stealing run, trace-recorded.
		wcc := algorithms.NewWCC()
		v, err := algorithms.NoSyncVerdict(wcc, g)
		if err != nil {
			return nil, err
		}
		seed, err := core.NewEngine(g, core.Options{})
		if err != nil {
			return nil, err
		}
		wcc.Setup(seed)
		nsRec := trace.NewRecorder(1 << 21)
		x, err := async.NewNoSync(g, async.NoSyncOptions{
			Threads: threads, Mode: edgedata.ModeAtomic, Trace: nsRec, Verdict: &v,
		})
		if err != nil {
			return nil, err
		}
		if err := x.LoadFrom(seed); err != nil {
			x.Close()
			return nil, err
		}
		nsRes, err := x.Run(wcc.Update)
		x.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: nosync drift %s: %w", d, err)
		}
		if !nsRes.Converged {
			return nil, fmt.Errorf("experiments: nosync drift %s: did not converge", d)
		}
		equal := true
		for u := range x.Vertices {
			if x.Vertices[u] != detEng.Vertices[u] {
				equal = false
				break
			}
		}
		rep := trace.Diff(detRec.Snapshot(meta), nsRec.Snapshot(meta))
		rows = append(rows, NoSyncDriftRow{
			Graph:         d.String(),
			Threads:       threads,
			DetEvents:     rep.EventsA,
			NoSyncEvents:  rep.EventsB,
			Diverged:      rep.Diverged,
			PathIdentical: rep.Identical(),
			ResultsEqual:  equal,
			Report:        rep,
		})
	}
	return rows, nil
}
