package graph

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/rng"
)

func mustBuild(t *testing.T, edges []Edge, opt Options) *Graph {
	t.Helper()
	g, err := Build(edges, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, nil, Options{})
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
}

func TestBuildSmall(t *testing.T) {
	//   0 → 1 → 2
	//   0 → 2    2 → 0
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 0}}, Options{})
	if g.N() != 3 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("InNeighbors(2) = %v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 || g.Degree(0) != 3 {
		t.Fatal("degrees wrong")
	}
}

func TestCanonicalIndexConsistency(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 0}, {2, 1}}, Options{})
	// Walk in-adjacency; each in-edge index must match out-adjacency slot.
	for v := uint32(0); int(v) < g.N(); v++ {
		srcs := g.InNeighbors(v)
		idxs := g.InEdgeIndices(v)
		for k := range srcs {
			s, d := g.EdgeEndpoints(idxs[k])
			if s != srcs[k] || d != v {
				t.Fatalf("edge %d: EdgeEndpoints = (%d,%d), want (%d,%d)", idxs[k], s, d, srcs[k], v)
			}
		}
	}
}

func TestFindEdge(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {0, 3}, {3, 0}}, Options{NumVertices: 5})
	e, ok := g.FindEdge(0, 3)
	if !ok {
		t.Fatal("FindEdge(0,3) not found")
	}
	if s, d := g.EdgeEndpoints(e); s != 0 || d != 3 {
		t.Fatalf("EdgeEndpoints(%d) = (%d,%d)", e, s, d)
	}
	if _, ok := g.FindEdge(1, 0); ok {
		t.Fatal("FindEdge(1,0) found nonexistent edge")
	}
	if _, ok := g.FindEdge(4, 4); ok {
		t.Fatal("FindEdge on isolated vertex found an edge")
	}
}

func TestNumVerticesOption(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}}, Options{NumVertices: 10})
	if g.N() != 10 {
		t.Fatalf("N = %d, want 10", g.N())
	}
	if _, err := Build([]Edge{{0, 11}}, Options{NumVertices: 10}); err == nil {
		t.Fatal("Build accepted endpoint beyond NumVertices")
	}
}

func TestDropSelfLoops(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 0}, {0, 1}, {1, 1}}, Options{DropSelfLoops: true})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	g2 := mustBuild(t, []Edge{{0, 0}, {0, 1}}, Options{})
	if g2.M() != 2 {
		t.Fatalf("without DropSelfLoops M = %d, want 2", g2.M())
	}
}

func TestDedup(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}}, Options{Dedup: true})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	g2 := mustBuild(t, []Edge{{0, 1}, {0, 1}}, Options{})
	if g2.M() != 2 {
		t.Fatalf("parallel edges without Dedup: M = %d, want 2", g2.M())
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	in := []Edge{{5, 0}, {1, 2}, {0, 3}}
	orig := append([]Edge(nil), in...)
	mustBuild(t, in, Options{})
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("Build reordered the caller's slice")
		}
	}
}

func TestReverse(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {0, 2}}, Options{})
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.M() != g.M() || r.N() != g.N() {
		t.Fatal("Reverse changed sizes")
	}
	if _, ok := r.FindEdge(1, 0); !ok {
		t.Fatal("Reverse missing flipped edge (1,0)")
	}
	rr := r.Reverse()
	for v := uint32(0); int(v) < g.N(); v++ {
		a, b := g.OutNeighbors(v), rr.OutNeighbors(v)
		if len(a) != len(b) {
			t.Fatalf("double reverse differs at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("double reverse differs at %d", v)
			}
		}
	}
}

func TestUndirected(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}}, Options{NumVertices: 3})
	u := g.Undirected()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.M() != 4 {
		t.Fatalf("Undirected M = %d, want 4", u.M())
	}
	for _, pair := range [][2]uint32{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if _, ok := u.FindEdge(pair[0], pair[1]); !ok {
			t.Fatalf("Undirected missing edge %v", pair)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{3, 1}, {0, 2}, {2, 2}, {1, 3}}
	g := mustBuild(t, in, Options{})
	g2 := mustBuild(t, g.Edges(), Options{NumVertices: g.N()})
	if g2.M() != g.M() || g2.N() != g.N() {
		t.Fatal("round trip changed sizes")
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		a, b := g.OutNeighbors(v), g2.OutNeighbors(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed adjacency")
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 2}}, Options{NumVertices: 4})
	s := g.ComputeStats()
	if s.Vertices != 4 || s.Edges != 4 {
		t.Fatalf("stats sizes: %+v", s)
	}
	if s.SelfLoops != 1 {
		t.Fatalf("SelfLoops = %d, want 1", s.SelfLoops)
	}
	if s.Isolated != 1 {
		t.Fatalf("Isolated = %d, want 1 (vertex 3)", s.Isolated)
	}
	if s.ZeroOutDeg != 1 {
		t.Fatalf("ZeroOutDeg = %d, want 1", s.ZeroOutDeg)
	}
	// Reciprocal pairs: (0,1)/(1,0) and the self-loop (2,2) which is its own
	// reverse; 3 of 4 edges have a reverse.
	if s.Reciprocity != 0.75 {
		t.Fatalf("Reciprocity = %v, want 0.75", s.Reciprocity)
	}
}

// Property: for random edge lists, the dual-CSR construction preserves the
// exact multiset of edges and passes Validate.
func TestBuildPropertyRandom(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw % 2000)
		r := rng.New(seed)
		es := make([]Edge, m)
		counts := map[Edge]int{}
		for i := range es {
			e := Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
			es[i] = e
			counts[e]++
		}
		g, err := Build(es, Options{NumVertices: n})
		if err != nil || g.Validate() != nil {
			return false
		}
		if g.M() != m {
			return false
		}
		got := map[Edge]int{}
		for _, e := range g.Edges() {
			got[e]++
		}
		if len(got) != len(counts) {
			return false
		}
		for e, c := range counts {
			if got[e] != c {
				return false
			}
		}
		// In-degree sum must equal out-degree sum must equal m.
		din, dout := 0, 0
		for v := uint32(0); int(v) < n; v++ {
			din += g.InDegree(v)
			dout += g.OutDegree(v)
		}
		return din == m && dout == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: OutNeighbors and InNeighbors are sorted ascending for every
// vertex of a random graph (the engine's small-label-first iteration order
// relies on this).
func TestAdjacencySortedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50
		es := make([]Edge, 500)
		for i := range es {
			es[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
		}
		g, err := Build(es, Options{NumVertices: n})
		if err != nil {
			return false
		}
		for v := uint32(0); int(v) < n; v++ {
			for _, nbrs := range [][]uint32{g.OutNeighbors(v), g.InNeighbors(v)} {
				for i := 1; i < len(nbrs); i++ {
					if nbrs[i-1] > nbrs[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeEndpointsAllEdges(t *testing.T) {
	r := rng.New(77)
	es := make([]Edge, 300)
	for i := range es {
		es[i] = Edge{Src: uint32(r.Intn(40)), Dst: uint32(r.Intn(40))}
	}
	g := mustBuild(t, es, Options{NumVertices: 40})
	for v := uint32(0); int(v) < g.N(); v++ {
		lo, hi := g.OutEdgeIndex(v)
		nbrs := g.OutNeighbors(v)
		for k := lo; k < hi; k++ {
			s, d := g.EdgeEndpoints(k)
			if s != v || d != nbrs[k-lo] {
				t.Fatalf("EdgeEndpoints(%d) = (%d,%d), want (%d,%d)", k, s, d, v, nbrs[k-lo])
			}
		}
	}
}

func BenchmarkBuild100k(b *testing.B) {
	r := rng.New(1)
	const n, m = 10000, 100000
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(es, Options{NumVertices: n}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOutNeighborScan(b *testing.B) {
	r := rng.New(2)
	const n, m = 10000, 100000
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	g, err := Build(es, Options{NumVertices: n})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint32
		for v := uint32(0); int(v) < n; v++ {
			for _, d := range g.OutNeighbors(v) {
				sum += d
			}
		}
		_ = sum
	}
}
