package graph

// Analysis utilities backing Table I reporting and generator fidelity
// checks: degree distributions and a diameter estimate.

// DegreeHistogram returns hist where hist[d] counts the vertices with the
// given degree, using the selected direction: "in", "out", or "total".
// The slice length is 1 + the maximum observed degree.
func (g *Graph) DegreeHistogram(direction string) []int {
	deg := func(v uint32) int {
		switch direction {
		case "in":
			return g.InDegree(v)
		case "out":
			return g.OutDegree(v)
		default:
			return g.Degree(v)
		}
	}
	max := 0
	for v := uint32(0); int(v) < g.n; v++ {
		if d := deg(v); d > max {
			max = d
		}
	}
	hist := make([]int, max+1)
	for v := uint32(0); int(v) < g.n; v++ {
		hist[deg(v)]++
	}
	return hist
}

// EstimateDiameter lower-bounds the diameter of the graph's undirected
// view with the classic double-sweep heuristic: BFS from start, then BFS
// again from the farthest vertex found; the second eccentricity is the
// estimate. Disconnected remainders are ignored (the sweep stays in
// start's component). Returns 0 for empty graphs.
func (g *Graph) EstimateDiameter(start uint32) int {
	if g.n == 0 {
		return 0
	}
	far, _ := g.undirectedBFSFarthest(start)
	_, ecc := g.undirectedBFSFarthest(far)
	return ecc
}

// undirectedBFSFarthest runs BFS over both edge directions and returns
// the farthest reached vertex and its distance.
func (g *Graph) undirectedBFSFarthest(start uint32) (uint32, int) {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []uint32{start}
	farV, farD := start, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visit := func(u uint32) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				if int(dist[u]) > farD {
					farV, farD = u, int(dist[u])
				}
				queue = append(queue, u)
			}
		}
		for _, u := range g.OutNeighbors(v) {
			visit(u)
		}
		for _, u := range g.InNeighbors(v) {
			visit(u)
		}
	}
	return farV, farD
}
