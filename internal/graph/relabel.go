package graph

import (
	"fmt"
	"sort"
)

// This file provides vertex relabeling. Labels matter in this framework
// beyond identity: the paper's dispatch (Fig. 1) partitions scheduled
// vertices into contiguous *label* blocks, and each thread processes its
// block small-label-first, so the label order determines both load
// balance (where the hubs land) and the absolute scheduling order π.
// Relabeling is therefore an experimental knob, exercised by the
// ablation experiments.

// Relabel returns a new graph in which old vertex v becomes perm[v], plus
// nothing else changed. perm must be a permutation of [0, N).
func Relabel(g *Graph, perm []uint32) (*Graph, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), g.N())
	}
	seen := make([]bool, g.N())
	for _, p := range perm {
		if int(p) >= g.N() || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation (entry %d)", p)
		}
		seen[p] = true
	}
	es := g.Edges()
	for i := range es {
		es[i].Src = perm[es[i].Src]
		es[i].Dst = perm[es[i].Dst]
	}
	return Build(es, Options{NumVertices: g.N()})
}

// DegreeDescOrder returns a permutation that relabels vertices by
// descending total degree (hubs get the smallest labels; ties keep the
// original relative order). Under Fig. 1 dispatch this concentrates the
// hubs in the first thread's block.
func DegreeDescOrder(g *Graph) []uint32 {
	order := make([]uint32, g.N())
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	// order[newLabel] = oldVertex; invert to perm[oldVertex] = newLabel.
	perm := make([]uint32, g.N())
	for newLabel, old := range order {
		perm[old] = uint32(newLabel)
	}
	return perm
}

// DegreeInterleaveOrder returns a permutation that deals vertices in
// descending-degree order round-robin across p buckets, then concatenates
// the buckets — spreading the hubs evenly across the p label blocks of
// Fig. 1 dispatch.
func DegreeInterleaveOrder(g *Graph, p int) []uint32 {
	if p < 1 {
		p = 1
	}
	order := make([]uint32, g.N())
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	buckets := make([][]uint32, p)
	for i, v := range order {
		b := i % p
		buckets[b] = append(buckets[b], v)
	}
	perm := make([]uint32, g.N())
	newLabel := uint32(0)
	for _, b := range buckets {
		for _, old := range b {
			perm[old] = newLabel
			newLabel++
		}
	}
	return perm
}

// InversePermutation returns q with q[perm[i]] = i.
func InversePermutation(perm []uint32) []uint32 {
	inv := make([]uint32, len(perm))
	for i, p := range perm {
		inv[p] = uint32(i)
	}
	return inv
}
