package graph

import "testing"

func TestDegreeHistogram(t *testing.T) {
	//   0 → 1, 0 → 2, 1 → 2 : out degrees {2,1,0}, in {0,1,2}, total {2,2,2}.
	g, err := Build([]Edge{{0, 1}, {0, 2}, {1, 2}}, Options{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := g.DegreeHistogram("out")
	if len(out) != 3 || out[0] != 1 || out[1] != 1 || out[2] != 1 {
		t.Fatalf("out hist = %v", out)
	}
	in := g.DegreeHistogram("in")
	if in[0] != 1 || in[1] != 1 || in[2] != 1 {
		t.Fatalf("in hist = %v", in)
	}
	total := g.DegreeHistogram("total")
	if len(total) != 3 || total[2] != 3 {
		t.Fatalf("total hist = %v", total)
	}
	sum := 0
	for d, c := range out {
		sum += d * c
	}
	if sum != g.M() {
		t.Fatalf("out-degree mass %d != edges %d", sum, g.M())
	}
}

func TestEstimateDiameterChain(t *testing.T) {
	// A directed path of n vertices has undirected diameter n-1; the
	// double sweep finds it exactly on trees.
	es := make([]Edge, 0, 9)
	for i := 0; i < 9; i++ {
		es = append(es, Edge{Src: uint32(i), Dst: uint32(i + 1)})
	}
	g, err := Build(es, Options{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, start := range []uint32{0, 5, 9} {
		if d := g.EstimateDiameter(start); d != 9 {
			t.Fatalf("chain diameter from %d = %d, want 9", start, d)
		}
	}
}

func TestEstimateDiameterRing(t *testing.T) {
	es := make([]Edge, 8)
	for i := range es {
		es[i] = Edge{Src: uint32(i), Dst: uint32((i + 1) % 8)}
	}
	g, err := Build(es, Options{NumVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Undirected 8-cycle has diameter 4; double sweep reaches it.
	if d := g.EstimateDiameter(0); d != 4 {
		t.Fatalf("ring diameter = %d, want 4", d)
	}
}

func TestEstimateDiameterDisconnected(t *testing.T) {
	g, err := Build([]Edge{{0, 1}}, Options{NumVertices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := g.EstimateDiameter(0); d != 1 {
		t.Fatalf("component diameter = %d, want 1", d)
	}
	if d := g.EstimateDiameter(3); d != 0 {
		t.Fatalf("isolated diameter = %d, want 0", d)
	}
}

func TestEstimateDiameterEmpty(t *testing.T) {
	g, err := Build(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.EstimateDiameter(0) != 0 {
		t.Fatal("empty graph diameter")
	}
}
