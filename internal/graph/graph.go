// Package graph provides the immutable in-memory graph representation used
// by the ndgraph engine: a directed graph stored as paired CSR (compressed
// sparse row) adjacency in both directions, with a canonical edge index that
// unifies the two views.
//
// The paper's system model (Section II) gives every vertex a unique label in
// [0, |V|-1] and every edge a single mutable data word shared between the
// updates of its two endpoints; the pull-mode update function of a vertex v
// reads and writes only v's incident edges. The representation here serves
// exactly that access pattern:
//
//   - vertex labels are the indices 0..N()-1;
//   - each directed edge (u→v) has one canonical index in [0, M()), which is
//     its position in the source-sorted edge array; edge-value stores
//     (package edgedata) are flat arrays indexed by that canonical index;
//   - OutEdgeIndex exposes the canonical indices of v's out-edges (a
//     contiguous range), InEdgeIndices those of its in-edges (a gather
//     list), so f(v) can reach the single shared data word of every
//     incident edge in O(degree).
package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge (Src → Dst) in builder input.
type Edge struct {
	Src, Dst uint32
}

// Graph is an immutable directed graph in dual-CSR form. Construct with
// Build or a loader; the zero value is an empty graph.
type Graph struct {
	n int // number of vertices

	// Out-adjacency: edges sorted by (src, dst). The canonical index of the
	// k-th entry of outDst is k itself.
	outOff []int64  // len n+1; out-edges of v are outDst[outOff[v]:outOff[v+1]]
	outDst []uint32 // len m

	// In-adjacency: for each v, the sources of its in-edges plus the
	// canonical index of each such edge in the out-adjacency ordering.
	inOff  []int64  // len n+1
	inSrc  []uint32 // len m
	inEdge []uint32 // len m; canonical edge index of each in-slot
}

// Options controls Build.
type Options struct {
	// NumVertices fixes the vertex-set size. If zero, Build uses
	// 1 + max(endpoint) over the input (or 0 for an empty input).
	NumVertices int
	// DropSelfLoops removes edges with Src == Dst.
	DropSelfLoops bool
	// Dedup collapses parallel edges with identical (Src, Dst).
	Dedup bool
}

// Build constructs a Graph from an edge list. The input slice is not
// modified. Endpoints must fit the final vertex count; Build returns an
// error otherwise.
func Build(edges []Edge, opt Options) (*Graph, error) {
	n := opt.NumVertices
	maxEnd := -1
	for _, e := range edges {
		if int(e.Src) > maxEnd {
			maxEnd = int(e.Src)
		}
		if int(e.Dst) > maxEnd {
			maxEnd = int(e.Dst)
		}
	}
	if n == 0 {
		n = maxEnd + 1
	} else if maxEnd >= n {
		return nil, fmt.Errorf("graph: endpoint %d exceeds vertex count %d", maxEnd, n)
	}

	work := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if opt.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		work = append(work, e)
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Src != work[j].Src {
			return work[i].Src < work[j].Src
		}
		return work[i].Dst < work[j].Dst
	})
	if opt.Dedup {
		work = dedupSorted(work)
	}

	g := &Graph{
		n:      n,
		outOff: make([]int64, n+1),
		outDst: make([]uint32, len(work)),
		inOff:  make([]int64, n+1),
		inSrc:  make([]uint32, len(work)),
		inEdge: make([]uint32, len(work)),
	}

	// Out CSR directly from the sorted order.
	for i, e := range work {
		g.outOff[e.Src+1]++
		g.outDst[i] = e.Dst
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}

	// In CSR: count, prefix-sum, scatter (keeping canonical index).
	for _, e := range work {
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.inOff[:n])
	for i, e := range work {
		slot := cursor[e.Dst]
		cursor[e.Dst]++
		g.inSrc[slot] = e.Src
		g.inEdge[slot] = uint32(i)
	}
	// Because the canonical order is (src, dst)-sorted and the scatter walks
	// it in order, each vertex's in-list is automatically sorted by source.
	return g, nil
}

func dedupSorted(es []Edge) []Edge {
	out := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outDst) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v uint32) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v uint32) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Degree returns the total incident-edge count of v (in + out).
func (g *Graph) Degree(v uint32) int { return g.OutDegree(v) + g.InDegree(v) }

// OutNeighbors returns the destinations of v's out-edges in ascending
// order. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) OutNeighbors(v uint32) []uint32 {
	return g.outDst[g.outOff[v]:g.outOff[v+1]]
}

// OutEdgeIndex returns the canonical index range [lo, hi) of v's out-edges:
// the canonical index of OutNeighbors(v)[k] is lo+k.
func (g *Graph) OutEdgeIndex(v uint32) (lo, hi uint32) {
	return uint32(g.outOff[v]), uint32(g.outOff[v+1])
}

// InNeighbors returns the sources of v's in-edges in ascending order. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// InEdgeIndices returns the canonical edge indices of v's in-edges,
// parallel to InNeighbors(v). The returned slice aliases internal storage
// and must not be modified.
func (g *Graph) InEdgeIndices(v uint32) []uint32 {
	return g.inEdge[g.inOff[v]:g.inOff[v+1]]
}

// EdgeEndpoints returns the (src, dst) pair of the canonical edge index e.
// It runs in O(log N) via binary search over the out-offsets; intended for
// diagnostics and tests, not hot paths.
func (g *Graph) EdgeEndpoints(e uint32) (src, dst uint32) {
	dst = g.outDst[e]
	// Find the vertex whose out range contains e.
	lo, hi := 0, g.n
	for lo < hi {
		mid := (lo + hi) / 2
		if g.outOff[mid+1] <= int64(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo), dst
}

// FindEdge returns the canonical index of edge (src→dst) and whether it
// exists. Parallel edges return the first occurrence.
func (g *Graph) FindEdge(src, dst uint32) (uint32, bool) {
	nbrs := g.OutNeighbors(src)
	k := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= dst })
	if k < len(nbrs) && nbrs[k] == dst {
		lo, _ := g.OutEdgeIndex(src)
		return lo + uint32(k), true
	}
	return 0, false
}

// Edges returns a fresh edge list in canonical order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for v := uint32(0); int(v) < g.n; v++ {
		for _, d := range g.OutNeighbors(v) {
			es = append(es, Edge{Src: v, Dst: d})
		}
	}
	return es
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	es := g.Edges()
	for i := range es {
		es[i].Src, es[i].Dst = es[i].Dst, es[i].Src
	}
	r, err := Build(es, Options{NumVertices: g.n})
	if err != nil {
		// Impossible: endpoints came from a valid graph of the same size.
		panic(err)
	}
	return r
}

// Undirected returns a new graph in which every edge (u→v) of g is paired
// with (v→u). Duplicate pairs are collapsed and self-loops preserved as a
// single direction.
func (g *Graph) Undirected() *Graph {
	es := g.Edges()
	for _, e := range g.Edges() {
		if e.Src != e.Dst {
			es = append(es, Edge{Src: e.Dst, Dst: e.Src})
		}
	}
	u, err := Build(es, Options{NumVertices: g.n, Dedup: true})
	if err != nil {
		panic(err)
	}
	return u
}

// Validate checks internal invariants (offset monotonicity, neighbor
// ordering, in/out mirror consistency). It is O(N + M) and intended for
// tests and loaders.
func (g *Graph) Validate() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("graph: offset arrays sized %d/%d for %d vertices", len(g.outOff), len(g.inOff), g.n)
	}
	if g.outOff[g.n] != int64(len(g.outDst)) || g.inOff[g.n] != int64(len(g.inSrc)) {
		return fmt.Errorf("graph: terminal offsets %d/%d do not match edge count %d", g.outOff[g.n], g.inOff[g.n], len(g.outDst))
	}
	for v := 0; v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotonic offsets at vertex %d", v)
		}
	}
	inCount := 0
	for v := uint32(0); int(v) < g.n; v++ {
		srcs := g.InNeighbors(v)
		idxs := g.InEdgeIndices(v)
		inCount += len(srcs)
		for k, s := range srcs {
			e := idxs[k]
			if int(e) >= len(g.outDst) {
				return fmt.Errorf("graph: in-edge index %d out of range", e)
			}
			if g.outDst[e] != v {
				return fmt.Errorf("graph: in-edge %d of vertex %d maps to out-slot with dst %d", e, v, g.outDst[e])
			}
			lo, hi := g.OutEdgeIndex(s)
			if e < lo || e >= hi {
				return fmt.Errorf("graph: in-edge %d of vertex %d not within source %d's range [%d,%d)", e, v, s, lo, hi)
			}
		}
	}
	if inCount != len(g.outDst) {
		return fmt.Errorf("graph: in-adjacency holds %d edges, out-adjacency %d", inCount, len(g.outDst))
	}
	return nil
}

// Stats summarizes a graph for Table I-style reporting.
type Stats struct {
	Vertices    int
	Edges       int
	MaxInDeg    int
	MaxOutDeg   int
	AvgDeg      float64
	SelfLoops   int
	ZeroInDeg   int // vertices with no in-edges
	ZeroOutDeg  int // vertices with no out-edges (dangling, PageRank-relevant)
	Isolated    int // vertices with no edges at all
	DegreeSkew  float64
	Reciprocity float64 // fraction of edges whose reverse also exists
}

// ComputeStats scans the graph and returns summary statistics. DegreeSkew
// is max total degree divided by average total degree — a crude proxy for
// power-law vs regular structure, used to sanity-check the synthetic
// dataset analogs against the paper's Table I graphs.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Vertices: g.n, Edges: g.M()}
	if g.n == 0 {
		return s
	}
	maxDeg := 0
	recip := 0
	for v := uint32(0); int(v) < g.n; v++ {
		in, out := g.InDegree(v), g.OutDegree(v)
		if in > s.MaxInDeg {
			s.MaxInDeg = in
		}
		if out > s.MaxOutDeg {
			s.MaxOutDeg = out
		}
		if in+out > maxDeg {
			maxDeg = in + out
		}
		if in == 0 {
			s.ZeroInDeg++
		}
		if out == 0 {
			s.ZeroOutDeg++
		}
		if in == 0 && out == 0 {
			s.Isolated++
		}
		for _, d := range g.OutNeighbors(v) {
			if d == v {
				s.SelfLoops++
			}
			if _, ok := g.FindEdge(d, v); ok {
				recip++
			}
		}
	}
	s.AvgDeg = float64(2*g.M()) / float64(g.n)
	if s.AvgDeg > 0 {
		s.DegreeSkew = float64(maxDeg) / s.AvgDeg
	}
	if g.M() > 0 {
		s.Reciprocity = float64(recip) / float64(g.M())
	}
	return s
}
