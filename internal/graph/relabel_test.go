package graph

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/rng"
)

func randGraph(t testing.TB, seed uint64, n, m int) *Graph {
	t.Helper()
	r := rng.New(seed)
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	g, err := Build(es, Options{NumVertices: n})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRelabelIdentity(t *testing.T) {
	g := randGraph(t, 1, 30, 120)
	perm := make([]uint32, g.N())
	for i := range perm {
		perm[i] = uint32(i)
	}
	r, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if r.M() != g.M() {
		t.Fatal("identity relabel changed edge count")
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		a, b := g.OutNeighbors(v), r.OutNeighbors(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("identity relabel changed adjacency")
			}
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := randGraph(t, 2, 40, 200)
	r := rng.New(3)
	perm := make([]uint32, g.N())
	for i, p := range r.Perm(g.N()) {
		perm[i] = uint32(p)
	}
	rg, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degrees transfer through the permutation.
	for v := uint32(0); int(v) < g.N(); v++ {
		if g.OutDegree(v) != rg.OutDegree(perm[v]) || g.InDegree(v) != rg.InDegree(perm[v]) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	// Every edge maps.
	for _, e := range g.Edges() {
		if _, ok := rg.FindEdge(perm[e.Src], perm[e.Dst]); !ok {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestRelabelRejectsBadPerms(t *testing.T) {
	g := randGraph(t, 4, 10, 30)
	if _, err := Relabel(g, []uint32{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	dup := make([]uint32, g.N())
	for i := range dup {
		dup[i] = 0
	}
	if _, err := Relabel(g, dup); err == nil {
		t.Error("duplicate permutation accepted")
	}
	big := make([]uint32, g.N())
	for i := range big {
		big[i] = uint32(i)
	}
	big[0] = uint32(g.N())
	if _, err := Relabel(g, big); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestDegreeDescOrder(t *testing.T) {
	g := randGraph(t, 5, 50, 400)
	perm := DegreeDescOrder(g)
	rg, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees must be non-increasing in the new label order.
	for v := 1; v < rg.N(); v++ {
		if rg.Degree(uint32(v-1)) < rg.Degree(uint32(v)) {
			t.Fatalf("degree order violated at %d: %d < %d", v, rg.Degree(uint32(v-1)), rg.Degree(uint32(v)))
		}
	}
}

func TestDegreeInterleaveOrder(t *testing.T) {
	g := randGraph(t, 6, 64, 512)
	const p = 4
	perm := DegreeInterleaveOrder(g, p)
	rg, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// The heaviest vertex of each of the p blocks should be comparable:
	// the interleave deals hubs round-robin, so the total degree mass per
	// block is roughly balanced.
	blockMass := make([]int, p)
	per := rg.N() / p
	for v := 0; v < per*p; v++ {
		blockMass[v/per] += rg.Degree(uint32(v))
	}
	min, max := blockMass[0], blockMass[0]
	for _, m := range blockMass {
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if min == 0 || float64(max)/float64(min) > 1.6 {
		t.Fatalf("interleave left unbalanced blocks: %v", blockMass)
	}
	// Contrast: degree-desc order concentrates mass in block 0.
	dg, err := Relabel(g, DegreeDescOrder(g))
	if err != nil {
		t.Fatal(err)
	}
	descMass := make([]int, p)
	for v := 0; v < per*p; v++ {
		descMass[v/per] += dg.Degree(uint32(v))
	}
	if descMass[0] <= descMass[p-1] {
		t.Fatalf("degree-desc order did not concentrate hubs: %v", descMass)
	}
}

func TestDegreeInterleaveOrderEdgeCases(t *testing.T) {
	g := randGraph(t, 7, 10, 20)
	perm := DegreeInterleaveOrder(g, 0) // p < 1 clamps to 1
	if _, err := Relabel(g, perm); err != nil {
		t.Fatal(err)
	}
}

func TestInversePermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50
		perm := make([]uint32, n)
		for i, p := range r.Perm(n) {
			perm[i] = uint32(p)
		}
		inv := InversePermutation(perm)
		for i := range perm {
			if inv[perm[i]] != uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
