// Package fsafe provides crash-safe file writes: content is staged in a
// temporary file in the destination directory, flushed and synced, and only
// then renamed over the target. A crash at any point leaves either the old
// file or no file — never a truncated hybrid. The loader's graph writer,
// the shard builder, and the engine checkpointer all route their durable
// writes through this package.
package fsafe

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write. The
// writer receives a buffered sink; it must not retain it. On any error the
// temporary file is removed and the previous contents of path (if any)
// survive untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsafe: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("fsafe: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsafe: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsafe: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fsafe: %w", err)
	}
	return nil
}
