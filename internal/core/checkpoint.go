package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ndgraph/internal/fsafe"
)

// ErrCorrupt marks a checkpoint file whose contents fail structural or
// checksum validation: truncated mid-write, torn, or bit-rotted. Callers
// holding more than one checkpoint generation should test with
// errors.Is(err, ErrCorrupt) and fall back to the previous good file;
// errors that do NOT wrap ErrCorrupt (missing file, a checkpoint for a
// different graph) are not repaired by falling back.
var ErrCorrupt = errors.New("core: checkpoint corrupt")

// Checkpoint format: a little-endian header (magic, version, iteration,
// update count, n, m), the vertex words, the edge words, the current
// frontier member list, and a CRC32 (IEEE) trailer over everything before
// it. Files are written atomically (temp file + rename), so a crash
// mid-checkpoint leaves the previous checkpoint intact, and a torn or
// truncated file is rejected at load time by the checksum.
const (
	ckptMagic   = 0x4e44434b // "NDCK"
	ckptVersion = 1
)

// saveCheckpoint writes the engine's state at an iteration boundary. Called
// between iterations only (no workers running), so plain Snapshot reads are
// safe. When a fault injector is installed, Snapshot bypasses it, so the
// checkpoint records the true committed words.
func (e *Engine) saveCheckpoint(path string, iter int, updates int64) error {
	return fsafe.WriteFile(path, func(w io.Writer) error {
		h := crc32.NewIEEE()
		mw := io.MultiWriter(w, h)
		hdr := []uint64{ckptMagic, ckptVersion, uint64(iter), uint64(updates), uint64(e.g.N()), uint64(e.g.M())}
		for _, v := range hdr {
			if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := writeWords(mw, e.Vertices); err != nil {
			return err
		}
		if err := writeWords(mw, e.Edges.Snapshot()); err != nil {
			return err
		}
		members := e.front.Members()
		if err := binary.Write(mw, binary.LittleEndian, uint64(len(members))); err != nil {
			return err
		}
		for _, v := range members {
			if err := binary.Write(mw, binary.LittleEndian, uint32(v)); err != nil {
				return err
			}
		}
		return binary.Write(w, binary.LittleEndian, h.Sum32())
	})
}

// RestoreCheckpoint loads a checkpoint written during an earlier run on the
// same graph and installs it as this engine's state: vertex words, edge
// words, the scheduled set, and the resume point (iteration and update
// counters). A following Run continues from the checkpointed iteration;
// under a deterministic scheduler the resumed run's final state is
// byte-identical to an uninterrupted run's. The file's CRC32 is verified —
// a truncated or corrupted checkpoint is rejected, never silently loaded.
// It returns the iteration the engine will resume at.
func (e *Engine) RestoreCheckpoint(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	if fi.Size() < 6*8+4 {
		return 0, fmt.Errorf("core: checkpoint: file truncated (%d bytes): %w", fi.Size(), ErrCorrupt)
	}
	body := fi.Size() - 4 // trailing CRC32
	h := crc32.NewIEEE()
	r := bufio.NewReader(io.TeeReader(io.LimitReader(f, body), h))

	var hdr [6]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return 0, fmt.Errorf("core: checkpoint header: %v: %w", err, ErrCorrupt)
		}
	}
	if hdr[0] != ckptMagic {
		return 0, fmt.Errorf("core: checkpoint: bad magic %#x: %w", hdr[0], ErrCorrupt)
	}
	if hdr[1] != ckptVersion {
		return 0, fmt.Errorf("core: checkpoint: unsupported version %d: %w", hdr[1], ErrCorrupt)
	}
	iter, updates := int(hdr[2]), int64(hdr[3])
	if int(hdr[4]) != e.g.N() || int(hdr[5]) != e.g.M() {
		return 0, fmt.Errorf("core: checkpoint is for a %d-vertex/%d-edge graph, engine holds %d/%d",
			hdr[4], hdr[5], e.g.N(), e.g.M())
	}
	vertices := make([]uint64, e.g.N())
	if err := readWords(r, vertices); err != nil {
		return 0, fmt.Errorf("core: checkpoint vertices: %v: %w", err, ErrCorrupt)
	}
	edges := make([]uint64, e.g.M())
	if err := readWords(r, edges); err != nil {
		return 0, fmt.Errorf("core: checkpoint edges: %v: %w", err, ErrCorrupt)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return 0, fmt.Errorf("core: checkpoint frontier: %v: %w", err, ErrCorrupt)
	}
	if count > uint64(e.g.N()) {
		return 0, fmt.Errorf("core: checkpoint frontier count %d exceeds %d vertices: %w", count, e.g.N(), ErrCorrupt)
	}
	members := make([]int, count)
	for i := range members {
		var v uint32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return 0, fmt.Errorf("core: checkpoint frontier: %v: %w", err, ErrCorrupt)
		}
		// Bounds-check each member: LoadCurrent sets frontier bits without
		// validation, so an out-of-range ID — reachable via a file whose
		// CRC is valid over corrupt contents — would panic the bitset
		// instead of returning an error.
		if int(v) >= e.g.N() {
			return 0, fmt.Errorf("core: checkpoint frontier member %d exceeds %d vertices: %w", v, e.g.N(), ErrCorrupt)
		}
		members[i] = int(v)
	}
	// Hash any unparsed remainder so the CRC covers the full body, then
	// read the trailer from the file's tail.
	if _, err := io.Copy(io.Discard, r); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	want := h.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return 0, fmt.Errorf("core: checkpoint checksum: %v: %w", err, ErrCorrupt)
	}
	got := binary.LittleEndian.Uint32(tail[:])
	if got != want {
		return 0, fmt.Errorf("core: checkpoint checksum mismatch (file %#x, computed %#x): truncated or corrupted: %w", got, want, ErrCorrupt)
	}

	copy(e.Vertices, vertices)
	for i, w := range edges {
		e.Edges.Store(uint32(i), w)
	}
	e.front.LoadCurrent(members)
	e.startIter = iter
	e.startUpdates = updates
	return iter, nil
}

func writeWords(w io.Writer, words []uint64) error {
	buf := make([]byte, 8*1024)
	for len(words) > 0 {
		n := len(buf) / 8
		if n > len(words) {
			n = len(words)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], words[i])
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		words = words[n:]
	}
	return nil
}

func readWords(r io.Reader, words []uint64) error {
	buf := make([]byte, 8*1024)
	for len(words) > 0 {
		n := len(buf) / 8
		if n > len(words) {
			n = len(words)
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			words[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		words = words[n:]
	}
	return nil
}
