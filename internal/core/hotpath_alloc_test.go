//go:build !race

package core

import (
	"io"
	"testing"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
)

// The race detector's instrumentation allocates, so the steady-state
// zero-allocation property only holds — and is only asserted — in non-race
// builds (ci.sh races internal/core with -short; these tests are not short).

// selfSchedulingUpdate keeps every vertex scheduled forever, so Run spins
// the full dispatch machinery — frontier rebuild, (for Synchronous) edge
// snapshot, pool barrier, update calls — for exactly MaxIters iterations.
func selfSchedulingUpdate(ctx VertexView) {
	ctx.SetVertex(ctx.Vertex())
	ctx.ScheduleSelf()
}

// newDiscardObserver builds an observer with a JSONL sink writing to
// io.Discard — the full enabled telemetry path, minus the file.
func newDiscardObserver() *obs.Observer {
	o := obs.New(obs.Options{})
	o.AttachSink(obs.NewJSONLSink(io.Discard))
	return o
}

// runAllocs measures the average heap allocations of one Run capped at
// iters iterations, after the engine has been warmed once.
func runAllocs(t *testing.T, e *Engine, iters int) float64 {
	t.Helper()
	e.opts.MaxIters = iters
	return testing.AllocsPerRun(5, func() {
		if _, err := e.Run(selfSchedulingUpdate); err != nil {
			t.Fatal(err)
		}
	})
}

// After warm-up, an iteration must not allocate: the worker pool parks and
// wakes without spawning, the dispatch parameters live in engine fields, the
// BSP shadow is reused via SnapshotInto, and the frontier recycles its
// member cache. Any per-iteration allocation shows up here as the allocation
// count growing with MaxIters.
func TestRunSteadyStateIterationsDoNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful with -short budgets")
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"nondet-static", Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Static, Threads: 4, Mode: edgedata.ModeAligned}},
		{"nondet-dynamic", Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Dynamic, Threads: 4, Mode: edgedata.ModeAligned}},
		{"synchronous", Options{Scheduler: sched.Synchronous, Threads: 4, Mode: edgedata.ModeAligned}},
		{"deterministic", Options{Scheduler: sched.Deterministic}},
		// The observability layer must preserve the guarantee both ways:
		// observer attached (Emit + JSONL sink are allocation-free) and, by
		// the cases above, absent (one nil test per barrier).
		{"nondet-observed", Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Static, Threads: 4, Mode: edgedata.ModeAligned,
			Observer: newDiscardObserver()}},
		{"deterministic-observed", Options{Scheduler: sched.Deterministic, Observer: newDiscardObserver()}},
	}
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, g, tc.opts)
			initMinLabel(e)
			e.opts.MaxIters = 3
			if _, err := e.Run(selfSchedulingUpdate); err != nil { // warm-up
				t.Fatal(err)
			}
			short := runAllocs(t, e, 10)
			long := runAllocs(t, e, 60)
			// Per-Run fixed costs (if any) cancel in the difference; 50
			// extra iterations must not add even one allocation.
			if delta := long - short; delta >= 1 {
				t.Errorf("50 extra iterations allocate %.1f more (run@10 = %.1f, run@60 = %.1f); want 0 per iteration",
					delta, short, long)
			}
		})
	}
}
