// Record/replay for nondeterministic runs — Lemmas 1 and 2 made
// executable. A nondeterministic run is nondeterministic only in which of
// the competing writes each racy edge commits (per-operation atomicity
// guarantees it commits exactly one of them, never a mangled mix). So a
// run is fully determined by its execution path plus, for every edge, the
// sequence of values it physically committed. Recording both (Options.
// Trace with EnableCommits) and then forcing the recorded commit outcomes
// during re-execution must reproduce the byte-identical final state — and
// ReplayTrace asserts exactly that, against the digest the recorded run
// installed at its finish.
package core

import (
	"errors"
	"fmt"

	"ndgraph/internal/trace"
)

// traceStripes is the number of commit-order lock stripes. Edge writes of
// a commit-logged run serialize per stripe (edge mod traceStripes), which
// is what makes "recorded per-edge order" equal "physical store order".
const traceStripes = 64

// commitStore performs one edge write of a commit-logged run: the physical
// store and the commit record happen atomically under the edge's stripe
// lock, so the recorder's per-edge Seq order is the physical commit order.
func (e *Engine) commitStore(update int64, edge uint32, w uint64) {
	l := &e.traceLocks[edge%traceStripes]
	l.Lock()
	e.Edges.Store(edge, w)
	e.opts.Trace.RecordCommit(update, e.curIter, edge, w)
	l.Unlock()
}

// stateDigest digests the engine's complete mutable state (vertex words,
// then an edge-store snapshot) — the "byte-identical fixed point" check.
func (e *Engine) stateDigest() uint64 {
	e.traceShadow = e.Edges.SnapshotInto(e.traceShadow)
	return trace.DigestWords(trace.DigestWords(trace.DigestSeed, e.Vertices), e.traceShadow)
}

// ErrReplayDiverged is returned by ReplayTrace when the replayed final
// state does not match the recorded run's digest.
var ErrReplayDiverged = errors.New("core: replayed state diverges from recorded digest")

// ReplayReport summarizes a replay: how faithfully re-execution reproduced
// the recorded outcomes (diagnostics) and whether the forced replay
// reached the recorded fixed point (the assertion).
type ReplayReport struct {
	// Updates and Commits are the replayed event/commit counts.
	Updates int64
	Commits int64

	// WriteMatches counts re-executed edge writes that recomputed exactly
	// the recorded commit (same edge, same value); WriteMismatches counts
	// re-executed writes whose recomputation differed (the recorded
	// outcome is forced either way). Mismatches are expected: replay
	// applies racy winners in recorded per-edge order, so intermediate
	// reads may observe different interleavings than the original run.
	WriteMatches    int64
	WriteMismatches int64
	// MissingWrites counts recorded commits the re-executed update did not
	// attempt (applied anyway); ExtraWrites counts attempted writes with
	// no recorded commit (discarded).
	MissingWrites int64
	ExtraWrites   int64
	// OrphanCommits counts commits with no owning update in the trace.
	OrphanCommits int64

	// ValueMatches / ValueMismatches compare each update's recomputed
	// vertex value against the recorded one (recorded value is forced).
	ValueMatches    int64
	ValueMismatches int64

	// Digest is the replayed final-state digest; DigestOK reports whether
	// it equals the recorded digest.
	Digest   uint64
	DigestOK bool
}

// replayer holds per-replay state shared by all update re-executions.
type replayer struct {
	e *Engine
	// lastSeq[edge] is the Seq of the latest commit applied to the edge;
	// a commit is only stored if its Seq is newer, so the final per-edge
	// value is the recorded racy winner regardless of the order replay
	// encounters commits in.
	lastSeq []int64
	rep     *ReplayReport
}

func (r *replayer) apply(c trace.Commit) {
	if c.Seq > r.lastSeq[c.Edge] {
		r.e.Edges.Store(c.Edge, c.Value)
		r.lastSeq[c.Edge] = c.Seq
	}
}

// replayView is the VertexView handed to update functions during replay:
// reads see the replayed state, vertex writes go to a scratch word, and
// edge writes are matched against — and replaced by — the recorded
// commits. Scheduling and yielding are no-ops; the trace itself is the
// schedule.
type replayView struct {
	r *replayer
	v uint32

	inSrc  []uint32
	inIdx  []uint32
	outDst []uint32
	outLo  uint32

	vertex  uint64
	commits []trace.Commit
	next    int
}

func (rv *replayView) bind(v uint32, commits []trace.Commit) {
	g := rv.r.e.g
	rv.v = v
	rv.inSrc = g.InNeighbors(v)
	rv.inIdx = g.InEdgeIndices(v)
	rv.outDst = g.OutNeighbors(v)
	rv.outLo, _ = g.OutEdgeIndex(v)
	rv.vertex = rv.r.e.Vertices[v]
	rv.commits = commits
	rv.next = 0
}

func (rv *replayView) V() uint32               { return rv.v }
func (rv *replayView) Vertex() uint64          { return rv.vertex }
func (rv *replayView) SetVertex(w uint64)      { rv.vertex = w }
func (rv *replayView) InDegree() int           { return len(rv.inSrc) }
func (rv *replayView) OutDegree() int          { return len(rv.outDst) }
func (rv *replayView) InNeighbor(k int) uint32 { return rv.inSrc[k] }
func (rv *replayView) OutNeighbor(k int) uint32 {
	return rv.outDst[k]
}
func (rv *replayView) InEdgeID(k int) uint32   { return rv.inIdx[k] }
func (rv *replayView) OutEdgeID(k int) uint32  { return rv.outLo + uint32(k) }
func (rv *replayView) InEdgeVal(k int) uint64  { return rv.r.e.Edges.Load(rv.inIdx[k]) }
func (rv *replayView) OutEdgeVal(k int) uint64 { return rv.r.e.Edges.Load(rv.outLo + uint32(k)) }
func (rv *replayView) ScheduleSelf()           {}
func (rv *replayView) Yield()                  {}

func (rv *replayView) SetInEdgeVal(k int, w uint64)  { rv.commitNext(rv.inIdx[k], w) }
func (rv *replayView) SetOutEdgeVal(k int, w uint64) { rv.commitNext(rv.outLo+uint32(k), w) }

// commitNext consumes the update's next recorded commit in place of the
// attempted write.
func (rv *replayView) commitNext(edge uint32, w uint64) {
	rep := rv.r.rep
	if rv.next >= len(rv.commits) {
		rep.ExtraWrites++
		return
	}
	c := rv.commits[rv.next]
	rv.next++
	if c.Edge == edge && c.Value == w {
		rep.WriteMatches++
	} else {
		rep.WriteMismatches++
	}
	rv.r.apply(c)
}

var _ VertexView = (*replayView)(nil)

// ReplayTrace re-executes the recorded run on this engine and asserts the
// byte-identical fixed point. The engine must hold the same initial state
// the recorded run started from (same graph, same algorithm Setup); the
// trace must be complete (untruncated) with the commit log and digest
// present. Replay is single-threaded and deterministic: updates re-execute
// in capture order, every edge write is forced to its recorded outcome,
// and the final state digest must equal the recorded one (else
// ErrReplayDiverged).
func (e *Engine) ReplayTrace(t *trace.Trace, update UpdateFunc) (ReplayReport, error) {
	var rep ReplayReport
	if t == nil || update == nil {
		return rep, fmt.Errorf("core: replay needs a trace and an update function")
	}
	if t.Truncated() {
		return rep, fmt.Errorf("core: cannot replay a truncated trace (%d/%d events, %d/%d commits retained)",
			len(t.Events), t.TotalEvents, len(t.Commits), t.TotalCommits)
	}
	if !t.HasDigest {
		return rep, fmt.Errorf("core: trace has no final-state digest; was it recorded through Run?")
	}
	if t.Meta.Vertices != 0 && t.Meta.Vertices != e.g.N() {
		return rep, fmt.Errorf("core: trace is for %d vertices, graph has %d", t.Meta.Vertices, e.g.N())
	}
	if t.Meta.Edges != 0 && t.Meta.Edges != e.g.M() {
		return rep, fmt.Errorf("core: trace is for %d edges, graph has %d", t.Meta.Edges, e.g.M())
	}
	for i := range t.Events {
		if int(t.Events[i].Vertex) >= e.g.N() {
			return rep, fmt.Errorf("core: trace event %d names vertex %d outside the graph", i, t.Events[i].Vertex)
		}
	}

	// Index commits by owning update; commit order within one update is
	// its own write order (a single update's writes are sequential).
	byUpdate := make([][]trace.Commit, len(t.Events))
	var orphans []trace.Commit
	for _, c := range t.Commits {
		if int(c.Edge) >= e.g.M() {
			return rep, fmt.Errorf("core: trace commit %d names edge %d outside the graph", c.Seq, c.Edge)
		}
		if c.Update >= 0 && c.Update < int64(len(byUpdate)) {
			byUpdate[c.Update] = append(byUpdate[c.Update], c)
		} else {
			orphans = append(orphans, c)
		}
	}

	r := &replayer{e: e, lastSeq: make([]int64, e.g.M()), rep: &rep}
	for i := range r.lastSeq {
		r.lastSeq[i] = -1
	}
	rv := &replayView{r: r}
	rep.Updates = int64(len(t.Events))
	rep.Commits = int64(len(t.Commits))

	for i := range t.Events {
		ev := &t.Events[i]
		rv.bind(ev.Vertex, byUpdate[i])
		update(rv)
		// Recorded commits the re-execution did not reproduce are applied
		// anyway: the recorded run performed them, so the replayed state
		// must contain them.
		for rv.next < len(rv.commits) {
			rep.MissingWrites++
			r.apply(rv.commits[rv.next])
			rv.next++
		}
		if rv.vertex == ev.Value {
			rep.ValueMatches++
		} else {
			rep.ValueMismatches++
		}
		e.Vertices[ev.Vertex] = ev.Value
	}
	rep.OrphanCommits = int64(len(orphans))
	for _, c := range orphans {
		r.apply(c)
	}

	rep.Digest = e.stateDigest()
	rep.DigestOK = rep.Digest == t.Digest
	if !rep.DigestOK {
		return rep, fmt.Errorf("%w: replayed %#x, recorded %#x", ErrReplayDiverged, rep.Digest, t.Digest)
	}
	return rep, nil
}
