package core

import (
	"testing"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

func runTraced(t *testing.T, opts Options) *trace.Recorder {
	t.Helper()
	g, err := gen.RMAT(200, 1200, gen.DefaultRMAT, 91)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 16)
	opts.Trace = rec
	e := newEngine(t, g, opts)
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if int64(res.Updates) != rec.Total() {
		t.Fatalf("trace recorded %d events for %d updates", rec.Total(), res.Updates)
	}
	return rec
}

// Two deterministic runs record identical execution paths — the defining
// property of deterministic scheduling.
func TestTraceDeterministicRunsIdentical(t *testing.T) {
	a := runTraced(t, Options{Scheduler: sched.Deterministic})
	b := runTraced(t, Options{Scheduler: sched.Deterministic})
	if !trace.Equal(a, b) {
		t.Fatalf("deterministic traces diverge at %d", trace.Divergence(a, b))
	}
}

// The per-iteration structure of a trace matches the engine's reported
// iteration stats.
func TestTraceSummaryMatchesPerIter(t *testing.T) {
	g, err := gen.RMAT(150, 900, gen.DefaultRMAT, 92)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 16)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, RecordIters: true, Trace: rec})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sums := rec.Summarize()
	if len(sums) != len(res.PerIter) {
		t.Fatalf("trace has %d iterations, engine reported %d", len(sums), len(res.PerIter))
	}
	for i, s := range sums {
		if s.Updates != res.PerIter[i].Scheduled {
			t.Fatalf("iteration %d: trace %d updates, engine %d", i, s.Updates, res.PerIter[i].Scheduled)
		}
	}
}

// Nondeterministic execution uses multiple workers; the trace shows it.
func TestTraceObservesMultipleWorkers(t *testing.T) {
	rec := runTraced(t, Options{
		Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic,
	})
	maxWorkers := 0
	for _, s := range rec.Summarize() {
		if s.Workers > maxWorkers {
			maxWorkers = s.Workers
		}
	}
	if maxWorkers < 2 {
		t.Fatalf("nondeterministic trace saw at most %d workers", maxWorkers)
	}
}

// Single-threaded Chromatic and DIG runs are deterministic: color classes and
// independent-set rounds are dispatched through the pool's inline path in a
// fixed order. Two runs must trace identically — this pins the worker pool's
// degenerate (one-worker) dispatch to the exact behavior of the old one-shot
// dispatchers.
func TestTraceSingleThreadColorSchedulersIdentical(t *testing.T) {
	for _, s := range []sched.Kind{sched.Chromatic, sched.DIG} {
		a := runTraced(t, Options{Scheduler: s, Threads: 1, Mode: edgedata.ModeAtomic})
		b := runTraced(t, Options{Scheduler: s, Threads: 1, Mode: edgedata.ModeAtomic})
		if !trace.Equal(a, b) {
			t.Fatalf("%v single-thread traces diverge at %d", s, trace.Divergence(a, b))
		}
	}
}
