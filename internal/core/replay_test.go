package core

import (
	"errors"
	"testing"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// recordRun executes minLabelUpdate on g with commit logging enabled and
// returns the snapshot trace plus the recorded run's final state.
func recordRun(t *testing.T, g *graph.Graph, opts Options) (*trace.Trace, []uint64, []uint64) {
	t.Helper()
	rec := trace.NewRecorder(1 << 18)
	rec.EnableCommits(1<<20, g.M())
	opts.Trace = rec
	e := newEngine(t, g, opts)
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("recorded run did not converge")
	}
	tr := rec.Snapshot(trace.Meta{Vertices: g.N(), Edges: g.M()})
	if tr.Truncated() {
		t.Fatalf("trace truncated: %d/%d events, %d/%d commits",
			len(tr.Events), tr.TotalEvents, len(tr.Commits), tr.TotalCommits)
	}
	if !tr.HasDigest {
		t.Fatal("recorded trace has no digest")
	}
	verts := append([]uint64(nil), e.Vertices...)
	return tr, verts, e.Edges.Snapshot()
}

// replayOnto re-executes tr on a fresh engine with the same initial state
// and returns the report plus the replayed final state.
func replayOnto(t *testing.T, g *graph.Graph, tr *trace.Trace) (ReplayReport, []uint64, []uint64) {
	t.Helper()
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(e)
	rep, err := e.ReplayTrace(tr, minLabelUpdate)
	if err != nil {
		t.Fatalf("replay failed: %v\nreport: %+v", err, rep)
	}
	if !rep.DigestOK {
		t.Fatalf("replay digest mismatch without error: %+v", rep)
	}
	return rep, e.Vertices, e.Edges.Snapshot()
}

func assertStateIdentical(t *testing.T, wantV, gotV, wantE, gotE []uint64) {
	t.Helper()
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("vertex %d: replayed %#x, recorded %#x", i, gotV[i], wantV[i])
		}
	}
	for i := range wantE {
		if gotE[i] != wantE[i] {
			t.Fatalf("edge %d: replayed %#x, recorded %#x", i, gotE[i], wantE[i])
		}
	}
}

// A recorded nondeterministic run replays to a byte-identical fixed point —
// Lemmas 1–2 as an executable assertion, for both per-operation atomicity
// disciplines the paper studies (locks and atomic primitives).
func TestReplayNondeterministicByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode edgedata.Mode
	}{
		{"locked", edgedata.ModeLocked},
		{"atomic", edgedata.ModeAtomic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := gen.RMAT(400, 3200, gen.DefaultRMAT, 173)
			if err != nil {
				t.Fatal(err)
			}
			tr, wantV, wantE := recordRun(t, g, Options{
				Scheduler: sched.Nondeterministic, Threads: 4,
				Mode: tc.mode, Amplify: true,
			})
			rep, gotV, gotE := replayOnto(t, g, tr)
			assertStateIdentical(t, wantV, gotV, wantE, gotE)
			if rep.Updates != tr.TotalEvents {
				t.Fatalf("replayed %d updates, trace holds %d", rep.Updates, tr.TotalEvents)
			}
			if rep.Commits == 0 {
				t.Fatal("nondeterministic run recorded no commits")
			}
		})
	}
}

// A deterministic single-threaded run replays with every recomputation
// matching its recorded outcome: the trace forcing machinery is a no-op
// when there was no race to force.
func TestReplayDeterministicExact(t *testing.T) {
	g, err := gen.RMAT(200, 1400, gen.DefaultRMAT, 174)
	if err != nil {
		t.Fatal(err)
	}
	tr, wantV, wantE := recordRun(t, g, Options{Scheduler: sched.Deterministic})
	rep, gotV, gotE := replayOnto(t, g, tr)
	assertStateIdentical(t, wantV, gotV, wantE, gotE)
	if rep.WriteMismatches != 0 || rep.MissingWrites != 0 || rep.ExtraWrites != 0 {
		t.Fatalf("deterministic replay disagreed with its recording: %+v", rep)
	}
	if rep.ValueMismatches != 0 {
		t.Fatalf("deterministic replay recomputed %d divergent vertex values", rep.ValueMismatches)
	}
}

// Replay refuses traces it cannot faithfully reproduce: wrong graph,
// truncated recordings, recordings without a digest.
func TestReplayValidation(t *testing.T) {
	g, err := gen.RMAT(100, 600, gen.DefaultRMAT, 175)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _ := recordRun(t, g, Options{Scheduler: sched.Deterministic})

	other, err := gen.Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, other, Options{Scheduler: sched.Deterministic})
	initMinLabel(e)
	if _, err := e.ReplayTrace(tr, minLabelUpdate); err == nil {
		t.Error("replay accepted a trace for a different graph")
	}

	e2 := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(e2)
	trunc := *tr
	trunc.TotalEvents = int64(len(tr.Events)) + 5
	if _, err := e2.ReplayTrace(&trunc, minLabelUpdate); err == nil {
		t.Error("replay accepted a truncated trace")
	}
	noDigest := *tr
	noDigest.HasDigest = false
	if _, err := e2.ReplayTrace(&noDigest, minLabelUpdate); err == nil {
		t.Error("replay accepted a digest-less trace")
	}
	if _, err := e2.ReplayTrace(nil, minLabelUpdate); err == nil {
		t.Error("replay accepted a nil trace")
	}
}

// Tampering with a recorded commit value breaks the digest assertion.
func TestReplayDetectsTamperedTrace(t *testing.T) {
	g, err := gen.RMAT(150, 1000, gen.DefaultRMAT, 176)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _ := recordRun(t, g, Options{
		Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic,
	})
	if len(tr.Commits) == 0 {
		t.Fatal("no commits to tamper with")
	}
	// Flip the last commit's value: it wins its edge's lastSeq race, so the
	// corruption must survive into the final state and trip the digest.
	tr.Commits[len(tr.Commits)-1].Value ^= 0xdeadbeef
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(e)
	_, err = e.ReplayTrace(tr, minLabelUpdate)
	if !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("tampered trace replayed with err = %v, want ErrReplayDiverged", err)
	}
}
