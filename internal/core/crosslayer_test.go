package core

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

// Cross-layer property tests tying together the census, dispatch policies,
// and execution models.

// The potential census can only see MORE conflicts than the observed
// census: the potential replay assumes every pair of same-iteration
// updates overlaps, while in-order execution may let conditional writes
// fizzle. (Both probes here run deterministically, so the comparison is
// exact, not timing-dependent.)
func TestPotentialCensusDominatesObserved(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(60, 300, seed)
		if err != nil {
			return false
		}
		runWith := func(potential bool) (uint64, uint64) {
			e, err := NewEngine(g, Options{
				Scheduler: sched.Deterministic, EnableCensus: true, PotentialCensus: potential,
			})
			if err != nil {
				t.Fatal(err)
			}
			initMinLabel(e)
			res, err := e.Run(minLabelUpdate)
			if err != nil || !res.Converged {
				t.Fatal("run failed")
			}
			return res.RWConflicts, res.WWConflicts
		}
		_, obsWW := runWith(false)
		_, potWW := runWith(true)
		// Write-write conflicts: potential ≥ observed (the central
		// property that justifies probing with the potential census).
		return potWW >= obsWW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Dynamic dispatch preserves correctness for monotone algorithms: final
// min-labels equal the static-dispatch result on random graphs.
func TestDynamicDispatchSameResults(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(80, 400, seed)
		if err != nil {
			return false
		}
		results := make([][]uint64, 2)
		for i, d := range []sched.Dispatch{sched.Static, sched.Dynamic} {
			e, err := NewEngine(g, Options{
				Scheduler: sched.Nondeterministic, Threads: 4,
				Mode: edgedata.ModeAtomic, Dispatch: d, Amplify: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			initMinLabel(e)
			res, err := e.Run(minLabelUpdate)
			if err != nil || !res.Converged {
				return false
			}
			results[i] = append([]uint64(nil), e.Vertices...)
		}
		for v := range results[0] {
			if results[0][v] != results[1][v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// BSP with a gather-scatter (single-writer-per-edge) update is fully
// deterministic even in parallel: reads come from the committed snapshot
// and each edge has exactly one writer, so thread count cannot change any
// value. PageRank-shaped updates satisfy this.
func TestBSPParallelDeterministicForSingleWriterUpdates(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 131)
	if err != nil {
		t.Fatal(err)
	}
	update := func(ctx VertexView) {
		var sum uint64
		for k := 0; k < ctx.InDegree(); k++ {
			sum += ctx.InEdgeVal(k)
		}
		sum++
		old := ctx.Vertex()
		ctx.SetVertex(sum)
		if old != sum && sum < 1000 {
			for k := 0; k < ctx.OutDegree(); k++ {
				ctx.SetOutEdgeVal(k, sum%7)
			}
		}
	}
	var want []uint64
	for _, threads := range []int{1, 2, 8} {
		e, err := NewEngine(g, Options{
			Scheduler: sched.Synchronous, Threads: threads,
			Mode: edgedata.ModeAtomic, MaxIters: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Frontier().ScheduleAll()
		if _, err := e.Run(update); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = append([]uint64(nil), e.Vertices...)
			continue
		}
		for v := range want {
			if e.Vertices[v] != want[v] {
				t.Fatalf("threads=%d: vertex %d = %d, single-thread had %d",
					threads, v, e.Vertices[v], want[v])
			}
		}
	}
}

// Census works identically under all parallel schedulers for the WCC
// pattern: potential conflicts are a property of access patterns plus the
// scheduled sets, and with the same deterministic evolution (same
// converged state), total conflict counts from the deterministic probe
// must be reproducible.
func TestPotentialCensusReproducible(t *testing.T) {
	g, err := gen.RMAT(200, 1200, gen.DefaultRMAT, 132)
	if err != nil {
		t.Fatal(err)
	}
	var firstRW, firstWW uint64
	for i := 0; i < 3; i++ {
		e, err := NewEngine(g, Options{Scheduler: sched.Deterministic, PotentialCensus: true})
		if err != nil {
			t.Fatal(err)
		}
		initMinLabel(e)
		res, err := e.Run(minLabelUpdate)
		if err != nil || !res.Converged {
			t.Fatal("run failed")
		}
		if i == 0 {
			firstRW, firstWW = res.RWConflicts, res.WWConflicts
			continue
		}
		if res.RWConflicts != firstRW || res.WWConflicts != firstWW {
			t.Fatalf("probe run %d: conflicts (%d,%d) != first (%d,%d)",
				i, res.RWConflicts, res.WWConflicts, firstRW, firstWW)
		}
	}
}

// A self-loop's two "sides" belong to the same update, so the census must
// not classify its read+write (or write+write) as a conflict.
func TestCensusIgnoresSelfLoops(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 0}}, graph.Options{NumVertices: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Options{Scheduler: sched.Deterministic, PotentialCensus: true})
	if err != nil {
		t.Fatal(err)
	}
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if res.RWConflicts != 0 || res.WWConflicts != 0 {
		t.Fatalf("self-loop recorded conflicts: %+v", res)
	}
}
