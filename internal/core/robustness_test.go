package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/sched"
)

func TestContextCancelledBeforeRun(t *testing.T) {
	g := ringGraph(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, Context: ctx})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged || res.Iterations != 0 {
		t.Fatalf("pre-cancelled run reported %+v", res)
	}
}

func TestContextCancelStopsWithinOneIteration(t *testing.T) {
	g := chainGraph(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, Context: ctx})
	initReversedLabels(e)
	// Cancel partway through the run; the barrier check must stop the
	// engine before another full iteration dispatches.
	var updates atomic.Int64
	cancelAt := int64(100)
	update := func(v VertexView) {
		if updates.Add(1) == cancelAt {
			cancel()
		}
		minLabelUpdate(v)
	}
	res, err := e.Run(update)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("cancelled run reported convergence")
	}
	if res.Updates == 0 || res.Iterations == 0 {
		t.Fatalf("cancelled run reports no partial progress: %+v", res)
	}
	// At most the remainder of the in-flight iteration (< one frontier,
	// i.e. < 64 updates) may run after cancellation.
	if gap := updates.Load() - cancelAt; gap >= 64 {
		t.Fatalf("%d updates ran after cancellation — more than one iteration", gap)
	}
}

func TestStallWatchdogAbortsDivergentRun(t *testing.T) {
	g := ringGraph(t, 16)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, StallWindow: 3})
	e.Frontier().ScheduleAll()
	// A computation that never converges: every vertex reschedules itself
	// forever, so the active count never improves.
	res, err := e.Run(func(ctx VertexView) { ctx.ScheduleSelf() })
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if res.Converged {
		t.Fatal("stalled run reported convergence")
	}
	if res.Iterations > 10 {
		t.Fatalf("watchdog fired only after %d iterations (window 3)", res.Iterations)
	}
	if !strings.Contains(err.Error(), "active vertices") {
		t.Fatalf("watchdog error lacks diagnostics: %v", err)
	}
}

func TestStallWatchdogSparesConvergingRun(t *testing.T) {
	g := ringGraph(t, 64)
	// minLabel on a ring keeps a constant-size frontier for stretches;
	// a window comfortably above the plateau must not fire.
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, StallWindow: 80})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatalf("watchdog mistook convergence for a stall: %v", err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

func TestUpdatePanicSurfacedAsError(t *testing.T) {
	g := ringGraph(t, 32)
	for _, opts := range []Options{
		{Scheduler: sched.Deterministic},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic},
	} {
		e := newEngine(t, g, opts)
		initMinLabel(e)
		_, err := e.Run(func(ctx VertexView) {
			if ctx.V() == 17 {
				panic("kaboom")
			}
			minLabelUpdate(ctx)
		})
		if err == nil {
			t.Fatalf("%v: panic not surfaced", opts.Scheduler)
		}
		if !strings.Contains(err.Error(), "panicked on vertex 17") || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("%v: panic error lacks context: %v", opts.Scheduler, err)
		}
	}
}
