package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/fault"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

// ringGraph gives minLabel a long convergence run (the min label travels
// one hop per iteration around the directed cycle), leaving plenty of
// iteration boundaries for checkpoints and crashes.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// chainGraph builds a directed path 0→1→…→n-1. Paired with
// initReversedLabels it gives the slowest possible min-label run under the
// Deterministic scheduler: no wrap-around edge exists to hand the minimum
// to vertex 0, so it can only travel backwards, one hop per iteration.
func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// initReversedLabels seeds labels against the processing order (vertex i
// gets label n-1-i), so the minimum sits at the last-processed vertex and
// sequential ascending Gauss–Seidel on a chain needs ~n iterations instead
// of one pass — enough runway for checkpoints, crashes, and cancellations
// mid-run.
func initReversedLabels(e *Engine) {
	n := len(e.Vertices)
	for i := range e.Vertices {
		e.Vertices[i] = uint64(n - 1 - i)
	}
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleAll()
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	g := chainGraph(t, 40)
	ckpt := filepath.Join(t.TempDir(), "state.ndck")

	// Reference: uninterrupted deterministic run.
	ref := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initReversedLabels(ref)
	refRes, err := ref.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Converged {
		t.Fatal("reference did not converge")
	}
	if refRes.Iterations < 10 {
		t.Fatalf("reference converged in %d iterations; too short to exercise crash at 7", refRes.Iterations)
	}

	// Crashing run: checkpoint every iteration, injected crash at 7.
	inj := fault.MustInjector(fault.Plan{CrashIter: 7})
	crash := newEngine(t, g, Options{
		Scheduler:       sched.Deterministic,
		Inject:          inj,
		CheckpointEvery: 1,
		CheckpointPath:  ckpt,
	})
	initReversedLabels(crash)
	_, err = crash.Run(minLabelUpdate)
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crash run returned %v, want fault.ErrCrash", err)
	}

	// Resume: fresh engine, restore, run to completion. No re-Setup — the
	// checkpoint carries the full state.
	resumed := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	iter, err := resumed.RestoreCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// The crash at boundary 7 precedes that iteration's checkpoint, so the
	// newest surviving checkpoint is iteration 6's.
	if iter != 6 {
		t.Fatalf("resumed at iteration %d, want 6", iter)
	}
	res, err := resumed.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}

	// Byte-identical final state and matching counters.
	if res.Iterations != refRes.Iterations || res.Updates != refRes.Updates {
		t.Fatalf("resumed result (%d iters, %d updates) != uninterrupted (%d iters, %d updates)",
			res.Iterations, res.Updates, refRes.Iterations, refRes.Updates)
	}
	for v := range ref.Vertices {
		if resumed.Vertices[v] != ref.Vertices[v] {
			t.Fatalf("vertex %d: resumed %d, reference %d", v, resumed.Vertices[v], ref.Vertices[v])
		}
	}
	refEdges, gotEdges := ref.Edges.Snapshot(), resumed.Edges.Snapshot()
	for e := range refEdges {
		if gotEdges[e] != refEdges[e] {
			t.Fatalf("edge %d: resumed %d, reference %d", e, gotEdges[e], refEdges[e])
		}
	}
}

// writeCheckpointFile runs a short computation with checkpointing enabled
// and returns the checkpoint path.
func writeCheckpointFile(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "state.ndck")
	// CheckpointEvery 1, not 2: iteration 0 is never checkpointed, so the
	// first write lands at iteration 1 — early enough for short fixtures.
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, CheckpointEvery: 1, CheckpointPath: path})
	initMinLabel(e)
	if _, err := e.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	return path
}

func TestRestoreRejectsCorruptedCheckpoint(t *testing.T) {
	g := ringGraph(t, 24)
	path := writeCheckpointFile(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Options{})
	_, err = e.RestoreCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted checkpoint: got %v, want checksum mismatch", err)
	}
}

func TestRestoreRejectsTruncatedCheckpoint(t *testing.T) {
	g := ringGraph(t, 24)
	path := writeCheckpointFile(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Options{})
	if _, err := e.RestoreCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestRestoreRejectsWrongGraph(t *testing.T) {
	path := writeCheckpointFile(t, ringGraph(t, 24))
	other := newEngine(t, ringGraph(t, 25), Options{})
	_, err := other.RestoreCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "checkpoint is for") {
		t.Fatalf("wrong-graph checkpoint: got %v, want graph-shape mismatch", err)
	}
}

func TestRestoreRejectsMissingFile(t *testing.T) {
	e := newEngine(t, ringGraph(t, 8), Options{})
	if _, err := e.RestoreCheckpoint(filepath.Join(t.TempDir(), "nope.ndck")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestCheckpointLeavesNoTempFiles(t *testing.T) {
	g := ringGraph(t, 24)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ndck")
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, CheckpointEvery: 1, CheckpointPath: path})
	initMinLabel(e)
	if _, err := e.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.ndck" {
		names := make([]string, 0, len(entries))
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Fatalf("checkpoint dir holds %v, want only state.ndck", names)
	}
}

// Iteration 0 — the state before any update has run — must never be
// checkpointed: the file would hold the initial state and buy nothing over
// re-running Setup, and under CheckpointEvery=k it would burn a write on a
// boundary that carries no progress.
func TestCheckpointSkipsIterationZero(t *testing.T) {
	g := ringGraph(t, 8)
	path := filepath.Join(t.TempDir(), "state.ndck")
	// A converged frontier ends the run at iteration boundary 0 with the
	// checkpoint condition 0 % 1 == 0 — the old code wrote a file here.
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, CheckpointEvery: 1, CheckpointPath: path})
	// No vertices scheduled: Run exits at the first barrier, iteration 0.
	if _, err := e.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("iteration 0 wrote a checkpoint (stat err %v), want none", err)
	}
}

// After RestoreCheckpoint, the first barrier the resumed run reaches is the
// restore point itself (res.Iterations == startIter), and startIter is a
// multiple of CheckpointEvery by construction. Re-writing there would clobber
// the good checkpoint with one recording zero new progress — and worse, a
// crash during that redundant write could destroy the only recovery point.
func TestRestoredRunDoesNotRewriteRestorePoint(t *testing.T) {
	g := chainGraph(t, 40)
	ckpt := filepath.Join(t.TempDir(), "state.ndck")

	// Reference: uninterrupted run for the final state.
	ref := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initReversedLabels(ref)
	if _, err := ref.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}

	// Crash at iteration 7 with checkpoints every 2: files at 2, 4, 6.
	inj := fault.MustInjector(fault.Plan{CrashIter: 7})
	crash := newEngine(t, g, Options{
		Scheduler:       sched.Deterministic,
		Inject:          inj,
		CheckpointEvery: 2,
		CheckpointPath:  ckpt,
	})
	initReversedLabels(crash)
	if _, err := crash.Run(minLabelUpdate); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crash run returned %v, want fault.ErrCrash", err)
	}

	resumed := newEngine(t, g, Options{
		Scheduler:       sched.Deterministic,
		CheckpointEvery: 2,
		CheckpointPath:  ckpt,
	})
	iter, err := resumed.RestoreCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 6 {
		t.Fatalf("resumed at iteration %d, want 6", iter)
	}

	// Delete the file, then run exactly one iteration past the restore
	// point. The first barrier is iteration 6 == startIter: no write may
	// happen there. (Deleting rather than chmod-ing: the tests run as root,
	// where permission bits do not block writes.)
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	resumed.opts.MaxIters = 7
	if _, err := resumed.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("first post-restore barrier rewrote the checkpoint (stat err %v), want no file", err)
	}

	// The run must still checkpoint *new* progress and converge to the
	// reference state once the iteration cap is lifted.
	resumed.opts.MaxIters = DefaultMaxIters
	res, err := resumed.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written for post-restore progress: %v", err)
	}
	for v := range ref.Vertices {
		if resumed.Vertices[v] != ref.Vertices[v] {
			t.Fatalf("vertex %d: resumed %d, reference %d", v, resumed.Vertices[v], ref.Vertices[v])
		}
	}
}
