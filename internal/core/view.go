package core

// VertexView is the update function's window onto its vertex: the
// pull-mode scope of the paper's Algorithm 1 (the vertex's own data plus
// its incident edges), together with the task-generation side effects of
// edge writes. The barrier-based engine (Ctx) and the barrier-free pure
// asynchronous executor (package async) both implement it, so one
// algorithm implementation runs under every execution model.
type VertexView interface {
	// V returns the vertex this update runs on.
	V() uint32
	// Vertex returns the vertex's data word D_v.
	Vertex() uint64
	// SetVertex stores the vertex's data word.
	SetVertex(w uint64)
	// InDegree returns the number of in-edges.
	InDegree() int
	// OutDegree returns the number of out-edges.
	OutDegree() int
	// InNeighbor returns the source of the k-th in-edge.
	InNeighbor(k int) uint32
	// OutNeighbor returns the destination of the k-th out-edge.
	OutNeighbor(k int) uint32
	// InEdgeID returns the canonical edge index of the k-th in-edge.
	InEdgeID(k int) uint32
	// OutEdgeID returns the canonical edge index of the k-th out-edge.
	OutEdgeID(k int) uint32
	// InEdgeVal reads the k-th in-edge's data word.
	InEdgeVal(k int) uint64
	// OutEdgeVal reads the k-th out-edge's data word.
	OutEdgeVal(k int) uint64
	// SetInEdgeVal writes the k-th in-edge's data word and schedules its
	// source (the task-generation rule).
	SetInEdgeVal(k int, w uint64)
	// SetOutEdgeVal writes the k-th out-edge's data word and schedules its
	// destination.
	SetOutEdgeVal(k int, w uint64)
	// ScheduleSelf re-posts the vertex itself.
	ScheduleSelf()
	// Yield cooperatively yields between gather and scatter when the
	// race amplifier is enabled.
	Yield()
}

var _ VertexView = (*Ctx)(nil)
