package core

import (
	"testing"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

// minLabelUpdate is a miniature WCC-style monotone update used throughout
// the engine tests: vertex value = min(own value, incident edge values);
// edges that exceed the minimum are lowered to it.
func minLabelUpdate(ctx VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if v := ctx.InEdgeVal(k); v < min {
			min = v
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if v := ctx.OutEdgeVal(k); v < min {
			min = v
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.InDegree(); k++ {
		if ctx.InEdgeVal(k) > min {
			ctx.SetInEdgeVal(k, min)
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if ctx.OutEdgeVal(k) > min {
			ctx.SetOutEdgeVal(k, min)
		}
	}
}

func initMinLabel(e *Engine) {
	for i := range e.Vertices {
		e.Vertices[i] = uint64(i)
	}
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleAll()
}

func newEngine(t *testing.T, g *graph.Graph, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	g, err := gen.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEngine(g, Options{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeSequential}); err == nil {
		t.Error("parallel + sequential mode accepted")
	}
	// Deterministic forces one thread, so sequential mode is fine.
	e, err := NewEngine(g, Options{Scheduler: sched.Deterministic, Threads: 8, Mode: edgedata.ModeSequential})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options().Threads != 1 {
		t.Fatalf("deterministic threads = %d, want 1", e.Options().Threads)
	}
}

func TestRunNilUpdate(t *testing.T) {
	g, _ := gen.Ring(4)
	e := newEngine(t, g, Options{})
	if _, err := e.Run(nil); err == nil {
		t.Fatal("nil update accepted")
	}
}

func TestRunEmptyFrontierConvergesImmediately(t *testing.T) {
	g, _ := gen.Ring(4)
	e := newEngine(t, g, Options{})
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 || res.Updates != 0 {
		t.Fatalf("empty frontier: %+v", res)
	}
}

func TestMinLabelDeterministicRing(t *testing.T) {
	g, _ := gen.Ring(64)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v, w := range e.Vertices {
		if w != 0 {
			t.Fatalf("vertex %d = %d, want 0 (single ring component)", v, w)
		}
	}
	if res.Updates < int64(g.N()) {
		t.Fatalf("Updates = %d, expected at least |V|", res.Updates)
	}
}

func TestMinLabelAllSchedulersAgree(t *testing.T) {
	g, err := gen.RMAT(300, 1500, gen.DefaultRMAT, 17)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"det", Options{Scheduler: sched.Deterministic}},
		{"sync", Options{Scheduler: sched.Synchronous, Threads: 4, Mode: edgedata.ModeAtomic}},
		{"nondet-atomic", Options{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic}},
		{"nondet-lock", Options{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeLocked}},
		{"chromatic", Options{Scheduler: sched.Chromatic, Threads: 4, Mode: edgedata.ModeAtomic}},
		{"dig", Options{Scheduler: sched.DIG, Threads: 4, Mode: edgedata.ModeAtomic}},
	} {
		e := newEngine(t, g, cfg.opts)
		initMinLabel(e)
		res, err := e.Run(minLabelUpdate)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", cfg.name)
		}
		if want == nil {
			want = append([]uint64(nil), e.Vertices...)
			continue
		}
		for v := range want {
			if e.Vertices[v] != want[v] {
				t.Fatalf("%s: vertex %d = %d, deterministic run had %d",
					cfg.name, v, e.Vertices[v], want[v])
			}
		}
	}
}

func TestTaskGenerationRule(t *testing.T) {
	// Chain 0→1→2: schedule only vertex 0 with a smaller label; each
	// iteration the min propagates exactly one hop, so scheduling follows
	// writes.
	g, _ := gen.Chain(3)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, RecordIters: true})
	for i := range e.Vertices {
		e.Vertices[i] = uint64(i + 10)
	}
	e.Vertices[0] = 1
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleNow(0)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range e.Vertices {
		if e.Vertices[v] != 1 {
			t.Fatalf("vertex %d = %d, want 1", v, e.Vertices[v])
		}
	}
	if res.PerIter[0].Scheduled != 1 {
		t.Fatalf("iteration 0 scheduled %d vertices, want 1 (only the source)", res.PerIter[0].Scheduled)
	}
	// Deterministic GS on an ascending chain propagates the label all the
	// way in the first iteration (0 updates 1's edge, then 1 runs later in
	// the same pass? No: only vertex 0 is in S_0, so hop per iteration).
	if res.Iterations < 3 {
		t.Fatalf("iterations = %d, want >= 3 (one hop per iteration from a single source)", res.Iterations)
	}
}

func TestBSPReadsPreviousIteration(t *testing.T) {
	// Chain of 4; BSP must take one iteration per hop even though
	// Gauss–Seidel det execution would collapse hops of ascending labels.
	g, _ := gen.Chain(4)
	// Deterministic (GS, ascending): vertex 0 writes edge(0,1); f(1) in the
	// same S_0 pass reads the fresh value; whole chain collapses fast.
	det := newEngine(t, g, Options{Scheduler: sched.Deterministic, RecordIters: true})
	initMinLabel(det)
	resDet, err := det.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous: reads see the previous iteration, so the 0-label needs
	// 3 hops to reach vertex 3 — at least 4 iterations.
	syn := newEngine(t, g, Options{Scheduler: sched.Synchronous, Threads: 1, RecordIters: true})
	initMinLabel(syn)
	resSyn, err := syn.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !resDet.Converged || !resSyn.Converged {
		t.Fatal("runs did not converge")
	}
	for v := range det.Vertices {
		if det.Vertices[v] != 0 || syn.Vertices[v] != 0 {
			t.Fatalf("vertex %d: det=%d sync=%d, want 0", v, det.Vertices[v], syn.Vertices[v])
		}
	}
	if resSyn.Iterations <= resDet.Iterations {
		t.Fatalf("BSP iterations (%d) should exceed Gauss–Seidel iterations (%d) on an ascending chain",
			resSyn.Iterations, resDet.Iterations)
	}
}

func TestMaxItersCap(t *testing.T) {
	g, _ := gen.Ring(8)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, MaxIters: 1})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("capped run reported convergence")
	}
	if res.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1", res.Iterations)
	}
}

func TestCensusClassifiesWCCStyleAsWW(t *testing.T) {
	// Two vertices joined by one edge, both scheduled, both writing the
	// edge: the census must see a write-write conflict edge.
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.Options{NumVertices: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Labels chosen so that under ascending-label order f(0) first writes
	// its own label to the edge and f(1), holding the smaller label, then
	// overwrites it in the same iteration — a genuine WW conflict.
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, EnableCensus: true, RecordIters: true})
	e.Vertices[0], e.Vertices[1] = 5, 3
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleAll()
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if res.WWConflicts == 0 {
		t.Fatalf("expected write-write conflicts, got %+v", res)
	}
}

func TestCensusClassifiesGatherScatterAsRW(t *testing.T) {
	// PageRank-style access: read in-edges, write out-edges, never touch
	// the other side. On edge (0→1) with both scheduled: f(0) writes from
	// src side, f(1) reads from dst side → RW conflict, no WW.
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.Options{NumVertices: 2})
	if err != nil {
		t.Fatal(err)
	}
	update := func(ctx VertexView) {
		var sum uint64
		for k := 0; k < ctx.InDegree(); k++ {
			sum += ctx.InEdgeVal(k)
		}
		old := ctx.Vertex()
		ctx.SetVertex(sum)
		if old != sum {
			for k := 0; k < ctx.OutDegree(); k++ {
				ctx.SetOutEdgeVal(k, sum+1)
			}
		}
	}
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, EnableCensus: true})
	e.Frontier().ScheduleAll()
	e.Vertices[0] = 9 // force a first write
	res, err := e.Run(update)
	if err != nil {
		t.Fatal(err)
	}
	if res.RWConflicts == 0 {
		t.Fatalf("expected read-write conflicts, got %+v", res)
	}
	if res.WWConflicts != 0 {
		t.Fatalf("gather-scatter pattern produced WW conflicts: %+v", res)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	g, _ := gen.Ring(32)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(e)
	res1, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Frontier().Size() != 0 {
		t.Fatal("Reset left scheduled vertices")
	}
	initMinLabel(e)
	res2, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Iterations != res2.Iterations || res1.Updates != res2.Updates {
		t.Fatalf("deterministic reruns differ: %+v vs %+v", res1, res2)
	}
}

func TestAmplifyStillConverges(t *testing.T) {
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Options{
		Scheduler: sched.Nondeterministic, Threads: 4,
		Mode: edgedata.ModeAtomic, Amplify: true,
	})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("amplified nondeterministic run did not converge")
	}
	// Compare against deterministic ground truth.
	d := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(d)
	if _, err := d.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	for v := range d.Vertices {
		if d.Vertices[v] != e.Vertices[v] {
			t.Fatalf("vertex %d: nondet %d vs det %d", v, e.Vertices[v], d.Vertices[v])
		}
	}
}

func TestChromaticColorCount(t *testing.T) {
	g, _ := gen.Ring(16)
	e := newEngine(t, g, Options{Scheduler: sched.Chromatic, Threads: 2, Mode: edgedata.ModeAtomic})
	initMinLabel(e)
	if _, err := e.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	if e.NumColors() < 2 {
		t.Fatalf("NumColors = %d after chromatic run", e.NumColors())
	}
}

func TestPerIterStats(t *testing.T) {
	g, _ := gen.Chain(5)
	e := newEngine(t, g, Options{Scheduler: sched.Deterministic, RecordIters: true})
	initMinLabel(e)
	res, err := e.Run(minLabelUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIter) != res.Iterations {
		t.Fatalf("PerIter has %d entries for %d iterations", len(res.PerIter), res.Iterations)
	}
	if res.PerIter[0].Scheduled != 5 {
		t.Fatalf("iteration 0 scheduled %d, want 5", res.PerIter[0].Scheduled)
	}
}

func BenchmarkEngineMinLabelDet(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(g, Options{Scheduler: sched.Deterministic})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for j := range e.Vertices {
			e.Vertices[j] = uint64(j)
		}
		e.Edges.Fill(^uint64(0))
		e.Frontier().ScheduleAll()
		if _, err := e.Run(minLabelUpdate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineMinLabelNondet4(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(g, Options{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAligned})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for j := range e.Vertices {
			e.Vertices[j] = uint64(j)
		}
		e.Edges.Fill(^uint64(0))
		e.Frontier().ScheduleAll()
		if _, err := e.Run(minLabelUpdate); err != nil {
			b.Fatal(err)
		}
	}
}

// The DIG scheduler is deterministic: parallel runs produce identical
// results and identical iteration counts, and those results match the
// sequential deterministic scheduler's.
func TestDIGSchedulerDeterministicParallel(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 163)
	if err != nil {
		t.Fatal(err)
	}
	det := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initMinLabel(det)
	if _, err := det.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	var firstIters int
	for run := 0; run < 3; run++ {
		e := newEngine(t, g, Options{Scheduler: sched.DIG, Threads: 4, Mode: edgedata.ModeAtomic})
		initMinLabel(e)
		res, err := e.Run(minLabelUpdate)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("DIG run did not converge")
		}
		if run == 0 {
			firstIters = res.Iterations
		} else if res.Iterations != firstIters {
			t.Fatalf("DIG iteration counts differ across runs: %d vs %d", res.Iterations, firstIters)
		}
		for v := range det.Vertices {
			if e.Vertices[v] != det.Vertices[v] {
				t.Fatalf("run %d: vertex %d = %d, det %d", run, v, e.Vertices[v], det.Vertices[v])
			}
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Iterations: 3, Updates: 10, Converged: true}
	if s := r.String(); s == "" || s[:9] != "converged" {
		t.Fatalf("String = %q", s)
	}
	r.Converged = false
	r.RWConflicts = 5
	s := r.String()
	if s[:3] != "NOT" {
		t.Fatalf("String = %q", s)
	}
	if want := "5 RW"; !containsStr(s, want) {
		t.Fatalf("String = %q missing %q", s, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
