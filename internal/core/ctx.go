package core

import (
	"runtime"

	"ndgraph/internal/edgedata"
)

// Ctx is the update-function view of one vertex: the vertex's own data
// word plus read/write access to the data words of its incident edges —
// exactly the pull-mode scope of the paper's Algorithm 1. One Ctx exists
// per worker and is re-bound to each vertex the worker processes; update
// functions must not retain it across calls.
//
// The Set*EdgeVal methods implement the system model's task-generation
// rule: writing an incident edge posts the opposite endpoint into the next
// iteration's scheduled set.
type Ctx struct {
	eng *Engine
	v   uint32
	// worker is the owning worker's index, used to shard staleness
	// observations when a delay clock is attached.
	worker int

	inSrc  []uint32 // sources of in-edges
	inIdx  []uint32 // canonical indices of in-edges
	outDst []uint32 // destinations of out-edges
	outLo  uint32   // canonical index of first out-edge

	// recordOnly marks a PotentialCensus replay context: reads come from
	// the engine's pre-iteration snapshot, every access is recorded to the
	// census, and all effects (vertex writes, edge writes, scheduling) are
	// discarded. scratchVertex absorbs SetVertex so the replayed update
	// still sees its own intra-update vertex writes.
	recordOnly    bool
	scratchVertex uint64

	// writes counts edge writes performed since the last bind, for the
	// execution-path trace.
	writes int

	// traceIdx is the capture index of the running update in the trace
	// recorder (-1 when tracing is off or the event was dropped); it tags
	// recorded edge commits with their owning update.
	traceIdx int64

	// sumReads / sumWrites accumulate edge accesses across binds. They are
	// worker-private (no synchronization) and drained by the engine at the
	// iteration barrier when an observer is attached; the unconditional
	// increment is one predictable instruction, cheaper than a branch.
	sumReads, sumWrites int64
}

// bind points the Ctx at vertex v.
func (c *Ctx) bind(v uint32) {
	g := c.eng.g
	c.v = v
	c.inSrc = g.InNeighbors(v)
	c.inIdx = g.InEdgeIndices(v)
	c.outDst = g.OutNeighbors(v)
	c.outLo, _ = g.OutEdgeIndex(v)
	c.writes = 0
	if c.recordOnly {
		c.scratchVertex = c.eng.Vertices[v]
	}
}

// V returns the vertex this update is running on.
func (c *Ctx) V() uint32 { return c.v }

// Vertex returns the vertex's data word D_v.
func (c *Ctx) Vertex() uint64 {
	if c.recordOnly {
		return c.scratchVertex
	}
	return c.eng.Vertices[c.v]
}

// SetVertex stores the vertex's data word. Only f(v) may write slot v, so
// this needs no synchronization.
func (c *Ctx) SetVertex(w uint64) {
	if c.recordOnly {
		c.scratchVertex = w
		return
	}
	c.eng.Vertices[c.v] = w
}

// InDegree returns the number of in-edges of the vertex.
func (c *Ctx) InDegree() int { return len(c.inSrc) }

// OutDegree returns the number of out-edges of the vertex.
func (c *Ctx) OutDegree() int { return len(c.outDst) }

// InNeighbor returns the source of the k-th in-edge.
func (c *Ctx) InNeighbor(k int) uint32 { return c.inSrc[k] }

// OutNeighbor returns the destination of the k-th out-edge.
func (c *Ctx) OutNeighbor(k int) uint32 { return c.outDst[k] }

// InEdgeID returns the canonical edge index of the k-th in-edge, usable
// against immutable side arrays (e.g. SSSP weights).
func (c *Ctx) InEdgeID(k int) uint32 { return c.inIdx[k] }

// OutEdgeID returns the canonical edge index of the k-th out-edge.
func (c *Ctx) OutEdgeID(k int) uint32 { return c.outLo + uint32(k) }

// load reads an edge word, honoring replay and BSP shadow reads.
func (c *Ctx) load(e uint32) uint64 {
	if c.recordOnly {
		return c.eng.probeShadow[e]
	}
	if shadow := c.eng.bspShadow; shadow != nil {
		return shadow[e]
	}
	return c.eng.Edges.Load(e)
}

// recording reports whether this context should feed the census: when the
// engine runs a potential census, only the replay context records; when it
// runs an observed census, only the real context does. Self-loop accesses
// never record — both "endpoints" of edge (v,v) are the same update, so no
// cross-update conflict is possible there (neighbor is the other endpoint
// of the edge being touched).
func (c *Ctx) recording(neighbor uint32) bool {
	if c.eng.census == nil || neighbor == c.v {
		return false
	}
	return c.recordOnly == c.eng.opts.PotentialCensus
}

// InEdgeVal reads the data word of the k-th in-edge (a gather access from
// the destination side).
func (c *Ctx) InEdgeVal(k int) uint64 {
	e := c.inIdx[k]
	c.sumReads++
	if c.recording(c.inSrc[k]) {
		c.eng.census.RecordRead(e, edgedata.SideDst)
	}
	if cl := c.eng.clock; cl != nil && !c.recordOnly {
		cl.ObserveRead(c.worker, e)
	}
	return c.load(e)
}

// OutEdgeVal reads the data word of the k-th out-edge (a source-side
// read, used by algorithms that inspect before scattering).
func (c *Ctx) OutEdgeVal(k int) uint64 {
	e := c.outLo + uint32(k)
	c.sumReads++
	if c.recording(c.outDst[k]) {
		c.eng.census.RecordRead(e, edgedata.SideSrc)
	}
	if cl := c.eng.clock; cl != nil && !c.recordOnly {
		cl.ObserveRead(c.worker, e)
	}
	return c.load(e)
}

// SetInEdgeVal writes the data word of the k-th in-edge and schedules its
// source for the next iteration (task-generation rule).
func (c *Ctx) SetInEdgeVal(k int, w uint64) {
	e := c.inIdx[k]
	if c.recording(c.inSrc[k]) {
		c.eng.census.RecordWrite(e, edgedata.SideDst)
	}
	if c.recordOnly {
		return
	}
	c.yield()
	c.writes++
	c.sumWrites++
	if obs := c.eng.opts.OnEdgeWrite; obs != nil {
		obs(e, c.eng.Edges.Load(e), w)
	}
	if c.eng.traceCommits {
		c.eng.commitStore(c.traceIdx, e, w)
	} else {
		c.eng.Edges.Store(e, w)
	}
	if cl := c.eng.clock; cl != nil {
		cl.Stamp(e)
	}
	c.eng.front.Schedule(int(c.inSrc[k]))
}

// SetOutEdgeVal writes the data word of the k-th out-edge and schedules
// its destination for the next iteration (task-generation rule).
func (c *Ctx) SetOutEdgeVal(k int, w uint64) {
	e := c.outLo + uint32(k)
	if c.recording(c.outDst[k]) {
		c.eng.census.RecordWrite(e, edgedata.SideSrc)
	}
	if c.recordOnly {
		return
	}
	c.yield()
	c.writes++
	c.sumWrites++
	if obs := c.eng.opts.OnEdgeWrite; obs != nil {
		obs(e, c.eng.Edges.Load(e), w)
	}
	if c.eng.traceCommits {
		c.eng.commitStore(c.traceIdx, e, w)
	} else {
		c.eng.Edges.Store(e, w)
	}
	if cl := c.eng.clock; cl != nil {
		cl.Stamp(e)
	}
	c.eng.front.Schedule(int(c.outDst[k]))
}

// ScheduleSelf re-posts the vertex itself for the next iteration, for
// algorithms whose local work is not finished (rarely needed in pull
// mode; provided for completeness).
func (c *Ctx) ScheduleSelf() {
	if c.recordOnly {
		return
	}
	c.eng.front.Schedule(int(c.v))
}

// Yield cooperatively yields the processor between an update's gather and
// scatter phases when Amplify is on, widening the windows in which
// conflicting updates interleave. Algorithms may call it at their
// gather/scatter boundary; the Set*EdgeVal methods also call it before
// every write.
func (c *Ctx) Yield() { c.yield() }

func (c *Ctx) yield() {
	if c.eng.opts.Amplify && !c.recordOnly {
		runtime.Gosched()
	}
}
