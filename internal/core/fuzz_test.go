package core

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

// fuzzCkptGraph returns the fixed graph every checkpoint fuzz input is
// restored against. It must be deterministic: the seed corpus contains
// checkpoints saved for exactly this graph, and the header check
// (n, m vs the engine's graph) is part of the surface under test.
func fuzzCkptGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	g, err := gen.RMAT(48, 200, gen.DefaultRMAT, 23)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// fuzzCkptUpdate is a monotone min-label update that keeps every vertex
// scheduled, so checkpoints taken mid-run always carry a non-empty
// frontier and a resumed Run exercises the full dispatch path.
func fuzzCkptUpdate(ctx VertexView) {
	w := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if v := ctx.InEdgeVal(k); v < w {
			w = v
		}
	}
	ctx.SetVertex(w)
	for k := 0; k < ctx.OutDegree(); k++ {
		if w < ctx.OutEdgeVal(k) {
			ctx.SetOutEdgeVal(k, w)
		}
	}
	ctx.ScheduleSelf()
}

// validCheckpointBytes runs the engine long enough to write one real
// checkpoint and returns the file's bytes — the structural seed the fuzzer
// mutates from.
func validCheckpointBytes(tb testing.TB, g *graph.Graph) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.ndck")
	e, err := NewEngine(g, Options{Scheduler: sched.Deterministic, CheckpointEvery: 1, CheckpointPath: path, MaxIters: 3})
	if err != nil {
		tb.Fatal(err)
	}
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleAll()
	if _, err := e.Run(fuzzCkptUpdate); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCheckpointRestore feeds arbitrary bytes to RestoreCheckpoint: the
// contract is error-or-success, never a panic — including inputs whose
// CRC32 is valid over corrupt contents (e.g. out-of-range frontier
// members) — and any accepted state must support a bounded Run.
func FuzzCheckpointRestore(f *testing.F) {
	g := fuzzCkptGraph(f)
	valid := validCheckpointBytes(f, g)
	f.Add(valid)
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0xff
	f.Add(crcFlip) // corrupted CRC trailer: must error
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:6*8+4]) // header + trailer only, no body
	f.Add([]byte("NDCKnot-a-checkpoint"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ndck")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, Options{Scheduler: sched.Deterministic})
		if err != nil {
			t.Fatal(err)
		}
		iter, err := e.RestoreCheckpoint(path)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		if iter < 0 {
			t.Fatalf("restored negative iteration %d", iter)
		}
		// Whatever state was accepted must be consistent enough to run a
		// couple of iterations (MaxIters is an absolute cap, so this
		// executes at most 2 regardless of the restored counter).
		e.opts.MaxIters = iter + 2
		if _, err := e.Run(fuzzCkptUpdate); err != nil {
			t.Fatalf("run after accepted restore: %v", err)
		}
	})
}

// TestRestoreCheckpointRejectsOutOfRangeFrontier pins the exact hazard the
// fuzz target guards: a checkpoint whose CRC is internally consistent but
// whose frontier names a vertex the graph does not have must be rejected
// (it previously panicked inside the frontier bitset).
func TestRestoreCheckpointRejectsOutOfRangeFrontier(t *testing.T) {
	g := fuzzCkptGraph(t)
	data := validCheckpointBytes(t, g)
	// Layout: 6×uint64 header, n vertex words, m edge words, uint64
	// member count, count×uint32 members, uint32 CRC.
	countOff := 6*8 + g.N()*8 + g.M()*8
	if count := binary.LittleEndian.Uint64(data[countOff:]); count == 0 {
		t.Fatal("seed checkpoint has empty frontier; cannot exercise member bounds")
	}
	bad := append([]byte(nil), data...)
	// Overwrite the first member with an out-of-range ID and re-stamp the
	// CRC so only the member bounds check can reject it.
	binary.LittleEndian.PutUint32(bad[countOff+8:], uint32(g.N()))
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
	path := filepath.Join(t.TempDir(), "bad.ndck")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RestoreCheckpoint(path); err == nil {
		t.Fatal("out-of-range frontier member restored successfully")
	}
}
