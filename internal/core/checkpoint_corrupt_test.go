package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ndgraph/internal/sched"
)

// A crash mid-checkpoint-write leaves a prefix of the file on disk (the
// atomic rename normally prevents this, but a torn copy can still arrive
// through an interrupted transfer or a bad disk). Restore must classify
// every truncation point as ErrCorrupt — never panic, never load garbage —
// so a supervisor can distinguish "fall back to the previous generation"
// from "this checkpoint belongs to another graph".
func TestRestoreTruncationAlwaysErrCorrupt(t *testing.T) {
	g := ringGraph(t, 24)
	path := writeCheckpointFile(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every interesting prefix length: empty file, mid-header, each section
	// boundary region, and one byte short of complete.
	cuts := []int{0, 1, 7, 8, 47, 48, 49, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(data) {
			continue
		}
		torn := filepath.Join(t.TempDir(), "torn.ndck")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e := newEngine(t, g, Options{})
		_, err := e.RestoreCheckpoint(torn)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d bytes: error %v does not wrap ErrCorrupt", cut, len(data), err)
		}
	}
}

// Bit rot anywhere in the body must surface ErrCorrupt via the checksum.
func TestRestoreBitFlipIsErrCorrupt(t *testing.T) {
	g := ringGraph(t, 24)
	path := writeCheckpointFile(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{8, len(data) / 3, len(data) - 6} {
		flipped := append([]byte(nil), data...)
		flipped[pos] ^= 0x40
		bad := filepath.Join(t.TempDir(), "flip.ndck")
		if err := os.WriteFile(bad, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		e := newEngine(t, g, Options{})
		if _, err := e.RestoreCheckpoint(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}

// Errors that fallback cannot repair must NOT wrap ErrCorrupt: a missing
// file and a structurally valid checkpoint for a different graph both mean
// "no amount of retrying older generations helps".
func TestRestoreNonCorruptErrorsAreNotErrCorrupt(t *testing.T) {
	e := newEngine(t, ringGraph(t, 8), Options{})
	if _, err := e.RestoreCheckpoint(filepath.Join(t.TempDir(), "nope.ndck")); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file: got %v, want a non-ErrCorrupt error", err)
	}
	path := writeCheckpointFile(t, ringGraph(t, 24))
	other := newEngine(t, ringGraph(t, 25), Options{})
	if _, err := other.RestoreCheckpoint(path); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong graph: got %v, want a non-ErrCorrupt error", err)
	}
}

// The recovery discipline the supervisor applies: try the newest
// generation, and on ErrCorrupt fall back to the previous good file. The
// engine must be untouched by the failed attempt — the fallback restore
// then resumes and finishes byte-identically to an uninterrupted run.
func TestRestoreFallsBackToPreviousGoodCheckpoint(t *testing.T) {
	g := chainGraph(t, 40)
	dir := t.TempDir()
	good := filepath.Join(dir, "ckpt.prev")

	// Reference: uninterrupted run.
	ref := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initReversedLabels(ref)
	if _, err := ref.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}

	// Produce a good checkpoint generation.
	ck := newEngine(t, g, Options{Scheduler: sched.Deterministic, CheckpointEvery: 5, CheckpointPath: good})
	initReversedLabels(ck)
	if _, err := ck.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	// The "newest" generation crashed mid-write: a torn prefix of the good
	// one.
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, "ckpt")
	if err := os.WriteFile(newest, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, g, Options{Scheduler: sched.Deterministic})
	initReversedLabels(e)
	_, err = e.RestoreCheckpoint(newest)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn newest generation: got %v, want ErrCorrupt", err)
	}
	if _, err := e.RestoreCheckpoint(good); err != nil {
		t.Fatalf("fallback to previous generation failed: %v", err)
	}
	if _, err := e.Run(minLabelUpdate); err != nil {
		t.Fatal(err)
	}
	for v := range ref.Vertices {
		if e.Vertices[v] != ref.Vertices[v] {
			t.Fatalf("vertex %d = %d after fallback resume, want %d", v, e.Vertices[v], ref.Vertices[v])
		}
	}
}
