// Package core implements the paper's system model (Section II): a
// vertex-centric, coordinated-scheduling graph engine that executes update
// functions over iterations separated by barriers — the "synchronous
// implementation of the asynchronous model".
//
// Per iteration n, the scheduled set S_n (a Frontier) is dispatched over P
// worker goroutines in contiguous label blocks (Fig. 1); each worker runs
// its updates small-label-first; writes to an edge post the opposite
// endpoint into S_{n+1} (the task-generation rule); the engine advances to
// iteration n+1 at the barrier and stops when S_n is empty (convergence) or
// a configured iteration cap is hit.
//
// Update functions follow the pull-mode gather–compute–scatter shape of
// Algorithm 1 in the paper: the scope of f(v) is v itself plus v's
// incident edges; all cross-update communication flows through the
// edge-data words of package edgedata, whose per-operation atomicity is
// the only synchronization nondeterministic execution gets.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/fault"
	"ndgraph/internal/frontier"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// DefaultMaxIters is the iteration cap applied when Options.MaxIters is
// zero, shared by the in-memory and out-of-core engines. It is a runaway
// backstop, not a tuning knob — combine with Options.StallWindow to detect
// divergence long before the cap.
const DefaultMaxIters = 1 << 20

// ErrStalled is returned (wrapped, with diagnostics) when the divergence
// watchdog aborts a run whose active-vertex count stopped improving.
var ErrStalled = errors.New("core: computation stalled (divergence watchdog)")

// UpdateFunc is a vertex update function f(v). It must confine its data
// accesses to the Ctx it receives (vertex value + incident edge words); the
// engine enforces nothing, but anything wider re-introduces the data races
// the paper's model excludes.
type UpdateFunc func(ctx VertexView)

// Options configures an Engine run.
type Options struct {
	// Scheduler selects the execution strategy. Default Deterministic.
	Scheduler sched.Kind
	// Threads is the worker count P for parallel schedulers. Values < 1
	// default to GOMAXPROCS. Deterministic execution always uses 1.
	Threads int
	// Mode selects the atomicity method for the edge-data store. Parallel
	// schedulers refuse ModeSequential.
	Mode edgedata.Mode
	// Dispatch selects the intra-iteration work assignment for parallel
	// schedulers: Static (the paper's Fig. 1 contiguous label blocks,
	// default) or Dynamic (chunked work-stealing-style claims; an
	// ablation of the system model's load-balance assumption).
	Dispatch sched.Dispatch
	// MaxIters caps the iteration count; 0 means DefaultMaxIters.
	// Hitting the cap returns a Result with Converged == false.
	MaxIters int
	// Context, when non-nil, cancels or deadlines the run: it is checked
	// at every iteration barrier and Run returns the partial Result plus
	// the context's error within one iteration of cancellation.
	Context context.Context
	// StallWindow enables the divergence watchdog: if the scheduled-vertex
	// count reaches no new minimum for StallWindow consecutive iterations,
	// the run aborts with ErrStalled and a diagnostic partial Result.
	// 0 disables. Note that legitimately long plateaus (e.g. PageRank
	// keeping all vertices active while residuals shrink) need a window
	// larger than the plateau.
	StallWindow int
	// Inject, when non-nil, arms the fault injector for the duration of
	// the run: edge reads and writes are perturbed per its Plan, every
	// faulted edge's endpoints are rescheduled (the injector's heal rule),
	// and an injected crash aborts the run with fault.ErrCrash at the
	// planned iteration boundary.
	Inject *fault.Injector
	// CheckpointEvery, with CheckpointPath, writes a crash-safe snapshot
	// of the engine state (vertices, edge words, frontier, counters) every
	// N iteration boundaries. A later engine on the same graph can
	// RestoreCheckpoint and Run to completion; with a deterministic
	// scheduler the resumed run's final state is byte-identical to an
	// uninterrupted one. 0 disables.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file location (written atomically:
	// temp file + rename, CRC32-verified on load).
	CheckpointPath string
	// EnableCensus turns on logical conflict classification (read-write vs
	// write-write per Section III). Adds one atomic OR per edge access.
	EnableCensus bool
	// PotentialCensus (implies EnableCensus) classifies *potential*
	// conflicts instead of observed ones: before each real update, the
	// engine replays the update against a frozen pre-iteration snapshot,
	// recording the reads and writes it would perform if it overlapped
	// (∥) every other update of the iteration, and discarding its effects.
	// This is the right notion for eligibility probing — an in-order
	// Gauss–Seidel execution can mask conflicts that a racy overlap would
	// expose (e.g. WCC's conditional edge writes on graphs whose edges all
	// point label-descending).
	PotentialCensus bool
	// Amplify injects scheduling yields between the gather and scatter
	// phases of every update, widening race windows so that conflict and
	// recovery paths are exercised even on machines with few cores.
	Amplify bool
	// RecordIters retains per-iteration statistics in Result.PerIter.
	RecordIters bool
	// Trace, when non-nil, records the execution path (iteration, worker,
	// vertex, write count and committed vertex value per update) into the
	// given recorder. Two deterministic runs record identical paths;
	// nondeterministic runs generally do not — the observable core of the
	// paper's distinction. If the recorder's commit log is enabled
	// (EnableCommits), every edge write additionally goes through a striped
	// lock that makes the physical store and the commit record atomic per
	// edge, so the recorded per-edge order equals the physical commit order
	// and the run becomes replayable with ReplayTrace.
	Trace *trace.Recorder
	// OnEdgeWrite, when non-nil, observes every committed edge write with
	// the edge's canonical index and its old and new words. Intended for
	// deterministic verification passes (e.g. the monotonicity checker);
	// with parallel schedulers the callback must be safe for concurrent
	// use and old values are sampled racily.
	OnEdgeWrite func(edge uint32, old, new uint64)
	// Observer, when non-nil, streams one telemetry event per iteration
	// (scheduled-set size, updates, edge accesses, conflict rates when
	// sampling is on, barrier-wait imbalance, residual) into the
	// observability layer. nil — the default — costs one pointer test per
	// barrier; Observer.SampleConflicts implies EnableCensus.
	Observer *obs.Observer
}

// IterStat records one iteration's activity.
type IterStat struct {
	Scheduled int // |S_n|
	RW, WW    int // conflicts classified this iteration (census only)
}

// Result summarizes a completed run.
type Result struct {
	Iterations  int
	Updates     int64
	Converged   bool
	Duration    time.Duration
	RWConflicts uint64 // cumulative read-write conflict edges (census only)
	WWConflicts uint64 // cumulative write-write conflict edges (census only)
	PerIter     []IterStat
}

// String renders the result compactly for logs and CLI output.
func (r Result) String() string {
	status := "converged"
	if !r.Converged {
		status = "NOT converged"
	}
	s := fmt.Sprintf("%s in %d iterations, %d updates, %v", status, r.Iterations, r.Updates, r.Duration)
	if r.RWConflicts > 0 || r.WWConflicts > 0 {
		s += fmt.Sprintf(" (%d RW / %d WW conflict edges)", r.RWConflicts, r.WWConflicts)
	}
	return s
}

// Engine binds a graph, an edge-data store, a vertex-data array, and a
// frontier into a runnable computation. Create with NewEngine, initialize
// state (Vertices, Edges, InitialFrontier), then call Run.
type Engine struct {
	g    *graph.Graph
	opts Options

	// Edges holds one mutable 64-bit word per edge (canonical index).
	Edges edgedata.Store
	// Vertices holds one 64-bit word per vertex. Only f(v) writes slot v
	// and no other update reads it, so the array needs no synchronization.
	Vertices []uint64

	front  *frontier.Frontier
	census *edgedata.Census

	// bspShadow, when non-nil (Synchronous scheduler), holds the previous
	// iteration's edge words; reads are served from it so that writes of
	// the current iteration stay invisible until the barrier.
	bspShadow []uint64

	// probeShadow holds the pre-iteration edge words for PotentialCensus
	// replay reads.
	probeShadow []uint64

	// traceCommits is set for the duration of a Run whose recorder has the
	// commit log enabled; edge writes then go through commitStore, which
	// serializes the physical store and the commit record per edge stripe.
	traceCommits bool
	// traceLocks are the commit-order stripes (allocated on first traced
	// run with commits enabled).
	traceLocks []sync.Mutex
	// traceShadow is the edge snapshot buffer reused for the end-of-run
	// state digest.
	traceShadow []uint64

	// chromatic coloring, computed lazily on first chromatic run.
	colors    []uint32
	numColors int

	// curIter is the iteration currently dispatching (for tracing).
	curIter int

	// startIter / startUpdates hold the resume point installed by
	// RestoreCheckpoint; zero for a fresh run.
	startIter    int
	startUpdates int64

	// panicked records the first UpdateFunc panic of the run; workers
	// recover instead of crashing the process and Run surfaces it as an
	// error at the next barrier.
	panicked atomic.Pointer[updatePanic]

	workers       []Ctx
	shadowWorkers []Ctx // record-only replicas for PotentialCensus replay
	updates       atomic.Int64

	// pool holds the persistent workers that every parallel dispatch of
	// this engine reuses — across iterations and across color classes —
	// instead of spawning fresh goroutines per barrier.
	pool *sched.Pool

	// runFn is the per-item dispatch function (a bound runOne), created
	// once so the per-iteration hot path passes a preexisting func value
	// to the pool instead of allocating a closure every barrier.
	runFn func(worker, item int)

	// curUpdate is the UpdateFunc of the run in progress, read by runFn.
	curUpdate UpdateFunc

	// clock measures read staleness in iterations when an Observer is
	// attached (nil otherwise; the hot-path hooks cost one pointer test).
	// The epoch advances once per iteration barrier, so a barrier engine's
	// histogram concentrates at ≤ 1 epoch — the deterministic baseline the
	// barrier-free executors' spread is compared against.
	clock *obs.DelayClock
}

// updatePanic captures a recovered UpdateFunc panic.
type updatePanic struct {
	vertex uint32
	value  any
	stack  []byte
}

// NewEngine validates opts and builds an engine for g.
func NewEngine(g *graph.Graph, opts Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opts.Threads < 1 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Scheduler == sched.Deterministic {
		opts.Threads = 1
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = DefaultMaxIters
	}
	parallel := opts.Threads > 1 && opts.Scheduler != sched.Deterministic
	if parallel && opts.Mode == edgedata.ModeSequential {
		return nil, fmt.Errorf("core: %v scheduler with %d threads requires a concurrent edge-data mode, not %v",
			opts.Scheduler, opts.Threads, opts.Mode)
	}
	e := &Engine{
		g:        g,
		opts:     opts,
		Edges:    edgedata.New(opts.Mode, g.M()),
		Vertices: make([]uint64, g.N()),
		front:    frontier.NewFrontier(g.N()),
	}
	if opts.Inject != nil {
		// The injector sits between the engine and the raw store; it stays
		// disarmed (transparent) until Run, so Setup is never perturbed.
		e.Edges = opts.Inject.Wrap(e.Edges)
	}
	if opts.PotentialCensus || opts.Observer.SampleConflicts() {
		e.opts.EnableCensus = true
	}
	if e.opts.EnableCensus {
		e.census = edgedata.NewCensus(g.M())
	}
	if opts.Observer != nil {
		// One epoch per iteration barrier; one stamp slot per edge word.
		e.clock = obs.NewDelayClock(e.opts.Threads, int(g.M()))
		opts.Observer.SetDelaySource(obs.EngineCore, e.clock.Hist)
	}
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Options returns the engine's effective options (after defaulting).
func (e *Engine) Options() Options { return e.opts }

// Frontier exposes the scheduled-vertex set for initialization: call
// ScheduleAll for algorithms that start everywhere (PageRank, WCC) or
// ScheduleNow(source) for traversals.
func (e *Engine) Frontier() *frontier.Frontier { return e.front }

// Reset clears vertex data, edge data, the frontier, and census state so
// the engine can run again from scratch on the same graph.
func (e *Engine) Reset() {
	for i := range e.Vertices {
		e.Vertices[i] = 0
	}
	e.Edges.Fill(0)
	e.front = frontier.NewFrontier(e.g.N())
	if e.census != nil {
		e.census.Reset()
	}
	e.updates.Store(0)
	e.startIter = 0
	e.startUpdates = 0
	e.panicked.Store(nil)
}

// Run executes update to convergence under the configured scheduler and
// returns run statistics. The frontier must have been initialized
// (ScheduleAll or ScheduleNow); Run returns immediately with a converged
// empty Result if nothing is scheduled.
func (e *Engine) Run(update UpdateFunc) (Result, error) {
	if update == nil {
		return Result{}, fmt.Errorf("core: nil update function")
	}
	if e.opts.Scheduler == sched.Chromatic && e.colors == nil {
		e.colors, e.numColors = sched.Colors(e.g)
	}
	e.ensureWorkers()
	e.curUpdate = update
	e.updates.Store(e.startUpdates)
	e.panicked.Store(nil)
	e.traceCommits = e.opts.Trace != nil && e.opts.Trace.CommitsEnabled()
	if e.traceCommits && e.traceLocks == nil {
		e.traceLocks = make([]sync.Mutex, traceStripes)
	}
	if inj := e.opts.Inject; inj != nil {
		// Heal rule: every faulted edge reschedules both endpoints — the
		// task generation the phantom racing competitor would have applied
		// — giving monotone algorithms their Theorem 2 retry path.
		inj.Arm(func(edge uint32) {
			src, dst := e.g.EdgeEndpoints(edge)
			e.front.Schedule(int(src))
			e.front.Schedule(int(dst))
		})
		defer inj.Disarm()
	}

	e.clock.Reset()
	e.opts.Observer.SetPhase("core: running")
	res := Result{Converged: true, Iterations: e.startIter}
	bestActive := e.g.N() + 1
	stalled := 0
	start := time.Now()
	finish := func() {
		res.Duration = time.Since(start)
		res.Updates = e.updates.Load()
		if e.census != nil {
			res.RWConflicts, res.WWConflicts = e.census.Totals()
		}
		if t := e.opts.Trace; t != nil {
			// Install the final-state digest so a replay of this trace can
			// assert it reaches the byte-identical fixed point.
			t.SetDigest(e.stateDigest())
		}
	}
	for e.front.Size() > 0 {
		if ctx := e.opts.Context; ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Converged = false
				finish()
				return res, err
			}
		}
		if res.Iterations >= e.opts.MaxIters {
			res.Converged = false
			break
		}
		if inj := e.opts.Inject; inj != nil && inj.CrashNow(res.Iterations) {
			res.Converged = false
			finish()
			return res, fmt.Errorf("core: iteration %d: %w", res.Iterations, fault.ErrCrash)
		}
		// Checkpoint at multiples of CheckpointEvery, but never at
		// iteration 0 (a snapshot of initial state is useless) and never at
		// the restore point itself — res.Iterations % CheckpointEvery == 0
		// holds there by construction, and rewriting the checkpoint that
		// was just loaded would only burn I/O.
		if e.opts.CheckpointEvery > 0 && e.opts.CheckpointPath != "" &&
			res.Iterations > 0 && res.Iterations != e.startIter &&
			res.Iterations%e.opts.CheckpointEvery == 0 {
			if err := e.saveCheckpoint(e.opts.CheckpointPath, res.Iterations, e.updates.Load()); err != nil {
				res.Converged = false
				finish()
				return res, fmt.Errorf("core: checkpoint at iteration %d: %w", res.Iterations, err)
			}
		}
		if k := e.opts.StallWindow; k > 0 {
			if size := e.front.Size(); size < bestActive {
				bestActive, stalled = size, 0
			} else if stalled++; stalled >= k {
				res.Converged = false
				finish()
				return res, fmt.Errorf("core: iteration %d: active vertices %d (best %d) unimproved for %d iterations: %w",
					res.Iterations, e.front.Size(), bestActive, k, ErrStalled)
			}
		}
		if e.opts.Scheduler == sched.Synchronous {
			e.bspShadow = e.Edges.SnapshotInto(e.bspShadow)
		}
		if e.opts.PotentialCensus {
			e.probeShadow = e.Edges.SnapshotInto(e.probeShadow)
		}
		e.curIter = res.Iterations
		members := e.front.Members()
		e.dispatch(members)
		if p := e.panicked.Load(); p != nil {
			res.Converged = false
			finish()
			return res, fmt.Errorf("core: update function panicked on vertex %d: %v\n%s", p.vertex, p.value, p.stack)
		}

		stat := IterStat{Scheduled: len(members)}
		if e.census != nil {
			stat.RW, stat.WW = e.census.Tally()
		}
		if e.opts.RecordIters {
			res.PerIter = append(res.PerIter, stat)
		}
		if o := e.opts.Observer; o != nil {
			e.emitIter(o, res.Iterations, stat)
		}
		res.Iterations++
		e.front.Advance()
		// Advance the delay clock with the barrier: during iteration n the
		// epoch equals n, so a read of a value written last iteration
		// measures exactly one epoch of staleness.
		e.clock.Advance()
	}
	finish()
	if o := e.opts.Observer; o != nil {
		if res.Converged {
			o.SetPhase("core: converged")
		} else {
			o.SetPhase("core: stopped")
		}
	}
	return res, nil
}

func (e *Engine) ensureWorkers() {
	if e.pool == nil {
		e.pool = sched.NewPoolNamed(e.opts.Threads, "core")
		e.pool.SetTimed(e.opts.Observer.Enabled())
	}
	if e.runFn == nil {
		e.runFn = e.runOne
	}
	if len(e.workers) == e.opts.Threads {
		return
	}
	e.workers = make([]Ctx, e.opts.Threads)
	for i := range e.workers {
		e.workers[i].eng = e
		e.workers[i].worker = i
	}
	if e.opts.PotentialCensus {
		e.shadowWorkers = make([]Ctx, e.opts.Threads)
		for i := range e.shadowWorkers {
			e.shadowWorkers[i].eng = e
			e.shadowWorkers[i].worker = i
			e.shadowWorkers[i].recordOnly = true
		}
	}
}

// Close releases the engine's persistent worker pool. The engine stays
// usable — the next Run re-creates the pool — but Close makes the release
// deterministic instead of waiting for the pool's finalizer.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// emitIter assembles and emits one iteration's telemetry event. It runs at
// the barrier, after dispatch and the census tally, so the per-worker
// access counters and pool timing accumulators are quiescent.
func (e *Engine) emitIter(o *obs.Observer, iter int, stat IterStat) {
	var reads, writes int64
	for i := range e.workers {
		c := &e.workers[i]
		reads += c.sumReads
		writes += c.sumWrites
		c.sumReads, c.sumWrites = 0, 0
	}
	rw, ww := int64(-1), int64(-1)
	if e.census != nil {
		rw, ww = int64(stat.RW), int64(stat.WW)
	}
	var tCommits, tContested int64
	if t := e.opts.Trace; t != nil && t.CommitsEnabled() {
		tCommits, tContested = t.TakeIterCommitStats()
	}
	wall, wait := e.pool.TakeBarrierStats()
	var p50, p99, dmax int64
	if cl := e.clock; cl != nil {
		h := cl.Hist()
		p50, p99, dmax = h.Quantile(0.50), h.Quantile(0.99), h.Max()
	}
	o.Emit(obs.Event{
		Engine:           obs.EngineCore,
		Iter:             int64(iter),
		Scheduled:        int64(stat.Scheduled),
		Updates:          int64(stat.Scheduled),
		EdgeReads:        reads,
		EdgeWrites:       writes,
		RWConflicts:      rw,
		WWConflicts:      ww,
		TraceCommits:     tCommits,
		ContestedCommits: tContested,
		Residual:         float64(stat.Scheduled) / float64(e.g.N()),
		BarrierWaitNanos: int64(wait),
		DurationNanos:    int64(wall),
		DelayP50:         p50,
		DelayP99:         p99,
		DelayMax:         dmax,
	})
}

// runOne executes the current run's update function on vertex v as worker
// `worker`. It is dispatched through the prebound e.runFn so the per-
// iteration hot path performs no closure allocation.
func (e *Engine) runOne(worker, v int) {
	if e.panicked.Load() != nil {
		return // a sibling update panicked; drain the iteration fast
	}
	defer func() {
		if r := recover(); r != nil {
			e.panicked.CompareAndSwap(nil, &updatePanic{vertex: uint32(v), value: r, stack: debug.Stack()})
		}
	}()
	if e.opts.PotentialCensus {
		sc := &e.shadowWorkers[worker]
		sc.bind(uint32(v))
		e.curUpdate(sc)
	}
	ctx := &e.workers[worker]
	ctx.bind(uint32(v))
	if t := e.opts.Trace; t != nil {
		// Reserve the capture slot before the update runs so its edge
		// commits can name their owning update; complete it afterwards
		// with the write count and the committed vertex value.
		ctx.traceIdx = t.Begin(e.curIter, worker, uint32(v))
		e.curUpdate(ctx)
		t.Finish(ctx.traceIdx, ctx.writes, e.Vertices[v])
		return
	}
	e.curUpdate(ctx)
}

// dispatch runs one iteration's scheduled updates under the configured
// strategy. members is ascending; blocks inherit that order, satisfying
// the small-label-first rule.
func (e *Engine) dispatch(members []int) {
	switch e.opts.Scheduler {
	case sched.Deterministic:
		sched.Sequential(members, e.runFn)
	case sched.Nondeterministic, sched.Synchronous:
		e.parallel(members)
	case sched.Chromatic:
		for _, class := range sched.ColorClasses(members, e.colors, e.numColors) {
			if len(class) > 0 {
				e.parallel(class)
			}
		}
	case sched.DIG:
		for _, round := range sched.DIGRounds(e.g, members) {
			e.parallel(round)
		}
	default:
		panic(fmt.Sprintf("core: unknown scheduler %v", e.opts.Scheduler))
	}
	e.updates.Add(int64(len(members)))
}

// parallel dispatches one iteration's members over the persistent pool
// under the configured intra-iteration policy.
func (e *Engine) parallel(members []int) {
	if e.opts.Dispatch == sched.Dynamic {
		e.pool.RunChunks(members, sched.DefaultChunk, e.runFn)
		return
	}
	e.pool.RunBlocks(members, e.runFn)
}

// NumColors reports the chromatic scheduler's color count (0 before the
// first chromatic run).
func (e *Engine) NumColors() int { return e.numColors }
