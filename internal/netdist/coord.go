package netdist

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"ndgraph/internal/obs"
)

// Options configures a distributed run.
type Options struct {
	// Workers is the number of worker processes (default 2).
	Workers int
	// Graph and Algo describe the job; both cross the wire as specs.
	Graph GraphSpec
	Algo  AlgoSpec
	// Launcher starts and stops worker processes. Default: LocalLauncher
	// (in-process goroutine workers on loopback TCP).
	Launcher Launcher
	// Proxy, when set, routes every worker↔worker data link through the
	// fault proxy; coordinator control connections stay direct.
	Proxy *Proxy
	// Dir is the checkpoint root (one subdirectory per worker). Empty
	// uses a temp dir removed after the run.
	Dir string
	// ByEdges partitions by incident-edge balance instead of vertex count.
	ByEdges bool
	// RTO is the base retransmission timeout (default 200ms).
	RTO time.Duration
	// Heartbeat is the worker heartbeat interval (default 100ms);
	// HeartbeatMiss consecutive missed intervals declare a worker dead
	// (default 5).
	Heartbeat     time.Duration
	HeartbeatMiss int
	// CkptOps checkpoints a worker every N adopted updates (default 2048).
	CkptOps int
	// MaxRestarts bounds supervised restarts before the run fails
	// (default 8).
	MaxRestarts int
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
	// Observer receives an EngineNetdist summary event plus live
	// per-worker stats and readiness sources. May be nil.
	Observer *obs.Observer
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.RTO <= 0 {
		o.RTO = defaultRTO
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = defaultHB
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 5
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
}

// Result is a completed distributed run.
type Result struct {
	// Values holds the converged per-vertex values: raw labels for WCC,
	// Float64bits distances for BFS/SSSP, Float64bits ranks for PageRank.
	Values []uint64
	// Restarts counts supervised worker restarts; Repairs counts boundary
	// repair messages broadcast after them.
	Restarts int
	Repairs  int
	// Sweeps counts quiescence probe sweeps until termination.
	Sweeps   int
	Duration time.Duration
}

// Floats decodes Values as float64 (BFS/SSSP distances, PageRank ranks).
func (r *Result) Floats() []float64 {
	out := make([]float64, len(r.Values))
	for i, w := range r.Values {
		out[i] = math.Float64frombits(w)
	}
	return out
}

// Labels decodes Values as uint32 component labels (WCC).
func (r *Result) Labels() []uint32 {
	out := make([]uint32, len(r.Values))
	for i, w := range r.Values {
		out[i] = uint32(w)
	}
	return out
}

// coordWorker is the coordinator's view of one worker. gen increments on
// every (re)connect so events from a dead incarnation's reader goroutine
// can be discarded instead of re-killing a healthy restart.
type coordWorker struct {
	id       int
	gen      int
	addr     string // direct listen address
	conn     *frameConn
	lastHB   time.Time
	hbCount  int64
	lastStat heartbeatMsg
	recovers int64
	alive    bool
}

type coordEvent struct {
	worker int
	gen    int
	typ    byte
	hb     heartbeatMsg
	probe  probeReplyMsg
	vals   valuesMsg
	err    error
}

// Run executes one distributed job: launch, partition, supervise to
// quiescence, fetch, shut down. It restarts crashed workers from their
// checkpoints and ripple-repairs their boundaries (Theorem 2); it fails
// only on setup errors, restart exhaustion, or timeout.
func Run(ctx context.Context, opt Options) (*Result, error) {
	opt.defaults()
	start := time.Now()
	g, err := opt.Graph.Build()
	if err != nil {
		return nil, err
	}
	var t Table
	if opt.ByEdges {
		t, err = NewTableByEdges(g, opt.Workers)
	} else {
		t, err = NewTable(g.N(), opt.Workers)
	}
	if err != nil {
		return nil, err
	}
	opt.Workers = t.Parts() // may shrink for tiny graphs

	dir := opt.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "netdist-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	launcher := opt.Launcher
	if launcher == nil {
		launcher = NewLocalLauncher()
		defer launcher.Close()
	}

	c := &coordinator{
		opt: opt, g: g, t: t, dir: dir, launcher: launcher,
		workers: make([]*coordWorker, opt.Workers),
		events:  make(chan coordEvent, 64*opt.Workers),
		done:    make(chan struct{}),
	}
	defer close(c.done)
	defer c.closeConns()
	c.installObs()
	defer c.uninstallObs()
	opt.Observer.SetPhase("netdist: launching workers")

	ctx, cancel := context.WithTimeout(ctx, opt.Timeout)
	defer cancel()

	for id := 0; id < opt.Workers; id++ {
		addr, err := launcher.Start(id)
		if err != nil {
			return nil, fmt.Errorf("netdist: start worker %d: %w", id, err)
		}
		c.workers[id] = &coordWorker{id: id, addr: addr}
	}
	for id := 0; id < opt.Workers; id++ {
		if err := c.connectAndInit(id, false); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.ready = true
	c.mu.Unlock()
	for _, w := range c.workers {
		if err := w.conn.writeFrame(msgStart, nil); err != nil {
			return nil, fmt.Errorf("netdist: start worker %d: %w", w.id, err)
		}
	}
	opt.Observer.SetPhase("netdist: running")

	res, err := c.supervise(ctx)
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	c.emitSummary(res)
	opt.Observer.SetPhase("netdist: converged")

	// Clean shutdown: best effort, workers also exit when conns close.
	for _, w := range c.workers {
		_ = w.conn.writeFrame(msgShutdown, nil)
	}
	return res, nil
}

type coordinator struct {
	opt      Options
	g        graphHandle
	t        Table
	dir      string
	launcher Launcher
	workers  []*coordWorker
	events   chan coordEvent
	done     chan struct{} // closed when Run returns; unblocks readers

	// mu guards the fields below plus coordWorker mutables against the
	// observer's readiness/stats closures, which read from HTTP handler
	// goroutines. All writers run on the supervise goroutine.
	mu    sync.Mutex
	ready bool

	restarts int
	repairs  int
	sweeps   int
}

// graphHandle keeps coordinator code independent of the concrete graph
// type (it only needs N for assembly).
type graphHandle interface{ N() int }

func (c *coordinator) closeConns() {
	for _, w := range c.workers {
		if w != nil && w.conn != nil {
			w.conn.Close()
		}
	}
}

// peersFor returns the peer address list worker id should use: direct
// addresses, or per-pair proxy addresses when a fault proxy is installed.
func (c *coordinator) peersFor(id int) ([]string, error) {
	peers := make([]string, len(c.workers))
	for j, w := range c.workers {
		if j == id {
			continue
		}
		if c.opt.Proxy != nil {
			addr, err := c.opt.Proxy.RoutePair(id, j, w.addr)
			if err != nil {
				return nil, err
			}
			peers[j] = addr
		} else {
			peers[j] = w.addr
		}
	}
	return peers, nil
}

// connectAndInit dials worker id's control connection, sends init, and
// waits for ready (skipping early heartbeats).
func (c *coordinator) connectAndInit(id int, restore bool) error {
	w := c.workers[id]
	var conn net.Conn
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err = net.DialTimeout("tcp", w.addr, dialTimeout)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("netdist: dial worker %d at %s: %w", id, w.addr, err)
	}
	fc := newFrameConn(conn, 0, connWriteTO)
	if err := fc.writeJSON(msgHello, helloMsg{Role: "coord"}); err != nil {
		fc.Close()
		return err
	}
	peers, err := c.peersFor(id)
	if err != nil {
		fc.Close()
		return err
	}
	init := initMsg{
		Worker:   id,
		Starts:   c.t.Starts(),
		Graph:    c.opt.Graph,
		Algo:     c.opt.Algo,
		Peers:    peers,
		Dir:      filepath.Join(c.dir, fmt.Sprintf("w%d", id)),
		Restore:  restore,
		CkptOps:  c.opt.CkptOps,
		RTOMilli: int(c.opt.RTO / time.Millisecond),
		HBMilli:  int(c.opt.Heartbeat / time.Millisecond),
	}
	if err := fc.writeJSON(msgInit, init); err != nil {
		fc.Close()
		return err
	}
	// Wait for ready; the worker may interleave heartbeats.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		typ, p, err := fc.readFrame()
		if err != nil {
			fc.Close()
			return fmt.Errorf("netdist: worker %d did not become ready: %w", id, err)
		}
		if typ != msgReady {
			continue
		}
		var ready readyMsg
		if err := json.Unmarshal(p, &ready); err != nil {
			fc.Close()
			return err
		}
		break
	}
	_ = conn.SetReadDeadline(time.Time{})
	if w.conn != nil {
		w.conn.Close()
	}
	c.mu.Lock()
	w.conn = fc
	w.gen++
	w.lastHB = time.Now()
	w.alive = true
	gen := w.gen
	c.mu.Unlock()
	go c.readWorker(w.id, gen, fc)
	return nil
}

// readWorker pumps one worker incarnation's control frames into the
// event loop. The generation tag lets the loop discard frames and errors
// from a superseded incarnation.
func (c *coordinator) readWorker(id, gen int, fc *frameConn) {
	send := func(ev coordEvent) bool {
		select {
		case c.events <- ev:
			return true
		case <-c.done:
			return false
		}
	}
	for {
		typ, p, err := fc.readFrame()
		if err != nil {
			send(coordEvent{worker: id, gen: gen, err: err})
			return
		}
		ev := coordEvent{worker: id, gen: gen, typ: typ}
		switch typ {
		case msgHeartbeat:
			if json.Unmarshal(p, &ev.hb) != nil {
				continue
			}
		case msgProbeRep:
			if json.Unmarshal(p, &ev.probe) != nil {
				continue
			}
		case msgValues:
			if json.Unmarshal(p, &ev.vals) != nil {
				continue
			}
		default:
			continue
		}
		if !send(ev) {
			return
		}
	}
}

// supervise is the coordinator's main loop: track heartbeats, restart the
// dead, sweep for quiescence, and fetch the result once quiesced.
func (c *coordinator) supervise(ctx context.Context) (*Result, error) {
	supTick := time.NewTicker(c.opt.Heartbeat)
	defer supTick.Stop()
	probeTick := time.NewTicker(2 * c.opt.Heartbeat)
	defer probeTick.Stop()

	var (
		sweepEpoch    int64
		sweepPending  map[int]bool
		sweepStarted  time.Time
		sweepReplies  map[int]probeReplyMsg
		prevIdle      map[int]probeReplyMsg
		fetching      bool
		fetchPending  map[int]bool
		values        []uint64
		valuesPending int
	)

	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netdist: run did not converge: %w", ctx.Err())

		case ev := <-c.events:
			w := c.workers[ev.worker]
			if ev.gen != w.gen {
				continue // a superseded incarnation's reader goroutine
			}
			if ev.err != nil {
				c.mu.Lock()
				if w.alive {
					w.alive = false // restart decided by the supervision tick
					w.lastHB = time.Time{}
				}
				c.mu.Unlock()
				continue
			}
			switch ev.typ {
			case msgHeartbeat:
				c.mu.Lock()
				w.lastHB = time.Now()
				w.hbCount++
				w.lastStat = ev.hb
				c.mu.Unlock()
			case msgProbeRep:
				if ev.probe.Epoch != sweepEpoch || sweepPending == nil || !sweepPending[ev.worker] {
					continue // stale sweep
				}
				delete(sweepPending, ev.worker)
				sweepReplies[ev.worker] = ev.probe
				if len(sweepPending) > 0 {
					continue
				}
				// Sweep complete: quiesce iff two consecutive all-idle
				// sweeps with identical transfer counters.
				idle := true
				for _, r := range sweepReplies {
					if r.QueueLen != 0 || r.Busy || r.Unacked != 0 {
						idle = false
						break
					}
				}
				if idle && prevIdle != nil && sweepStable(prevIdle, sweepReplies) && !fetching {
					fetching = true
					fetchPending = make(map[int]bool)
					values = make([]uint64, c.g.N())
					valuesPending = len(c.workers)
					for _, w := range c.workers {
						fetchPending[w.id] = true
						if err := w.conn.writeFrame(msgFetch, nil); err != nil {
							return nil, fmt.Errorf("netdist: fetch from worker %d: %w", w.id, err)
						}
					}
					continue
				}
				if idle {
					prevIdle = sweepReplies
				} else {
					prevIdle = nil
				}
				sweepPending = nil
			case msgValues:
				if !fetching || !fetchPending[ev.worker] {
					continue
				}
				delete(fetchPending, ev.worker)
				copy(values[ev.vals.Lo:], ev.vals.Values)
				valuesPending--
				if valuesPending == 0 {
					return &Result{
						Values: values, Restarts: c.restarts,
						Repairs: c.repairs, Sweeps: c.sweeps,
					}, nil
				}
			}

		case <-supTick.C:
			if fetching {
				continue
			}
			dead := -1
			horizon := time.Duration(c.opt.HeartbeatMiss) * c.opt.Heartbeat
			for _, w := range c.workers {
				if !w.alive || time.Since(w.lastHB) > horizon {
					dead = w.id
					break
				}
			}
			if dead < 0 {
				continue
			}
			if c.restarts >= c.opt.MaxRestarts {
				return nil, fmt.Errorf("netdist: worker %d dead after %d restarts", dead, c.restarts)
			}
			if err := c.restart(dead); err != nil {
				return nil, err
			}
			// Any in-flight sweep is void: state changed.
			sweepPending = nil
			prevIdle = nil

		case <-probeTick.C:
			if fetching {
				continue
			}
			// A sweep whose replies never arrived (worker died mid-sweep,
			// dropped frame) must not wedge quiescence detection forever.
			if sweepPending != nil {
				if time.Since(sweepStarted) > 10*c.opt.Heartbeat {
					sweepPending = nil
					prevIdle = nil
				}
				continue
			}
			if !c.allAlive() {
				continue
			}
			sweepEpoch++
			c.sweeps++
			sweepStarted = time.Now()
			sweepPending = make(map[int]bool)
			sweepReplies = make(map[int]probeReplyMsg)
			body, _ := json.Marshal(struct {
				Epoch int64 `json:"epoch"`
			}{sweepEpoch})
			for _, w := range c.workers {
				sweepPending[w.id] = true
				if err := w.conn.writeFrame(msgProbe, body); err != nil {
					sweepPending = nil
					break
				}
			}
		}
	}
}

func (c *coordinator) allAlive() bool {
	for _, w := range c.workers {
		if !w.alive {
			return false
		}
	}
	return true
}

// sweepStable reports whether the transfer counters of two completed
// all-idle sweeps are identical — nothing moved between them, so no
// message can be hiding in flight (the double-sweep stability argument).
func sweepStable(a, b map[int]probeReplyMsg) bool {
	if len(a) != len(b) {
		return false
	}
	for id, ra := range a {
		rb, ok := b[id]
		if !ok || ra.Sent != rb.Sent || ra.Acked != rb.Acked ||
			ra.Recv != rb.Recv || ra.Adopted != rb.Adopted {
			return false
		}
	}
	return true
}

// restart brings worker id back: relaunch, re-init with Restore, retarget
// the fault proxy, announce the new address to peers, start it, and
// broadcast the Theorem-2 boundary repair.
func (c *coordinator) restart(id int) error {
	w := c.workers[id]
	_ = c.launcher.Stop(id)
	addr, err := c.launcher.Start(id)
	if err != nil {
		return fmt.Errorf("netdist: relaunch worker %d: %w", id, err)
	}
	c.mu.Lock()
	w.addr = addr
	c.mu.Unlock()
	if c.opt.Proxy != nil {
		// Links into the restarted worker keep their stable proxy listen
		// addresses; only the backend target moves.
		for _, p := range c.workers {
			if p.id != id {
				c.opt.Proxy.Retarget(p.id, id, addr)
			}
		}
	}
	if err := c.connectAndInit(id, true); err != nil {
		return err
	}
	c.mu.Lock()
	w.recovers++
	c.restarts++
	c.mu.Unlock()
	// The repair broadcast below spikes load on every worker at once.
	// Grant the whole fleet a fresh heartbeat horizon so a transiently
	// delayed heartbeat during the ripple cannot be mistaken for a
	// second death and cascade into a restart storm.
	now := time.Now()
	for _, p := range c.workers {
		if p.alive {
			p.lastHB = now
		}
	}
	for _, p := range c.workers {
		if p.id == id {
			continue
		}
		if c.opt.Proxy == nil {
			if err := p.conn.writeJSON(msgPeerUpd, peerUpdateMsg{Peer: id, Addr: addr}); err != nil {
				return err
			}
		}
		if err := p.conn.writeJSON(msgRepair, repairMsg{Target: id}); err != nil {
			return err
		}
		c.mu.Lock()
		c.repairs++
		c.mu.Unlock()
	}
	return w.conn.writeFrame(msgStart, nil)
}

// installObs wires live readiness and per-worker stats into the observer.
func (c *coordinator) installObs() {
	o := c.opt.Observer
	if o == nil {
		return
	}
	o.SetReadiness(func() []obs.ReadyCheck {
		c.mu.Lock()
		defer c.mu.Unlock()
		allUp := c.ready
		for _, w := range c.workers {
			if w == nil || !w.alive {
				allUp = false
				break
			}
		}
		return []obs.ReadyCheck{
			{Name: "graph", OK: c.g != nil, Detail: "graph resident"},
			{Name: "workers", OK: allUp, Detail: "all workers heartbeating"},
		}
	})
	o.SetWorkerStatsSource(func() []obs.WorkerStats {
		c.mu.Lock()
		defer c.mu.Unlock()
		out := make([]obs.WorkerStats, 0, len(c.workers))
		for _, w := range c.workers {
			if w == nil {
				continue
			}
			out = append(out, obs.WorkerStats{
				Worker:      strconv.Itoa(w.id),
				Heartbeats:  w.hbCount,
				Retransmits: w.lastStat.Retransmits,
				Recoveries:  w.recovers,
				Messages:    w.lastStat.Messages,
				Adopted:     w.lastStat.Adopted,
				Unacked:     w.lastStat.Unacked,
			})
		}
		return out
	})
}

func (c *coordinator) uninstallObs() {
	if o := c.opt.Observer; o != nil {
		o.SetReadiness(nil)
		o.SetWorkerStatsSource(nil)
	}
}

func (c *coordinator) emitSummary(res *Result) {
	o := c.opt.Observer
	if o == nil {
		return
	}
	var msgs, adopted int64
	c.mu.Lock()
	for _, w := range c.workers {
		msgs += w.lastStat.Messages
		adopted += w.lastStat.Adopted
	}
	c.mu.Unlock()
	o.Emit(obs.Event{
		Engine:        obs.EngineNetdist,
		Messages:      msgs,
		Updates:       adopted,
		DurationNanos: int64(res.Duration),
	})
}
