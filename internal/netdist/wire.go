package netdist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol: every frame is
//
//	uint32 LE payload length | 1 type byte | payload
//
// where the length counts the type byte plus the payload. Control-plane
// payloads (hello, init, heartbeat, ...) are JSON — small, rare, easy to
// evolve. Data-plane payloads (batches of edge updates and their acks) are
// fixed-layout little-endian binary — the hot path.
//
// The framing is deliberately trivial so the fault proxy can parse it and
// inject faults at frame granularity without understanding payloads.

const (
	// maxFrame bounds a single frame so a corrupted or adversarial length
	// prefix cannot make a reader allocate unboundedly.
	maxFrame = 16 << 20

	frameHeaderLen = 4
)

// Frame type bytes. The data plane (msgData, msgAck) is what the fault
// proxy targets; everything else is control plane.
const (
	msgHello     byte = 0x01 // first frame on any connection; identifies the dialer
	msgInit      byte = 0x02 // coordinator → worker: graph/algo/partition/peer config
	msgReady     byte = 0x03 // worker → coordinator: init complete, listening for peers
	msgStart     byte = 0x04 // coordinator → worker: seed and begin computing
	msgData      byte = 0x10 // worker → worker: batch of (edge, value) updates
	msgAck       byte = 0x11 // worker → worker: cumulative ack of a data batch
	msgHeartbeat byte = 0x20 // worker → coordinator: liveness + progress counters
	msgProbe     byte = 0x21 // coordinator → worker: request a quiescence snapshot
	msgProbeRep  byte = 0x22 // worker → coordinator: quiescence snapshot
	msgRepair    byte = 0x23 // coordinator → worker: re-send boundary into partition K
	msgPeerUpd   byte = 0x24 // coordinator → worker: a peer moved to a new address
	msgFetch     byte = 0x30 // coordinator → worker: request final vertex values
	msgValues    byte = 0x31 // worker → coordinator: final vertex values
	msgShutdown  byte = 0x3f // coordinator → worker: exit cleanly
)

func msgName(t byte) string {
	switch t {
	case msgHello:
		return "hello"
	case msgInit:
		return "init"
	case msgReady:
		return "ready"
	case msgStart:
		return "start"
	case msgData:
		return "data"
	case msgAck:
		return "ack"
	case msgHeartbeat:
		return "heartbeat"
	case msgProbe:
		return "probe"
	case msgProbeRep:
		return "probe-reply"
	case msgRepair:
		return "repair"
	case msgPeerUpd:
		return "peer-update"
	case msgFetch:
		return "fetch"
	case msgValues:
		return "values"
	case msgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("0x%02x", t)
}

// frameConn wraps a TCP connection with frame reading/writing, a write
// mutex (multiple goroutines may send on one connection: a worker's
// receive loop acks while its repair handler re-broadcasts), and per-
// operation deadlines so a hung peer can never wedge a reader or writer
// forever.
type frameConn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex

	readTimeout  time.Duration // 0 = no deadline
	writeTimeout time.Duration
}

func newFrameConn(c net.Conn, readTimeout, writeTimeout time.Duration) *frameConn {
	return &frameConn{
		c:            c,
		r:            bufio.NewReaderSize(c, 64<<10),
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
	}
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// writeFrame sends one frame. Safe for concurrent use.
func (fc *frameConn) writeFrame(typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("netdist: %s frame of %d bytes exceeds limit", msgName(typ), len(payload))
	}
	var hdr [frameHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ

	fc.wm.Lock()
	defer fc.wm.Unlock()
	if fc.writeTimeout > 0 {
		if err := fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout)); err != nil {
			return err
		}
	}
	if _, err := fc.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("netdist: write %s header: %w", msgName(typ), err)
	}
	if len(payload) > 0 {
		if _, err := fc.c.Write(payload); err != nil {
			return fmt.Errorf("netdist: write %s payload: %w", msgName(typ), err)
		}
	}
	return nil
}

// readFrame reads one frame. Not safe for concurrent use (one reader
// goroutine per connection).
func (fc *frameConn) readFrame() (typ byte, payload []byte, err error) {
	if fc.readTimeout > 0 {
		if err := fc.c.SetReadDeadline(time.Now().Add(fc.readTimeout)); err != nil {
			return 0, nil, err
		}
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("netdist: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return 0, nil, fmt.Errorf("netdist: short frame body: %w", err)
	}
	return body[0], body[1:], nil
}

// writeJSON marshals v and sends it as a frame of the given type.
func (fc *frameConn) writeJSON(typ byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("netdist: marshal %s: %w", msgName(typ), err)
	}
	return fc.writeFrame(typ, body)
}

// --- Control-plane payloads (JSON) ---

// helloMsg is the first frame on every connection and identifies the
// dialer, letting a worker's single listener multiplex coordinator control
// connections and peer data connections.
type helloMsg struct {
	Role string `json:"role"` // "coord" or "peer"
	From int    `json:"from"` // peer worker id (role "peer" only)
}

// initMsg carries everything a worker needs to reconstruct its slice of
// the computation. Graphs cross the wire as generative specs, not edge
// dumps: workers rebuild the identical graph from (kind, seed) locally.
type initMsg struct {
	Worker   int       `json:"worker"`
	Starts   []uint32  `json:"starts"` // partition table boundaries
	Graph    GraphSpec `json:"graph"`
	Algo     AlgoSpec  `json:"algo"`
	Peers    []string  `json:"peers"` // index = worker id; self entry ignored
	Dir      string    `json:"dir"`   // per-worker scratch dir (checkpoints)
	Restore  bool      `json:"restore"`
	CkptOps  int       `json:"ckpt_ops"` // checkpoint every N adopted updates (0 = default)
	RTOMilli int       `json:"rto_ms"`   // base retransmission timeout
	HBMilli  int       `json:"hb_ms"`    // heartbeat interval
}

// readyMsg acknowledges init; Restored reports whether a checkpoint was
// loaded (and from which generation) so tests can assert recovery paths.
type readyMsg struct {
	Worker   int    `json:"worker"`
	Restored string `json:"restored,omitempty"` // "", "ckpt", or "ckpt.prev"
}

// heartbeatMsg carries liveness plus the progress counters the
// coordinator exposes through obs.WorkerStats.
type heartbeatMsg struct {
	Worker      int   `json:"worker"`
	Seq         int64 `json:"seq"`
	Messages    int64 `json:"messages"`
	Adopted     int64 `json:"adopted"`
	Retransmits int64 `json:"retransmits"`
	Unacked     int64 `json:"unacked"`
	QueueLen    int64 `json:"queue_len"`
	Busy        bool  `json:"busy"`
}

// probeReplyMsg is a quiescence snapshot: the coordinator declares global
// quiescence only after two consecutive sweeps in which every worker is
// idle with nothing in flight and the transfer counters did not move
// (a Mattern-style stability check over an unsynchronized cut).
type probeReplyMsg struct {
	Worker   int   `json:"worker"`
	Epoch    int64 `json:"epoch"`
	QueueLen int64 `json:"queue_len"`
	Busy     bool  `json:"busy"`
	Unacked  int64 `json:"unacked"`
	Sent     int64 `json:"sent"`
	Acked    int64 `json:"acked"`
	Recv     int64 `json:"recv"`
	Adopted  int64 `json:"adopted"`
}

// repairMsg asks a worker to re-send its current boundary values along
// every out-edge crossing into partition Target (Theorem-2 ripple repair
// after Target restarted). A worker receiving its own id re-sends its
// crossing out-edges outward instead.
type repairMsg struct {
	Target int `json:"target"`
}

// peerUpdateMsg announces that a restarted peer now listens at Addr.
type peerUpdateMsg struct {
	Peer int    `json:"peer"`
	Addr string `json:"addr"`
}

// valuesMsg returns a worker's owned slice of the result. Values are the
// raw uint64 propagation values; the coordinator decodes PageRank floats.
type valuesMsg struct {
	Worker int      `json:"worker"`
	Lo     uint32   `json:"lo"`
	Values []uint64 `json:"values"`
}

// --- Data-plane payloads (binary) ---

// A data batch is
//
//	uint64 seq | uint32 count | count × (uint32 edge, uint64 value)
//
// where edge is the canonical edge index the value travels along. Sending
// edges (not destination vertices) gives the receiver the in-slot to
// dedup against and, for PageRank, the per-edge cumulative counter.
type dataBatch struct {
	seq     uint64
	entries []batchEntry
}

type batchEntry struct {
	edge uint32
	val  uint64
}

const batchEntryLen = 12

func encodeBatch(b dataBatch) []byte {
	out := make([]byte, 12+len(b.entries)*batchEntryLen)
	binary.LittleEndian.PutUint64(out[0:], b.seq)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(b.entries)))
	off := 12
	for _, e := range b.entries {
		binary.LittleEndian.PutUint32(out[off:], e.edge)
		binary.LittleEndian.PutUint64(out[off+4:], e.val)
		off += batchEntryLen
	}
	return out
}

func decodeBatch(p []byte) (dataBatch, error) {
	if len(p) < 12 {
		return dataBatch{}, fmt.Errorf("netdist: data batch of %d bytes", len(p))
	}
	b := dataBatch{seq: binary.LittleEndian.Uint64(p[0:])}
	count := int(binary.LittleEndian.Uint32(p[8:]))
	if len(p) != 12+count*batchEntryLen {
		return dataBatch{}, fmt.Errorf("netdist: data batch declares %d entries in %d bytes", count, len(p))
	}
	b.entries = make([]batchEntry, count)
	off := 12
	for i := range b.entries {
		b.entries[i] = batchEntry{
			edge: binary.LittleEndian.Uint32(p[off:]),
			val:  binary.LittleEndian.Uint64(p[off+4:]),
		}
		off += batchEntryLen
	}
	return b, nil
}

func encodeAck(seq uint64) []byte {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], seq)
	return out[:]
}

func decodeAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("netdist: ack of %d bytes", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}
