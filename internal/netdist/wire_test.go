package netdist

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestBatchRoundTrip(t *testing.T) {
	in := dataBatch{seq: 42, entries: []batchEntry{
		{edge: 0, val: 0},
		{edge: 7, val: ^uint64(0)},
		{edge: 1 << 30, val: 0xdeadbeefcafe},
	}}
	out, err := decodeBatch(encodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.seq != in.seq || len(out.entries) != len(in.entries) {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.entries {
		if out.entries[i] != in.entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out.entries[i], in.entries[i])
		}
	}
	if _, err := decodeBatch(encodeBatch(dataBatch{seq: 1})); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestBatchDecodeRejectsTruncated(t *testing.T) {
	p := encodeBatch(dataBatch{seq: 9, entries: []batchEntry{{edge: 1, val: 2}}})
	for cut := 1; cut < len(p); cut++ {
		if _, err := decodeBatch(p[:len(p)-cut]); err == nil {
			t.Fatalf("accepted batch truncated by %d bytes", cut)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	seq, err := decodeAck(encodeAck(123456789))
	if err != nil || seq != 123456789 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	if _, err := decodeAck([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short ack")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fa := newFrameConn(a, time.Second, time.Second)
	fb := newFrameConn(b, time.Second, time.Second)

	payload := bytes.Repeat([]byte{0xab}, 1000)
	go func() { _ = fa.writeFrame(msgData, payload) }()
	typ, got, err := fb.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgData || !bytes.Equal(got, payload) {
		t.Fatalf("typ=%s len=%d", msgName(typ), len(got))
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fa := newFrameConn(a, time.Second, time.Second)
	if err := fa.writeFrame(msgData, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversize frame written")
	}
	// A poisoned length prefix must be rejected before allocation.
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		_ = a.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = a.Write(hdr)
	}()
	fb := newFrameConn(b, time.Second, time.Second)
	if _, _, err := fb.readFrame(); err == nil {
		t.Fatal("oversize length prefix accepted")
	}
}
