package netdist

import (
	"fmt"
	"math"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

// GraphSpec describes a graph generatively so it can cross the wire as a
// few integers instead of an edge dump: every worker rebuilds the
// identical graph locally from (kind, size, seed). The "edges" kind
// carries an explicit edge list for tests with hand-built topologies.
type GraphSpec struct {
	Kind  string      `json:"kind"` // "rmat", "ring", "chain", or "edges"
	N     int         `json:"n"`
	M     int         `json:"m,omitempty"`
	Seed  uint64      `json:"seed,omitempty"`
	Edges [][2]uint32 `json:"edges,omitempty"` // kind "edges" only
}

// Build materializes the spec. Deterministic: the same spec yields the
// same graph in every process.
func (s GraphSpec) Build() (*graph.Graph, error) {
	switch s.Kind {
	case "rmat":
		return gen.RMAT(s.N, s.M, gen.DefaultRMAT, s.Seed)
	case "ring":
		return gen.Ring(s.N)
	case "chain":
		return gen.Chain(s.N)
	case "edges":
		es := make([]graph.Edge, len(s.Edges))
		for i, e := range s.Edges {
			es[i] = graph.Edge{Src: e[0], Dst: e[1]}
		}
		return graph.Build(es, graph.Options{NumVertices: s.N})
	}
	return nil, fmt.Errorf("netdist: unknown graph kind %q", s.Kind)
}

// AlgoSpec names the algorithm and its parameters. WeightSeed feeds the
// same weight generator the shared-memory engine uses
// (algorithms.NewSSSP), so distributed SSSP distances are byte-identical
// to the core engine's.
type AlgoSpec struct {
	Name       string  `json:"name"` // "wcc", "bfs", "sssp", or "pagerank"
	Source     uint32  `json:"source,omitempty"`
	WeightSeed uint64  `json:"weight_seed,omitempty"`
	Eps        float64 `json:"eps,omitempty"` // pagerank residual threshold
}

// emitFn receives an outgoing update from a kernel: the canonical edge it
// travels along, the destination vertex, and the value. The worker routes
// it — locally for intra-partition edges, over TCP otherwise.
type emitFn func(e, dst uint32, val uint64)

// kernel is the partition-local computation: pure state machine over the
// owned vertex range, no knowledge of queues or sockets. All methods are
// called from the worker's single compute goroutine.
type kernel interface {
	// reset cold-starts the owned state and returns the initially
	// scheduled owned vertices.
	reset() []uint32
	// deliver merges an incoming value along owned in-edge e. It returns
	// the destination vertex, whether the value was adopted (improved
	// state), and whether the vertex needs (re)scheduling.
	deliver(e uint32, val uint64) (v uint32, adopted, schedule bool)
	// process runs the update function of owned vertex v, emitting
	// outgoing updates along its out-edges.
	process(v uint32, emit emitFn)
	// boundary emits the current value along every owned out-edge whose
	// destination satisfies pred — the Theorem-2 ripple-repair resend.
	boundary(pred func(dst uint32) bool, emit emitFn)
	// values returns the owned result slice (index v - lo). For PageRank
	// the values are Float64bits of rank plus unpushed residual.
	values() []uint64
	// encodeState/decodeState round-trip everything a checkpoint must
	// capture (values plus any per-edge state) as little-endian words.
	encodeState() []uint64
	decodeState(words []uint64) error
}

// newKernel builds the kernel for spec over partition id of t. The graph
// g must be the base directed graph of the job; WCC symmetrizes it
// internally (min-label propagation needs both directions).
func newKernel(spec AlgoSpec, g *graph.Graph, t Table, id int) (kernel, error) {
	lo, hi := t.Range(id)
	switch spec.Name {
	case "wcc":
		u := g.Undirected()
		k := &monotoneKernel{g: u, lo: lo, hi: hi}
		k.buildInEdgeMap()
		return k, nil
	case "bfs":
		k := &monotoneKernel{g: g, lo: lo, hi: hi, sssp: true,
			source: spec.Source, weights: algorithms.NewBFS(g, spec.Source).Weights}
		k.buildInEdgeMap()
		return k, nil
	case "sssp":
		k := &monotoneKernel{g: g, lo: lo, hi: hi, sssp: true,
			source: spec.Source, weights: algorithms.NewSSSP(g, spec.Source, spec.WeightSeed).Weights}
		k.buildInEdgeMap()
		return k, nil
	case "pagerank":
		eps := spec.Eps
		if eps <= 0 {
			eps = 1e-9
		}
		k := &pagerankKernel{g: g, lo: lo, hi: hi, eps: eps, damping: 0.85}
		k.init()
		return k, nil
	}
	return nil, fmt.Errorf("netdist: unknown algorithm %q", spec.Name)
}

// --- Monotone min-propagation: WCC, BFS, SSSP ---

// monotoneKernel runs the Theorem-2 family: values only improve under a
// total order, so the merge is idempotent and commutative — duplicated,
// reordered, and replayed deliveries are all absorbed for free, which is
// what makes at-least-once transport and crash repair sound.
type monotoneKernel struct {
	g      *graph.Graph
	lo, hi uint32
	vals   []uint64 // owned, index v-lo

	sssp    bool // false: WCC label propagation
	source  uint32
	weights []float64

	inDst map[uint32]uint32 // owned in-edge canonical index → owned dst
}

func (k *monotoneKernel) buildInEdgeMap() {
	k.inDst = make(map[uint32]uint32)
	for v := k.lo; v < k.hi; v++ {
		for _, e := range k.g.InEdgeIndices(v) {
			k.inDst[e] = v
		}
	}
}

func (k *monotoneKernel) better(new, old uint64) bool {
	if k.sssp {
		return edgedata.ToFloat64(new) < edgedata.ToFloat64(old)
	}
	return new < old
}

func (k *monotoneKernel) msg(e uint32, val uint64) uint64 {
	if k.sssp {
		return edgedata.FromFloat64(edgedata.ToFloat64(val) + k.weights[e])
	}
	return val
}

func (k *monotoneKernel) reset() []uint32 {
	k.vals = make([]uint64, k.hi-k.lo)
	if k.sssp {
		inf := edgedata.FromFloat64(math.Inf(1))
		for i := range k.vals {
			k.vals[i] = inf
		}
		if k.source >= k.lo && k.source < k.hi {
			k.vals[k.source-k.lo] = edgedata.FromFloat64(0)
			return []uint32{k.source}
		}
		return nil
	}
	seeds := make([]uint32, 0, k.hi-k.lo)
	for v := k.lo; v < k.hi; v++ {
		k.vals[v-k.lo] = uint64(v)
		seeds = append(seeds, v)
	}
	return seeds
}

func (k *monotoneKernel) deliver(e uint32, val uint64) (uint32, bool, bool) {
	v, ok := k.inDst[e]
	if !ok {
		return 0, false, false // stale frame for an edge we don't own
	}
	if k.better(val, k.vals[v-k.lo]) {
		k.vals[v-k.lo] = val
		return v, true, true
	}
	return v, false, false
}

func (k *monotoneKernel) process(v uint32, emit emitFn) {
	val := k.vals[v-k.lo]
	if k.sssp && math.IsInf(edgedata.ToFloat64(val), 1) {
		return // unreached; nothing to scatter
	}
	eLo, _ := k.g.OutEdgeIndex(v)
	for i, dst := range k.g.OutNeighbors(v) {
		e := eLo + uint32(i)
		emit(e, dst, k.msg(e, val))
	}
}

func (k *monotoneKernel) boundary(pred func(dst uint32) bool, emit emitFn) {
	for v := k.lo; v < k.hi; v++ {
		val := k.vals[v-k.lo]
		if k.sssp && math.IsInf(edgedata.ToFloat64(val), 1) {
			continue
		}
		eLo, _ := k.g.OutEdgeIndex(v)
		for i, dst := range k.g.OutNeighbors(v) {
			if !pred(dst) {
				continue
			}
			e := eLo + uint32(i)
			emit(e, dst, k.msg(e, val))
		}
	}
}

func (k *monotoneKernel) values() []uint64 { return k.vals }

func (k *monotoneKernel) encodeState() []uint64 {
	return append([]uint64(nil), k.vals...)
}

func (k *monotoneKernel) decodeState(words []uint64) error {
	if len(words) != int(k.hi-k.lo) {
		return fmt.Errorf("netdist: checkpoint holds %d values for a %d-vertex partition", len(words), k.hi-k.lo)
	}
	k.vals = append(k.vals[:0], words...)
	return nil
}

// --- PageRank by cumulative push ---

// pagerankKernel runs push-style PageRank with one twist that buys crash
// and duplicate tolerance: what crosses an edge is not the increment but
// the *cumulative* mass pushed along that edge so far. Cumulative totals
// are monotone non-decreasing and converge to a unique limit
// (d·rank(u)/outdeg(u)), so the receiver's merge — keep the max, credit
// the positive delta — absorbs duplicates, reorders, and post-rollback
// replays exactly like the min-merge of the traversal algorithms. This is
// how a non-monotonic fixed-point algorithm rides the same Theorem-2
// machinery: the transported quantity is made monotone even though ranks
// are not.
//
// Invariant: rank[v] + pending[v] + (mass in cumulative counters not yet
// credited downstream) accounts for all mass ever injected, so the final
// rank[v] + pending[v] converges to the damped PageRank fixed point
// (1-d) + d·Σ_in rank(u)/outdeg(u), within the residual threshold eps.
type pagerankKernel struct {
	g       *graph.Graph
	lo, hi  uint32
	eps     float64
	damping float64

	rank    []float64 // owned, index v-lo
	pending []float64 // owned residual not yet pushed
	outCum  []float64 // cumulative mass pushed per owned out-edge, index e-outLo
	outLo   uint32    // canonical index of the first owned out-edge
	inCum   []float64 // last-seen cumulative per owned in-edge, by in-slot
	inSlot  map[uint32]int
	inDst   map[uint32]uint32
}

func (k *pagerankKernel) init() {
	// Owned out-edges form one contiguous canonical range because the
	// partition is a contiguous vertex range.
	outHi := uint32(0)
	if k.hi > k.lo {
		k.outLo, _ = k.g.OutEdgeIndex(k.lo)
		_, outHi = k.g.OutEdgeIndex(k.hi - 1)
	}
	k.outCum = make([]float64, outHi-k.outLo)
	k.inSlot = make(map[uint32]int)
	k.inDst = make(map[uint32]uint32)
	slots := 0
	for v := k.lo; v < k.hi; v++ {
		for _, e := range k.g.InEdgeIndices(v) {
			k.inSlot[e] = slots
			k.inDst[e] = v
			slots++
		}
	}
	k.inCum = make([]float64, slots)
}

func (k *pagerankKernel) reset() []uint32 {
	n := int(k.hi - k.lo)
	k.rank = make([]float64, n)
	k.pending = make([]float64, n)
	for i := range k.outCum {
		k.outCum[i] = 0
	}
	for i := range k.inCum {
		k.inCum[i] = 0
	}
	seeds := make([]uint32, 0, n)
	for v := k.lo; v < k.hi; v++ {
		k.pending[v-k.lo] = 1 - k.damping
		seeds = append(seeds, v)
	}
	return seeds
}

func (k *pagerankKernel) deliver(e uint32, val uint64) (uint32, bool, bool) {
	slot, ok := k.inSlot[e]
	if !ok {
		return 0, false, false
	}
	v := k.inDst[e]
	cum := math.Float64frombits(val)
	if cum <= k.inCum[slot] {
		return v, false, false // duplicate, reorder, or post-rollback replay
	}
	delta := cum - k.inCum[slot]
	k.inCum[slot] = cum
	k.pending[v-k.lo] += delta
	return v, true, k.pending[v-k.lo] > k.eps
}

func (k *pagerankKernel) process(v uint32, emit emitFn) {
	p := k.pending[v-k.lo]
	if p <= k.eps {
		return // below threshold: hold the residual
	}
	k.pending[v-k.lo] = 0
	k.rank[v-k.lo] += p
	out := k.g.OutNeighbors(v)
	if len(out) == 0 {
		return // dangling: mass dropped, as in the shared-memory engine
	}
	share := k.damping * p / float64(len(out))
	eLo, _ := k.g.OutEdgeIndex(v)
	for i, dst := range out {
		e := eLo + uint32(i)
		k.outCum[e-k.outLo] += share
		emit(e, dst, math.Float64bits(k.outCum[e-k.outLo]))
	}
}

func (k *pagerankKernel) boundary(pred func(dst uint32) bool, emit emitFn) {
	for v := k.lo; v < k.hi; v++ {
		eLo, _ := k.g.OutEdgeIndex(v)
		for i, dst := range k.g.OutNeighbors(v) {
			if !pred(dst) {
				continue
			}
			e := eLo + uint32(i)
			if cum := k.outCum[e-k.outLo]; cum > 0 {
				emit(e, dst, math.Float64bits(cum))
			}
		}
	}
}

func (k *pagerankKernel) values() []uint64 {
	out := make([]uint64, len(k.rank))
	for i := range out {
		// Fold the unpushed residual back in: tightens the estimate by up
		// to eps without disturbing the pushed totals.
		out[i] = math.Float64bits(k.rank[i] + k.pending[i])
	}
	return out
}

func (k *pagerankKernel) encodeState() []uint64 {
	words := make([]uint64, 0, 2*len(k.rank)+len(k.outCum)+len(k.inCum))
	for _, f := range k.rank {
		words = append(words, math.Float64bits(f))
	}
	for _, f := range k.pending {
		words = append(words, math.Float64bits(f))
	}
	for _, f := range k.outCum {
		words = append(words, math.Float64bits(f))
	}
	for _, f := range k.inCum {
		words = append(words, math.Float64bits(f))
	}
	return words
}

func (k *pagerankKernel) decodeState(words []uint64) error {
	n := int(k.hi - k.lo)
	want := 2*n + len(k.outCum) + len(k.inCum)
	if len(words) != want {
		return fmt.Errorf("netdist: pagerank checkpoint holds %d words, want %d", len(words), want)
	}
	k.rank = make([]float64, n)
	k.pending = make([]float64, n)
	take := func(dst []float64) {
		for i := range dst {
			dst[i] = math.Float64frombits(words[0])
			words = words[1:]
		}
	}
	take(k.rank)
	take(k.pending)
	take(k.outCum)
	take(k.inCum)
	return nil
}
