package netdist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Launcher abstracts how worker processes are brought up and torn down,
// so the coordinator's supervision logic is identical whether workers are
// in-process goroutines (LocalLauncher: fast, race-detectable) or real OS
// processes (ExecLauncher: true crash isolation, SIGKILL-able).
type Launcher interface {
	// Start launches (or relaunches) worker id and returns its listen
	// address. A restarted worker keeps its id — and therefore its
	// checkpoint directory.
	Start(id int) (addr string, err error)
	// Stop tears worker id down. Idempotent.
	Stop(id int) error
	// Kill terminates worker id abruptly — SIGKILL for processes, context
	// cancellation for goroutine workers. Fault-injection entry point: the
	// coordinator is NOT told, it must notice via missed heartbeats.
	Kill(id int) error
	// Close stops everything.
	Close() error
}

// --- LocalLauncher: goroutine workers on loopback TCP ---

// LocalLauncher runs each worker as RunWorker in a goroutine with a real
// loopback TCP listener. Kill cancels the worker's context: its listener
// and connections close and all in-memory state is abandoned, which is
// the closest in-process analog of SIGKILL (checkpoints on disk are all
// that survives, exactly as with a real process).
type LocalLauncher struct {
	mu    sync.Mutex
	procs map[int]*localProc
}

type localProc struct {
	cancel context.CancelFunc
	ln     net.Listener
}

// NewLocalLauncher returns an empty launcher.
func NewLocalLauncher() *LocalLauncher {
	return &LocalLauncher{procs: make(map[int]*localProc)}
}

// Start implements Launcher.
func (l *LocalLauncher) Start(id int) (string, error) {
	_ = l.Stop(id)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	l.mu.Lock()
	l.procs[id] = &localProc{cancel: cancel, ln: ln}
	l.mu.Unlock()
	go func() { _ = RunWorker(ctx, ln) }()
	return ln.Addr().String(), nil
}

// Stop implements Launcher.
func (l *LocalLauncher) Stop(id int) error {
	l.mu.Lock()
	p := l.procs[id]
	delete(l.procs, id)
	l.mu.Unlock()
	if p != nil {
		p.cancel()
		p.ln.Close()
	}
	return nil
}

// Kill implements Launcher. For goroutine workers a kill and a stop are
// the same mechanism; the distinction matters for ExecLauncher.
func (l *LocalLauncher) Kill(id int) error { return l.Stop(id) }

// Close implements Launcher.
func (l *LocalLauncher) Close() error {
	l.mu.Lock()
	procs := l.procs
	l.procs = make(map[int]*localProc)
	l.mu.Unlock()
	for _, p := range procs {
		p.cancel()
		p.ln.Close()
	}
	return nil
}

// --- ExecLauncher: real worker processes (cmd/ndworker) ---

// ExecLauncher runs each worker as a separate OS process executing the
// ndworker binary. The worker prints "LISTEN <addr>" on stdout once its
// listener is up; Kill delivers SIGKILL, so recovery genuinely exercises
// the checkpoint-restore path with no lingering in-memory state.
type ExecLauncher struct {
	// Bin is the path to the ndworker binary.
	Bin string

	mu    sync.Mutex
	procs map[int]*exec.Cmd
}

// NewExecLauncher returns a launcher spawning bin per worker.
func NewExecLauncher(bin string) *ExecLauncher {
	return &ExecLauncher{Bin: bin, procs: make(map[int]*exec.Cmd)}
}

// Start implements Launcher.
func (e *ExecLauncher) Start(id int) (string, error) {
	_ = e.Stop(id)
	cmd := exec.Command(e.Bin)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", err
	}
	// The worker's first line of stdout announces its listen address.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				addrCh <- strings.TrimSpace(rest)
				break
			}
		}
		close(addrCh)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			return "", fmt.Errorf("netdist: worker %d exited before announcing its address", id)
		}
		e.mu.Lock()
		e.procs[id] = cmd
		e.mu.Unlock()
		return addr, nil
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		return "", fmt.Errorf("netdist: worker %d did not announce an address", id)
	}
}

// Stop implements Launcher (kill + reap; ndworker has no graceful stop
// beyond the coordinator's shutdown frame, which Run already sends).
func (e *ExecLauncher) Stop(id int) error {
	e.mu.Lock()
	cmd := e.procs[id]
	delete(e.procs, id)
	e.mu.Unlock()
	if cmd == nil {
		return nil
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil
}

// Kill implements Launcher: SIGKILL, no reap bookkeeping beyond Wait.
func (e *ExecLauncher) Kill(id int) error { return e.Stop(id) }

// Close implements Launcher.
func (e *ExecLauncher) Close() error {
	e.mu.Lock()
	ids := make([]int, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	for _, id := range ids {
		_ = e.Stop(id)
	}
	return nil
}
