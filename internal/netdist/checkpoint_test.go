package netdist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := checkpoint{Algo: "sssp", Worker: 3, Lo: 100, Hi: 200, Words: []uint64{1, 2, ^uint64(0)}}
	if err := saveCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, gen, ok, err := restoreCheckpoint(dir, "sssp", 3, 100, 200)
	if err != nil || !ok || gen != ckptName {
		t.Fatalf("ok=%v gen=%q err=%v", ok, gen, err)
	}
	if got.Algo != ck.Algo || got.Worker != ck.Worker || got.Lo != ck.Lo || got.Hi != ck.Hi {
		t.Fatalf("header: %+v", got)
	}
	for i, w := range ck.Words {
		if got.Words[i] != w {
			t.Fatalf("word %d: %d != %d", i, got.Words[i], w)
		}
	}
}

func TestCheckpointIdentityMismatchIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := saveCheckpoint(dir, checkpoint{Algo: "wcc", Worker: 0, Lo: 0, Hi: 10}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := restoreCheckpoint(dir, "sssp", 0, 0, 10); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}
	if _, _, _, err := restoreCheckpoint(dir, "wcc", 1, 0, 10); err == nil {
		t.Fatal("worker mismatch accepted")
	}
}

func TestCheckpointMissingIsColdStart(t *testing.T) {
	_, gen, ok, err := restoreCheckpoint(t.TempDir(), "wcc", 0, 0, 10)
	if err != nil || ok || gen != "" {
		t.Fatalf("ok=%v gen=%q err=%v", ok, gen, err)
	}
}

func TestCheckpointTornFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	old := checkpoint{Algo: "wcc", Worker: 1, Lo: 0, Hi: 4, Words: []uint64{0, 1, 2, 3}}
	if err := saveCheckpoint(dir, old); err != nil {
		t.Fatal(err)
	}
	if err := saveCheckpoint(dir, checkpoint{Algo: "wcc", Worker: 1, Lo: 0, Hi: 4, Words: []uint64{0, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	// Tear the newest generation mid-file.
	path := filepath.Join(dir, ckptName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file: err=%v, want ErrCorrupt", err)
	}
	got, gen, ok, err := restoreCheckpoint(dir, "wcc", 1, 0, 4)
	if err != nil || !ok || gen != ckptPrev {
		t.Fatalf("ok=%v gen=%q err=%v", ok, gen, err)
	}
	if got.Words[3] != 3 {
		t.Fatalf("restored words %v, want previous generation", got.Words)
	}
}

func TestCheckpointBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	if err := saveCheckpoint(dir, checkpoint{Algo: "bfs", Worker: 0, Lo: 0, Hi: 2, Words: []uint64{7, 9}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err=%v, want ErrCorrupt", err)
	}
}
