package netdist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"ndgraph/internal/fsafe"
)

// ErrCorrupt reports that a worker checkpoint file is structurally broken
// or fails its checksum. As with core.ErrCorrupt, the sentinel marks
// exactly the class of failures the two-generation rotation repairs:
// errors.Is(err, ErrCorrupt) means "try the previous generation"; any
// other error means retrying older files cannot help.
var ErrCorrupt = errors.New("netdist: checkpoint corrupt")

// Worker checkpoint file layout (all integers little-endian):
//
//	magic   "NDW1"                        4 bytes
//	algo    uint16 length + name bytes    (rejects algorithm mismatches)
//	worker  uint32
//	lo, hi  uint32 ×2                     owned vertex range
//	words   uint32 count + count×uint64   kernel state (kernel-defined)
//	crc     uint32                        CRC-32 (IEEE) of everything above
//
// Two generations are kept: "ckpt" (newest) and "ckpt.prev". Writes
// rotate before replacing, and each individual write is atomic
// (fsafe.WriteFile: temp file + rename), so a crash at any instant leaves
// at least one loadable generation on disk.

const ckptMagic = "NDW1"

// ckptName / ckptPrev name the two generations inside a worker directory.
const (
	ckptName = "ckpt"
	ckptPrev = "ckpt.prev"
)

type checkpoint struct {
	Algo   string
	Worker int
	Lo, Hi uint32
	Words  []uint64
}

// saveCheckpoint rotates the current generation to .prev and writes ck as
// the newest generation in dir.
func saveCheckpoint(dir string, ck checkpoint) error {
	path := filepath.Join(dir, ckptName)
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, filepath.Join(dir, ckptPrev)); err != nil {
			return fmt.Errorf("netdist: rotate checkpoint: %w", err)
		}
	}
	return fsafe.WriteFile(path, func(w io.Writer) error {
		crc := crc32.NewIEEE()
		out := io.MultiWriter(w, crc)
		if _, err := out.Write([]byte(ckptMagic)); err != nil {
			return err
		}
		if len(ck.Algo) > 0xffff {
			return fmt.Errorf("netdist: algorithm name of %d bytes", len(ck.Algo))
		}
		var buf [8]byte
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(ck.Algo)))
		if _, err := out.Write(buf[:2]); err != nil {
			return err
		}
		if _, err := out.Write([]byte(ck.Algo)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(ck.Worker))
		binary.LittleEndian.PutUint32(buf[4:8], ck.Lo)
		if _, err := out.Write(buf[:8]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], ck.Hi)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(ck.Words)))
		if _, err := out.Write(buf[:8]); err != nil {
			return err
		}
		for _, word := range ck.Words {
			binary.LittleEndian.PutUint64(buf[:], word)
			if _, err := out.Write(buf[:]); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
		_, err := w.Write(buf[:4])
		return err
	})
}

// loadCheckpoint reads and verifies one checkpoint file. Structural and
// checksum failures wrap ErrCorrupt; a missing file surfaces as the
// os.Open error (fs.ErrNotExist), which is not corruption.
func loadCheckpoint(path string) (checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return checkpoint{}, err
	}
	if len(data) < len(ckptMagic)+2+8+8+4 {
		return checkpoint{}, fmt.Errorf("%w: %s truncated at %d bytes", ErrCorrupt, path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return checkpoint{}, fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, path)
	}
	if string(body[:4]) != ckptMagic {
		return checkpoint{}, fmt.Errorf("%w: %s has bad magic %q", ErrCorrupt, path, body[:4])
	}
	body = body[4:]
	nameLen := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if len(body) < nameLen+16 {
		return checkpoint{}, fmt.Errorf("%w: %s truncated inside header", ErrCorrupt, path)
	}
	ck := checkpoint{Algo: string(body[:nameLen])}
	body = body[nameLen:]
	ck.Worker = int(binary.LittleEndian.Uint32(body))
	ck.Lo = binary.LittleEndian.Uint32(body[4:])
	ck.Hi = binary.LittleEndian.Uint32(body[8:])
	count := int(binary.LittleEndian.Uint32(body[12:]))
	body = body[16:]
	if len(body) != count*8 {
		return checkpoint{}, fmt.Errorf("%w: %s declares %d words in %d bytes", ErrCorrupt, path, count, len(body))
	}
	ck.Words = make([]uint64, count)
	for i := range ck.Words {
		ck.Words[i] = binary.LittleEndian.Uint64(body[i*8:])
	}
	return ck, nil
}

// restoreCheckpoint applies the supervisor's recovery discipline inside
// dir: newest generation first, previous on ErrCorrupt. It returns which
// generation loaded ("" with ok=false when neither did — cold start).
func restoreCheckpoint(dir string, algo string, worker int, lo, hi uint32) (checkpoint, string, bool, error) {
	for _, name := range []string{ckptName, ckptPrev} {
		ck, err := loadCheckpoint(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, os.ErrNotExist) {
				continue // fall back to the previous generation
			}
			return checkpoint{}, "", false, err
		}
		if ck.Algo != algo || ck.Worker != worker || ck.Lo != lo || ck.Hi != hi {
			return checkpoint{}, "", false, fmt.Errorf(
				"netdist: checkpoint %s holds %s worker %d [%d,%d), want %s worker %d [%d,%d)",
				name, ck.Algo, ck.Worker, ck.Lo, ck.Hi, algo, worker, lo, hi)
		}
		return ck, name, true, nil
	}
	return checkpoint{}, "", false, nil
}
