package netdist

import (
	"context"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/graph"
)

// fastOpts returns options tuned for test latency: tight heartbeats and
// retransmission timeouts so failure detection and recovery land in tens
// of milliseconds instead of seconds.
func fastOpts(workers int, g GraphSpec, a AlgoSpec) Options {
	return Options{
		Workers:   workers,
		Graph:     g,
		Algo:      a,
		RTO:       50 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
		// A 500ms miss horizon: still fast enough to catch the kills the
		// fault tests inject, but wide enough that race-detector slowdown
		// or a loaded CI box cannot fake a death from a late heartbeat.
		HeartbeatMiss: 25,
		CkptOps:       256,
		Timeout:       60 * time.Second,
	}
}

func mustBuild(t *testing.T, spec GraphSpec) *graph.Graph {
	t.Helper()
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkWCC(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	want := algorithms.ReferenceWCC(g)
	got := res.Labels()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
}

func checkDistances(t *testing.T, g *graph.Graph, res *Result, source uint32, weights []float64) {
	t.Helper()
	want := algorithms.ReferenceSSSP(g, source, weights)
	got := res.Floats()
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("vertex %d: dist %v, want %v (not byte-identical)", v, got[v], want[v])
		}
	}
}

var testRMAT = GraphSpec{Kind: "rmat", N: 500, M: 2500, Seed: 42}

func TestDistWCC(t *testing.T) {
	g := mustBuild(t, testRMAT)
	res, err := Run(context.Background(), fastOpts(4, testRMAT, AlgoSpec{Name: "wcc"}))
	if err != nil {
		t.Fatal(err)
	}
	checkWCC(t, g, res)
	if res.Restarts != 0 {
		t.Fatalf("unexpected restarts: %d", res.Restarts)
	}
}

func TestDistBFS(t *testing.T) {
	g := mustBuild(t, testRMAT)
	res, err := Run(context.Background(), fastOpts(4, testRMAT, AlgoSpec{Name: "bfs", Source: 1}))
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, 1, algorithms.NewBFS(g, 1).Weights)
}

func TestDistSSSP(t *testing.T) {
	g := mustBuild(t, testRMAT)
	a := AlgoSpec{Name: "sssp", Source: 1, WeightSeed: 99}
	res, err := Run(context.Background(), fastOpts(4, testRMAT, a))
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, 1, algorithms.NewSSSP(g, 1, 99).Weights)
}

func TestDistSSSPByEdgePartitioning(t *testing.T) {
	g := mustBuild(t, testRMAT)
	a := AlgoSpec{Name: "sssp", Source: 1, WeightSeed: 7}
	opt := fastOpts(4, testRMAT, a)
	opt.ByEdges = true
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, 1, algorithms.NewSSSP(g, 1, 7).Weights)
}

func TestDistPageRank(t *testing.T) {
	g := mustBuild(t, testRMAT)
	res, err := Run(context.Background(), fastOpts(4, testRMAT, AlgoSpec{Name: "pagerank", Eps: 1e-10}))
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferencePageRank(g, 0.85, 1e-13, 20000)
	got := res.Floats()
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > 1e-6 {
			t.Fatalf("vertex %d: rank %v, want %v (|diff| %v)", v, got[v], want[v], d)
		}
	}
}

func TestDistSingleWorker(t *testing.T) {
	g := mustBuild(t, testRMAT)
	res, err := Run(context.Background(), fastOpts(1, testRMAT, AlgoSpec{Name: "wcc"}))
	if err != nil {
		t.Fatal(err)
	}
	checkWCC(t, g, res)
}

// TestDistFaultyLinks runs WCC through the fault proxy with heavy frame
// drops, duplicates, and reorders on every data link. At-least-once
// retransmission plus the idempotent monotone merge must still converge
// to the exact fixed point.
func TestDistFaultyLinks(t *testing.T) {
	g := mustBuild(t, testRMAT)
	proxy := NewProxy()
	defer proxy.Close()
	proxy.SetPlan(ProxyPlan{DropProb: 0.3, DupProb: 0.25, ReorderProb: 0.25, Seed: 11})

	opt := fastOpts(4, testRMAT, AlgoSpec{Name: "wcc"})
	opt.Proxy = proxy
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkWCC(t, g, res)
	if res.Restarts != 0 {
		t.Fatalf("faulty links caused %d restarts; they should be survived in place", res.Restarts)
	}
}

// TestDistPartitionHeal isolates one worker's data plane for the first
// stretch of the run. The worker keeps heartbeating (control is not
// proxied), so the coordinator must NOT restart it — graceful
// degradation — and after the heal the retransmitted backlog plus the
// monotone merge must reconcile both sides to the exact fixed point.
func TestDistPartitionHeal(t *testing.T) {
	g := mustBuild(t, testRMAT)
	proxy := NewProxy()
	defer proxy.Close()
	proxy.Isolate(1)
	go func() {
		time.Sleep(400 * time.Millisecond)
		proxy.Heal()
	}()

	opt := fastOpts(4, testRMAT, AlgoSpec{Name: "sssp", Source: 1, WeightSeed: 5})
	opt.Proxy = proxy
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, 1, algorithms.NewSSSP(g, 1, 5).Weights)
	if res.Restarts != 0 {
		t.Fatalf("partitioned-but-alive worker was restarted %d times", res.Restarts)
	}
}

// TestDistKillRestoreRepair kills a worker mid-run. The coordinator must
// notice via missed heartbeats, restart it from its checkpoint (or cold),
// broadcast the Theorem-2 boundary repair, and still converge to the
// exact fixed point. Worker 2 stays isolated during the kill so the run
// cannot quiesce before the crash is injected.
func TestDistKillRestoreRepair(t *testing.T) {
	g := mustBuild(t, testRMAT)
	proxy := NewProxy()
	defer proxy.Close()
	launcher := NewLocalLauncher()
	defer launcher.Close()
	proxy.Isolate(2)
	go func() {
		time.Sleep(500 * time.Millisecond)
		_ = launcher.Kill(1)
		time.Sleep(600 * time.Millisecond)
		proxy.Heal()
	}()

	opt := fastOpts(4, testRMAT, AlgoSpec{Name: "wcc"})
	opt.Proxy = proxy
	opt.Launcher = launcher
	opt.CkptOps = 64
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkWCC(t, g, res)
	if res.Restarts < 1 {
		t.Fatalf("killed worker was never restarted (restarts=%d)", res.Restarts)
	}
	if res.Repairs < opt.Workers-1 {
		t.Fatalf("repairs=%d, want at least %d boundary repairs", res.Repairs, opt.Workers-1)
	}
}

// TestDistKernelRestartDeterminism restarts a worker under PageRank,
// whose cumulative-push transport must absorb the replayed window: the
// result stays within eps of the reference despite rollback + repair.
func TestDistKillPageRank(t *testing.T) {
	g := mustBuild(t, testRMAT)
	proxy := NewProxy()
	defer proxy.Close()
	launcher := NewLocalLauncher()
	defer launcher.Close()
	proxy.Isolate(3)
	go func() {
		time.Sleep(500 * time.Millisecond)
		_ = launcher.Kill(0)
		time.Sleep(600 * time.Millisecond)
		proxy.Heal()
	}()

	opt := fastOpts(4, testRMAT, AlgoSpec{Name: "pagerank", Eps: 1e-10})
	opt.Proxy = proxy
	opt.Launcher = launcher
	opt.CkptOps = 64
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatalf("killed worker was never restarted (restarts=%d)", res.Restarts)
	}
	want := algorithms.ReferencePageRank(g, 0.85, 1e-13, 20000)
	got := res.Floats()
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > 1e-6 {
			t.Fatalf("vertex %d: rank %v, want %v (|diff| %v) after crash recovery", v, got[v], want[v], d)
		}
	}
}

// TestChaosSmoke is the ci.sh chaos gate: real ndworker processes via
// ExecLauncher, one SIGKILL, and a 30% drop window, asserting exact
// reconvergence. Gated behind NDGRAPH_CHAOS=1 because it builds a binary
// and spawns processes.
func TestChaosSmoke(t *testing.T) {
	if os.Getenv("NDGRAPH_CHAOS") != "1" {
		t.Skip("set NDGRAPH_CHAOS=1 to run the chaos smoke test")
	}
	bin := filepath.Join(t.TempDir(), "ndworker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ndworker")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ndworker: %v\n%s", err, out)
	}

	g := mustBuild(t, testRMAT)
	proxy := NewProxy()
	defer proxy.Close()
	launcher := NewExecLauncher(bin)
	defer launcher.Close()
	proxy.Isolate(2) // hold the run open until faults are injected
	go func() {
		time.Sleep(700 * time.Millisecond)
		proxy.SetPlan(ProxyPlan{DropProb: 0.3, Seed: 3}) // open the drop window
		_ = launcher.Kill(1)                             // SIGKILL a real process
		time.Sleep(900 * time.Millisecond)
		proxy.SetPlan(ProxyPlan{}) // close the drop window
		proxy.Heal()
	}()

	opt := fastOpts(3, testRMAT, AlgoSpec{Name: "bfs", Source: 1})
	opt.Proxy = proxy
	opt.Launcher = launcher
	opt.CkptOps = 64
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, 1, algorithms.NewBFS(g, 1).Weights)
	if res.Restarts < 1 {
		t.Fatalf("SIGKILLed worker was never restarted (restarts=%d)", res.Restarts)
	}
	t.Logf("chaos smoke: restarts=%d repairs=%d sweeps=%d in %v",
		res.Restarts, res.Repairs, res.Sweeps, res.Duration)
}
