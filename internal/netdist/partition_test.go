package netdist

import (
	"testing"

	"ndgraph/internal/gen"
)

func TestNewTable(t *testing.T) {
	tab, err := NewTable(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Parts() != 4 || tab.N() != 10 {
		t.Fatalf("parts=%d n=%d", tab.Parts(), tab.N())
	}
	total := 0
	for k := 0; k < tab.Parts(); k++ {
		lo, hi := tab.Range(k)
		if hi < lo {
			t.Fatalf("part %d: inverted range [%d,%d)", k, lo, hi)
		}
		total += int(hi - lo)
		for v := lo; v < hi; v++ {
			if tab.OwnerOf(v) != k {
				t.Fatalf("OwnerOf(%d) = %d, want %d", v, tab.OwnerOf(v), k)
			}
		}
	}
	if total != 10 {
		t.Fatalf("ranges cover %d vertices, want 10", total)
	}
}

func TestNewTableShrinksForTinyGraphs(t *testing.T) {
	tab, err := NewTable(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Parts() > 2 {
		t.Fatalf("parts=%d for a 2-vertex graph", tab.Parts())
	}
}

func TestNewTableByEdges(t *testing.T) {
	g, err := gen.RMAT(256, 2048, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTableByEdges(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != g.N() {
		t.Fatalf("table covers %d, graph has %d", tab.N(), g.N())
	}
	// Every vertex is owned by exactly one partition and partitions are
	// contiguous and ordered.
	prev := -1
	for v := uint32(0); int(v) < g.N(); v++ {
		k := tab.OwnerOf(v)
		if k < prev {
			t.Fatalf("owner went backwards at vertex %d", v)
		}
		prev = k
	}
	// Edge balance: no partition should hold everything (R-MAT is skewed,
	// so only a sanity bound).
	deg := make([]int, tab.Parts())
	for v := uint32(0); int(v) < g.N(); v++ {
		deg[tab.OwnerOf(v)] += g.Degree(v)
	}
	for k, d := range deg {
		if d == 0 {
			continue // permissible for extreme skew
		}
		t.Logf("part %d: %d incident edges", k, d)
	}
}

func TestTableFromStartsRejectsMalformed(t *testing.T) {
	for _, starts := range [][]uint32{
		nil,
		{0},
		{1, 5, 10},    // must start at 0
		{0, 10, 5, 0}, // not monotone
	} {
		if _, err := TableFromStarts(starts); err == nil {
			t.Errorf("TableFromStarts(%v) accepted", starts)
		}
	}
	tab, err := TableFromStarts([]uint32{0, 5, 5, 10})
	if err != nil {
		t.Fatalf("empty middle partition rejected: %v", err)
	}
	if lo, hi := tab.Range(1); lo != 5 || hi != 5 {
		t.Fatalf("empty partition range [%d,%d)", lo, hi)
	}
}
