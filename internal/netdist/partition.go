// Package netdist executes the monotone propagation algorithms of the
// paper's Theorem 2 family (WCC, BFS, SSSP) plus cumulative-push PageRank
// across N worker *processes* speaking a length-prefixed TCP protocol —
// the real-transport successor of package dist's in-process simulation.
//
// The design leans on the paper's central result instead of on distributed
// coordination: eligible algorithms reconverge from perturbed state, so
// the runtime's only obligations are (a) no update is lost without a retry
// path — at-least-once delivery via ack/retransmit with jittered
// exponential backoff — and (b) a recovering worker's boundary is
// re-scheduled, never the whole world. Concretely:
//
//   - the graph is partitioned into contiguous vertex ranges, one per
//     worker; cross-partition edges become messages, intra-partition edges
//     short-circuit through the worker's local queue;
//   - a coordinator supervises workers through heartbeats and restarts a
//     crashed worker from its last CRC-checksummed checkpoint (falling
//     back to the previous generation if the newest is torn);
//   - after a restart, the coordinator broadcasts a boundary repair: every
//     peer re-sends its current value along each edge crossing into the
//     restored partition, and the restored worker re-sends its own
//     crossing out-edges — Theorem 2's ripple then regenerates everything
//     the crash destroyed, exactly like internal/fault's heal rule;
//   - a partitioned worker keeps computing its local subgraph; its
//     outbound messages accumulate as unacknowledged batches and drain on
//     heal, where the monotone merge reconciles both sides;
//   - package-level fault injection is a live-connection concern: Proxy
//     interposes on worker↔worker links and injects drops, delays,
//     duplicates, reorders, and full partitions at frame granularity.
package netdist

import (
	"fmt"
	"sort"

	"ndgraph/internal/graph"
)

// Table is a partition table: worker k owns the contiguous vertex range
// [starts[k], starts[k+1]). Contiguity makes ownership a binary search and
// keeps each worker's out-edge range contiguous in the canonical edge
// order (the checkpoint exploits this).
type Table struct {
	starts []uint32 // len parts+1; starts[0] == 0, starts[parts] == n
}

// NewTable splits n vertices into parts contiguous ranges of near-equal
// vertex count.
func NewTable(n, parts int) (Table, error) {
	if parts < 1 {
		return Table{}, fmt.Errorf("netdist: partition count %d < 1", parts)
	}
	if parts > n && n > 0 {
		parts = n
	}
	starts := make([]uint32, parts+1)
	for k := 0; k <= parts; k++ {
		starts[k] = uint32(k * n / parts)
	}
	return Table{starts: starts}, nil
}

// NewTableByEdges splits g's vertices into parts contiguous ranges
// balancing total incident edge count (in+out), the quantity that actually
// drives per-worker compute and message load on skewed graphs.
func NewTableByEdges(g *graph.Graph, parts int) (Table, error) {
	n := g.N()
	if parts < 1 {
		return Table{}, fmt.Errorf("netdist: partition count %d < 1", parts)
	}
	if parts > n && n > 0 {
		parts = n
	}
	// Prefix sum of degree, then cut at equal shares.
	prefix := make([]int64, n+1)
	for v := uint32(0); int(v) < n; v++ {
		prefix[v+1] = prefix[v] + int64(g.Degree(v))
	}
	total := prefix[n]
	starts := make([]uint32, parts+1)
	starts[parts] = uint32(n)
	for k := 1; k < parts; k++ {
		target := total * int64(k) / int64(parts)
		cut := sort.Search(n, func(v int) bool { return prefix[v+1] >= target })
		starts[k] = uint32(cut)
	}
	// Enforce monotonicity in degenerate cases (hub vertices can make two
	// cuts coincide; empty ranges are legal).
	for k := 1; k <= parts; k++ {
		if starts[k] < starts[k-1] {
			starts[k] = starts[k-1]
		}
	}
	return Table{starts: starts}, nil
}

// TableFromStarts rebuilds a table from its serialized boundary list (the
// coordinator ships starts to workers in the init message).
func TableFromStarts(starts []uint32) (Table, error) {
	if len(starts) < 2 || starts[0] != 0 {
		return Table{}, fmt.Errorf("netdist: malformed partition boundaries %v", starts)
	}
	for k := 1; k < len(starts); k++ {
		if starts[k] < starts[k-1] {
			return Table{}, fmt.Errorf("netdist: non-monotonic partition boundaries %v", starts)
		}
	}
	return Table{starts: starts}, nil
}

// Starts returns the boundary list (length Parts+1). The returned slice
// aliases internal storage and must not be modified.
func (t Table) Starts() []uint32 { return t.starts }

// Parts returns the number of partitions.
func (t Table) Parts() int { return len(t.starts) - 1 }

// N returns the total vertex count covered by the table.
func (t Table) N() int { return int(t.starts[len(t.starts)-1]) }

// Range returns partition k's vertex range [lo, hi).
func (t Table) Range(k int) (lo, hi uint32) { return t.starts[k], t.starts[k+1] }

// OwnerOf returns the partition owning vertex v.
func (t Table) OwnerOf(v uint32) int {
	// First boundary strictly greater than v, minus one.
	lo, hi := 1, len(t.starts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.starts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
