package netdist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ndgraph/internal/rng"
)

// ProxyPlan configures fault injection on proxied links. Probabilities
// are per data-plane frame (msgData and msgAck); control frames (the peer
// hello) always pass so connections can be established even under heavy
// fault load.
type ProxyPlan struct {
	// DropProb discards the frame (the sender's ack timeout and
	// retransmission must recover it).
	DropProb float64
	// DupProb forwards the frame twice (the receiver's idempotent merge
	// must absorb it).
	DupProb float64
	// ReorderProb holds the frame back until after the next one.
	ReorderProb float64
	// DelayProb sleeps up to Delay before forwarding.
	DelayProb float64
	Delay     time.Duration
	// Seed makes a fault schedule reproducible per (route, connection).
	Seed uint64
}

// Proxy interposes on worker↔worker links at frame granularity: each
// ordered worker pair gets a stable loopback listener whose backend can
// be retargeted when a worker restarts at a new address. Because the
// proxy parses the length-prefixed framing, faults hit whole protocol
// messages — a dropped frame is a lost batch or a lost ack, never a torn
// byte stream — and a blocked route is a clean network partition: frames
// silently vanish in both directions while both TCP connections stay up.
type Proxy struct {
	mu       sync.Mutex
	routes   map[[2]int]*proxyRoute
	plan     ProxyPlan
	blocked  map[[2]int]bool
	isolated map[int]bool
	conns    int // connection counter for per-connection fault streams
	closed   bool
}

type proxyRoute struct {
	p      *Proxy
	key    [2]int // {src worker, dst worker}
	ln     net.Listener
	mu     sync.Mutex
	target string
	live   []net.Conn
}

// NewProxy returns an empty proxy.
func NewProxy() *Proxy {
	return &Proxy{
		routes:   make(map[[2]int]*proxyRoute),
		blocked:  make(map[[2]int]bool),
		isolated: make(map[int]bool),
	}
}

// SetPlan installs the fault plan applied to data-plane frames on every
// route. Takes effect immediately, including on live connections, so tests
// can open and close fault windows mid-run.
func (p *Proxy) SetPlan(plan ProxyPlan) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

func (p *Proxy) currentPlan() ProxyPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plan
}

// RoutePair ensures a proxy listener for the ordered link src→dst
// forwarding to target, and returns its stable listen address. Calling
// again for the same pair retargets the backend without changing the
// listen address.
func (p *Proxy) RoutePair(src, dst int, target string) (string, error) {
	key := [2]int{src, dst}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", fmt.Errorf("netdist: proxy closed")
	}
	if rt, ok := p.routes[key]; ok {
		rt.retarget(target)
		return rt.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	rt := &proxyRoute{p: p, key: key, ln: ln, target: target}
	p.routes[key] = rt
	go rt.acceptLoop()
	return ln.Addr().String(), nil
}

// Retarget points the src→dst route at a new backend (a restarted worker)
// and cuts live connections so the sender redials through the unchanged
// proxy address.
func (p *Proxy) Retarget(src, dst int, target string) {
	p.mu.Lock()
	rt := p.routes[[2]int{src, dst}]
	p.mu.Unlock()
	if rt != nil {
		rt.retarget(target)
	}
}

// Block makes the ordered link src→dst a black hole: every frame is
// discarded while connections stay up.
func (p *Proxy) Block(src, dst int) {
	p.mu.Lock()
	p.blocked[[2]int{src, dst}] = true
	p.mu.Unlock()
}

// Isolate blocks every link into and out of worker k — a full network
// partition of that worker's data plane. Effective immediately, including
// for routes created later.
func (p *Proxy) Isolate(k int) {
	p.mu.Lock()
	p.isolated[k] = true
	p.mu.Unlock()
}

// Heal lifts every block and isolation.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.blocked = make(map[[2]int]bool)
	p.isolated = make(map[int]bool)
	p.mu.Unlock()
}

// Close shuts all listeners and live connections down.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	routes := p.routes
	p.routes = make(map[[2]int]*proxyRoute)
	p.mu.Unlock()
	for _, rt := range routes {
		rt.ln.Close()
		rt.mu.Lock()
		for _, c := range rt.live {
			c.Close()
		}
		rt.live = nil
		rt.mu.Unlock()
	}
	return nil
}

func (p *Proxy) isBlocked(key [2]int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[key] || p.isolated[key[0]] || p.isolated[key[1]]
}

func (p *Proxy) faultStream(key [2]int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns++
	return rng.Mix64(p.plan.Seed ^ uint64(key[0])<<40 ^ uint64(key[1])<<20 ^ uint64(p.conns))
}

func (rt *proxyRoute) retarget(target string) {
	rt.mu.Lock()
	rt.target = target
	live := rt.live
	rt.live = nil
	rt.mu.Unlock()
	for _, c := range live {
		c.Close()
	}
}

func (rt *proxyRoute) acceptLoop() {
	for {
		in, err := rt.ln.Accept()
		if err != nil {
			return
		}
		rt.mu.Lock()
		target := rt.target
		rt.mu.Unlock()
		out, err := net.DialTimeout("tcp", target, dialTimeout)
		if err != nil {
			in.Close()
			continue
		}
		rt.mu.Lock()
		rt.live = append(rt.live, in, out)
		rt.mu.Unlock()
		inFC := newFrameConn(in, 0, connWriteTO)
		outFC := newFrameConn(out, 0, connWriteTO)
		go rt.pump(inFC, outFC, rng.New(rt.p.faultStream(rt.key)))
		go rt.pump(outFC, inFC, rng.New(rt.p.faultStream(rt.key)))
	}
}

// pump forwards frames from src to dst, applying the current fault plan
// to data-plane frames. The two directions of one connection run as two
// pumps, so drops and delays hit batches and acks independently.
func (rt *proxyRoute) pump(src, dst *frameConn, r *rng.Xoshiro256StarStar) {
	defer src.Close()
	defer dst.Close()
	var stashTyp byte
	var stash []byte
	stashed := false
	for {
		typ, payload, err := src.readFrame()
		if err != nil {
			return
		}
		if rt.p.isBlocked(rt.key) {
			continue // partition: the frame silently vanishes
		}
		plan := rt.p.currentPlan()
		if typ == msgData || typ == msgAck {
			if plan.DropProb > 0 && r.Float64() < plan.DropProb {
				continue
			}
			if plan.DelayProb > 0 && plan.Delay > 0 && r.Float64() < plan.DelayProb {
				time.Sleep(time.Duration(r.Float64() * float64(plan.Delay)))
			}
			if plan.ReorderProb > 0 && !stashed && r.Float64() < plan.ReorderProb {
				stashTyp, stash, stashed = typ, payload, true
				continue
			}
			if plan.DupProb > 0 && r.Float64() < plan.DupProb {
				if err := dst.writeFrame(typ, payload); err != nil {
					return
				}
			}
		}
		if err := dst.writeFrame(typ, payload); err != nil {
			return
		}
		if stashed {
			stashed = false
			if err := dst.writeFrame(stashTyp, stash); err != nil {
				return
			}
		}
	}
}
