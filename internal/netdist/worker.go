package netdist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ndgraph/internal/rng"
)

// Worker-side defaults; the coordinator overrides them through initMsg.
const (
	defaultRTO     = 200 * time.Millisecond
	defaultHB      = 100 * time.Millisecond
	defaultCkptOps = 2048
	maxBatch       = 512 // entries per data frame
	helloTimeout   = 5 * time.Second
	dialTimeout    = 2 * time.Second
	connWriteTO    = 5 * time.Second
)

// cmdKind enumerates the compute goroutine's command queue. Everything
// that touches kernel state funnels through this queue, so the kernel
// needs no locking and every checkpoint is a consistent cut.
type cmdKind int

const (
	cmdStart cmdKind = iota
	cmdDeliver
	cmdRepair
	cmdFetch
)

type cmd struct {
	kind   cmdKind
	batch  dataBatch // cmdDeliver
	target int       // cmdRepair
}

// worker is one running partition executor: a kernel plus the networking
// that feeds it. One worker serves exactly one coordinator session; a
// supervised restart builds a fresh worker.
type worker struct {
	id   int
	t    Table
	kern kernel
	algo string
	dir  string
	lo   uint32
	hi   uint32

	rto     time.Duration
	hbEvery time.Duration
	ckptOps int64

	ctx    context.Context
	cancel context.CancelFunc

	coord *frameConn

	// Compute queue: commands first, then the vertex frontier.
	mu       sync.Mutex
	cond     *sync.Cond
	cmds     []cmd
	frontier []uint32
	inQ      []bool

	busy    atomic.Bool
	stopped atomic.Bool

	senders []*peerSender // indexed by worker id; nil for self

	recv    atomic.Int64 // entries delivered to the kernel (incl. local)
	adopted atomic.Int64 // deliveries that improved state
	sentN   atomic.Int64 // entries handed to peer senders
	ackedN  atomic.Int64 // entries in acknowledged batches
	retrans atomic.Int64 // batch retransmissions

	adoptedSinceCkpt int64  // compute goroutine only
	restored         string // which checkpoint generation loaded ("" = cold)
	pendingSeeds     []uint32

	wg sync.WaitGroup
}

// RunWorker serves one coordinator session on ln: waits for the
// coordinator's control connection, executes its init/start/…/shutdown
// protocol, and exchanges data frames with peer workers. It returns nil
// after a clean shutdown, or the first fatal error. Canceling ctx is the
// in-process analog of SIGKILL: all goroutines unwind without flushing
// anything.
func RunWorker(ctx context.Context, ln net.Listener) error {
	ctx, cancel := context.WithCancel(ctx)
	w := &worker{ctx: ctx, cancel: cancel, rto: defaultRTO, hbEvery: defaultHB, ckptOps: defaultCkptOps}
	w.cond = sync.NewCond(&w.mu)

	done := make(chan error, 1)
	go func() { <-ctx.Done(); ln.Close(); w.stop() }()
	// The accept loop is itself wg-tracked so its wg.Add for connection
	// handlers can never race a wg.Wait that already observed zero.
	w.wg.Add(1)
	go func() { defer w.wg.Done(); w.acceptLoop(ln, done) }()

	select {
	case err := <-done:
		cancel()
		ln.Close()
		w.stop()
		w.wg.Wait()
		return err
	case <-ctx.Done():
		w.wg.Wait()
		return ctx.Err()
	}
}

// stop wakes and terminates the compute goroutine.
func (w *worker) stop() {
	w.stopped.Store(true)
	w.mu.Lock()
	w.cond.Broadcast()
	w.mu.Unlock()
}

// acceptLoop multiplexes the single listener: the first frame on every
// connection is a hello identifying the dialer as the coordinator or a
// peer worker.
func (w *worker) acceptLoop(ln net.Listener, done chan<- error) {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case done <- nil:
			default:
			}
			return
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			fc := newFrameConn(c, 0, connWriteTO)
			_ = c.SetReadDeadline(time.Now().Add(helloTimeout))
			typ, p, err := fc.readFrame()
			_ = c.SetReadDeadline(time.Time{})
			if err != nil || typ != msgHello {
				fc.Close()
				return
			}
			var hello helloMsg
			if json.Unmarshal(p, &hello) != nil {
				fc.Close()
				return
			}
			switch hello.Role {
			case "coord":
				done <- w.serveCoord(fc)
			case "peer":
				w.servePeer(fc)
			default:
				fc.Close()
			}
		}()
	}
}

// serveCoord runs the control-plane protocol. The worker's lifetime is
// bound to this connection: when it breaks, the coordinator is gone and
// the worker exits.
func (w *worker) serveCoord(fc *frameConn) error {
	w.coord = fc
	defer fc.Close()
	for {
		typ, p, err := fc.readFrame()
		if err != nil {
			if w.stopped.Load() {
				return nil
			}
			return fmt.Errorf("netdist: worker %d lost coordinator: %w", w.id, err)
		}
		switch typ {
		case msgInit:
			var init initMsg
			if err := json.Unmarshal(p, &init); err != nil {
				return fmt.Errorf("netdist: worker init: %w", err)
			}
			if err := w.initialize(init); err != nil {
				return err
			}
			if err := fc.writeJSON(msgReady, readyMsg{Worker: w.id, Restored: w.restored}); err != nil {
				return err
			}
		case msgStart:
			w.enqueueCmd(cmd{kind: cmdStart})
		case msgProbe:
			var probe struct {
				Epoch int64 `json:"epoch"`
			}
			_ = json.Unmarshal(p, &probe)
			if err := fc.writeJSON(msgProbeRep, w.snapshot(probe.Epoch)); err != nil {
				return err
			}
		case msgRepair:
			var rep repairMsg
			if json.Unmarshal(p, &rep) == nil {
				w.enqueueCmd(cmd{kind: cmdRepair, target: rep.Target})
			}
		case msgPeerUpd:
			var upd peerUpdateMsg
			if json.Unmarshal(p, &upd) == nil && upd.Peer >= 0 && upd.Peer < len(w.senders) {
				if s := w.senders[upd.Peer]; s != nil {
					s.setAddr(upd.Addr)
				}
			}
		case msgFetch:
			w.enqueueCmd(cmd{kind: cmdFetch})
		case msgShutdown:
			w.stop()
			w.cancel()
			return nil
		}
	}
}

// initialize rebuilds the partition state described by init: graph from
// spec, kernel, checkpoint restore when asked, peer senders, heartbeats,
// and the compute goroutine.
func (w *worker) initialize(init initMsg) error {
	t, err := TableFromStarts(init.Starts)
	if err != nil {
		return err
	}
	g, err := init.Graph.Build()
	if err != nil {
		return err
	}
	if t.N() != g.N() {
		return fmt.Errorf("netdist: partition table covers %d vertices, graph has %d", t.N(), g.N())
	}
	w.id = init.Worker
	w.t = t
	w.algo = init.Algo.Name
	w.dir = init.Dir
	w.lo, w.hi = t.Range(w.id)
	if init.RTOMilli > 0 {
		w.rto = time.Duration(init.RTOMilli) * time.Millisecond
	}
	if init.HBMilli > 0 {
		w.hbEvery = time.Duration(init.HBMilli) * time.Millisecond
	}
	if init.CkptOps > 0 {
		w.ckptOps = int64(init.CkptOps)
	}
	w.kern, err = newKernel(init.Algo, g, t, w.id)
	if err != nil {
		return err
	}
	w.inQ = make([]bool, w.hi-w.lo)
	w.pendingSeeds = w.kern.reset()
	if init.Restore {
		ck, gen, ok, err := restoreCheckpoint(w.dir, w.algo, w.id, w.lo, w.hi)
		if err != nil {
			return err
		}
		if ok {
			if err := w.kern.decodeState(ck.Words); err != nil {
				return err
			}
			w.restored = gen
		}
		// Neither generation loadable: cold start from the seeds above —
		// the boundary repair ripple still regenerates everything.
	}
	if w.dir != "" {
		if err := os.MkdirAll(w.dir, 0o755); err != nil {
			return err
		}
	}
	w.senders = make([]*peerSender, t.Parts())
	for p := 0; p < t.Parts(); p++ {
		if p == w.id || p >= len(init.Peers) {
			continue
		}
		s := newPeerSender(w, p, init.Peers[p])
		w.senders[p] = s
		w.wg.Add(1)
		go func() { defer w.wg.Done(); s.run() }()
	}
	w.wg.Add(2)
	go func() { defer w.wg.Done(); w.computeLoop() }()
	go func() { defer w.wg.Done(); w.heartbeatLoop() }()
	return nil
}

// servePeer receives data batches from one peer, acking every batch
// unconditionally: the kernel's merge is idempotent, so re-delivery after
// a lost ack is absorbed, and acking before processing is safe because a
// crash after the ack rolls the kernel back to a checkpoint whose gaps
// the boundary repair re-fills.
func (w *worker) servePeer(fc *frameConn) {
	defer fc.Close()
	for {
		typ, p, err := fc.readFrame()
		if err != nil {
			return
		}
		if typ != msgData {
			continue
		}
		b, err := decodeBatch(p)
		if err != nil {
			return
		}
		if err := fc.writeFrame(msgAck, encodeAck(b.seq)); err != nil {
			return
		}
		w.enqueueCmd(cmd{kind: cmdDeliver, batch: b})
	}
}

func (w *worker) enqueueCmd(c cmd) {
	w.mu.Lock()
	w.cmds = append(w.cmds, c)
	w.cond.Signal()
	w.mu.Unlock()
}

// schedule puts owned vertex v on the frontier unless already queued.
// Called from the compute goroutine (via emit) only.
func (w *worker) schedule(v uint32) {
	w.mu.Lock()
	if !w.inQ[v-w.lo] {
		w.inQ[v-w.lo] = true
		w.frontier = append(w.frontier, v)
		w.cond.Signal()
	}
	w.mu.Unlock()
}

// emit routes one outgoing update: intra-partition edges short-circuit
// into the kernel, cross-partition edges go to the peer sender.
func (w *worker) emit(e, dst uint32, val uint64) {
	if dst >= w.lo && dst < w.hi {
		_, adopted, sched := w.kern.deliver(e, val)
		w.recv.Add(1)
		if adopted {
			w.adopted.Add(1)
			w.adoptedSinceCkpt++
		}
		if sched {
			w.schedule(dst)
		}
		return
	}
	if s := w.senders[w.t.OwnerOf(dst)]; s != nil {
		s.enqueue(batchEntry{edge: e, val: val})
		w.sentN.Add(1)
	}
}

// computeLoop is the worker's single mutator of kernel state. It drains
// commands before frontier vertices so control actions (start, repair,
// fetch) cannot starve behind a long propagation.
func (w *worker) computeLoop() {
	for {
		w.mu.Lock()
		for !w.stopped.Load() && len(w.cmds) == 0 && len(w.frontier) == 0 {
			w.busy.Store(false)
			w.cond.Wait()
		}
		if w.stopped.Load() {
			w.mu.Unlock()
			return
		}
		w.busy.Store(true)
		if len(w.cmds) > 0 {
			c := w.cmds[0]
			w.cmds = w.cmds[1:]
			w.mu.Unlock()
			w.handleCmd(c)
			continue
		}
		v := w.frontier[0]
		w.frontier = w.frontier[1:]
		w.inQ[v-w.lo] = false
		w.mu.Unlock()
		w.kern.process(v, w.emit)
		w.maybeCheckpoint()
	}
}

func (w *worker) handleCmd(c cmd) {
	switch c.kind {
	case cmdStart:
		if w.restored != "" {
			// Recovery: re-send the boundary outward (peers may have lost
			// everything between our checkpoint and the crash) and
			// re-schedule the owned partition; Theorem 2's ripple does the
			// rest. Peers are repaired inward by the coordinator's
			// msgRepair broadcast.
			w.kern.boundary(func(dst uint32) bool { return dst < w.lo || dst >= w.hi }, w.emit)
			for v := w.lo; v < w.hi; v++ {
				w.schedule(v)
			}
		} else {
			for _, v := range w.pendingSeeds {
				w.schedule(v)
			}
		}
	case cmdDeliver:
		for _, e := range c.batch.entries {
			v, adopted, sched := w.kern.deliver(e.edge, e.val)
			w.recv.Add(1)
			if adopted {
				w.adopted.Add(1)
				w.adoptedSinceCkpt++
			}
			if sched {
				w.schedule(v)
			}
		}
		w.maybeCheckpoint()
	case cmdRepair:
		tLo, tHi := w.t.Range(c.target)
		w.kern.boundary(func(dst uint32) bool { return dst >= tLo && dst < tHi }, w.emit)
	case cmdFetch:
		vals := w.kern.values()
		if w.coord != nil {
			_ = w.coord.writeJSON(msgValues, valuesMsg{Worker: w.id, Lo: w.lo, Values: vals})
		}
	}
}

// maybeCheckpoint persists kernel state every ckptOps adoptions. Runs on
// the compute goroutine between commands, so the snapshot is a consistent
// cut of the partition.
func (w *worker) maybeCheckpoint() {
	if w.dir == "" || w.adoptedSinceCkpt < w.ckptOps {
		return
	}
	w.adoptedSinceCkpt = 0
	_ = saveCheckpoint(w.dir, checkpoint{
		Algo: w.algo, Worker: w.id, Lo: w.lo, Hi: w.hi, Words: w.kern.encodeState(),
	})
}

// snapshot assembles a quiescence probe reply from the live counters.
func (w *worker) snapshot(epoch int64) probeReplyMsg {
	w.mu.Lock()
	queue := int64(len(w.cmds) + len(w.frontier))
	w.mu.Unlock()
	var unacked int64
	for _, s := range w.senders {
		if s != nil {
			unacked += s.unackedEntries()
		}
	}
	return probeReplyMsg{
		Worker:   w.id,
		Epoch:    epoch,
		QueueLen: queue,
		Busy:     w.busy.Load(),
		Unacked:  unacked,
		Sent:     w.sentN.Load(),
		Acked:    w.ackedN.Load(),
		Recv:     w.recv.Load(),
		Adopted:  w.adopted.Load(),
	}
}

func (w *worker) heartbeatLoop() {
	tick := time.NewTicker(w.hbEvery)
	defer tick.Stop()
	var seq int64
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-tick.C:
		}
		seq++
		w.mu.Lock()
		queue := int64(len(w.cmds) + len(w.frontier))
		w.mu.Unlock()
		var unacked int64
		for _, s := range w.senders {
			if s != nil {
				unacked += s.unackedEntries()
			}
		}
		hb := heartbeatMsg{
			Worker:      w.id,
			Seq:         seq,
			Messages:    w.recv.Load(),
			Adopted:     w.adopted.Load(),
			Retransmits: w.retrans.Load(),
			Unacked:     unacked,
			QueueLen:    queue,
			Busy:        w.busy.Load(),
		}
		if w.coord != nil {
			if err := w.coord.writeJSON(msgHeartbeat, hb); err != nil {
				return // control connection gone; serveCoord exits too
			}
		}
	}
}

// --- peer sender: at-least-once delivery with jittered backoff ---

// peerSender owns the outbound link to one peer: batch accumulation,
// sequence numbers, the unacked window, retransmission with jittered
// exponential backoff, and redial (including retarget after the peer
// restarts at a new address).
type peerSender struct {
	w    *worker
	peer int

	mu       sync.Mutex
	addr     string
	pending  []batchEntry
	unacked  map[uint64]*outBatch
	order    []uint64
	nextSeq  uint64
	conn     *frameConn
	failedAt time.Time
	fails    int

	r    *rng.Xoshiro256StarStar
	kick chan struct{}
}

type outBatch struct {
	b        dataBatch
	attempt  int
	lastSent time.Time
}

func newPeerSender(w *worker, peer int, addr string) *peerSender {
	return &peerSender{
		w: w, peer: peer, addr: addr,
		unacked: make(map[uint64]*outBatch),
		r:       rng.New(rng.Mix64(uint64(w.id)<<32 | uint64(peer)<<1 | 1)),
		kick:    make(chan struct{}, 1),
	}
}

func (s *peerSender) enqueue(e batchEntry) {
	s.mu.Lock()
	s.pending = append(s.pending, e)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// setAddr retargets the sender after the peer restarted at a new
// address. The current connection is cut; every unacked batch will be
// retransmitted to the new incarnation, whose merge absorbs whatever the
// old incarnation already applied.
func (s *peerSender) setAddr(addr string) {
	s.mu.Lock()
	s.addr = addr
	s.fails = 0
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	for _, ob := range s.unacked {
		ob.attempt = 0 // resend immediately
	}
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *peerSender) unackedEntries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.pending))
	for _, ob := range s.unacked {
		n += int64(len(ob.b.entries))
	}
	return n
}

func (s *peerSender) run() {
	interval := s.w.rto / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.w.ctx.Done():
			s.mu.Lock()
			if s.conn != nil {
				s.conn.Close()
			}
			s.mu.Unlock()
			return
		case <-s.kick:
		case <-tick.C:
		}
		s.flush()
	}
}

// rtoFor computes the retransmission delay before attempt n (1-based):
// exponential in the attempt count, capped, with ±25% multiplicative
// jitter so a fleet of retransmitting senders does not synchronize.
func (s *peerSender) rtoFor(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	base := s.w.rto << shift
	// Uniform in [0.75, 1.25) × base.
	return base*3/4 + time.Duration(s.r.Uint64n(uint64(base)/2+1))
}

// flush seals pending entries into batches and (re)transmits everything
// due. Send errors drop the connection; the next tick redials.
func (s *peerSender) flush() {
	now := time.Now()
	s.mu.Lock()
	for len(s.pending) > 0 {
		n := len(s.pending)
		if n > maxBatch {
			n = maxBatch
		}
		s.nextSeq++
		ob := &outBatch{b: dataBatch{seq: s.nextSeq, entries: append([]batchEntry(nil), s.pending[:n]...)}}
		s.pending = s.pending[n:]
		s.unacked[ob.b.seq] = ob
		s.order = append(s.order, ob.b.seq)
	}
	var due []*outBatch
	live := s.order[:0]
	for _, seq := range s.order {
		ob, ok := s.unacked[seq]
		if !ok {
			continue
		}
		live = append(live, seq)
		if ob.attempt == 0 || now.Sub(ob.lastSent) >= s.rtoFor(ob.attempt) {
			due = append(due, ob)
		}
	}
	s.order = live
	addr := s.addr
	conn := s.conn
	canDial := s.conn == nil && len(due) > 0 && now.Sub(s.failedAt) >= s.dialBackoffLocked()
	s.mu.Unlock()

	if len(due) == 0 {
		return
	}
	if conn == nil {
		if !canDial {
			return
		}
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			s.mu.Lock()
			s.fails++
			s.failedAt = now
			s.mu.Unlock()
			return
		}
		fc := newFrameConn(c, 0, connWriteTO)
		if err := fc.writeJSON(msgHello, helloMsg{Role: "peer", From: s.w.id}); err != nil {
			fc.Close()
			return
		}
		s.mu.Lock()
		s.conn = fc
		s.fails = 0
		conn = fc
		s.mu.Unlock()
		s.w.wg.Add(1)
		go func() { defer s.w.wg.Done(); s.readAcks(fc) }()
	}
	for _, ob := range due {
		s.mu.Lock()
		if _, stillUnacked := s.unacked[ob.b.seq]; !stillUnacked {
			s.mu.Unlock()
			continue
		}
		ob.attempt++
		ob.lastSent = time.Now()
		retransmit := ob.attempt > 1
		s.mu.Unlock()
		if retransmit {
			s.w.retrans.Add(1)
		}
		if err := conn.writeFrame(msgData, encodeBatch(ob.b)); err != nil {
			s.dropConn(conn)
			return
		}
	}
}

// dialBackoffLocked returns the wait before the next dial attempt after
// consecutive failures (jittered exponential, capped at ~2s).
func (s *peerSender) dialBackoffLocked() time.Duration {
	if s.fails == 0 {
		return 0
	}
	shift := s.fails - 1
	if shift > 4 {
		shift = 4
	}
	base := s.w.rto / 2 << shift
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	return base*3/4 + time.Duration(s.r.Uint64n(uint64(base)/2+1))
}

func (s *peerSender) dropConn(fc *frameConn) {
	fc.Close()
	s.mu.Lock()
	if s.conn == fc {
		s.conn = nil
	}
	s.mu.Unlock()
}

// readAcks drains acknowledgements from one connection, retiring batches
// from the unacked window.
func (s *peerSender) readAcks(fc *frameConn) {
	for {
		typ, p, err := fc.readFrame()
		if err != nil {
			s.dropConn(fc)
			return
		}
		if typ != msgAck {
			continue
		}
		seq, err := decodeAck(p)
		if err != nil {
			s.dropConn(fc)
			return
		}
		s.mu.Lock()
		if ob, ok := s.unacked[seq]; ok {
			delete(s.unacked, seq)
			s.w.ackedN.Add(int64(len(ob.b.entries)))
		}
		s.mu.Unlock()
	}
}
