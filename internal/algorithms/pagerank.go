package algorithms

import (
	"math"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// PageRank is the paper's representative fixed-point iteration algorithm,
// implemented with local convergence as in the paper (and in [Kyrola et
// al., GraphChi]): vertex v stops propagating once |f(D_v) − D_v| < ε.
//
// Data layout: D_v is the current rank; each out-edge of v carries
// rank(v) / outdeg(v). The update gathers the in-edge contributions, so
// under nondeterministic execution the conflicts on an edge (u→v) are
// writes by f(u) racing reads by f(v) — read-write conflicts only, the
// Theorem 1 case.
type PageRank struct {
	// Epsilon is the local convergence threshold ε. Smaller values
	// converge more precisely and, per Section V-C, push nondeterministic
	// run-to-run variance toward less significant pages.
	Epsilon float64
	// Damping is the damping factor (0.85 in the standard formulation).
	Damping float64
}

// NewPageRank returns a PageRank with threshold eps and standard damping.
func NewPageRank(eps float64) *PageRank {
	return &PageRank{Epsilon: eps, Damping: 0.85}
}

// Name implements Algorithm.
func (*PageRank) Name() string { return "pagerank" }

// Properties implements Algorithm: PageRank converges under BSP, is not
// monotonic (ranks move both ways), and converges approximately.
func (*PageRank) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:                   "pagerank",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              false,
		Convergence:            eligibility.Approximate,
	}
}

// Setup initializes every vertex to rank 1 and every edge (u→v) to
// 1/outdeg(u), and schedules all vertices — the paper's initial state.
func (p *PageRank) Setup(e *core.Engine) {
	g := e.Graph()
	for v := range e.Vertices {
		e.Vertices[v] = edgedata.FromFloat64(1.0)
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		outDeg := g.OutDegree(v)
		if outDeg == 0 {
			continue
		}
		lo, hi := g.OutEdgeIndex(v)
		w := edgedata.FromFloat64(1.0 / float64(outDeg))
		for eIdx := lo; eIdx < hi; eIdx++ {
			e.Edges.Store(eIdx, w)
		}
	}
	e.Frontier().ScheduleAll()
}

// Update is f(v): gather in-edge contributions, compute the damped rank,
// and scatter rank/outdeg to the out-edges unless locally converged.
func (p *PageRank) Update(ctx core.VertexView) {
	sum := 0.0
	for k := 0; k < ctx.InDegree(); k++ {
		sum += edgedata.ToFloat64(ctx.InEdgeVal(k))
	}
	old := edgedata.ToFloat64(ctx.Vertex())
	rank := (1 - p.Damping) + p.Damping*sum
	ctx.SetVertex(edgedata.FromFloat64(rank))
	if math.Abs(rank-old) < p.Epsilon {
		return // locally converged: no scatter, no rescheduling
	}
	ctx.Yield()
	if out := ctx.OutDegree(); out > 0 {
		w := edgedata.FromFloat64(rank / float64(out))
		for k := 0; k < out; k++ {
			ctx.SetOutEdgeVal(k, w)
		}
	}
}

// ResidualDelta is PageRank's residual metric for the online estimator and
// the ε-aware stopping rule: the absolute rank movement |Δrank| of one
// vertex commit. Wire it into async.Options/NoSyncOptions.ResidualDelta; a
// windowed mean of these deltas trending below ε is the Eedi et al.
// termination condition for non-blocking PageRank.
func (*PageRank) ResidualDelta(old, new uint64) float64 {
	return math.Abs(edgedata.ToFloat64(new) - edgedata.ToFloat64(old))
}

// Ranks decodes the converged rank vector from the engine.
func (p *PageRank) Ranks(e *core.Engine) []float64 {
	out := make([]float64, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = edgedata.ToFloat64(w)
	}
	return out
}

// ReferencePageRank computes ranks by damped power iteration over the full
// graph until the L∞ change falls below eps — an independent
// implementation used to validate the engine-based one. It mirrors the
// engine formulation (no dangling-mass redistribution) so converged values
// are comparable.
func ReferencePageRank(g *graph.Graph, damping, eps float64, maxIter int) []float64 {
	n := g.N()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0
	}
	for iter := 0; iter < maxIter; iter++ {
		for v := uint32(0); int(v) < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(v) {
				if d := g.OutDegree(u); d > 0 {
					sum += rank[u] / float64(d)
				}
			}
			next[v] = (1 - damping) + damping*sum
		}
		delta := 0.0
		for v := range rank {
			if d := math.Abs(next[v] - rank[v]); d > delta {
				delta = d
			}
		}
		rank, next = next, rank
		if delta < eps {
			break
		}
	}
	return rank
}
