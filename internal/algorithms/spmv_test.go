package algorithms

import (
	"math"
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

func TestSpMVDeterministicMatchesJacobi(t *testing.T) {
	g := testGraph(t, 51)
	s := NewSpMV(g, 1e-9, 0.5, 3)
	e, res, err := Run(s, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := s.Values(e)
	want := ReferenceSpMV(g, s, 1e-12, 10000)
	if d := metrics.LInfDistance(got, want); d > 1e-6 {
		t.Fatalf("LInf(engine, jacobi) = %v", d)
	}
}

func TestSpMVContractionRows(t *testing.T) {
	g := testGraph(t, 52)
	s := NewSpMV(g, 1e-6, 0.5, 4)
	rowSum := make([]float64, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, e := range g.InEdgeIndices(v) {
			rowSum[v] += s.Coeffs[e]
		}
	}
	for v, sum := range rowSum {
		if sum > 0.5+1e-9 {
			t.Fatalf("row %d sums to %v > contraction", v, sum)
		}
	}
}

func TestSpMVNondeterministicCloseToFixedPoint(t *testing.T) {
	g := testGraph(t, 53)
	s := NewSpMV(g, 1e-7, 0.5, 5)
	want := ReferenceSpMV(g, s, 1e-12, 10000)
	e, res, err := Run(s, g, core.Options{
		Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge (Theorem 1)")
	}
	if d := metrics.LInfDistance(s.Values(e), want); d > 1e-3 {
		t.Fatalf("LInf(nondet, fixed point) = %v", d)
	}
}

func TestSpMVConflictProfileRWOnly(t *testing.T) {
	g := testGraph(t, 54)
	profile, verdict, err := Probe(NewSpMV(g, 1e-6, 0.5, 6), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW != 0 {
		t.Fatalf("SpMV produced WW conflicts: %+v", profile)
	}
	if !verdict.Eligible || verdict.Theorem != 1 {
		t.Fatalf("verdict = %+v", verdict)
	}
}

func TestSpMVValuesFinite(t *testing.T) {
	g := testGraph(t, 55)
	s := NewSpMV(g, 1e-6, 0.5, 7)
	e, _, err := Run(s, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range s.Values(e) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("value[%d] = %v", v, x)
		}
		if x < 0 {
			t.Fatalf("value[%d] = %v < 0 (b >= 0, M >= 0)", v, x)
		}
	}
}
