package algorithms

import (
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

func TestLabelPropNotEligible(t *testing.T) {
	g := testGraph(t, 111)
	profile, verdict, err := Probe(NewLabelProp(), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW != 0 {
		t.Fatalf("label propagation produced WW conflicts: %+v", profile)
	}
	if profile.RW == 0 {
		t.Fatalf("label propagation produced no RW conflicts: %+v", profile)
	}
	if verdict.Eligible {
		t.Fatalf("label propagation declared eligible despite missing premises: %+v", verdict)
	}
}

func TestLabelPropProbeConvergesOnDAGLike(t *testing.T) {
	// Probe runs to convergence deterministically; a chain converges (each
	// vertex adopts its predecessor's label).
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, graph.Options{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLabelProp()
	e, res, err := Run(lp, g, core.Options{Scheduler: sched.Deterministic, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("chain did not converge")
	}
	labels := lp.Labels(e)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("labels = %v, want all 0", labels)
	}
}

func TestLabelPropSynchronousOscillates(t *testing.T) {
	// The classic failure mode the Properties declaration encodes: under
	// the synchronous model, a 2-cycle flip-flops labels forever. This is
	// exactly why ConvergesSynchronously is false and the advisor rejects.
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, graph.Options{NumVertices: 2})
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLabelProp()
	_, res, err := Run(lp, g, core.Options{Scheduler: sched.Synchronous, Threads: 1, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("synchronous 2-cycle converged; expected oscillation (label swap each iteration)")
	}
	if res.Iterations != 50 {
		t.Fatalf("iterations = %d, want the full cap", res.Iterations)
	}
}

func TestLabelPropDeterministicTwoCommunities(t *testing.T) {
	// Two dense directed triangles with mutual edges; deterministic
	// execution settles each triangle on its minimum label.
	var es []graph.Edge
	tri := func(a, b, c uint32) {
		for _, p := range [][2]uint32{{a, b}, {b, a}, {b, c}, {c, b}, {a, c}, {c, a}} {
			es = append(es, graph.Edge{Src: p[0], Dst: p[1]})
		}
	}
	tri(0, 1, 2)
	tri(3, 4, 5)
	g, err := graph.Build(es, graph.Options{NumVertices: 6})
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLabelProp()
	e, res, err := Run(lp, g, core.Options{Scheduler: sched.Deterministic, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Each triangle settles on one uniform label from inside itself, and
	// the two communities stay distinct (no edges connect them).
	labels := lp.Labels(e)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[0] > 2 {
		t.Fatalf("triangle A labels = %v", labels[:3])
	}
	if labels[3] != labels[4] || labels[4] != labels[5] || labels[3] < 3 {
		t.Fatalf("triangle B labels = %v", labels[3:])
	}
	if labels[0] == labels[3] {
		t.Fatalf("communities merged: %v", labels)
	}
}
