package algorithms

import (
	"math"
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

func TestSSSPDeterministicMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 41)
	s := NewSSSP(g, 0, 7)
	e, res, err := Run(s, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := s.Distances(e)
	want := ReferenceSSSP(g, 0, s.Weights)
	for v := range want {
		if got[v] != want[v] { // exact float equality: same sums, same mins
			t.Fatalf("vertex %d: engine %v, dijkstra %v", v, got[v], want[v])
		}
	}
}

// Theorem 1/2 end-to-end for SSSP: monotone with absolute convergence, so
// every scheduler must produce identical distances.
func TestSSSPIdenticalAcrossSchedulers(t *testing.T) {
	g := testGraph(t, 42)
	s := NewSSSP(g, 3, 11)
	want := ReferenceSSSP(g, 3, s.Weights)
	configs := []core.Options{
		{Scheduler: sched.Deterministic},
		{Scheduler: sched.Synchronous, Threads: 2, Mode: edgedata.ModeAtomic},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeLocked},
		{Scheduler: sched.Chromatic, Threads: 2, Mode: edgedata.ModeAtomic},
	}
	if !raceEnabled {
		configs = append(configs,
			core.Options{Scheduler: sched.Nondeterministic, Threads: 8, Mode: edgedata.ModeAligned, Amplify: true})
	}
	for _, opts := range configs {
		e, res, err := Run(s, g, opts)
		if err != nil {
			t.Fatalf("%v/%v: %v", opts.Scheduler, opts.Mode, err)
		}
		if !res.Converged {
			t.Fatalf("%v/%v: did not converge", opts.Scheduler, opts.Mode)
		}
		got := s.Distances(e)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v/%v: dist[%d] = %v, want %v",
					opts.Scheduler, opts.Mode, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPUnreachableStaysInf(t *testing.T) {
	// 0→1, isolated 2.
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.Options{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSSSP(g, 0, 1)
	e, _, err := Run(s, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Distances(e)
	if d[0] != 0 {
		t.Fatalf("source dist = %v", d[0])
	}
	if !math.IsInf(d[2], 1) {
		t.Fatalf("unreachable dist = %v, want +Inf", d[2])
	}
}

func TestSSSPConflictProfileRWOnly(t *testing.T) {
	g := testGraph(t, 43)
	profile, verdict, err := Probe(NewSSSP(g, 0, 5), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW != 0 {
		t.Fatalf("SSSP produced WW conflicts: %+v", profile)
	}
	if !verdict.Eligible {
		t.Fatalf("verdict = %+v", verdict)
	}
	if !verdict.DeterministicResults {
		t.Fatal("monotone absolute SSSP not flagged result-reproducing")
	}
}

func TestSSSPWeightsInPaperRange(t *testing.T) {
	g := testGraph(t, 44)
	s := NewSSSP(g, 0, 9)
	if len(s.Weights) != g.M() {
		t.Fatalf("weights len %d, edges %d", len(s.Weights), g.M())
	}
	for i, w := range s.Weights {
		if w < 1 || w > 100 || w != math.Trunc(w) {
			t.Fatalf("weight[%d] = %v, want integer in [1,100]", i, w)
		}
	}
}

func TestBFSIsUnitWeightSSSP(t *testing.T) {
	g := testGraph(t, 45)
	b := NewBFS(g, 0)
	if b.Name() != "bfs" {
		t.Fatalf("Name = %q", b.Name())
	}
	for _, w := range b.Weights {
		if w != 1 {
			t.Fatal("BFS weight != 1")
		}
	}
	e, res, err := Run(b, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := b.Distances(e)
	want := referenceBFS(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("hop[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// referenceBFS is a queue-based BFS oracle.
func referenceBFS(g *graph.Graph, source uint32) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if math.IsInf(dist[u], 1) {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestBFSOnGrid(t *testing.T) {
	g, err := gen.Grid(6, 7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g, 0)
	e, _, err := Run(b, g, core.Options{
		Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := b.Distances(e)
	// Manhattan distance on a directed right/down grid.
	for r := 0; r < 6; r++ {
		for c := 0; c < 7; c++ {
			if got := d[r*7+c]; got != float64(r+c) {
				t.Fatalf("dist[%d,%d] = %v, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestIterationsSyncVsAsync(t *testing.T) {
	// On a chain with everything scheduled, the Gauss–Seidel deterministic
	// schedule collapses the whole path in one pass (ascending labels see
	// fresh upstream writes), while BSP needs one iteration per hop — the
	// paper's "asynchronous model reduces the number of iterations"
	// motivation. WCC schedules all vertices, so it exhibits the collapse;
	// single-source BFS does not (its frontier grows one hop per iteration
	// under every schedule).
	g, err := gen.Chain(64)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWCC()
	_, resDet, err := Run(w, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	_, resSync, err := Run(w, g, core.Options{Scheduler: sched.Synchronous, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resDet.Iterations >= resSync.Iterations {
		t.Fatalf("det iterations (%d) not fewer than sync (%d)", resDet.Iterations, resSync.Iterations)
	}
}

func TestSSSPSeedsGiveDifferentWeights(t *testing.T) {
	g := testGraph(t, 46)
	a, b := NewSSSP(g, 0, 1), NewSSSP(g, 0, 2)
	if metrics.L1Distance(a.Weights, b.Weights) == 0 {
		t.Fatal("different seeds, identical weights")
	}
	c := NewSSSP(g, 0, 1)
	if metrics.L1Distance(a.Weights, c.Weights) != 0 {
		t.Fatal("same seed, different weights")
	}
}
