package algorithms

import (
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/sched"
)

func TestColoringDeterministicValid(t *testing.T) {
	g := testGraph(t, 61)
	c := NewColoring()
	e, res, err := Run(c, g, core.Options{Scheduler: sched.Deterministic, MaxIters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("deterministic coloring did not converge")
	}
	if !ValidColoring(g, c.ColorsOf(e)) {
		t.Fatal("deterministic coloring invalid")
	}
}

func TestColoringRing(t *testing.T) {
	g, err := gen.Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	c := NewColoring()
	e, res, err := Run(c, g, core.Options{Scheduler: sched.Deterministic, MaxIters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	colors := c.ColorsOf(e)
	if !ValidColoring(g, colors) {
		t.Fatalf("invalid ring coloring: %v", colors)
	}
	max := uint32(0)
	for _, col := range colors {
		if col > max {
			max = col
		}
	}
	if max > 2 {
		t.Fatalf("ring used color %d, greedy should need <= 2 (0..2 on odd cycles)", max)
	}
}

// The advisor must reject coloring: WW conflicts + non-monotone.
func TestColoringNotEligible(t *testing.T) {
	g := testGraph(t, 62)
	profile, verdict, err := Probe(NewColoring(), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW == 0 {
		t.Fatalf("coloring produced no WW conflicts: %+v", profile)
	}
	if verdict.Eligible {
		t.Fatalf("coloring declared eligible: %+v", verdict)
	}
}

func TestValidColoringRejects(t *testing.T) {
	g, err := gen.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	if ValidColoring(g, []uint32{0, 0, 1}) {
		t.Fatal("adjacent same colors accepted")
	}
	if ValidColoring(g, []uint32{0, 1}) {
		t.Fatal("short slice accepted")
	}
	if ValidColoring(g, []uint32{0, 1, noColor}) {
		t.Fatal("uncolored vertex accepted")
	}
	if !ValidColoring(g, []uint32{0, 1, 0}) {
		t.Fatal("proper coloring rejected")
	}
}

func TestAllAlgorithmNames(t *testing.T) {
	g := testGraph(t, 63)
	for _, a := range []Algorithm{
		NewPageRank(1e-4), NewWCC(), NewSSSP(g, 0, 1), NewBFS(g, 0),
		NewSpMV(g, 1e-4, 0.5, 1), NewColoring(),
	} {
		if a.Name() == "" {
			t.Fatalf("%T has empty name", a)
		}
		if a.Properties().Name != a.Name() {
			t.Fatalf("%T: Properties().Name %q != Name() %q", a, a.Properties().Name, a.Name())
		}
	}
}

func TestRunPropagatesEngineErrors(t *testing.T) {
	g := testGraph(t, 64)
	_, _, err := Run(NewWCC(), g, core.Options{
		Scheduler: sched.Nondeterministic, Threads: 4, Mode: 0, // ModeSequential
	})
	if err == nil {
		t.Fatal("invalid engine options accepted")
	}
}
