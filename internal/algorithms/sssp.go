package algorithms

import (
	"math"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
	"ndgraph/internal/rng"
)

// SSSP computes single-source shortest paths, the paper's second traversal
// algorithm. Following the paper's setup, each edge stores an immutable
// weight (a random value in [1, 100] generated at initialization) and a
// mutable distance word; the distance of vertex v flows to its neighbors
// through the out-edges: edge (v→u) carries dist(v) + w(v→u), and f(u)
// gathers the minimum over its in-edges.
//
// Only the source endpoint of an edge ever writes it, so nondeterministic
// execution produces read-write conflicts only — the Theorem 1 case. The
// computation is also monotone (distances only decrease) with an absolute
// convergence condition, so its converged distances are identical across
// schedulers.
type SSSP struct {
	// Source is the single source vertex.
	Source uint32
	// Weights holds the immutable per-edge weights, indexed by canonical
	// edge index. Populated by NewSSSP.
	Weights []float64

	name string
}

// NewSSSP builds an SSSP instance for g with weights drawn uniformly from
// {1, …, 100} using the given seed (the paper's randomized weights).
func NewSSSP(g *graph.Graph, source uint32, seed uint64) *SSSP {
	r := rng.New(seed)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = float64(1 + r.Intn(100))
	}
	return &SSSP{Source: source, Weights: w, name: "sssp"}
}

// NewBFS builds breadth-first search as the paper does: "a special case of
// SSSP, where the weight values of the edges are all ones".
func NewBFS(g *graph.Graph, source uint32) *SSSP {
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return &SSSP{Source: source, Weights: w, name: "bfs"}
}

// Name implements Algorithm ("sssp" or "bfs").
func (s *SSSP) Name() string { return s.name }

// Properties implements Algorithm.
func (s *SSSP) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:                   s.name,
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            eligibility.Absolute,
	}
}

// Setup sets the source distance to 0 and everything else (vertices and
// edge distance words) to +Inf, scheduling only the source.
func (s *SSSP) Setup(e *core.Engine) {
	inf := edgedata.FromFloat64(math.Inf(1))
	for v := range e.Vertices {
		e.Vertices[v] = inf
	}
	e.Vertices[s.Source] = edgedata.FromFloat64(0)
	e.Edges.Fill(inf)
	e.Frontier().ScheduleNow(int(s.Source))
}

// Update is f(v): gather candidate distances from in-edges, keep the
// minimum, and scatter improved candidates dist(v)+w to out-edges whose
// current word exceeds them.
func (s *SSSP) Update(ctx core.VertexView) {
	d := edgedata.ToFloat64(ctx.Vertex())
	for k := 0; k < ctx.InDegree(); k++ {
		if c := edgedata.ToFloat64(ctx.InEdgeVal(k)); c < d {
			d = c
		}
	}
	ctx.SetVertex(edgedata.FromFloat64(d))
	if math.IsInf(d, 1) {
		return // unreached; nothing to scatter
	}
	ctx.Yield()
	for k := 0; k < ctx.OutDegree(); k++ {
		cand := d + s.Weights[ctx.OutEdgeID(k)]
		// !(cand >= cur) rather than cand < cur: a corrupted edge word
		// decoding to NaN compares false both ways, and the negated form
		// rewrites it instead of leaving the corruption in place forever.
		if cur := edgedata.ToFloat64(ctx.OutEdgeVal(k)); !(cand >= cur) {
			ctx.SetOutEdgeVal(k, edgedata.FromFloat64(cand))
		}
	}
}

// Distances decodes the converged distance of every vertex (+Inf for
// unreachable vertices).
func (s *SSSP) Distances(e *core.Engine) []float64 {
	out := make([]float64, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = edgedata.ToFloat64(w)
	}
	return out
}

// ReferenceSSSP computes exact shortest-path distances with Dijkstra's
// algorithm over the same weights — the independent oracle for tests.
func ReferenceSSSP(g *graph.Graph, source uint32, weights []float64) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	h := &distHeap{items: []distItem{{v: source, d: 0}}}
	for h.len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue // stale entry
		}
		lo, _ := g.OutEdgeIndex(it.v)
		for k, u := range g.OutNeighbors(it.v) {
			nd := it.d + weights[lo+uint32(k)]
			if nd < dist[u] {
				dist[u] = nd
				h.push(distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

// distHeap is a minimal binary min-heap on (vertex, distance); hand-rolled
// to keep the reference free of interface boxing.
type distItem struct {
	v uint32
	d float64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < last && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

var _ Algorithm = (*SSSP)(nil)
