package algorithms

import (
	"fmt"

	"ndgraph/internal/core"
	"ndgraph/internal/graph"
)

// This file provides runtime *verification* of the declared eligibility
// properties, so the advisor need not trust an algorithm's self-report:
// Theorem 2's monotonicity premise is checkable by observing every edge
// write of a deterministic run.

// Direction orders edge words for the monotonicity check.
type Direction func(old, new uint64) bool

// NonIncreasing accepts writes that never raise the word (WCC labels,
// SSSP/BFS distances, k-core estimates — the Theorem 2 family).
func NonIncreasing(old, new uint64) bool { return new <= old }

// NonDecreasing accepts writes that never lower the word.
func NonDecreasing(old, new uint64) bool { return new >= old }

// MonotonicityViolation describes the first write that broke the claimed
// direction.
type MonotonicityViolation struct {
	Edge     uint32
	Old, New uint64
}

// Error implements error.
func (v *MonotonicityViolation) Error() string {
	return fmt.Sprintf("algorithms: edge %d written non-monotonically: %#x -> %#x", v.Edge, v.Old, v.New)
}

// VerifyMonotonicity runs a deterministically and checks that every edge
// write satisfies dir. It returns nil when the run converged and all
// writes were monotone, a *MonotonicityViolation when a write broke the
// direction, and other errors for engine failures. Writes replacing an
// initialization sentinel (the all-ones word or the +Inf float pattern)
// are exempt: the first real value may move in any direction from a
// sentinel.
func VerifyMonotonicity(a Algorithm, g *graph.Graph, dir Direction) error {
	var violation *MonotonicityViolation
	opts := core.Options{
		MaxIters: 1 << 12,
		OnEdgeWrite: func(e uint32, old, new uint64) {
			if violation != nil || isInitSentinel(old) {
				return
			}
			if !dir(old, new) {
				violation = &MonotonicityViolation{Edge: e, Old: old, New: new}
			}
		},
	}
	eng, err := core.NewEngine(g, opts)
	if err != nil {
		return err
	}
	a.Setup(eng)
	res, err := eng.Run(a.Update)
	if err != nil {
		return err
	}
	if violation != nil {
		return violation
	}
	if !res.Converged {
		return fmt.Errorf("algorithms: %s did not converge within the verification cap", a.Name())
	}
	return nil
}

// isInitSentinel reports whether w is one of the library's "uninitialized"
// edge markers: all-ones (WCC/min-label infinity) or the IEEE +Inf bit
// pattern (distance algorithms).
func isInitSentinel(w uint64) bool {
	const infBits = 0x7FF0000000000000
	return w == ^uint64(0) || w == infBits
}
