//go:build race

package algorithms

// raceEnabled mirrors edgedata's flag: tests that exercise the benign
// word races of ModeAligned skip themselves under the race detector.
const raceEnabled = true
