package algorithms

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/sched"
)

func TestKCoreDeterministicMatchesPeeling(t *testing.T) {
	g := testGraph(t, 101)
	kc := NewKCore()
	e, res, err := Run(kc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := kc.CoreNumbers(e)
	want := ReferenceKCore(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d] = %d, peeling says %d", v, got[v], want[v])
		}
	}
}

func TestKCoreCompleteGraph(t *testing.T) {
	// Complete directed graph on n vertices: every vertex has degree
	// 2(n-1), and the (multigraph) core number is 2(n-1).
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKCore()
	e, _, err := Run(kc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range kc.CoreNumbers(e) {
		if c != 10 {
			t.Fatalf("core[%d] = %d, want 10", v, c)
		}
	}
}

func TestKCoreChain(t *testing.T) {
	g, err := gen.Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKCore()
	e, _, err := Run(kc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	// A path's core number is 1 everywhere.
	for v, c := range kc.CoreNumbers(e) {
		if c != 1 {
			t.Fatalf("core[%d] = %d, want 1", v, c)
		}
	}
}

func TestKCoreIsolatedVertex(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.Options{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKCore()
	e, _, err := Run(kc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	cores := kc.CoreNumbers(e)
	if cores[2] != 0 {
		t.Fatalf("isolated core = %d", cores[2])
	}
	if cores[0] != 1 || cores[1] != 1 {
		t.Fatalf("pair cores = %v", cores[:2])
	}
}

// Theorem 2 (extended): k-core is monotone with write-write conflicts;
// nondeterministic execution must converge to the same core numbers.
func TestKCoreNondeterministicIdentical(t *testing.T) {
	g := testGraph(t, 102)
	kc := NewKCore()
	want := ReferenceKCore(g)
	for _, opts := range []core.Options{
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeLocked},
		{Scheduler: sched.Synchronous, Threads: 2, Mode: edgedata.ModeAtomic},
		{Scheduler: sched.Chromatic, Threads: 2, Mode: edgedata.ModeAtomic},
	} {
		e, res, err := Run(kc, g, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Scheduler, err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", opts.Scheduler)
		}
		got := kc.CoreNumbers(e)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v/%v: core[%d] = %d, want %d", opts.Scheduler, opts.Mode, v, got[v], want[v])
			}
		}
	}
}

func TestKCoreConflictProfileHasWW(t *testing.T) {
	g := testGraph(t, 103)
	profile, verdict, err := Probe(NewKCore(), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW == 0 {
		t.Fatalf("k-core produced no WW conflicts: %+v", profile)
	}
	if !verdict.Eligible || verdict.Theorem != 2 {
		t.Fatalf("verdict = %+v", verdict)
	}
}

func TestHOperator(t *testing.T) {
	cases := []struct {
		in   []uint32
		want uint32
	}{
		{nil, 0},
		{[]uint32{0}, 0},
		{[]uint32{5}, 1},
		{[]uint32{1, 1, 1}, 1},
		{[]uint32{3, 3, 3}, 3},
		{[]uint32{5, 4, 3, 2, 1}, 3},
		{[]uint32{2, 2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		in := append([]uint32(nil), c.in...)
		if got := hOperator(in); got != c.want {
			t.Errorf("hOperator(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestKCoreQuickRandom(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(60, 300, seed)
		if err != nil {
			return false
		}
		kc := NewKCore()
		e, res, err := Run(kc, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true,
		})
		if err != nil || !res.Converged {
			return false
		}
		got := kc.CoreNumbers(e)
		want := ReferenceKCore(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
