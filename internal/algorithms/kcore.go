package algorithms

import (
	"sort"

	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// KCore computes the core number of every vertex (treating the graph as
// undirected: a vertex's degree counts both in- and out-edges) by the
// distributed h-index iteration of Montresor/De Pellegrini/Miorandi:
// every vertex starts at its degree and repeatedly lowers its estimate to
// the H-operator of its neighbors' estimates — the largest k such that at
// least k neighbors have estimate ≥ k. Estimates are monotone
// non-increasing and converge to the true core numbers.
//
// Edge data packs both endpoints' current estimates (source's in the low
// 32 bits, destination's in the high 32), so — like WCC — both endpoints
// write every shared edge and nondeterministic execution produces
// write-write conflicts. Unlike WCC, a lost half-word is corrected not by
// monotone re-propagation of the same value but by the task-generation
// rule: the write that clobbered v's half also *scheduled* v, and v's next
// update republishes its half. This exercises a recovery mode one step
// beyond the paper's Theorem 2 proof while still satisfying its premises
// (monotone estimates, deterministic-asynchronous convergence).
type KCore struct{}

// NewKCore returns the k-core decomposition algorithm.
func NewKCore() *KCore { return &KCore{} }

// Name implements Algorithm.
func (*KCore) Name() string { return "kcore" }

// Properties implements Algorithm.
func (*KCore) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:                   "kcore",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            eligibility.Absolute,
	}
}

// Setup initializes every vertex's estimate to its total degree and
// publishes the initial estimates on all edges.
func (*KCore) Setup(e *core.Engine) {
	g := e.Graph()
	for v := uint32(0); int(v) < g.N(); v++ {
		e.Vertices[v] = uint64(g.Degree(v))
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		lo, hi := g.OutEdgeIndex(v)
		nbrs := g.OutNeighbors(v)
		for k := lo; k < hi; k++ {
			dst := nbrs[k-lo]
			e.Edges.Store(k, packEstimates(uint32(g.Degree(v)), uint32(g.Degree(dst))))
		}
	}
	e.Frontier().ScheduleAll()
}

func packEstimates(src, dst uint32) uint64 { return uint64(src) | uint64(dst)<<32 }
func srcEstimate(w uint64) uint32          { return uint32(w) }
func dstEstimate(w uint64) uint32          { return uint32(w >> 32) }

// Update is f(v): gather neighbor estimates from the incident edges,
// apply the H-operator, lower the own estimate if needed, and republish
// any incident-edge half that is out of date.
func (*KCore) Update(ctx core.VertexView) {
	deg := ctx.InDegree() + ctx.OutDegree()
	if deg == 0 {
		ctx.SetVertex(0)
		return
	}
	// Gather neighbor estimates: in-neighbors publish the src half,
	// out-neighbors the dst half.
	ests := make([]uint32, 0, deg)
	for k := 0; k < ctx.InDegree(); k++ {
		ests = append(ests, srcEstimate(ctx.InEdgeVal(k)))
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		ests = append(ests, dstEstimate(ctx.OutEdgeVal(k)))
	}
	h := hOperator(ests)
	cur := uint32(ctx.Vertex())
	if h < cur {
		cur = h
	}
	ctx.SetVertex(uint64(cur))
	ctx.Yield()
	// Publish: repair any incident half that disagrees with the current
	// estimate (covers both fresh decreases and halves clobbered by the
	// opposite endpoint's packed write).
	for k := 0; k < ctx.InDegree(); k++ {
		w := ctx.InEdgeVal(k)
		if dstEstimate(w) != cur {
			ctx.SetInEdgeVal(k, packEstimates(srcEstimate(w), cur)) //ndlint:ignore atomicity a clobbered opposite half is re-published when its endpoint runs again; estimates only decrease, so this is Theorem 2 recovery, not corruption
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		w := ctx.OutEdgeVal(k)
		if srcEstimate(w) != cur {
			ctx.SetOutEdgeVal(k, packEstimates(cur, dstEstimate(w))) //ndlint:ignore atomicity a clobbered opposite half is re-published when its endpoint runs again; estimates only decrease, so this is Theorem 2 recovery, not corruption
		}
	}
}

// hOperator returns the largest k such that at least k values are >= k.
// It sorts a scratch copy; deg is small for the graphs under study.
func hOperator(ests []uint32) uint32 {
	sort.Slice(ests, func(i, j int) bool { return ests[i] > ests[j] })
	h := uint32(0)
	for i, v := range ests {
		if v >= uint32(i+1) {
			h = uint32(i + 1)
		} else {
			break
		}
	}
	return h
}

// CoreNumbers decodes the converged core number of every vertex.
func (*KCore) CoreNumbers(e *core.Engine) []uint32 {
	out := make([]uint32, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = uint32(w)
	}
	return out
}

// ReferenceKCore computes exact core numbers with the classic peeling
// algorithm (Batagelj–Zaveršnik bucket variant) on the undirected view.
func ReferenceKCore(g *graph.Graph) []uint32 {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := uint32(0); int(v) < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bins := make([]int, maxDeg+2)
	for _, d := range deg {
		bins[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bins[d]
		bins[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]uint32, n)
	for v := uint32(0); int(v) < n; v++ {
		pos[v] = bins[deg[v]]
		vert[pos[v]] = v
		bins[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bins[d] = bins[d-1]
	}
	bins[0] = 0

	core := make([]uint32, n)
	copyDeg := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = uint32(copyDeg[v])
		lower := func(u uint32) {
			if copyDeg[u] > copyDeg[v] {
				du := copyDeg[u]
				pu := pos[u]
				pw := bins[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bins[du]++
				copyDeg[u]--
			}
		}
		for _, u := range g.OutNeighbors(v) {
			lower(u)
		}
		for _, u := range g.InNeighbors(v) {
			lower(u)
		}
	}
	return core
}

var _ Algorithm = (*KCore)(nil)
