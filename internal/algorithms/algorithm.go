// Package algorithms implements the graph algorithms of the paper's
// evaluation (Section V) on top of the core engine:
//
//   - PageRank — fixed-point iteration with local ε-convergence; only
//     read-write conflicts under nondeterministic execution (Theorem 1);
//   - WCC — weakly connected components by minimum-label propagation; both
//     read-write and write-write conflicts (Theorem 2);
//   - SSSP — single-source shortest paths with random edge weights;
//     read-write conflicts only;
//   - BFS — SSSP with unit weights;
//   - SpMV — Jacobi-style sparse fixed-point solve, the paper's other
//     fixed-point example;
//   - Coloring — greedy vertex coloring, included as a deliberately
//     NOT-eligible algorithm (write-write conflicts without monotonicity).
//
// Each algorithm declares the eligibility.Properties the paper's theorems
// consume, provides a Setup (initial vertex/edge values + frontier), an
// Update (the pull-mode gather–compute–scatter function of Algorithm 1),
// and an independent sequential reference implementation used by the tests
// to check converged results.
package algorithms

import (
	"fmt"

	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// Algorithm is the uniform surface consumed by the CLIs, the benchmark
// harness, and the eligibility prober.
type Algorithm interface {
	// Name returns the algorithm's short name (as used in the paper).
	Name() string
	// Setup initializes the engine's vertex array, edge store, and
	// frontier for a fresh run.
	Setup(e *core.Engine)
	// Update is the vertex update function f(v).
	Update(ctx core.VertexView)
	// Properties declares the theorem premises for the eligibility advisor.
	Properties() eligibility.Properties
}

// Run builds an engine for g with opts, sets the algorithm up, executes it
// to convergence, and returns the engine (holding final state) plus the
// run result.
func Run(a Algorithm, g *graph.Graph, opts core.Options) (*core.Engine, core.Result, error) {
	e, err := core.NewEngine(g, opts)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("algorithms: %s: %w", a.Name(), err)
	}
	a.Setup(e)
	res, err := e.Run(a.Update)
	if err != nil {
		return nil, core.Result{}, fmt.Errorf("algorithms: %s: %w", a.Name(), err)
	}
	return e, res, nil
}

// Probe performs one instrumented deterministic run of a on g and returns
// the *potential* conflict profile together with the advisor's verdict —
// the end-to-end answer to "is this algorithm eligible for
// nondeterministic execution?". The potential census replays every update
// against the pre-iteration state (the overlapped ∥ case of the system
// model), so conflicts that an in-order execution would mask — such as
// WCC's conditional edge writes on label-descending graphs — are still
// counted, while the run itself converges deterministically.
func Probe(a Algorithm, g *graph.Graph) (eligibility.ConflictProfile, eligibility.Verdict, error) {
	e, err := core.NewEngine(g, core.Options{PotentialCensus: true})
	if err != nil {
		return eligibility.ConflictProfile{}, eligibility.Verdict{}, err
	}
	a.Setup(e)
	res, err := e.Run(a.Update)
	if err != nil {
		return eligibility.ConflictProfile{}, eligibility.Verdict{}, err
	}
	profile := eligibility.ConflictProfile{RW: res.RWConflicts, WW: res.WWConflicts}
	verdict := eligibility.Advise(a.Properties(), profile)
	verdict.Source = "probe"
	return profile, verdict, nil
}
