package algorithms

import (
	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
)

// LabelProp is majority-label community detection (Raghavan et al.'s
// label propagation), included as the advisor's *second* rejection case:
// its nondeterministic execution produces only read-write conflicts (each
// vertex writes only its own out-edges), but neither convergence premise
// of Theorem 1 holds — label propagation famously oscillates under the
// synchronous model (two-coloring flip-flop on bipartite structure) and
// has no deterministic-asynchronous convergence guarantee either (label
// cycles are possible). The paper's sufficient conditions therefore do
// not cover it, and the advisor says so.
//
// The implementation caps oscillation damage by keeping a label only when
// it strictly beats the current one (count-wise, ties broken toward the
// smaller label), which converges on most practical inputs — but
// "converges on most inputs" is exactly what a sufficient condition is
// not, hence the honest Properties declaration below.
type LabelProp struct {
	// MaxRounds bounds self-rescheduling; 0 means no extra bound beyond
	// the engine's MaxIters.
	MaxRounds int
}

// NewLabelProp returns majority label propagation.
func NewLabelProp() *LabelProp { return &LabelProp{} }

// Name implements Algorithm.
func (*LabelProp) Name() string { return "labelprop" }

// Properties implements Algorithm: no convergence premise holds.
func (*LabelProp) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:                   "labelprop",
		ConvergesSynchronously: false,
		ConvergesDetAsync:      false,
		Monotonic:              false,
		Convergence:            eligibility.Absolute,
	}
}

// Setup gives every vertex its own label and publishes it on the
// out-edges.
func (*LabelProp) Setup(e *core.Engine) {
	g := e.Graph()
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		lo, hi := g.OutEdgeIndex(v)
		for k := lo; k < hi; k++ {
			e.Edges.Store(k, uint64(v))
		}
	}
	e.Frontier().ScheduleAll()
}

// Update is f(v): adopt the most frequent label among in-edges (smallest
// label wins ties), publish on out-edges when changed.
//
//ndlint:ignore conflictclass deliberate rejection case: neither convergence premise holds, so the advisor (static and probe alike) must say NOT ELIGIBLE
func (*LabelProp) Update(ctx core.VertexView) {
	if ctx.InDegree() == 0 {
		return
	}
	counts := make(map[uint64]int, ctx.InDegree())
	for k := 0; k < ctx.InDegree(); k++ {
		counts[ctx.InEdgeVal(k)]++
	}
	cur := ctx.Vertex()
	best, bestCount := cur, counts[cur]
	for label, c := range counts { //ndlint:ignore determinism order-invariant argmax: strict improvement plus smallest-label tie-break picks the same label under any iteration order
		if c > bestCount || (c == bestCount && label < best) {
			best, bestCount = label, c
		}
	}
	if best == cur {
		return
	}
	ctx.SetVertex(best)
	ctx.Yield()
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, best)
	}
}

// Labels decodes the current community label of every vertex.
func (*LabelProp) Labels(e *core.Engine) []uint64 {
	out := make([]uint64, len(e.Vertices))
	copy(out, e.Vertices)
	return out
}

var _ Algorithm = (*LabelProp)(nil)
