package algorithms

import (
	"math"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
)

// Kernel is one monotone vertex program expressed so that a single
// (Message, Better) pair serves both traversal directions — the paired
// push/pull registry backing the direction-optimizing hybrid engine.
//
// The pairing works because the repository's graphs give every edge one
// canonical index: OutEdgeIndex(u) numbers u's k-th out-edge lo+k, and
// InEdgeIndices(v) returns those same canonical indices from the
// destination side. A push executor computes Message(val(u), e) while
// scanning u's out-edges; a pull executor computes the identical offer
// while scanning v's in-edges — same source value, same edge index, same
// candidate. Better is the strict monotone improvement test, so either
// direction (or any per-iteration mix) relaxes the same edge set and
// converges to the same unique fixed point; that is what lets the hybrid
// engine switch directions mid-run and still match the deterministic core
// engine byte-for-byte (the paper's Theorem 2 absolute-convergence
// argument, applied per direction).
type Kernel struct {
	// Name labels the kernel in benchmarks and telemetry.
	Name string
	// Undirected requires the graph symmetrized (Graph.Undirected) before
	// running, so offers can travel against edge direction — WCC's
	// "weakly" connected semantics.
	Undirected bool
	// Init returns the initial per-vertex data words and the seed set;
	// seeds == nil means every vertex starts scheduled (S_0 = V).
	Init func(g *graph.Graph) (vals []uint64, seeds []int)
	// Message computes the candidate offered across canonical edge e from
	// the source's current value.
	Message func(srcVal uint64, e uint32) uint64
	// Better reports whether candidate strictly improves on current. It
	// must be a strict test (irreflexive) or the computation will not
	// quiesce.
	Better func(candidate, current uint64) bool
	// EdgeIndexed declares that Message reads its edge-index argument
	// (per-edge data such as SSSP's weights). When false, executors may
	// pass any edge index — a pull sweep then skips streaming the
	// in-edge-index array entirely, which is one full array scan per
	// iteration on kernels like WCC and BFS whose offers depend only on
	// the source value.
	EdgeIndexed bool
	// FirstOfferWins declares the level-synchronous traversal property:
	// a vertex still holding Unreached adopts the first offer made to it,
	// and a vertex past Unreached never improves again. BFS has it —
	// every offer of iteration k is exactly distance k+1, so all
	// concurrent offers are equal and any one of them is the fixed-point
	// value. It licenses the classic Beamer pull optimizations (skip
	// reached vertices, stop scanning in-neighbors at the first scheduled
	// one) without breaking byte-identical convergence. Leave false for
	// kernels whose offers differ per edge (SSSP) or per source (WCC).
	FirstOfferWins bool
	// Unreached is the initial "no value yet" word FirstOfferWins keys
	// on; meaningful only when FirstOfferWins is set.
	Unreached uint64
}

// WCCKernel is minimum-label propagation: every vertex starts as its own
// component and adopts the smallest label offered by any neighbor.
func WCCKernel() Kernel {
	return Kernel{
		Name:       "wcc",
		Undirected: true,
		Init: func(g *graph.Graph) ([]uint64, []int) {
			vals := make([]uint64, g.N())
			for v := range vals {
				vals[v] = uint64(v)
			}
			return vals, nil
		},
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal },
		Better:  func(c, cur uint64) bool { return c < cur },
	}
}

// BFSKernel is breadth-first search from source: hop distances as float64
// bit patterns (+Inf where unreachable), matching push.BFS and the core
// BFS algorithm word-for-word.
func BFSKernel(source uint32) Kernel {
	return Kernel{
		Name: "bfs",
		Init: func(g *graph.Graph) ([]uint64, []int) {
			vals := make([]uint64, g.N())
			inf := edgedata.FromFloat64(math.Inf(1))
			for v := range vals {
				vals[v] = inf
			}
			vals[source] = edgedata.FromFloat64(0)
			return vals, []int{int(source)}
		},
		Message: func(srcVal uint64, _ uint32) uint64 {
			return edgedata.FromFloat64(edgedata.ToFloat64(srcVal) + 1)
		},
		Better: func(c, cur uint64) bool {
			return edgedata.ToFloat64(c) < edgedata.ToFloat64(cur)
		},
		FirstOfferWins: true,
		Unreached:      edgedata.FromFloat64(math.Inf(1)),
	}
}

// SSSPKernel is single-source shortest paths over per-edge weights in
// canonical edge index order — the same weight is read whether the edge
// is relaxed from its source (push) or gathered at its destination
// (pull).
func SSSPKernel(source uint32, weights []float64) Kernel {
	return Kernel{
		Name: "sssp",
		Init: func(g *graph.Graph) ([]uint64, []int) {
			vals := make([]uint64, g.N())
			inf := edgedata.FromFloat64(math.Inf(1))
			for v := range vals {
				vals[v] = inf
			}
			vals[source] = edgedata.FromFloat64(0)
			return vals, []int{int(source)}
		},
		Message: func(srcVal uint64, e uint32) uint64 {
			return edgedata.FromFloat64(edgedata.ToFloat64(srcVal) + weights[e])
		},
		Better: func(c, cur uint64) bool {
			return edgedata.ToFloat64(c) < edgedata.ToFloat64(cur)
		},
		EdgeIndexed: true,
	}
}
