package algorithms

import (
	"fmt"

	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// NoSyncVerdict obtains the eligibility verdict that admits (or refuses)
// a to the barrier-free no-sync tier. Registered algorithms get the
// static verdict — a worst case over all graphs, so an ELIGIBLE answer
// holds for every input without running anything. Unregistered algorithms
// fall back to an instrumented probe run on g, which observes the actual
// potential conflicts of this input.
func NoSyncVerdict(a Algorithm, g *graph.Graph) (eligibility.Verdict, error) {
	if sp, ok := StaticProfiles()[a.Name()]; ok {
		return eligibility.AdviseStatic(a.Properties(), sp), nil
	}
	_, v, err := Probe(a, g)
	if err != nil {
		return eligibility.Verdict{}, fmt.Errorf("algorithms: %s: probe for no-sync admission: %w", a.Name(), err)
	}
	return v, nil
}
