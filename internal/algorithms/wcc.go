package algorithms

import (
	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// WCC computes weakly connected components by minimum-label propagation —
// the paper's Fig. 2 example, adapted from GraphChi's shipped WCC program.
// Every vertex starts with its own label; the update takes the minimum of
// the vertex label and all incident edge labels and writes the minimum
// back to the vertex and to every incident edge that exceeds it.
//
// Because both endpoints of an edge write it, nondeterministic execution
// produces write-write conflicts; WCC is monotone (labels only decrease),
// so Theorem 2 guarantees recovery from corrupted edge values, and the
// absolute convergence condition makes the final labels identical to
// deterministic execution.
type WCC struct{}

// NewWCC returns the WCC algorithm.
func NewWCC() *WCC { return &WCC{} }

// Name implements Algorithm.
func (*WCC) Name() string { return "wcc" }

// Properties implements Algorithm.
func (*WCC) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:              "wcc",
		ConvergesDetAsync: true,
		// WCC also converges synchronously, but the paper routes it
		// through Theorem 2 because of its write-write conflicts.
		ConvergesSynchronously: true,
		Monotonic:              true,
		Convergence:            eligibility.Absolute,
	}
}

// wccInf is the "infinite" initial edge label of the paper's example.
const wccInf = ^uint64(0)

// Setup gives vertex v the label v, sets all edge labels to infinity, and
// schedules every vertex.
func (*WCC) Setup(e *core.Engine) {
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	e.Edges.Fill(wccInf)
	e.Frontier().ScheduleAll()
}

// Update is f(v): min over own label and incident edge labels, then
// correct the vertex and any incident edge above the minimum.
func (*WCC) Update(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if w := ctx.OutEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	ctx.Yield()
	for k := 0; k < ctx.InDegree(); k++ {
		if ctx.InEdgeVal(k) > min {
			ctx.SetInEdgeVal(k, min)
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if ctx.OutEdgeVal(k) > min {
			ctx.SetOutEdgeVal(k, min)
		}
	}
}

// Components decodes the converged component label of every vertex.
func (*WCC) Components(e *core.Engine) []uint32 {
	out := make([]uint32, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = uint32(w)
	}
	return out
}

// NumComponents counts distinct labels in a converged labeling.
func NumComponents(labels []uint32) int {
	seen := make(map[uint32]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// ReferenceWCC computes weakly connected components with a union-find over
// the undirected edge set — an independent implementation whose labels
// (minimum vertex id per component) must match the engine's converged
// labels exactly.
func ReferenceWCC(g *graph.Graph) []uint32 {
	parent := make([]uint32, g.N())
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // keep the smaller id as root so labels are minima
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, u := range g.OutNeighbors(v) {
			union(v, u)
		}
	}
	labels := make([]uint32, g.N())
	for v := range labels {
		labels[v] = find(uint32(v))
	}
	return labels
}

var (
	_ Algorithm = (*WCC)(nil)
	_ Algorithm = (*PageRank)(nil)
)
