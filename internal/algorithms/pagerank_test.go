package algorithms

import (
	"math"
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/metrics"
	"ndgraph/internal/sched"
)

func testGraph(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankDeterministicMatchesReference(t *testing.T) {
	g := testGraph(t, 21)
	pr := NewPageRank(1e-7)
	e, res, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := pr.Ranks(e)
	want := ReferencePageRank(g, pr.Damping, 1e-10, 10000)
	if d := metrics.LInfDistance(got, want); d > 1e-3 {
		t.Fatalf("LInf(engine, reference) = %v", d)
	}
}

func TestPageRankRanksPositive(t *testing.T) {
	g := testGraph(t, 22)
	pr := NewPageRank(1e-6)
	e, _, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range pr.Ranks(e) {
		if r < 0.15-1e-9 || math.IsNaN(r) {
			t.Fatalf("rank[%d] = %v", v, r)
		}
	}
}

// Theorem 1 end-to-end: PageRank converges nondeterministically and its
// result stays close to the deterministic fixed point.
func TestPageRankNondeterministicConverges(t *testing.T) {
	g := testGraph(t, 23)
	pr := NewPageRank(1e-6)
	det, _, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	want := pr.Ranks(det)
	for _, mode := range edgedata.ConcurrentModes() {
		if mode == edgedata.ModeAligned && raceEnabled {
			continue
		}
		e, res, err := Run(pr, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: 4, Mode: mode, Amplify: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		got := pr.Ranks(e)
		// Local ε-convergence admits bounded run-to-run wobble; the
		// overall vectors must still be close.
		if d := metrics.LInfDistance(got, want); d > 0.05 {
			t.Fatalf("%v: LInf(nondet, det) = %v", mode, d)
		}
	}
}

func TestPageRankSynchronousConverges(t *testing.T) {
	g := testGraph(t, 24)
	pr := NewPageRank(1e-6)
	e, res, err := Run(pr, g, core.Options{Scheduler: sched.Synchronous, Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("synchronous run did not converge (Theorem 1 premise)")
	}
	want := ReferencePageRank(g, pr.Damping, 1e-10, 10000)
	if d := metrics.LInfDistance(pr.Ranks(e), want); d > 1e-3 {
		t.Fatalf("LInf = %v", d)
	}
}

// Paper Section V-C: smaller ε pushes variation to less significant pages
// (larger difference degree) in deterministic reruns too (float noise is
// absent here, so deterministic reruns must be identical).
func TestPageRankDeterministicReproducible(t *testing.T) {
	g := testGraph(t, 25)
	pr := NewPageRank(1e-5)
	var first []uint32
	for run := 0; run < 3; run++ {
		e, _, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
		if err != nil {
			t.Fatal(err)
		}
		order := metrics.RankOrder(pr.Ranks(e))
		if first == nil {
			first = order
			continue
		}
		if dd := metrics.DifferenceDegree(first, order); dd != len(first) {
			t.Fatalf("deterministic reruns diverge at rank %d", dd)
		}
	}
}

func TestPageRankConflictProfileIsRWOnly(t *testing.T) {
	g := testGraph(t, 26)
	profile, verdict, err := Probe(NewPageRank(1e-6), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW != 0 {
		t.Fatalf("PageRank produced WW conflicts: %+v", profile)
	}
	if profile.RW == 0 {
		t.Fatalf("PageRank produced no RW conflicts: %+v", profile)
	}
	if !verdict.Eligible || verdict.Theorem != 1 {
		t.Fatalf("verdict = %+v", verdict)
	}
	if verdict.DeterministicResults {
		t.Fatal("approximate-convergence PageRank flagged as reproducing results")
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g, err := graph.Build(nil, graph.Options{NumVertices: 5})
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank(1e-6)
	e, res, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("edgeless graph did not converge")
	}
	for _, r := range pr.Ranks(e) {
		if math.Abs(r-0.15) > 1e-12 {
			t.Fatalf("isolated vertex rank = %v, want 0.15", r)
		}
	}
}

func TestPageRankDanglingVertices(t *testing.T) {
	// Star out of 0: vertex 0 has out-edges, spokes are dangling.
	es := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}
	g, err := graph.Build(es, graph.Options{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank(1e-9)
	e, res, err := Run(pr, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	ranks := pr.Ranks(e)
	// Vertex 0 has no in-edges: rank = 0.15. Spokes: 0.15 + 0.85*(0.15/2).
	if math.Abs(ranks[0]-0.15) > 1e-6 {
		t.Fatalf("rank[0] = %v", ranks[0])
	}
	wantSpoke := 0.15 + 0.85*0.075
	if math.Abs(ranks[1]-wantSpoke) > 1e-6 || math.Abs(ranks[2]-wantSpoke) > 1e-6 {
		t.Fatalf("spoke ranks = %v, want %v", ranks[1:], wantSpoke)
	}
}

// Smaller ε must not converge in fewer iterations than a larger ε on the
// same deterministic schedule.
func TestPageRankEpsilonMonotonicIterations(t *testing.T) {
	g := testGraph(t, 27)
	loose := NewPageRank(1e-2)
	tight := NewPageRank(1e-8)
	_, resLoose, err := Run(loose, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	_, resTight, err := Run(tight, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if resTight.Updates < resLoose.Updates {
		t.Fatalf("tight ε did fewer updates (%d) than loose ε (%d)", resTight.Updates, resLoose.Updates)
	}
}
