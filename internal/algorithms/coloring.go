package algorithms

import (
	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
)

// Coloring is greedy vertex coloring, included as the counter-example the
// paper's framework warns about: an algorithm that converges under
// deterministic asynchronous execution but is NOT monotonic, so its
// write-write conflicts are not covered by Theorem 2 and nondeterministic
// execution may corrupt state or oscillate (cf. Nasre/Burtscher/Pingali,
// "Atomic-free irregular computations", which the paper cites for the
// monotonicity notion).
//
// Data layout: each edge word packs the colors of both endpoints — the
// source's color in the low 32 bits, the destination's in the high 32.
// f(v) reads its neighbors' halves, picks the smallest color unused among
// them, and rewrites its own half of every incident edge. Updating one
// half is a read-modify-write of the shared word, so concurrent endpoint
// updates lose each other's halves — exactly the non-recoverable
// corruption Theorem 2's monotonicity premise exists to exclude.
type Coloring struct{}

// NewColoring returns the greedy coloring algorithm.
func NewColoring() *Coloring { return &Coloring{} }

// Name implements Algorithm.
func (*Coloring) Name() string { return "coloring" }

// Properties implements Algorithm: converges det-async, not monotonic.
func (*Coloring) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:              "coloring",
		ConvergesDetAsync: true,
		Monotonic:         false,
		Convergence:       eligibility.Absolute,
	}
}

const noColor = 0xffffffff

func packColors(src, dst uint32) uint64 { return uint64(src) | uint64(dst)<<32 }
func srcColor(w uint64) uint32          { return uint32(w) }
func dstColor(w uint64) uint32          { return uint32(w >> 32) }

// Setup marks every vertex and both halves of every edge uncolored and
// schedules all vertices.
func (*Coloring) Setup(e *core.Engine) {
	for v := range e.Vertices {
		e.Vertices[v] = uint64(noColor)
	}
	e.Edges.Fill(packColors(noColor, noColor))
	e.Frontier().ScheduleAll()
}

// Update is f(v): choose the smallest color not used by any neighbor (as
// published on the incident edges) and publish it on the vertex's halves.
//
//ndlint:ignore conflictclass deliberate counter-example: WW without monotonicity is the paper's canonical ineligible profile, kept to demonstrate the rejection
func (*Coloring) Update(ctx core.VertexView) {
	deg := ctx.InDegree() + ctx.OutDegree()
	used := make([]bool, deg+1)
	note := func(c uint32) {
		if c != noColor && int(c) < len(used) {
			used[c] = true
		}
	}
	for k := 0; k < ctx.InDegree(); k++ {
		note(srcColor(ctx.InEdgeVal(k))) // in-neighbor publishes the src half
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		note(dstColor(ctx.OutEdgeVal(k))) // out-neighbor publishes the dst half
	}
	c := uint32(0)
	for int(c) < len(used) && used[c] {
		c++
	}
	if uint32(ctx.Vertex()) == c {
		return // already stable with this color
	}
	ctx.SetVertex(uint64(c))
	ctx.Yield()
	// Publish: overwrite our own half, preserving the (just observed)
	// neighbor half — the racy read-modify-write that makes this
	// algorithm ineligible.
	for k := 0; k < ctx.InDegree(); k++ {
		w := ctx.InEdgeVal(k)
		ctx.SetInEdgeVal(k, packColors(srcColor(w), c)) //ndlint:ignore atomicity intentionally racy packed-half publish — the very hazard this counter-example exists to exhibit
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		w := ctx.OutEdgeVal(k)
		ctx.SetOutEdgeVal(k, packColors(c, dstColor(w))) //ndlint:ignore atomicity intentionally racy packed-half publish — the very hazard this counter-example exists to exhibit
	}
}

// ColorsOf decodes the vertex colors.
func (*Coloring) ColorsOf(e *core.Engine) []uint32 {
	out := make([]uint32, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = uint32(w)
	}
	return out
}

// ValidColoring reports whether no two adjacent vertices share a color and
// every vertex is colored. Self-loops are ignored.
func ValidColoring(g *graph.Graph, colors []uint32) bool {
	if len(colors) != g.N() {
		return false
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		if colors[v] == noColor {
			return false
		}
		for _, u := range g.OutNeighbors(v) {
			if u != v && colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

var _ Algorithm = (*Coloring)(nil)
