//go:build !race

package algorithms

// raceEnabled mirrors edgedata's flag for test-time skipping.
const raceEnabled = false
