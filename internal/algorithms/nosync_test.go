package algorithms

import (
	"testing"

	"ndgraph/internal/eligibility"
	"ndgraph/internal/gen"
)

func TestNoSyncVerdictStaticRoutes(t *testing.T) {
	g, _ := gen.Ring(16)
	cases := []struct {
		a        Algorithm
		eligible bool
		theorem  int
	}{
		{NewWCC(), true, 2},
		{NewBFS(g, 0), true, 1},
		{NewPageRank(1e-4), true, 1},
		{NewColoring(), false, 0},
	}
	for _, c := range cases {
		v, err := NoSyncVerdict(c.a, g)
		if err != nil {
			t.Fatalf("%s: %v", c.a.Name(), err)
		}
		if v.Eligible != c.eligible || v.Theorem != c.theorem {
			t.Errorf("%s: verdict = eligible=%v theorem=%d, want %v/%d",
				c.a.Name(), v.Eligible, v.Theorem, c.eligible, c.theorem)
		}
		if v.Source != "static" {
			t.Errorf("%s: source = %q, want static (registered algorithm)", c.a.Name(), v.Source)
		}
	}
}

// unregistered wraps WCC under a name outside the static registry, forcing
// NoSyncVerdict down the probe path.
type unregistered struct{ *WCC }

func (*unregistered) Name() string { return "wcc-unregistered" }

func (u *unregistered) Properties() eligibility.Properties {
	p := u.WCC.Properties()
	p.Name = "wcc-unregistered"
	return p
}

func TestNoSyncVerdictProbeFallback(t *testing.T) {
	g, err := gen.RMAT(120, 700, gen.DefaultRMAT, 81)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NoSyncVerdict(&unregistered{NewWCC()}, g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Source != "probe" {
		t.Fatalf("source = %q, want probe (unregistered algorithm)", v.Source)
	}
	if !v.Eligible || v.Theorem != 2 {
		t.Fatalf("probe verdict = %+v, want Theorem 2 eligible", v)
	}
}

var _ Algorithm = (*unregistered)(nil)
