package algorithms

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/rng"
	"ndgraph/internal/sched"
)

func TestWCCDeterministicMatchesUnionFind(t *testing.T) {
	g := testGraph(t, 31)
	wcc := NewWCC()
	e, res, err := Run(wcc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := wcc.Components(e)
	want := ReferenceWCC(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: engine label %d, union-find label %d", v, got[v], want[v])
		}
	}
}

// Theorem 2 end-to-end: WCC has write-write conflicts, is monotone, and
// must produce *bit-identical* final labels under every scheduler and
// atomicity mode — "their nondeterministic executions will produce the
// same final results as their deterministic executions".
func TestWCCNondeterministicIdenticalResults(t *testing.T) {
	g := testGraph(t, 32)
	wcc := NewWCC()
	want := ReferenceWCC(g)
	configs := []core.Options{
		{Scheduler: sched.Deterministic},
		{Scheduler: sched.Synchronous, Threads: 2, Mode: edgedata.ModeAtomic},
		{Scheduler: sched.Chromatic, Threads: 4, Mode: edgedata.ModeAtomic},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic, Amplify: true},
		{Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeLocked, Amplify: true},
	}
	if !raceEnabled {
		configs = append(configs,
			core.Options{Scheduler: sched.Nondeterministic, Threads: 8, Mode: edgedata.ModeAligned, Amplify: true})
	}
	for _, opts := range configs {
		e, res, err := Run(wcc, g, opts)
		if err != nil {
			t.Fatalf("%v/%v: %v", opts.Scheduler, opts.Mode, err)
		}
		if !res.Converged {
			t.Fatalf("%v/%v: did not converge", opts.Scheduler, opts.Mode)
		}
		got := wcc.Components(e)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v/%v: vertex %d = %d, want %d",
					opts.Scheduler, opts.Mode, v, got[v], want[v])
			}
		}
	}
}

func TestWCCConflictProfileHasWW(t *testing.T) {
	g := testGraph(t, 33)
	profile, verdict, err := Probe(NewWCC(), g)
	if err != nil {
		t.Fatal(err)
	}
	if profile.WW == 0 {
		t.Fatalf("WCC produced no WW conflicts: %+v", profile)
	}
	if !verdict.Eligible || verdict.Theorem != 2 {
		t.Fatalf("verdict = %+v", verdict)
	}
	if !verdict.DeterministicResults {
		t.Fatal("monotone absolute WCC not flagged as result-reproducing")
	}
}

func TestWCCDisconnectedComponents(t *testing.T) {
	// Two rings and an isolated vertex: three components.
	es := []graph.Edge{}
	for i := 0; i < 4; i++ {
		es = append(es, graph.Edge{Src: uint32(i), Dst: uint32((i + 1) % 4)})
	}
	for i := 4; i < 7; i++ {
		next := i + 1
		if next == 7 {
			next = 4
		}
		es = append(es, graph.Edge{Src: uint32(i), Dst: uint32(next)})
	}
	g, err := graph.Build(es, graph.Options{NumVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	wcc := NewWCC()
	e, _, err := Run(wcc, g, core.Options{Scheduler: sched.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	labels := wcc.Components(e)
	if n := NumComponents(labels); n != 3 {
		t.Fatalf("components = %d, want 3 (labels %v)", n, labels)
	}
	if labels[0] != 0 || labels[4] != 4 || labels[7] != 7 {
		t.Fatalf("labels not component minima: %v", labels)
	}
}

// Fig. 2 of the paper: the two-vertex write-write example. With the race
// amplifier and many repetitions, nondeterministic execution must always
// recover the correct minimum label.
func TestWCCFig2WriteWriteRecovery(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.Options{NumVertices: 2})
	if err != nil {
		t.Fatal(err)
	}
	wcc := NewWCC()
	for trial := 0; trial < 200; trial++ {
		e, res, err := Run(wcc, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: 2,
			Mode: edgedata.ModeAtomic, Amplify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		labels := wcc.Components(e)
		if labels[0] != 0 || labels[1] != 0 {
			t.Fatalf("trial %d: labels = %v, want [0 0]", trial, labels)
		}
	}
}

// Property: on random graphs, nondeterministic WCC equals union-find.
func TestWCCQuickRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := gen.ErdosRenyi(80, 120+r.Intn(200), seed)
		if err != nil {
			return false
		}
		wcc := NewWCC()
		e, res, err := Run(wcc, g, core.Options{
			Scheduler: sched.Nondeterministic, Threads: 4,
			Mode: edgedata.ModeAtomic, Amplify: true,
		})
		if err != nil || !res.Converged {
			return false
		}
		got := wcc.Components(e)
		want := ReferenceWCC(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNumComponents(t *testing.T) {
	if NumComponents(nil) != 0 {
		t.Fatal("empty labels")
	}
	if NumComponents([]uint32{3, 3, 3}) != 1 {
		t.Fatal("single component")
	}
	if NumComponents([]uint32{0, 1, 2}) != 3 {
		t.Fatal("distinct components")
	}
}
