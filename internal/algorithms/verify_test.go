package algorithms

import (
	"errors"
	"testing"
)

func TestVerifyMonotonicityWCC(t *testing.T) {
	g := testGraph(t, 151)
	if err := VerifyMonotonicity(NewWCC(), g, NonIncreasing); err != nil {
		t.Fatalf("WCC failed monotonicity verification: %v", err)
	}
}

func TestVerifyMonotonicitySSSP(t *testing.T) {
	g := testGraph(t, 152)
	s := NewSSSP(g, 0, 3)
	// Distances are IEEE floats with non-negative values, so bit patterns
	// order like the floats: non-increasing holds.
	if err := VerifyMonotonicity(s, g, NonIncreasing); err != nil {
		t.Fatalf("SSSP failed monotonicity verification: %v", err)
	}
}

func TestVerifyMonotonicityKCore(t *testing.T) {
	g := testGraph(t, 153)
	// k-core edge words pack two estimates (src low, dst high). Both
	// halves only ever decrease, so the packed uint64 is itself
	// non-increasing — the verifier confirms the Theorem 2 premise holds
	// even at the raw-word level.
	if err := VerifyMonotonicity(NewKCore(), g, NonIncreasing); err != nil {
		t.Fatalf("k-core failed word-monotonicity verification: %v", err)
	}
}

func TestVerifyMonotonicityColoringViolates(t *testing.T) {
	g := testGraph(t, 154)
	errInc := VerifyMonotonicity(NewColoring(), g, NonIncreasing)
	errDec := VerifyMonotonicity(NewColoring(), g, NonDecreasing)
	var v *MonotonicityViolation
	if !errors.As(errInc, &v) && !errors.As(errDec, &v) {
		t.Fatalf("coloring passed both directions: inc=%v dec=%v", errInc, errDec)
	}
	if v != nil && v.Error() == "" {
		t.Fatal("violation error string empty")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if !NonIncreasing(5, 5) || !NonIncreasing(5, 3) || NonIncreasing(3, 5) {
		t.Fatal("NonIncreasing wrong")
	}
	if !NonDecreasing(3, 5) || !NonDecreasing(5, 5) || NonDecreasing(5, 3) {
		t.Fatal("NonDecreasing wrong")
	}
}

func TestIsInitSentinel(t *testing.T) {
	if !isInitSentinel(^uint64(0)) {
		t.Fatal("all-ones not a sentinel")
	}
	if !isInitSentinel(0x7FF0000000000000) {
		t.Fatal("+Inf bits not a sentinel")
	}
	if isInitSentinel(42) {
		t.Fatal("42 treated as sentinel")
	}
}
