package algorithms

import (
	"math"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/graph"
	"ndgraph/internal/rng"
)

// SpMV is the paper's other named fixed-point iteration algorithm:
// iterated sparse matrix-vector multiplication, here in the Jacobi form
// x ← b + M·x with the matrix scaled to be a contraction (each row of M
// sums to at most contraction < 1), so the iteration converges to the
// unique fixed point x* = (I − M)⁻¹ b from any start.
//
// Data layout mirrors PageRank: edge (u→v) carries the contribution
// a(u→v)·x(u); f(v) gathers its in-edge contributions, adds b(v), and
// scatters its own new contributions. Only read-write conflicts arise
// under nondeterministic execution (Theorem 1), and like PageRank the
// ε-convergence makes converged values run-dependent.
type SpMV struct {
	// Epsilon is the local convergence threshold.
	Epsilon float64
	// Coeffs holds the immutable matrix coefficient of each edge (u→v):
	// the entry M[v][u], normalized so each row sums to Contraction.
	Coeffs []float64
	// B is the constant vector b.
	B []float64
	// Contraction is the row-sum bound (< 1 for guaranteed convergence).
	Contraction float64
}

// NewSpMV builds a contraction SpMV instance for g with random positive
// coefficients (row-normalized to contraction) and a random b in [0, 1),
// both derived from seed.
func NewSpMV(g *graph.Graph, eps, contraction float64, seed uint64) *SpMV {
	r := rng.New(seed)
	coeffs := make([]float64, g.M())
	// Draw raw positive coefficients, then normalize per destination row.
	rowSum := make([]float64, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		idxs := g.InEdgeIndices(v)
		for _, e := range idxs {
			c := 0.1 + r.Float64()
			coeffs[e] = c
			rowSum[v] += c
		}
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		if rowSum[v] == 0 {
			continue
		}
		scale := contraction / rowSum[v]
		for _, e := range g.InEdgeIndices(v) {
			coeffs[e] *= scale
		}
	}
	b := make([]float64, g.N())
	for v := range b {
		b[v] = r.Float64()
	}
	return &SpMV{Epsilon: eps, Coeffs: coeffs, B: b, Contraction: contraction}
}

// Name implements Algorithm.
func (*SpMV) Name() string { return "spmv" }

// Properties implements Algorithm.
func (*SpMV) Properties() eligibility.Properties {
	return eligibility.Properties{
		Name:                   "spmv",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              false,
		Convergence:            eligibility.Approximate,
	}
}

// Setup starts x at b and pre-loads each edge with its contribution under
// that start, scheduling everything.
func (s *SpMV) Setup(e *core.Engine) {
	g := e.Graph()
	for v := range e.Vertices {
		e.Vertices[v] = edgedata.FromFloat64(s.B[v])
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		lo, hi := g.OutEdgeIndex(v)
		x := s.B[v]
		for eIdx := lo; eIdx < hi; eIdx++ {
			e.Edges.Store(eIdx, edgedata.FromFloat64(x*s.Coeffs[eIdx]))
		}
	}
	e.Frontier().ScheduleAll()
}

// Update is f(v): x(v) ← b(v) + Σ in-contributions; scatter new
// contributions unless locally converged.
func (s *SpMV) Update(ctx core.VertexView) {
	sum := s.B[ctx.V()]
	for k := 0; k < ctx.InDegree(); k++ {
		sum += edgedata.ToFloat64(ctx.InEdgeVal(k))
	}
	old := edgedata.ToFloat64(ctx.Vertex())
	ctx.SetVertex(edgedata.FromFloat64(sum))
	if math.Abs(sum-old) < s.Epsilon {
		return
	}
	ctx.Yield()
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, edgedata.FromFloat64(sum*s.Coeffs[ctx.OutEdgeID(k)]))
	}
}

// ResidualDelta is SpMV's residual metric for the ε-aware stopping rule:
// the absolute movement |Δx(v)| of one vertex commit, mirroring
// PageRank's. The Jacobi contraction makes the windowed mean of these
// deltas trend to zero, so cutting the tail at ε leaves the solution
// within ε-order of the fixed point.
func (*SpMV) ResidualDelta(old, new uint64) float64 {
	return math.Abs(edgedata.ToFloat64(new) - edgedata.ToFloat64(old))
}

// Values decodes the converged solution vector.
func (s *SpMV) Values(e *core.Engine) []float64 {
	out := make([]float64, len(e.Vertices))
	for v, w := range e.Vertices {
		out[v] = edgedata.ToFloat64(w)
	}
	return out
}

// ReferenceSpMV solves the same fixed point by dense Jacobi iteration to
// tolerance tol — the oracle for tests.
func ReferenceSpMV(g *graph.Graph, s *SpMV, tol float64, maxIter int) []float64 {
	n := g.N()
	x := make([]float64, n)
	next := make([]float64, n)
	copy(x, s.B)
	for iter := 0; iter < maxIter; iter++ {
		for v := uint32(0); int(v) < n; v++ {
			sum := s.B[v]
			srcs := g.InNeighbors(v)
			idxs := g.InEdgeIndices(v)
			for k := range srcs {
				sum += s.Coeffs[idxs[k]] * x[srcs[k]]
			}
			next[v] = sum
		}
		delta := 0.0
		for v := range x {
			if d := math.Abs(next[v] - x[v]); d > delta {
				delta = d
			}
		}
		x, next = next, x
		if delta < tol {
			break
		}
	}
	return x
}

var _ Algorithm = (*SpMV)(nil)
