package algorithms

import "ndgraph/internal/eligibility"

// StaticProfiles returns the expected static access profile of every
// built-in algorithm's update function, keyed by Name(). These are the
// worst-case conflict classes of the paper's Table: the scatter side a
// vertex writes, the gather side its neighbor reads (RW), and for the
// label/estimate-repair algorithms both endpoints write the shared edge
// word (WW). The ndlint conflictclass pass derives the same profiles from
// source; the root-level consistency test pins the two together and
// checks both against the runtime probe census.
func StaticProfiles() map[string]eligibility.StaticProfile {
	// PageRank shape: gather reads in-edges, scatter writes out-edges.
	rw := eligibility.StaticProfile{ReadsIn: true, WritesOut: true, WritesVertex: true}
	// SSSP relaxes against the current out-edge value before writing it.
	rwGuard := eligibility.StaticProfile{ReadsIn: true, ReadsOut: true, WritesOut: true, WritesVertex: true}
	// Label/estimate repair: both directions read and written.
	ww := eligibility.StaticProfile{ReadsIn: true, ReadsOut: true, WritesIn: true, WritesOut: true, WritesVertex: true}
	return map[string]eligibility.StaticProfile{
		"pagerank":  rw,
		"spmv":      rw,
		"labelprop": rw,
		"sssp":      rwGuard,
		"bfs":       rwGuard,
		"wcc":       ww,
		"kcore":     ww,
		"coloring":  ww,
	}
}
