// Package model provides the theoretical convergence-speed analysis the
// paper lists as future work ("theoretical analyses of the convergence
// speed (e.g., in amount of iterations) of graph algorithms by
// nondeterministic executions").
//
// It builds directly on the Section II order model (implemented in
// package sched): updates of one iteration are dispatched by Fig. 1 over
// P threads, and two updates relate as ≺ (result visible), ≻, or ∥
// (overlapped) depending on their positions π and the propagation
// distance d. The Theorem 1 proof reduces convergence to passing a value
// along a chain v_0 → v_1 → … → v_k; per hop:
//
//   - f(v_i) ≺ f(v_{i+1}): the value passes within the same iteration
//     (the Gauss–Seidel collapse);
//   - f(v_i) ≻ f(v_{i+1}) or ∥: the write lands after (or invisible to)
//     the reader, so the value arrives one iteration later.
//
// ChainIterations turns that case analysis into a closed prediction, and
// SimulateChain checks it with a discrete-event execution of the same
// model, so the two can be property-tested against each other. The
// Theorem 2 analysis adds the write-write recovery cost: a corrupted edge
// is rewritten in the next iteration and consumed the one after, bounding
// the delay per corruption at two iterations (WWRecoveryBound).
package model

import "ndgraph/internal/sched"

// ChainIterations predicts the number of iterations for a value produced
// at chain[0] to reach chain[k] when every chain vertex is scheduled in
// every iteration, nv updates are dispatched per iteration over p threads
// with propagation distance d, and labels are the chain entries.
//
// The count follows the Theorem 1 proof: the value starts available at
// iteration 1 (produced by f(chain[0]) during iteration 0); each hop
// whose relation is not Before adds one iteration; Before hops pass
// within the iteration. The result is the iteration index (1-based) by
// which chain[k] has consumed the value — including the final iteration
// in which nothing changes, the engine's convergence detection adds one
// more pass.
func ChainIterations(chain []int, nv, p, d int) int {
	if len(chain) < 2 {
		return 1
	}
	iters := 1
	for i := 0; i+1 < len(chain); i++ {
		if sched.Relation(chain[i], chain[i+1], nv, p, d) != sched.Before {
			iters++
		}
	}
	return iters
}

// SimulateChain executes the order model as a discrete-event simulation,
// independently of the ChainIterations recurrence: each iteration, every
// chain vertex that holds the value writes its outgoing chain edge during
// its update; a downstream vertex acquires the value either from an edge
// written in an *earlier* iteration (barriers commit writes) or from a
// same-iteration write when the writer relates as ≺ (Before) to the
// reader — in which case the reader's own scatter can forward the value
// further within the same iteration (the Gauss–Seidel collapse along
// Before-runs). It returns the iteration (1-based) at which the value
// reaches the chain's end, or 0 if maxIters passes first.
func SimulateChain(chain []int, nv, p, d, maxIters int) int {
	if len(chain) < 2 {
		return 1
	}
	k := len(chain)
	has := make([]bool, k)
	has[0] = true
	edgeWritten := make([]int, k-1) // iteration edge i was first written; 0 = never
	for iter := 1; iter <= maxIters; iter++ {
		// Phase 1: consume edges committed by earlier iterations.
		for i := 0; i+1 < k; i++ {
			if has[i] && !has[i+1] && edgeWritten[i] != 0 && edgeWritten[i] < iter {
				has[i+1] = true
			}
		}
		// Phase 2: this iteration's updates run; holders write their
		// edges, and Before-ordered readers consume and forward within
		// the iteration (fixpoint over Before-runs).
		for changed := true; changed; {
			changed = false
			for i := 0; i+1 < k; i++ {
				if has[i] && edgeWritten[i] == 0 {
					edgeWritten[i] = iter
					changed = true
				}
				if has[i] && !has[i+1] && edgeWritten[i] == iter &&
					sched.Relation(chain[i], chain[i+1], nv, p, d) == sched.Before {
					has[i+1] = true
					changed = true
				}
			}
		}
		if has[k-1] {
			return iter
		}
	}
	return 0
}

// WWRecoveryBound returns the worst-case extra iterations Theorem 2's
// proof admits per write-write corruption of an edge: the losing (stale)
// value is visible for at most one iteration, the owner's rewrite lands
// in the next, and the dependent update consumes it the iteration after —
// two added iterations per corruption, independent of P and d.
func WWRecoveryBound(corruptions int) int {
	if corruptions < 0 {
		return 0
	}
	return 2 * corruptions
}

// GSCollapseFraction computes, for a random ascending chain dispatched
// under Fig. 1, the fraction of hops that pass within one iteration
// (relation Before) — the analytic form of the paper's observation that
// asynchronous execution needs fewer iterations than BSP. For p = 1 every
// ascending hop collapses (fraction 1, pure Gauss–Seidel); as p grows,
// cross-thread ∥ windows reduce the fraction toward the BSP limit 0.
func GSCollapseFraction(chainLen, nv, p, d int) float64 {
	if chainLen < 2 {
		return 1
	}
	collapsed := 0
	for i := 0; i+1 < chainLen; i++ {
		if sched.Relation(i, i+1, nv, p, d) == sched.Before {
			collapsed++
		}
	}
	return float64(collapsed) / float64(chainLen-1)
}
