package model

import (
	"testing"

	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/sched"
)

// minLabel is the test propagation: chain vertex 0 starts with the
// minimum and all vertices are scheduled every iteration (the Theorem 1
// proof's setting).
func minLabel(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.OutDegree(); k++ {
		if ctx.OutEdgeVal(k) > min {
			ctx.SetOutEdgeVal(k, min)
		}
	}
}

func chainEngineIters(t *testing.T, n int, opts core.Options) int {
	t.Helper()
	g, err := gen.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v + 1)
	}
	e.Vertices[0] = 0
	e.Edges.Fill(^uint64(0))
	e.Frontier().ScheduleAll()
	res, err := e.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v, w := range e.Vertices {
		if w != 0 {
			t.Fatalf("vertex %d = %d", v, w)
		}
	}
	return res.Iterations
}

// The deterministic engine matches the p=1 model: the ascending chain
// collapses in one iteration, plus exactly one detection pass in which
// nothing changes... almost: the iteration-0 writes reschedule their
// endpoints, so the engine runs follow-up iterations until no writes
// occur. The model predicts the iteration at which the value *arrives*;
// the engine adds passes for quiescence detection. The invariant tested:
// engine iterations ∈ [model, model + 2].
func TestModelMatchesDeterministicEngine(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		chain := make([]int, n)
		for i := range chain {
			chain[i] = i
		}
		predicted := ChainIterations(chain, n, 1, 1)
		got := chainEngineIters(t, n, core.Options{Scheduler: sched.Deterministic})
		if got < predicted || got > predicted+2 {
			t.Fatalf("n=%d: engine %d iterations, model predicts %d (+detection)", n, got, predicted)
		}
	}
}

// The synchronous engine matches the overlap-everywhere limit: one
// iteration per hop.
func TestModelMatchesSynchronousEngine(t *testing.T) {
	for _, n := range []int{4, 16, 48} {
		chain := make([]int, n)
		for i := range chain {
			chain[i] = i
		}
		// BSP = every hop overlapped: model with p = nv, d = ∞-ish.
		predicted := ChainIterations(chain, n, n, n*10)
		got := chainEngineIters(t, n, core.Options{Scheduler: sched.Synchronous, Threads: 1})
		if got < predicted || got > predicted+2 {
			t.Fatalf("n=%d: sync engine %d iterations, model predicts %d (+detection)", n, got, predicted)
		}
	}
}

// The ratio between BSP and Gauss–Seidel iterations on a long chain is
// the paper's headline motivation; the model predicts it exactly.
func TestModelPredictsCollapseRatio(t *testing.T) {
	n := 64
	chain := make([]int, n)
	for i := range chain {
		chain[i] = i
	}
	gs := ChainIterations(chain, n, 1, 1)
	bsp := ChainIterations(chain, n, n, n*10)
	if gs != 1 || bsp != n {
		t.Fatalf("model: gs=%d bsp=%d", gs, bsp)
	}
	gotGS := chainEngineIters(t, n, core.Options{Scheduler: sched.Deterministic})
	gotBSP := chainEngineIters(t, n, core.Options{Scheduler: sched.Synchronous, Threads: 1})
	if gotBSP < 10*gotGS {
		t.Fatalf("engine collapse ratio too small: gs=%d bsp=%d", gotGS, gotBSP)
	}
}
