package model

import (
	"testing"
	"testing/quick"
)

func ascendingChain(k int) []int {
	c := make([]int, k+1)
	for i := range c {
		c[i] = i
	}
	return c
}

func TestChainIterationsSingleThreadCollapses(t *testing.T) {
	// p=1: pure Gauss–Seidel; an ascending chain passes end to end in one
	// iteration regardless of length.
	for _, k := range []int{1, 5, 50} {
		if got := ChainIterations(ascendingChain(k), k+1, 1, 4); got != 1 {
			t.Fatalf("k=%d: %d iterations, want 1", k, got)
		}
	}
}

func TestChainIterationsDescendingWorstCase(t *testing.T) {
	// A descending chain under p=1 never passes within an iteration:
	// every hop costs one iteration.
	k := 10
	chain := make([]int, k+1)
	for i := range chain {
		chain[i] = k - i
	}
	if got := ChainIterations(chain, k+1, 1, 4); got != 1+k {
		t.Fatalf("descending: %d iterations, want %d", got, 1+k)
	}
}

func TestChainIterationsTrivial(t *testing.T) {
	if ChainIterations(nil, 10, 2, 3) != 1 {
		t.Fatal("empty chain")
	}
	if ChainIterations([]int{5}, 10, 2, 3) != 1 {
		t.Fatal("singleton chain")
	}
}

func TestChainIterationsBSPLimit(t *testing.T) {
	// With overlap everywhere (huge d), every hop costs an iteration —
	// the BSP behavior the paper contrasts against.
	k := 8
	nv := k + 1
	p := nv // one update per thread
	d := nv * 10
	if got := ChainIterations(ascendingChain(k), nv, p, d); got != 1+k {
		t.Fatalf("BSP limit: %d, want %d", got, 1+k)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	f := func(kRaw, pRaw, dRaw uint8) bool {
		k := int(kRaw)%30 + 1
		p := int(pRaw)%8 + 1
		d := int(dRaw)%10 + 1
		chain := ascendingChain(k)
		nv := k + 1
		analytic := ChainIterations(chain, nv, p, d)
		simulated := SimulateChain(chain, nv, p, d, 10*(k+2))
		return analytic == simulated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMatchesAnalyticShuffled(t *testing.T) {
	// Non-monotone label chains too.
	chains := [][]int{
		{0, 5, 2, 9, 1},
		{9, 8, 7, 0, 3, 4},
		{3, 1, 4, 1}, // repeated label: degenerate but defined
	}
	for _, chain := range chains {
		nv := 10
		for _, p := range []int{1, 2, 4} {
			for _, d := range []int{1, 3, 8} {
				a := ChainIterations(chain, nv, p, d)
				s := SimulateChain(chain, nv, p, d, 200)
				if a != s {
					t.Fatalf("chain %v p=%d d=%d: analytic %d, simulated %d", chain, p, d, a, s)
				}
			}
		}
	}
}

func TestSimulateChainCap(t *testing.T) {
	chain := []int{5, 4, 3, 2, 1, 0}
	if got := SimulateChain(chain, 6, 1, 2, 2); got != 0 {
		t.Fatalf("capped simulation = %d, want 0", got)
	}
}

func TestWWRecoveryBound(t *testing.T) {
	if WWRecoveryBound(0) != 0 || WWRecoveryBound(3) != 6 {
		t.Fatal("bound mismatch")
	}
	if WWRecoveryBound(-1) != 0 {
		t.Fatal("negative corruptions")
	}
}

func TestGSCollapseFraction(t *testing.T) {
	// p=1 ascending: full collapse.
	if f := GSCollapseFraction(20, 20, 1, 4); f != 1 {
		t.Fatalf("p=1 fraction = %v", f)
	}
	// More threads: collapse fraction cannot increase.
	prev := 1.0
	for _, p := range []int{1, 2, 4, 10, 20} {
		f := GSCollapseFraction(20, 20, p, 4)
		if f > prev+1e-12 {
			t.Fatalf("fraction grew with threads: p=%d f=%v prev=%v", p, f, prev)
		}
		prev = f
	}
	// Degenerate chain.
	if GSCollapseFraction(1, 10, 2, 3) != 1 {
		t.Fatal("short chain fraction")
	}
}

func TestMoreThreadsNeverFewerIterations(t *testing.T) {
	// Adding threads can only break ≺ hops into ∥ ones, so predicted
	// iterations are non-decreasing in p for a fixed ascending chain.
	f := func(kRaw, dRaw uint8) bool {
		k := int(kRaw)%40 + 2
		d := int(dRaw)%8 + 1
		chain := ascendingChain(k)
		nv := k + 1
		prev := 0
		for p := 1; p <= 8; p++ {
			it := ChainIterations(chain, nv, p, d)
			if it < prev {
				return false
			}
			prev = it
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
