// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout ndgraph.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every synthetic graph, every SSSP edge weight, and every workload shuffle
// must be derivable from a single seed so that deterministic and
// nondeterministic executions of an algorithm observe the *same* input. The
// standard library's math/rand/v2 would work, but a hand-rolled SplitMix64 /
// xoshiro256** pair keeps the generators allocation-free, trivially
// serializable, and stable across Go releases.
package rng

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea, and Flood.
// It is used both as a standalone generator for cheap hashing-style draws and
// as the recommended seeder for Xoshiro256StarStar.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x without advancing any state.
// It is a high-quality stateless 64-bit mixer, handy for deriving per-item
// seeds (e.g. one seed per vertex) from a master seed.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256StarStar is the xoshiro256** 1.0 generator of Blackman and Vigna.
// It has a 256-bit state, passes BigCrush, and is the workhorse generator for
// graph synthesis.
type Xoshiro256StarStar struct {
	s [4]uint64
}

// New returns a Xoshiro256StarStar seeded from seed via SplitMix64, as the
// xoshiro authors recommend. A zero seed is valid.
func New(seed uint64) *Xoshiro256StarStar {
	sm := NewSplitMix64(seed)
	var x Xoshiro256StarStar
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// Guard against the (astronomically unlikely via SplitMix, but cheap to
	// exclude) all-zero state, which is the one fixed point of xoshiro.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (x *Xoshiro256StarStar) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256StarStar) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n // == (2^64 - n) % n
	for {
		v := x.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256StarStar) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256StarStar) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n) using the
// Fisher–Yates shuffle.
func (x *Xoshiro256StarStar) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (x *Xoshiro256StarStar) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the Marsaglia polar method.
func (x *Xoshiro256StarStar) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (x *Xoshiro256StarStar) ExpFloat64() float64 {
	for {
		f := x.Float64()
		if f > 0 {
			return -math.Log(f)
		}
	}
}

// Jump advances the generator 2^128 steps, equivalent to 2^128 calls to
// Uint64. It can be used to generate 2^128 non-overlapping subsequences for
// parallel workers that must draw from one logical stream.
func (x *Xoshiro256StarStar) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Fork returns a new generator whose stream is statistically independent of
// the receiver's: the child is seeded from the parent's next output mixed
// through SplitMix64.
func (x *Xoshiro256StarStar) Fork() *Xoshiro256StarStar {
	return New(Mix64(x.Uint64()))
}
