package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 1234567 computed from the canonical C
	// implementation of SplitMix64.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(1234567) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64ZeroSeedIsValid(t *testing.T) {
	s := NewSplitMix64(0)
	a, b := s.Uint64(), s.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("zero-seeded SplitMix64 produced zeros")
	}
	if a == b {
		t.Fatal("zero-seeded SplitMix64 produced repeated value")
	}
}

func TestMix64MatchesStateless(t *testing.T) {
	// Mix64(seed) must equal the first output of a SplitMix64 seeded with seed.
	f := func(seed uint64) bool {
		return Mix64(seed) == NewSplitMix64(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, x, y)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	x := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check on 10 buckets.
	x := New(99)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[x.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d: %d draws, expected about %.0f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(3)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	x := New(5)
	a := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range a {
		sum += v
	}
	x.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	got := 0
	for _, v := range a {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	x := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := x.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean = %v, want about 1", mean)
	}
}

func TestJumpChangesStream(t *testing.T) {
	a, b := New(21), New(21)
	b.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped generator matched original on %d/100 outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(33)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked generator matched parent on %d/100 outputs", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	c1 := New(44).Fork()
	c2 := New(44).Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiroUint64n(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64n(1000003)
	}
	_ = sink
}
