package frontier

import "sync/atomic"

// Frontier is the double-buffered scheduled-vertex set used by the
// coordinated-scheduling engine. During iteration n the engine reads the
// *current* set S_n (fixed for the whole iteration) while update functions
// concurrently post vertices into the *next* set S_{n+1} via Schedule. At
// the barrier, Advance swaps the buffers.
//
// Schedule uses atomic bit operations, so any number of worker goroutines
// may post concurrently; reading the current set requires no
// synchronization because it is immutable between barriers.
//
// Cardinality and (optionally) scheduled-out-degree accounting happen at
// Schedule time: newly posted vertices bump an atomic counter and, when an
// out-degree table is attached (AttachOutDegrees), an atomic degree
// accumulator. Size, NextSize, CurrentOutDegree, and NextOutDegree are
// therefore O(1) — no bitset popcount rescans — which is what lets a
// direction-optimizing engine take Beamer-style density decisions at every
// barrier for free.
type Frontier struct {
	cur, next *Bitset
	// members caches the ascending-order member list of cur, rebuilt
	// lazily on first read after Advance or a seeding mutator, so
	// executors that never need the list (pull-direction sweeps test the
	// bitset instead) skip the O(n) extraction entirely.
	members []int
	// stale marks the member cache out of date.
	stale bool

	// curCount / curDeg are the current set's cardinality and summed
	// out-degree. Maintained eagerly by every mutator (the seeding
	// mutators are Test-guarded so duplicates do not double-count), so
	// Size is O(1) without touching the member cache.
	curCount int
	curDeg   int64

	// nextCount / nextDeg account the set accumulated for the next
	// iteration. Schedule adds to both (degree only when outDeg is
	// attached) exactly when the bit is newly set; Advance claims and
	// resets them.
	nextCount atomic.Int64
	nextDeg   atomic.Int64

	// outDeg, when non-nil, is the per-vertex out-degree table driving the
	// degree accumulators (AttachOutDegrees).
	outDeg []uint32
}

// NewFrontier returns a Frontier over a universe of n vertices with both
// buffers empty.
func NewFrontier(n int) *Frontier {
	return &Frontier{cur: NewBitset(n), next: NewBitset(n), members: make([]int, 0, n)}
}

// AttachOutDegrees supplies the per-vertex out-degree table used for O(1)
// scheduled-out-degree accounting (CurrentOutDegree, NextOutDegree). deg[v]
// must be vertex v's out-degree; len(deg) must cover the universe. The
// accumulators for already-seeded members are recomputed on attach. Not
// safe concurrently with iteration; nil detaches.
func (f *Frontier) AttachOutDegrees(deg []uint32) {
	f.outDeg = deg
	f.curDeg = f.sumDeg(f.cur)
	f.nextDeg.Store(f.sumDeg(f.next))
}

// sumDeg folds the attached out-degree table over a bitset (attach-time
// reconciliation only; the hot path accumulates at Schedule time).
func (f *Frontier) sumDeg(b *Bitset) int64 {
	if f.outDeg == nil {
		return 0
	}
	var d int64
	b.ForEach(func(v int) { d += int64(f.outDeg[v]) })
	return d
}

// Len returns the universe size.
func (f *Frontier) Len() int { return f.cur.Len() }

// ScheduleAll places every vertex in the current set (the usual initial
// state: S_0 = V).
func (f *Frontier) ScheduleAll() {
	f.cur.SetAll()
	f.curCount = f.cur.Len()
	f.curDeg = f.sumDeg(f.cur)
	f.stale = true
}

// ScheduleNow places v in the *current* set. Intended for initialization
// (e.g. SSSP schedules only the source); not safe concurrently with
// iteration.
func (f *Frontier) ScheduleNow(v int) {
	if f.cur.Test(v) {
		return
	}
	f.cur.Set(v)
	f.curCount++
	if f.outDeg != nil {
		f.curDeg += int64(f.outDeg[v])
	}
	f.stale = true
}

// ScheduleNowAll places every given vertex in the *current* set — the
// batched multi-source seeding entry point. Like ScheduleNow it is for
// initialization only, not safe concurrently with iteration.
func (f *Frontier) ScheduleNowAll(vs []int) {
	for _, v := range vs {
		f.ScheduleNow(v)
	}
}

// Schedule posts v into the next iteration's set. Safe for concurrent use.
// It reports whether v was newly scheduled.
func (f *Frontier) Schedule(v int) bool {
	if !f.next.SetAtomic(v) {
		return false
	}
	f.nextCount.Add(1)
	if f.outDeg != nil {
		f.nextDeg.Add(int64(f.outDeg[v]))
	}
	return true
}

// Scheduled reports whether v is in the current set.
func (f *Frontier) Scheduled(v int) bool { return f.cur.Test(v) }

// PendingNext reports whether v has already been posted for the next
// iteration.
func (f *Frontier) PendingNext(v int) bool { return f.next.TestAtomic(v) }

// Members returns the current set in ascending label order. The returned
// slice is owned by the Frontier and is invalidated by Advance.
func (f *Frontier) Members() []int {
	f.refresh()
	return f.members
}

// Size returns the cardinality of the current set in O(1).
func (f *Frontier) Size() int { return f.curCount }

// NextSize returns the cardinality of the set accumulated for the next
// iteration so far, from the running counter — O(1), no popcount. Only
// meaningful at a barrier (when no Schedule calls are in flight).
func (f *Frontier) NextSize() int { return int(f.nextCount.Load()) }

// CurrentOutDegree returns the summed out-degree of the current set, or 0
// when no out-degree table is attached. O(1).
func (f *Frontier) CurrentOutDegree() int64 { return f.curDeg }

// NextOutDegree returns the summed out-degree of the set accumulated for
// the next iteration, or 0 when no out-degree table is attached. O(1);
// only meaningful at a barrier.
func (f *Frontier) NextOutDegree() int64 { return f.nextDeg.Load() }

// LoadCurrent replaces the current set with exactly the given members and
// clears the next set — the checkpoint-restore entry point. Not safe
// concurrently with iteration.
func (f *Frontier) LoadCurrent(members []int) {
	f.cur.ClearAll()
	f.next.ClearAll()
	f.curCount, f.curDeg = 0, 0
	f.nextCount.Store(0)
	f.nextDeg.Store(0)
	f.stale = true
	for _, v := range members {
		f.ScheduleNow(v)
	}
}

// Advance swaps buffers: the accumulated next set becomes current and the
// new next set is cleared. It returns the size of the new current set, so
// callers can detect convergence (size 0). Must be called at a barrier.
// The member cache is rebuilt lazily on the first Members call, so
// executors that only test membership never pay for the extraction.
func (f *Frontier) Advance() int {
	f.cur, f.next = f.next, f.cur
	f.next.ClearAll()
	f.curCount = int(f.nextCount.Swap(0))
	f.curDeg = f.nextDeg.Swap(0)
	f.stale = true
	return f.curCount
}

// refresh rebuilds the member cache if Advance or a seeding mutator left
// it stale.
func (f *Frontier) refresh() {
	if f.stale {
		f.rebuild()
	}
}

func (f *Frontier) rebuild() {
	f.members = f.cur.AppendMembers(f.members[:0])
	f.stale = false
}
