package frontier

// Frontier is the double-buffered scheduled-vertex set used by the
// coordinated-scheduling engine. During iteration n the engine reads the
// *current* set S_n (fixed for the whole iteration) while update functions
// concurrently post vertices into the *next* set S_{n+1} via Schedule. At
// the barrier, Advance swaps the buffers.
//
// Schedule uses atomic bit operations, so any number of worker goroutines
// may post concurrently; reading the current set requires no
// synchronization because it is immutable between barriers.
type Frontier struct {
	cur, next *Bitset
	// members caches the ascending-order member list of cur, rebuilt at
	// each Advance, so per-iteration dispatch does not rescan the bitset.
	members []int
	// stale marks the member cache out of date. Seeding mutators
	// (ScheduleNow, ScheduleNowAll, LoadCurrent) only set the flag and the
	// cache is rebuilt lazily on first read, so seeding k sources costs
	// O(k) + one O(n) rebuild instead of k rebuilds.
	stale bool
}

// NewFrontier returns a Frontier over a universe of n vertices with both
// buffers empty.
func NewFrontier(n int) *Frontier {
	return &Frontier{cur: NewBitset(n), next: NewBitset(n), members: make([]int, 0, n)}
}

// Len returns the universe size.
func (f *Frontier) Len() int { return f.cur.Len() }

// ScheduleAll places every vertex in the current set (the usual initial
// state: S_0 = V).
func (f *Frontier) ScheduleAll() {
	f.cur.SetAll()
	f.stale = true
}

// ScheduleNow places v in the *current* set. Intended for initialization
// (e.g. SSSP schedules only the source); not safe concurrently with
// iteration.
func (f *Frontier) ScheduleNow(v int) {
	f.cur.Set(v)
	f.stale = true
}

// ScheduleNowAll places every given vertex in the *current* set — the
// batched multi-source seeding entry point. Like ScheduleNow it is for
// initialization only, not safe concurrently with iteration.
func (f *Frontier) ScheduleNowAll(vs []int) {
	for _, v := range vs {
		f.cur.Set(v)
	}
	f.stale = true
}

// Schedule posts v into the next iteration's set. Safe for concurrent use.
// It reports whether v was newly scheduled.
func (f *Frontier) Schedule(v int) bool {
	return f.next.SetAtomic(v)
}

// Scheduled reports whether v is in the current set.
func (f *Frontier) Scheduled(v int) bool { return f.cur.Test(v) }

// PendingNext reports whether v has already been posted for the next
// iteration.
func (f *Frontier) PendingNext(v int) bool { return f.next.TestAtomic(v) }

// Members returns the current set in ascending label order. The returned
// slice is owned by the Frontier and is invalidated by Advance.
func (f *Frontier) Members() []int {
	f.refresh()
	return f.members
}

// Size returns the cardinality of the current set.
func (f *Frontier) Size() int {
	f.refresh()
	return len(f.members)
}

// NextSize returns the cardinality of the set accumulated for the next
// iteration so far. Only meaningful at a barrier (when no Schedule calls
// are in flight).
func (f *Frontier) NextSize() int { return f.next.Count() }

// LoadCurrent replaces the current set with exactly the given members and
// clears the next set — the checkpoint-restore entry point. Not safe
// concurrently with iteration.
func (f *Frontier) LoadCurrent(members []int) {
	f.cur.ClearAll()
	f.next.ClearAll()
	for _, v := range members {
		f.cur.Set(v)
	}
	f.stale = true
}

// Advance swaps buffers: the accumulated next set becomes current and the
// new next set is cleared. It returns the size of the new current set, so
// callers can detect convergence (size 0). Must be called at a barrier.
func (f *Frontier) Advance() int {
	f.cur, f.next = f.next, f.cur
	f.next.ClearAll()
	f.rebuild()
	return len(f.members)
}

// refresh rebuilds the member cache if a seeding mutator left it stale.
func (f *Frontier) refresh() {
	if f.stale {
		f.rebuild()
	}
}

func (f *Frontier) rebuild() {
	f.members = f.cur.AppendMembers(f.members[:0])
	f.stale = false
}
