// Package frontier provides the vertex-set data structures used by the
// scheduling layer: plain and atomically updatable bitsets, plus a
// double-buffered Frontier that implements the paper's task-generation rule
// ("if f(v) updates an incident edge of u during iteration n, u joins
// S_{n+1}").
//
// Bitsets are the natural representation for scheduled sets S_n because the
// engine dispatches scheduled vertices in ascending label order (the paper's
// small-label-first rule); iterating a bitset yields exactly that order.
package frontier

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-capacity set of vertex IDs in [0, Len()).
//
// The plain mutators (Set, Clear, ...) are not safe for concurrent use;
// SetAtomic and TestAtomic are safe to mix with each other and with
// concurrent readers that tolerate racing observations.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset with capacity for n elements.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("frontier: negative bitset size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the bitset (the universe size, not the count
// of set bits — see Count).
func (b *Bitset) Len() int { return b.n }

// Set marks i as a member.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear removes i.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether i is a member.
func (b *Bitset) Test(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetAtomic marks i as a member using an atomic read-modify-write, safe for
// concurrent use by multiple goroutines. It reports whether the bit was
// newly set (false if it was already a member), enabling exactly-once
// claiming of vertices.
func (b *Bitset) SetAtomic(i int) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// ClearAtomic removes i atomically. It reports whether the bit was set.
func (b *Bitset) ClearAtomic(i int) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return true
		}
	}
}

// TestAtomic reports membership using an atomic load.
func (b *Bitset) TestAtomic(i int) bool {
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<uint(i%wordBits)) != 0
}

// SetAll marks every element of the universe as a member.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// ClearAll empties the set.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trimTail zeroes bits beyond n in the final word so Count and iteration
// never observe phantom members.
func (b *Bitset) trimTail() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom replaces the receiver's contents with src's. Both bitsets must
// have the same capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("frontier: CopyFrom size mismatch")
	}
	copy(b.words, src.words)
}

// Union adds every member of src to the receiver. Capacities must match.
func (b *Bitset) Union(src *Bitset) {
	if b.n != src.n {
		panic("frontier: Union size mismatch")
	}
	for i, w := range src.words {
		b.words[i] |= w
	}
}

// Intersect removes members not in src. Capacities must match.
func (b *Bitset) Intersect(src *Bitset) {
	if b.n != src.n {
		panic("frontier: Intersect size mismatch")
	}
	for i, w := range src.words {
		b.words[i] &= w
	}
}

// NextSet returns the smallest member >= i, or (0, false) if none exists.
func (b *Bitset) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return 0, false
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi]), true
		}
	}
	return 0, false
}

// ForEach calls fn for each member in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// AppendMembers appends the members in ascending order to dst and returns
// the extended slice. Passing a reusable dst avoids per-iteration
// allocations in the scheduler hot path.
func (b *Bitset) AppendMembers(dst []int) []int {
	b.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// Clone returns a deep copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	c := NewBitset(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether two bitsets have identical capacity and members.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}
