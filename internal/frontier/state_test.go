package frontier

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStatesEpisode(t *testing.T) {
	st := NewStates(4)
	if st.Len() != 4 {
		t.Fatalf("Len = %d", st.Len())
	}
	// Idle → Scheduled: first post wins, duplicates coalesce.
	if !st.Post(1) {
		t.Fatal("first Post should claim the enqueue")
	}
	if st.Post(1) {
		t.Fatal("duplicate Post on Scheduled must coalesce")
	}
	st.Begin(1)
	if st.Load(1) != StateRunning {
		t.Fatalf("state after Begin = %d", st.Load(1))
	}
	// No mid-run wakeup: Finish retires to Idle.
	if st.Finish(1) {
		t.Fatal("Finish without mid-run Post must not re-queue")
	}
	if st.Load(1) != StateIdle {
		t.Fatalf("state after Finish = %d", st.Load(1))
	}

	// Mid-run wakeup: Running → RunningDirty → re-queue at Finish.
	if !st.Post(2) {
		t.Fatal("Post on Idle")
	}
	st.Begin(2)
	if st.Post(2) {
		t.Fatal("mid-run Post must coalesce, not enqueue")
	}
	if st.Load(2) != StateRunningDirty {
		t.Fatalf("state after mid-run Post = %d", st.Load(2))
	}
	if st.Post(2) {
		t.Fatal("second mid-run Post must coalesce")
	}
	if !st.Finish(2) {
		t.Fatal("Finish after mid-run Post must re-queue")
	}
	if st.Load(2) != StateScheduled {
		t.Fatalf("state after dirty Finish = %d", st.Load(2))
	}

	st.Reset()
	if st.Load(2) != StateIdle {
		t.Fatal("Reset did not idle")
	}
}

// TestStatesNoLostWakeup drives one vertex through many concurrent Post
// storms against a runner loop and checks the protocol's core promise:
// every Post that could have observed new data is followed by a run, and
// the vertex never holds more than one queue slot.
func TestStatesNoLostWakeup(t *testing.T) {
	st := NewStates(1)
	var (
		slots    atomic.Int64 // current queue slots for vertex 0
		runs     atomic.Int64
		posts    atomic.Int64
		maxSlots atomic.Int64
	)
	enqueue := func() {
		if n := slots.Add(1); n > maxSlots.Load() {
			maxSlots.Store(n)
		}
	}
	const posters = 4
	const perPoster = 5000
	var wg sync.WaitGroup
	done := make(chan struct{})
	// Runner: consume queue slots, run, honor re-queue requests.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if slots.Load() > 0 {
				slots.Add(-1)
				st.Begin(0)
				runs.Add(1)
				if st.Finish(0) {
					enqueue()
				}
				continue
			}
			select {
			case <-done:
				if slots.Load() == 0 {
					return
				}
			default:
			}
		}
	}()
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				posts.Add(1)
				if st.Post(0) {
					enqueue()
				}
			}
		}()
	}
	// Close done only after posters finish, then let the runner drain.
	go func() {
		defer close(done)
		for posts.Load() < posters*perPoster {
		}
	}()
	wg.Wait()
	if got := maxSlots.Load(); got > 1 {
		t.Fatalf("vertex held %d queue slots at once, want ≤ 1", got)
	}
	if slots.Load() != 0 {
		t.Fatalf("undrained queue slots: %d", slots.Load())
	}
	if st.Load(0) != StateIdle {
		t.Fatalf("final state = %d, want Idle", st.Load(0))
	}
	if runs.Load() == 0 {
		t.Fatal("runner never ran")
	}
}
