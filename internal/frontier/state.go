package frontier

import "sync/atomic"

// Vertex scheduling states for the barrier-free no-sync tier. A States
// table replaces the async executor's pending+active bitset pair with one
// four-state machine per vertex, giving both guarantees in a single word:
// duplicate wakeups coalesce (a vertex occupies at most one queue slot),
// and an update never overlaps itself (the system model's per-vertex
// exclusion).
//
//	Idle ──Post──▶ Scheduled ──Begin──▶ Running ──Finish──▶ Idle
//	                   ▲                   │
//	                   │                  Post
//	                 Finish                ▼
//	                   └──────────── RunningDirty
//
// Invariants: a vertex is in some queue exactly while Scheduled; only the
// dequeuing worker moves Scheduled→Running; a Post that lands mid-run
// (Running→RunningDirty) is re-queued by the runner's own Finish, so the
// wakeup is never lost and never duplicated.
const (
	// StateIdle: not queued, not running.
	StateIdle uint32 = iota
	// StateScheduled: queued exactly once, waiting to run.
	StateScheduled
	// StateRunning: an update is executing; no queue slot held.
	StateRunning
	// StateRunningDirty: executing, and a wakeup arrived mid-run; the
	// runner re-queues the vertex when it finishes.
	StateRunningDirty
)

// States is a table of per-vertex scheduling states, safe for concurrent
// use by any number of posters and one runner per vertex.
type States struct {
	s []atomic.Uint32
}

// NewStates returns a table of n vertices, all Idle.
func NewStates(n int) *States {
	if n < 0 {
		panic("frontier: negative states size")
	}
	return &States{s: make([]atomic.Uint32, n)}
}

// Len returns the table capacity.
func (st *States) Len() int { return len(st.s) }

// Post requests an execution of v. It returns true iff the caller won the
// Idle→Scheduled transition and must enqueue v (exactly one queue slot per
// Scheduled episode). All other states coalesce the wakeup: Scheduled and
// RunningDirty are already owed a run; Running is marked dirty so the
// runner re-queues at Finish.
func (st *States) Post(v int) bool {
	s := &st.s[v]
	for {
		switch s.Load() {
		case StateIdle:
			if s.CompareAndSwap(StateIdle, StateScheduled) {
				return true
			}
		case StateScheduled, StateRunningDirty:
			return false
		case StateRunning:
			if s.CompareAndSwap(StateRunning, StateRunningDirty) {
				return false
			}
		}
	}
}

// Begin transitions v from Scheduled to Running. Only the worker that
// dequeued v's sole queue slot may call it; the vertex is necessarily
// Scheduled at that point (Post keeps it Scheduled while queued), so a
// plain store suffices.
func (st *States) Begin(v int) {
	st.s[v].Store(StateRunning)
}

// Finish retires v's run. It returns true iff a wakeup arrived mid-run
// (RunningDirty): the vertex has been moved back to Scheduled and the
// caller must re-enqueue it. Only the runner may call Finish, and only the
// runner moves a vertex out of Running/RunningDirty, so the fallback store
// cannot race another writer.
func (st *States) Finish(v int) bool {
	s := &st.s[v]
	if s.CompareAndSwap(StateRunning, StateIdle) {
		return false
	}
	// The only other reachable state here is RunningDirty.
	s.Store(StateScheduled)
	return true
}

// Load reports v's current state (racy; for tests and telemetry).
func (st *States) Load(v int) uint32 { return st.s[v].Load() }

// Reset returns every vertex to Idle. Not safe for concurrent use.
func (st *States) Reset() {
	for i := range st.s {
		st.s[i].Store(StateIdle)
	}
}
