package frontier

import (
	"sync"
	"testing"
	"time"
)

func TestFrontierInitialEmpty(t *testing.T) {
	f := NewFrontier(10)
	if f.Size() != 0 || len(f.Members()) != 0 {
		t.Fatal("new frontier not empty")
	}
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestScheduleAll(t *testing.T) {
	f := NewFrontier(5)
	f.ScheduleAll()
	m := f.Members()
	if len(m) != 5 {
		t.Fatalf("Members after ScheduleAll = %v", m)
	}
	for i, v := range m {
		if v != i {
			t.Fatalf("members not in ascending label order: %v", m)
		}
	}
}

func TestScheduleNowSingleSource(t *testing.T) {
	f := NewFrontier(100)
	f.ScheduleNow(42)
	if f.Size() != 1 || f.Members()[0] != 42 {
		t.Fatalf("Members = %v, want [42]", f.Members())
	}
	if !f.Scheduled(42) || f.Scheduled(41) {
		t.Fatal("Scheduled membership wrong")
	}
}

func TestAdvanceSwapsBuffers(t *testing.T) {
	f := NewFrontier(10)
	f.ScheduleAll()
	f.Schedule(3)
	f.Schedule(7)
	if !f.PendingNext(3) || f.PendingNext(4) {
		t.Fatal("PendingNext wrong before advance")
	}
	n := f.Advance()
	if n != 2 {
		t.Fatalf("Advance returned %d, want 2", n)
	}
	m := f.Members()
	if len(m) != 2 || m[0] != 3 || m[1] != 7 {
		t.Fatalf("Members after advance = %v", m)
	}
	if f.NextSize() != 0 {
		t.Fatal("next buffer not cleared after advance")
	}
	// Converged: nothing scheduled.
	if f.Advance() != 0 {
		t.Fatal("second Advance should report empty set")
	}
}

func TestScheduleIdempotent(t *testing.T) {
	f := NewFrontier(10)
	if !f.Schedule(5) {
		t.Fatal("first Schedule(5) returned false")
	}
	if f.Schedule(5) {
		t.Fatal("duplicate Schedule(5) returned true")
	}
	if f.NextSize() != 1 {
		t.Fatalf("NextSize = %d, want 1", f.NextSize())
	}
}

func TestScheduleConcurrent(t *testing.T) {
	const n = 2000
	f := NewFrontier(n)
	var wg sync.WaitGroup
	newly := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if f.Schedule(i) {
					newly[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range newly {
		total += c
	}
	if total != n {
		t.Fatalf("concurrent Schedule claimed %d, want %d", total, n)
	}
	if got := f.Advance(); got != n {
		t.Fatalf("Advance = %d, want %d", got, n)
	}
}

func TestMembersAscendingAfterConcurrentSchedule(t *testing.T) {
	f := NewFrontier(512)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 512; i += 4 {
				f.Schedule(i)
			}
		}(w)
	}
	wg.Wait()
	f.Advance()
	m := f.Members()
	for i := 1; i < len(m); i++ {
		if m[i-1] >= m[i] {
			t.Fatalf("members not strictly ascending at %d: %v...", i, m[i-1:i+1])
		}
	}
}

func TestScheduleNowAllMatchesIndividualSeeding(t *testing.T) {
	seeds := []int{0, 7, 7, 3, 63, 64, 99}
	a := NewFrontier(100)
	a.ScheduleNowAll(seeds)
	b := NewFrontier(100)
	for _, v := range seeds {
		b.ScheduleNow(v)
	}
	am, bm := a.Members(), b.Members()
	if len(am) != len(bm) {
		t.Fatalf("batched seeding yields %v, individual %v", am, bm)
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("batched seeding yields %v, individual %v", am, bm)
		}
	}
	if a.Size() != 6 { // 7 appears twice
		t.Fatalf("Size = %d, want 6", a.Size())
	}
}

func TestSeedingDefersRebuildUntilFirstRead(t *testing.T) {
	f := NewFrontier(64)
	f.ScheduleNow(3)
	if got := f.Members(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Members after ScheduleNow = %v", got)
	}
	// A mutation after a read must invalidate the cached members again.
	f.ScheduleNow(10)
	if got := f.Members(); len(got) != 2 || got[1] != 10 {
		t.Fatalf("Members after second ScheduleNow = %v", got)
	}
	f.LoadCurrent([]int{5})
	if got := f.Members(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Members after LoadCurrent = %v", got)
	}
	f.ScheduleAll()
	if f.Size() != 64 {
		t.Fatalf("Size after ScheduleAll = %d, want 64", f.Size())
	}
}

// Seeding k sources must cost O(k) plus one deferred rebuild, not k O(n)
// rebuilds. With n = 1<<18 and k = 1<<17 the old eager behavior performed
// ~2^35 word scans — tens of seconds — so a generous wall-clock bound cleanly
// separates the regression without flaking on slow machines.
func TestSeedingManySourcesIsFast(t *testing.T) {
	const n, k = 1 << 18, 1 << 17
	f := NewFrontier(n)
	start := time.Now()
	for v := 0; v < k; v++ {
		f.ScheduleNow(v * 2)
	}
	if f.Size() != k {
		t.Fatalf("Size = %d, want %d", f.Size(), k)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("seeding %d sources took %v — per-call rebuild regression", k, elapsed)
	}
}

// NextSize must come from the running counter, not a popcount, and the two
// must agree exactly after arbitrary concurrent Schedule storms — including
// heavy duplicate posting, which must not double-count.
func TestNextSizeCounterMatchesPopcountUnderStorm(t *testing.T) {
	const n = 4096
	f := NewFrontier(n)
	deg := make([]uint32, n)
	for v := range deg {
		deg[v] = uint32(v % 7)
	}
	f.AttachOutDegrees(deg)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Overlapping strided ranges: every vertex is posted by
				// several workers, most posts are duplicates.
				for i := w % 3; i < n; i += 1 + w%3 {
					f.Schedule(i)
				}
			}(w)
		}
		wg.Wait()
		var wantDeg int64
		popcount := 0
		for v := 0; v < n; v++ {
			if f.PendingNext(v) {
				popcount++
				wantDeg += int64(deg[v])
			}
		}
		if got := f.NextSize(); got != popcount {
			t.Fatalf("round %d: NextSize = %d, popcount = %d", round, got, popcount)
		}
		if got := f.NextOutDegree(); got != wantDeg {
			t.Fatalf("round %d: NextOutDegree = %d, want %d", round, got, wantDeg)
		}
		if got := f.Advance(); got != popcount {
			t.Fatalf("round %d: Advance = %d, popcount = %d", round, got, popcount)
		}
		if f.Size() != popcount || f.CurrentOutDegree() != wantDeg {
			t.Fatalf("round %d: current accounting (%d, %d) != (%d, %d)",
				round, f.Size(), f.CurrentOutDegree(), popcount, wantDeg)
		}
		if f.NextSize() != 0 || f.NextOutDegree() != 0 {
			t.Fatal("next accounting not reset by Advance")
		}
	}
}

// Seeding mutators maintain the O(1) accounting too, with duplicates
// Test-guarded so they never double-count.
func TestSeedingMaintainsDegreeAccounting(t *testing.T) {
	f := NewFrontier(64)
	deg := make([]uint32, 64)
	for v := range deg {
		deg[v] = uint32(v)
	}
	f.AttachOutDegrees(deg)
	f.ScheduleNowAll([]int{3, 5, 3, 5}) // duplicates
	if f.Size() != 2 || f.CurrentOutDegree() != 8 {
		t.Fatalf("after seeding: size %d deg %d, want 2, 8", f.Size(), f.CurrentOutDegree())
	}
	f.LoadCurrent([]int{10, 20})
	if f.Size() != 2 || f.CurrentOutDegree() != 30 {
		t.Fatalf("after LoadCurrent: size %d deg %d, want 2, 30", f.Size(), f.CurrentOutDegree())
	}
	f.ScheduleAll()
	var all int64
	for _, d := range deg {
		all += int64(d)
	}
	if f.Size() != 64 || f.CurrentOutDegree() != all {
		t.Fatalf("after ScheduleAll: size %d deg %d, want 64, %d", f.Size(), f.CurrentOutDegree(), all)
	}
	// Attaching late reconciles accumulators from the bitsets.
	g := NewFrontier(64)
	g.ScheduleNowAll([]int{1, 2})
	g.Schedule(4)
	g.AttachOutDegrees(deg)
	if g.CurrentOutDegree() != 3 || g.NextOutDegree() != 4 {
		t.Fatalf("attach reconciliation: cur %d next %d, want 3, 4", g.CurrentOutDegree(), g.NextOutDegree())
	}
}

func TestSeedingDoesNotAllocatePerCall(t *testing.T) {
	f := NewFrontier(1 << 12)
	f.ScheduleAll()
	_ = f.Members() // warm the member cache to full capacity
	f.LoadCurrent(nil)
	batch := []int{1, 2, 3}
	if avg := testing.AllocsPerRun(100, func() {
		f.ScheduleNow(9)
		f.ScheduleNowAll(batch)
		_ = f.Members()
	}); avg != 0 {
		t.Errorf("seed+read cycle allocates %.1f per run, want 0", avg)
	}
}
