package frontier

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if !b.Empty() {
		t.Fatal("new bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) false after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("Test(64) true after Clear")
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
}

func TestBitsetSetAllRespectsLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 200} {
		b := NewBitset(n)
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("SetAll on size %d: Count = %d", n, b.Count())
		}
	}
}

func TestBitsetClearAll(t *testing.T) {
	b := NewBitset(100)
	b.SetAll()
	b.ClearAll()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("ClearAll left members")
	}
}

func TestSetAtomicReportsNewness(t *testing.T) {
	b := NewBitset(10)
	if !b.SetAtomic(3) {
		t.Fatal("first SetAtomic(3) returned false")
	}
	if b.SetAtomic(3) {
		t.Fatal("second SetAtomic(3) returned true")
	}
	if !b.ClearAtomic(3) {
		t.Fatal("ClearAtomic(3) on set bit returned false")
	}
	if b.ClearAtomic(3) {
		t.Fatal("ClearAtomic(3) on clear bit returned true")
	}
}

func TestSetAtomicConcurrentExactlyOnce(t *testing.T) {
	const n = 1024
	const workers = 8
	b := NewBitset(n)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.SetAtomic(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("total claims = %d, want %d (each bit claimed exactly once)", total, n)
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestNextSet(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{5, 64, 130, 199} {
		b.Set(i)
	}
	cases := []struct {
		from int
		want int
		ok   bool
	}{
		{0, 5, true}, {5, 5, true}, {6, 64, true}, {64, 64, true},
		{65, 130, true}, {131, 199, true}, {199, 199, true},
		{-7, 5, true},
	}
	for _, c := range cases {
		got, ok := b.NextSet(c.from)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = (%d,%v), want (%d,%v)", c.from, got, ok, c.want, c.ok)
		}
	}
	if _, ok := b.NextSet(200); ok {
		t.Error("NextSet past capacity returned ok")
	}
	b.Clear(199)
	if _, ok := b.NextSet(131); ok {
		t.Error("NextSet(131) found a member after clearing 199")
	}
}

func TestForEachAscending(t *testing.T) {
	b := NewBitset(300)
	want := []int{0, 2, 63, 64, 65, 128, 256, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestAppendMembersReuse(t *testing.T) {
	b := NewBitset(64)
	b.Set(7)
	b.Set(12)
	buf := make([]int, 0, 8)
	m := b.AppendMembers(buf)
	if len(m) != 2 || m[0] != 7 || m[1] != 12 {
		t.Fatalf("AppendMembers = %v", m)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	u := a.Clone()
	u.Union(b)
	if u.Count() != 3 || !u.Test(1) || !u.Test(50) || !u.Test(99) {
		t.Fatal("Union wrong")
	}
	i := a.Clone()
	i.Intersect(b)
	if i.Count() != 1 || !i.Test(50) {
		t.Fatal("Intersect wrong")
	}
}

func TestCloneEqualCopyFrom(t *testing.T) {
	a := NewBitset(77)
	a.Set(3)
	a.Set(76)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(10)
	if a.Equal(c) {
		t.Fatal("mutating clone affected equality check unexpectedly")
	}
	d := NewBitset(77)
	d.CopyFrom(a)
	if !d.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	if a.Equal(NewBitset(78)) {
		t.Fatal("Equal across different sizes")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a, b := NewBitset(10), NewBitset(11)
	for name, fn := range map[string]func(){
		"CopyFrom":  func() { a.CopyFrom(b) },
		"Union":     func() { a.Union(b) },
		"Intersect": func() { a.Intersect(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with size mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitset(-1) did not panic")
		}
	}()
	NewBitset(-1)
}

func TestBitsetQuickSetTestClear(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		seen := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw)
			b.Set(i)
			seen[i] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Test(i) {
				return false
			}
		}
		for i := range seen {
			b.Clear(i)
		}
		return b.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitsetForEachSparse(b *testing.B) {
	bs := NewBitset(1 << 20)
	for i := 0; i < bs.Len(); i += 997 {
		bs.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		bs.ForEach(func(int) { count++ })
	}
}

func BenchmarkSetAtomic(b *testing.B) {
	bs := NewBitset(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.SetAtomic(i & (1<<16 - 1))
	}
}
