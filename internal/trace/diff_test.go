package trace

import (
	"strings"
	"testing"
)

func traceOf(events ...Event) *Trace {
	t := &Trace{TotalEvents: int64(len(events))}
	for i := range events {
		events[i].Seq = int64(i)
	}
	t.Events = events
	return t
}

func TestDiffIdentical(t *testing.T) {
	a := traceOf(
		Event{Iteration: 0, Worker: 0, Vertex: 1, Writes: 2, Value: 10},
		Event{Iteration: 0, Worker: 1, Vertex: 2, Writes: 1, Value: 20},
		Event{Iteration: 1, Worker: 0, Vertex: 1, Writes: 0, Value: 11},
	)
	// Same updates, racy capture order permuted within the iteration and a
	// different worker assignment: canonically identical.
	b := traceOf(
		Event{Iteration: 0, Worker: 1, Vertex: 2, Writes: 1, Value: 20},
		Event{Iteration: 0, Worker: 3, Vertex: 1, Writes: 2, Value: 10},
		Event{Iteration: 1, Worker: 0, Vertex: 1, Writes: 0, Value: 11},
	)
	rep := Diff(a, b)
	if !rep.Identical() || rep.Diverged != 0 {
		t.Fatalf("report = %+v", rep)
	}
	var sb strings.Builder
	if err := rep.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identical") {
		t.Fatalf("report text: %q", sb.String())
	}
}

func TestDiffFirstDivergenceAndFrontier(t *testing.T) {
	a := traceOf(
		Event{Iteration: 0, Vertex: 1, Value: 10},
		Event{Iteration: 0, Vertex: 5, Value: 50},
		Event{Iteration: 1, Vertex: 1, Value: 11},
		Event{Iteration: 1, Vertex: 9, Value: 90},
	)
	b := traceOf(
		Event{Iteration: 0, Vertex: 1, Value: 10},
		Event{Iteration: 0, Vertex: 5, Value: 55}, // value diff → first divergence
		Event{Iteration: 1, Vertex: 1, Value: 11},
		Event{Iteration: 1, Vertex: 7, Value: 70}, // only-b
	)
	rep := Diff(a, b)
	if rep.Identical() {
		t.Fatal("divergence missed")
	}
	f := rep.First
	if f.Iteration != 0 || f.Vertex != 5 || f.Kind != DiffValue {
		t.Fatalf("first = %+v", f)
	}
	if f.A.Value != 50 || f.B.Value != 55 {
		t.Fatalf("first events = %+v / %+v", f.A, f.B)
	}
	// Diverged: (0,5) value, (1,7) only-b, (1,9) only-a.
	if rep.Diverged != 3 {
		t.Fatalf("diverged = %d, want 3", rep.Diverged)
	}
	if len(rep.Frontier) != 2 {
		t.Fatalf("frontier = %+v", rep.Frontier)
	}
	if it0 := rep.Frontier[0]; it0.ValueDiffs != 1 || it0.OnlyA != 0 || it0.OnlyB != 0 || it0.UpdatesA != 2 || it0.UpdatesB != 2 {
		t.Fatalf("iter 0 frontier = %+v", it0)
	}
	if it1 := rep.Frontier[1]; it1.OnlyA != 1 || it1.OnlyB != 1 || it1.ValueDiffs != 0 {
		t.Fatalf("iter 1 frontier = %+v", it1)
	}
	// Both iter-1 divergences are one iteration after u0: ≻ at d=1.
	before, after, conc := rep.Hist.Totals()
	if before != 0 || after != 2 || conc != 0 {
		t.Fatalf("relations = %d/%d/%d", before, after, conc)
	}
	if rep.Hist.MaxD() != 1 || rep.Hist.After[1] != 2 {
		t.Fatalf("hist = %+v", rep.Hist)
	}
	var sb strings.Builder
	if err := rep.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"first divergence: iteration 0 vertex 5", "d=   1", "after(≻)=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffRelationsWithinIteration(t *testing.T) {
	// u0 = (iter 0, vertex 3). Vertex 1 diverges on the same worker with an
	// earlier capture position (≺); vertex 5 on another worker (∥); vertex
	// 7 on u0's worker later (≻ at d=0).
	a := traceOf(
		Event{Iteration: 0, Worker: 0, Vertex: 7, Value: 1},
		Event{Iteration: 0, Worker: 0, Vertex: 1, Value: 1},
		Event{Iteration: 0, Worker: 0, Vertex: 3, Value: 1},
		Event{Iteration: 0, Worker: 2, Vertex: 5, Value: 1},
	)
	b := traceOf(
		Event{Iteration: 0, Worker: 0, Vertex: 7, Value: 9},
		Event{Iteration: 0, Worker: 0, Vertex: 1, Value: 9},
		Event{Iteration: 0, Worker: 0, Vertex: 3, Value: 9},
		Event{Iteration: 0, Worker: 2, Vertex: 5, Value: 9},
	)
	rep := Diff(a, b)
	if rep.First.Vertex != 1 {
		t.Fatalf("first = %+v", rep.First)
	}
	// Relative to u0 (vertex 1, captured at seq 1 on worker 0):
	// vertex 3: worker 0, seq 2 > 1 → after; vertex 7: worker 0, seq 0 < 1
	// → before; vertex 5: worker 2 → concurrent.
	before, after, conc := rep.Hist.Totals()
	if before != 1 || after != 1 || conc != 1 {
		t.Fatalf("relations = %d/%d/%d, want 1/1/1", before, after, conc)
	}
	if rep.Hist.MaxD() != 0 {
		t.Fatalf("maxD = %d", rep.Hist.MaxD())
	}
}

func TestDiffRepeatedUpdatesPerVertex(t *testing.T) {
	// Barrier-free traces: one vertex updated several times in "iteration"
	// 0. Count mismatch without value mismatch is an only-side divergence.
	a := traceOf(
		Event{Iteration: 0, Vertex: 1, Value: 5},
		Event{Iteration: 0, Vertex: 1, Value: 6},
	)
	b := traceOf(
		Event{Iteration: 0, Vertex: 1, Value: 5},
	)
	rep := Diff(a, b)
	if rep.Identical() || rep.First.Kind != DiffOnlyA || rep.Diverged != 1 {
		t.Fatalf("report = %+v first=%+v", rep, rep.First)
	}
	if rep.Frontier[0].UpdatesA != 2 || rep.Frontier[0].UpdatesB != 1 {
		t.Fatalf("frontier = %+v", rep.Frontier[0])
	}
}

func TestDiffTruncationWarning(t *testing.T) {
	a := traceOf(Event{Iteration: 0, Vertex: 1, Value: 1})
	a.TotalEvents = 10 // truncated
	b := traceOf(Event{Iteration: 0, Vertex: 1, Value: 2})
	rep := Diff(a, b)
	if !rep.TruncatedA || rep.TruncatedB {
		t.Fatalf("truncation flags = %v/%v", rep.TruncatedA, rep.TruncatedB)
	}
	var sb strings.Builder
	if err := rep.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "truncated") {
		t.Fatalf("report missing truncation warning:\n%s", sb.String())
	}
}
