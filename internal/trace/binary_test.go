package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	r := NewRecorder(1 << 16)
	r.EnableCommits(1<<16, 64)
	for i := 0; i < 20000; i++ { // spans multiple event frames
		r.Record(i/1000, i%4, uint32(i%500), 2, uint64(i)*3)
	}
	for i := 0; i < 100; i++ {
		r.RecordCommit(int64(i), i/10, uint32(i%64), uint64(i)<<8)
	}
	r.SetDigest(0xfeedface12345678)
	return r.Snapshot(Meta{
		Vertices: 500,
		Edges:    64,
		KV:       map[string]string{"algo": "wcc", "seed": "42", "mode": "atomic"},
	})
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Vertices != want.Meta.Vertices || got.Meta.Edges != want.Meta.Edges {
		t.Fatalf("meta dims = %d/%d", got.Meta.Vertices, got.Meta.Edges)
	}
	if len(got.Meta.KV) != 3 || got.Meta.KV["algo"] != "wcc" || got.Meta.KV["seed"] != "42" {
		t.Fatalf("meta kv = %v", got.Meta.KV)
	}
	if len(got.Events) != len(want.Events) || len(got.Commits) != len(want.Commits) {
		t.Fatalf("counts = %d/%d events, %d/%d commits",
			len(got.Events), len(want.Events), len(got.Commits), len(want.Commits))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
	for i := range want.Commits {
		if got.Commits[i] != want.Commits[i] {
			t.Fatalf("commit %d = %+v, want %+v", i, got.Commits[i], want.Commits[i])
		}
	}
	if got.TotalEvents != want.TotalEvents || got.TotalCommits != want.TotalCommits {
		t.Fatalf("totals = %d/%d", got.TotalEvents, got.TotalCommits)
	}
	if !got.HasDigest || got.Digest != want.Digest {
		t.Fatalf("digest = %#x/%v", got.Digest, got.HasDigest)
	}
	if got.Truncated() {
		t.Fatal("round trip reported truncation")
	}
}

func TestBinaryOrphanCommitRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	r.EnableCommits(4, 4)
	r.RecordCommit(-1, 0, 1, 5) // orphan: Update = -1 must survive the uvarint bias
	tr := r.Snapshot(Meta{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commits[0].Update != -1 {
		t.Fatalf("orphan Update = %d, want -1", got.Commits[0].Update)
	}
}

func TestBinaryTruncationFlagsSurvive(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(0, 0, uint32(i), 0, 0)
	}
	tr := r.Snapshot(Meta{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated() || got.TotalEvents != 5 || len(got.Events) != 2 {
		t.Fatalf("truncation lost: total=%d retained=%d", got.TotalEvents, len(got.Events))
	}
}

func TestBinaryCRCDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle of the stream (inside some frame payload).
	raw[len(raw)/2] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(raw)); !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("corrupted stream accepted: %v", err)
	}
}

func TestBinaryRejectsShortFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, 6, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadBinary(bytes.NewReader(raw[:n])); !errors.Is(err, ErrCorruptTrace) {
			t.Fatalf("truncated file at %d accepted: %v", n, err)
		}
	}
}

func TestBinaryRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX\x01\x00")); !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	if _, err := ReadBinary(strings.NewReader("NDTR\xff\x00")); !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("bad version accepted: %v", err)
	}
}

func TestBinaryRejectsOversizedFrame(t *testing.T) {
	// Hand-build a header plus a frame declaring a payload over the cap;
	// the reader must reject it before allocating.
	var buf bytes.Buffer
	buf.WriteString("NDTR")
	buf.Write([]byte{1, 0}) // version
	head := []byte{frameEvents, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(head[1:], maxFramePayload+1)
	buf.Write(head)
	if _, err := ReadBinary(&buf); !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("oversized frame accepted: %v", err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Snapshot(Meta{Vertices: 1, Edges: 1})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 || len(got.Commits) != 0 || got.HasDigest {
		t.Fatalf("empty trace round trip = %+v", got)
	}
}

func TestTraceWriteCSVMatchesRecorder(t *testing.T) {
	r := NewRecorder(2)
	r.Record(0, 0, 7, 2, 11)
	r.Record(1, 3, 9, 0, 12)
	r.Record(1, 0, 8, 0, 13) // dropped
	var fromRec, fromTrace strings.Builder
	if err := r.WriteCSV(&fromRec); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(Meta{}).WriteCSV(&fromTrace); err != nil {
		t.Fatal(err)
	}
	if fromRec.String() != fromTrace.String() {
		t.Fatalf("CSV mismatch:\nrecorder:\n%s\ntrace:\n%s", fromRec.String(), fromTrace.String())
	}
}
