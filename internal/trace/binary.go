// Binary trace format ("NDTR"): a compact, CRC-framed container for a
// recorded execution path. Layout:
//
//	magic "NDTR" | version u16 (little-endian)
//	frame*       | each: type u8 | payloadLen u32 | payload | crc32(type..payload)
//
// Frame types:
//
//	meta    — vertex/edge counts plus sorted key/value string pairs
//	          (algorithm, dataset, seed, mode, ... — whatever the caller
//	          needs to reconstruct the run for replay)
//	events  — a batch of events, uvarint-packed; capture order is implied
//	          by position, so Seq is not stored
//	commits — a batch of edge commits, uvarint-packed; commit order implied
//	footer  — totals (including dropped records), truncation flags, digest
//
// The writer streams events in bounded batches (one reused scratch buffer),
// so writing a multi-gigabyte trace needs memory proportional to the batch
// size, not the trace. The reader bounds-checks every declared length
// against hard caps before allocating, so a corrupt or adversarial file
// cannot OOM the process, and verifies every frame CRC.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

const (
	binaryMagic   = "NDTR"
	binaryVersion = 1

	frameMeta    = 1
	frameEvents  = 2
	frameCommits = 3
	frameFooter  = 4

	// eventBatch is the number of events or commits per frame; bounds
	// writer memory and reader allocation granularity.
	eventBatch = 16384

	// maxFramePayload caps a single frame's declared payload (64 MiB);
	// larger declarations are rejected as corrupt.
	maxFramePayload = 1 << 26

	// maxTraceRecords caps the cumulative event/commit count a reader will
	// materialize from one file.
	maxTraceRecords = 1 << 28
)

// Meta identifies the recorded run.
type Meta struct {
	// Vertices and Edges are the graph dimensions (0 when unknown).
	Vertices int
	Edges    int
	// KV holds free-form run parameters (algorithm, dataset, seed, mode,
	// threads, ...) used by `ndtrace replay` to reconstruct the run.
	KV map[string]string
}

// Trace is a fully materialized trace: what a Recorder captured plus the
// run metadata, in a form that can be written, read, diffed, and replayed.
type Trace struct {
	Meta    Meta
	Events  []Event
	Commits []Commit

	// TotalEvents / TotalCommits include records dropped for capacity;
	// Truncated() compares them against the retained slices.
	TotalEvents  int64
	TotalCommits int64

	// Digest is the recorded run's final-state digest (DigestWords over
	// vertices then the edge snapshot); HasDigest reports whether the run
	// installed one.
	Digest    uint64
	HasDigest bool
}

// Truncated reports whether the trace dropped events or commits.
func (t *Trace) Truncated() bool {
	return t.TotalEvents > int64(len(t.Events)) || t.TotalCommits > int64(len(t.Commits))
}

// Snapshot copies the recorder's retained state into a standalone Trace.
func (r *Recorder) Snapshot(meta Meta) *Trace {
	t := &Trace{
		Meta:         meta,
		Events:       append([]Event(nil), r.Events()...),
		Commits:      append([]Commit(nil), r.Commits()...),
		TotalEvents:  r.Total(),
		TotalCommits: r.TotalCommits(),
	}
	t.Digest, t.HasDigest = r.Digest()
	return t
}

type frameWriter struct {
	w       *bufio.Writer
	scratch []byte
	head    [5]byte
}

func (fw *frameWriter) writeFrame(typ byte, payload []byte) error {
	fw.head[0] = typ
	binary.LittleEndian.PutUint32(fw.head[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(fw.head[:])
	crc.Write(payload)
	if _, err := fw.w.Write(fw.head[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := fw.w.Write(sum[:])
	return err
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// WriteBinary writes t in the NDTR binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], binaryVersion)
	if _, err := bw.Write(ver[:]); err != nil {
		return err
	}
	fw := &frameWriter{w: bw, scratch: make([]byte, 0, 1<<16)}

	// Meta frame.
	b := fw.scratch[:0]
	b = appendUvarint(b, uint64(t.Meta.Vertices))
	b = appendUvarint(b, uint64(t.Meta.Edges))
	keys := make([]string, 0, len(t.Meta.KV))
	for k := range t.Meta.KV {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = appendString(b, t.Meta.KV[k])
	}
	if err := fw.writeFrame(frameMeta, b); err != nil {
		return err
	}

	// Event frames, batched.
	for off := 0; off < len(t.Events); off += eventBatch {
		end := off + eventBatch
		if end > len(t.Events) {
			end = len(t.Events)
		}
		batch := t.Events[off:end]
		b = fw.scratch[:0]
		b = appendUvarint(b, uint64(len(batch)))
		for _, e := range batch {
			b = appendUvarint(b, uint64(uint32(e.Iteration)))
			b = appendUvarint(b, uint64(uint32(e.Worker)))
			b = appendUvarint(b, uint64(e.Vertex))
			b = appendUvarint(b, uint64(e.Writes))
			b = appendUvarint(b, e.Value)
		}
		fw.scratch = b[:0]
		if err := fw.writeFrame(frameEvents, b); err != nil {
			return err
		}
	}

	// Commit frames, batched.
	for off := 0; off < len(t.Commits); off += eventBatch {
		end := off + eventBatch
		if end > len(t.Commits) {
			end = len(t.Commits)
		}
		batch := t.Commits[off:end]
		b = fw.scratch[:0]
		b = appendUvarint(b, uint64(len(batch)))
		for _, c := range batch {
			b = appendUvarint(b, uint64(c.Edge))
			b = appendUvarint(b, uint64(uint32(c.Iteration)))
			// Update is -1 for orphan commits; bias by one so it packs as
			// a uvarint.
			b = appendUvarint(b, uint64(c.Update+1))
			b = appendUvarint(b, c.Value)
		}
		fw.scratch = b[:0]
		if err := fw.writeFrame(frameCommits, b); err != nil {
			return err
		}
	}

	// Footer.
	b = fw.scratch[:0]
	b = appendUvarint(b, uint64(t.TotalEvents))
	b = appendUvarint(b, uint64(t.TotalCommits))
	var flags uint64
	if t.HasDigest {
		flags |= 1
	}
	b = appendUvarint(b, flags)
	b = binary.LittleEndian.AppendUint64(b, t.Digest)
	if err := fw.writeFrame(frameFooter, b); err != nil {
		return err
	}
	return bw.Flush()
}

// ErrCorruptTrace wraps all structural decode failures.
var ErrCorruptTrace = errors.New("trace: corrupt binary trace")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptTrace, fmt.Sprintf(format, args...))
}

type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corruptf("bad uvarint at payload offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) str(maxLen int) (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || p.off+int(n) > len(p.b) {
		return "", corruptf("string length %d out of bounds", n)
	}
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

// ReadBinary parses an NDTR trace. Every frame CRC is verified and all
// declared lengths are bounds-checked before allocation.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 6)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, corruptf("short header: %v", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, corruptf("bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != binaryVersion {
		return nil, corruptf("unsupported version %d", v)
	}

	t := &Trace{Meta: Meta{KV: map[string]string{}}}
	var sawMeta, sawFooter bool
	frame := make([]byte, 0, 1<<16)
	var fh [5]byte
	for {
		_, err := io.ReadFull(br, fh[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, corruptf("short frame header: %v", err)
		}
		typ := fh[0]
		plen := binary.LittleEndian.Uint32(fh[1:])
		if plen > maxFramePayload {
			return nil, corruptf("frame payload %d exceeds cap", plen)
		}
		if cap(frame) < int(plen) {
			frame = make([]byte, plen)
		}
		frame = frame[:plen]
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, corruptf("short frame payload: %v", err)
		}
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return nil, corruptf("short frame crc: %v", err)
		}
		crc := crc32.NewIEEE()
		crc.Write(fh[:])
		crc.Write(frame)
		if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
			return nil, corruptf("frame type %d crc mismatch", typ)
		}
		if sawFooter {
			return nil, corruptf("frame after footer")
		}

		p := &payloadReader{b: frame}
		switch typ {
		case frameMeta:
			if sawMeta {
				return nil, corruptf("duplicate meta frame")
			}
			sawMeta = true
			n, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			m, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if n > maxTraceRecords || m > maxTraceRecords*16 {
				return nil, corruptf("meta dimensions %d/%d exceed cap", n, m)
			}
			t.Meta.Vertices, t.Meta.Edges = int(n), int(m)
			pairs, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if pairs > 4096 {
				return nil, corruptf("meta kv count %d exceeds cap", pairs)
			}
			for i := uint64(0); i < pairs; i++ {
				k, err := p.str(1 << 12)
				if err != nil {
					return nil, err
				}
				v, err := p.str(1 << 16)
				if err != nil {
					return nil, err
				}
				t.Meta.KV[k] = v
			}
		case frameEvents:
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if count > maxFramePayload || int64(len(t.Events))+int64(count) > maxTraceRecords {
				return nil, corruptf("event count overflows cap")
			}
			for i := uint64(0); i < count; i++ {
				var e Event
				it, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				wk, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				vx, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				wr, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				val, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				if vx > 1<<32-1 || wr > 1<<32-1 || it > 1<<32-1 || wk > 1<<32-1 {
					return nil, corruptf("event field out of range")
				}
				e.Iteration = int32(uint32(it))
				e.Worker = int32(uint32(wk))
				e.Vertex = uint32(vx)
				e.Writes = uint32(wr)
				e.Value = val
				e.Seq = int64(len(t.Events))
				t.Events = append(t.Events, e)
			}
		case frameCommits:
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if count > maxFramePayload || int64(len(t.Commits))+int64(count) > maxTraceRecords {
				return nil, corruptf("commit count overflows cap")
			}
			for i := uint64(0); i < count; i++ {
				var c Commit
				eg, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				it, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				up, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				val, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				if eg > 1<<32-1 || it > 1<<32-1 {
					return nil, corruptf("commit field out of range")
				}
				c.Edge = uint32(eg)
				c.Iteration = int32(uint32(it))
				c.Update = int64(up) - 1
				c.Value = val
				c.Seq = int64(len(t.Commits))
				t.Commits = append(t.Commits, c)
			}
		case frameFooter:
			sawFooter = true
			te, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			tc, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			flags, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if p.off+8 > len(p.b) {
				return nil, corruptf("footer digest missing")
			}
			t.TotalEvents = int64(te)
			t.TotalCommits = int64(tc)
			t.HasDigest = flags&1 != 0
			t.Digest = binary.LittleEndian.Uint64(p.b[p.off:])
		default:
			return nil, corruptf("unknown frame type %d", typ)
		}
	}
	if !sawMeta || !sawFooter {
		return nil, corruptf("missing meta or footer frame")
	}
	if t.TotalEvents < int64(len(t.Events)) || t.TotalCommits < int64(len(t.Commits)) {
		return nil, corruptf("footer totals below retained counts")
	}
	return t, nil
}

// WriteCSV emits the trace's events as CSV, same shape as Recorder.WriteCSV.
func (t *Trace) WriteCSV(w io.Writer) error {
	return writeCSV(w, t.Events, t.TotalEvents > int64(len(t.Events)), len(t.Events), t.TotalEvents)
}
