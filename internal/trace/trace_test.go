package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(10)
	r.Record(0, 1, 42, 3)
	r.Record(0, 0, 43, 0)
	r.Record(1, 1, 42, 1)
	if r.Len() != 3 || r.Total() != 3 || r.Truncated() {
		t.Fatalf("Len=%d Total=%d Truncated=%v", r.Len(), r.Total(), r.Truncated())
	}
	evs := r.Events()
	if evs[0].Vertex != 42 || evs[0].Writes != 3 || evs[0].Iteration != 0 || evs[0].Worker != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[2].Iteration != 1 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
}

func TestCapacityTruncation(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(0, 0, uint32(i), 0)
	}
	if r.Len() != 2 || r.Total() != 5 || !r.Truncated() {
		t.Fatalf("Len=%d Total=%d Truncated=%v", r.Len(), r.Total(), r.Truncated())
	}
}

func TestNegativeCapacity(t *testing.T) {
	r := NewRecorder(-1)
	r.Record(0, 0, 1, 0)
	if r.Len() != 0 || !r.Truncated() {
		t.Fatal("negative capacity should retain nothing")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(4)
	r.Record(0, 0, 1, 0)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPath(t *testing.T) {
	r := NewRecorder(4)
	for _, v := range []uint32{5, 3, 9} {
		r.Record(0, 0, v, 0)
	}
	p := r.Path()
	if len(p) != 3 || p[0] != 5 || p[1] != 3 || p[2] != 9 {
		t.Fatalf("Path = %v", p)
	}
}

func TestEqualAndDivergence(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	for _, v := range []uint32{1, 2, 3} {
		a.Record(0, 0, v, 1)
		b.Record(0, 3, v, 1) // different worker: still equal paths
	}
	if !Equal(a, b) {
		t.Fatal("worker assignment should not affect Equal")
	}
	if Divergence(a, b) != -1 {
		t.Fatal("equal paths should have divergence -1")
	}
	c := NewRecorder(8)
	c.Record(0, 0, 1, 1)
	c.Record(0, 0, 9, 1)
	c.Record(0, 0, 3, 1)
	if Equal(a, c) {
		t.Fatal("different paths reported equal")
	}
	if d := Divergence(a, c); d != 1 {
		t.Fatalf("Divergence = %d, want 1", d)
	}
	// Prefix case.
	short := NewRecorder(8)
	short.Record(0, 0, 1, 1)
	if d := Divergence(a, short); d != 1 {
		t.Fatalf("prefix divergence = %d, want 1 (length mismatch index)", d)
	}
	if Equal(a, short) {
		t.Fatal("different lengths reported equal")
	}
}

func TestEqualConsidersIterationStructure(t *testing.T) {
	a, b := NewRecorder(4), NewRecorder(4)
	a.Record(0, 0, 1, 0)
	b.Record(1, 0, 1, 0)
	if Equal(a, b) {
		t.Fatal("different iteration structure reported equal")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(16)
	r.Record(0, 0, 1, 2)
	r.Record(0, 1, 2, 0)
	r.Record(1, 0, 1, 1)
	s := r.Summarize()
	if len(s) != 2 {
		t.Fatalf("summaries = %d", len(s))
	}
	if s[0].Iteration != 0 || s[0].Updates != 2 || s[0].Writes != 2 || s[0].Workers != 2 {
		t.Fatalf("iter 0 summary = %+v", s[0])
	}
	if s[1].Updates != 1 || s[1].Workers != 1 {
		t.Fatalf("iter 1 summary = %+v", s[1])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(10000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(0, w, uint32(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", r.Len())
	}
	// Every slot must be filled (no two events claimed the same slot).
	seen := map[int64]bool{}
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, 0, 7, 2)
	r.Record(0, 0, 8, 0) // dropped
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0,0,0,7,2") {
		t.Fatalf("CSV missing event: %q", out)
	}
	if !strings.Contains(out, "truncated") {
		t.Fatalf("CSV missing truncation notice: %q", out)
	}
}
