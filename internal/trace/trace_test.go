package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(10)
	r.Record(0, 1, 42, 3, 0xdead)
	r.Record(0, 0, 43, 0, 7)
	r.Record(1, 1, 42, 1, 8)
	if r.Len() != 3 || r.Total() != 3 || r.Truncated() {
		t.Fatalf("Len=%d Total=%d Truncated=%v", r.Len(), r.Total(), r.Truncated())
	}
	evs := r.Events()
	if evs[0].Vertex != 42 || evs[0].Writes != 3 || evs[0].Iteration != 0 || evs[0].Worker != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[0].Value != 0xdead {
		t.Fatalf("event 0 value = %#x", evs[0].Value)
	}
	if evs[2].Iteration != 1 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
}

func TestBeginFinish(t *testing.T) {
	r := NewRecorder(2)
	idx := r.Begin(3, 1, 9)
	if idx != 0 {
		t.Fatalf("Begin = %d, want 0", idx)
	}
	r.Finish(idx, 4, 0xbeef)
	ev := r.Events()[0]
	if ev.Iteration != 3 || ev.Worker != 1 || ev.Vertex != 9 || ev.Writes != 4 || ev.Value != 0xbeef {
		t.Fatalf("event = %+v", ev)
	}
	// Overflow: Begin returns -1 and Finish on -1 is a no-op.
	r.Begin(0, 0, 1)
	if got := r.Begin(0, 0, 2); got != -1 {
		t.Fatalf("overflow Begin = %d, want -1", got)
	}
	r.Finish(-1, 1, 1)
	if r.Len() != 2 || r.Total() != 3 || !r.EventsTruncated() {
		t.Fatalf("Len=%d Total=%d EventsTruncated=%v", r.Len(), r.Total(), r.EventsTruncated())
	}
}

func TestCapacityTruncation(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(0, 0, uint32(i), 0, 0)
	}
	if r.Len() != 2 || r.Total() != 5 || !r.Truncated() {
		t.Fatalf("Len=%d Total=%d Truncated=%v", r.Len(), r.Total(), r.Truncated())
	}
}

func TestNegativeCapacity(t *testing.T) {
	r := NewRecorder(-1)
	r.Record(0, 0, 1, 0, 0)
	if r.Len() != 0 || !r.Truncated() {
		t.Fatal("negative capacity should retain nothing")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(4)
	r.EnableCommits(4, 2)
	r.Record(0, 0, 1, 0, 0)
	r.RecordCommit(0, 0, 1, 42)
	r.SetDigest(99)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Commits()) != 0 || r.TotalCommits() != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := r.Digest(); ok {
		t.Fatal("Reset did not clear digest")
	}
	// Contested tracking must restart from scratch after Reset.
	r.RecordCommit(0, 0, 1, 1)
	if _, contested := r.TakeIterCommitStats(); contested != 0 {
		t.Fatal("stale lastCommitIter after Reset")
	}
}

func TestCommitLog(t *testing.T) {
	r := NewRecorder(4)
	if r.CommitsEnabled() {
		t.Fatal("commits enabled before EnableCommits")
	}
	r.EnableCommits(3, 4)
	if !r.CommitsEnabled() {
		t.Fatal("commits not enabled")
	}
	r.RecordCommit(0, 0, 2, 10)
	r.RecordCommit(1, 0, 2, 11) // same edge, same iteration: contested
	r.RecordCommit(2, 1, 2, 12) // same edge, new iteration: not contested
	r.RecordCommit(-1, 1, 3, 13)
	cs := r.Commits()
	if len(cs) != 3 || r.TotalCommits() != 4 || !r.CommitsTruncated() {
		t.Fatalf("commits=%d total=%d truncated=%v", len(cs), r.TotalCommits(), r.CommitsTruncated())
	}
	if cs[0].Seq != 0 || cs[0].Edge != 2 || cs[0].Value != 10 || cs[0].Update != 0 {
		t.Fatalf("commit 0 = %+v", cs[0])
	}
	if cs[2].Iteration != 1 || cs[2].Value != 12 {
		t.Fatalf("commit 2 = %+v", cs[2])
	}
	commits, contested := r.TakeIterCommitStats()
	if commits != 4 || contested != 1 {
		t.Fatalf("iter stats = %d/%d, want 4/1", commits, contested)
	}
	if commits, contested = r.TakeIterCommitStats(); commits != 0 || contested != 0 {
		t.Fatalf("second take = %d/%d, want 0/0", commits, contested)
	}
}

func TestDigest(t *testing.T) {
	r := NewRecorder(1)
	if _, ok := r.Digest(); ok {
		t.Fatal("digest set before SetDigest")
	}
	r.SetDigest(0x1234)
	if d, ok := r.Digest(); !ok || d != 0x1234 {
		t.Fatalf("digest = %#x/%v", d, ok)
	}
}

func TestDigestWords(t *testing.T) {
	a := DigestWords(DigestSeed, []uint64{1, 2, 3})
	b := DigestWords(DigestSeed, []uint64{1, 2, 3})
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if c := DigestWords(DigestSeed, []uint64{1, 2, 4}); c == a {
		t.Fatal("digest insensitive to word change")
	}
	if c := DigestWords(DigestSeed, []uint64{2, 1, 3}); c == a {
		t.Fatal("digest insensitive to order")
	}
	// Chaining over split slices equals one pass.
	if d := DigestWords(DigestWords(DigestSeed, []uint64{1}), []uint64{2, 3}); d != a {
		t.Fatal("chained digest differs from single pass")
	}
}

func TestPath(t *testing.T) {
	r := NewRecorder(4)
	for _, v := range []uint32{5, 3, 9} {
		r.Record(0, 0, v, 0, 0)
	}
	p := r.Path()
	if len(p) != 3 || p[0] != 5 || p[1] != 3 || p[2] != 9 {
		t.Fatalf("Path = %v", p)
	}
}

func TestEqualAndDivergence(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	for _, v := range []uint32{1, 2, 3} {
		a.Record(0, 0, v, 1, 0)
		b.Record(0, 3, v, 1, 0) // different worker: still equal paths
	}
	if !Equal(a, b) {
		t.Fatal("worker assignment should not affect Equal")
	}
	if Divergence(a, b) != -1 {
		t.Fatal("equal paths should have divergence -1")
	}
	c := NewRecorder(8)
	c.Record(0, 0, 1, 1, 0)
	c.Record(0, 0, 9, 1, 0)
	c.Record(0, 0, 3, 1, 0)
	if Equal(a, c) {
		t.Fatal("different paths reported equal")
	}
	if d := Divergence(a, c); d != 1 {
		t.Fatalf("Divergence = %d, want 1", d)
	}
	// Prefix case.
	short := NewRecorder(8)
	short.Record(0, 0, 1, 1, 0)
	if d := Divergence(a, short); d != 1 {
		t.Fatalf("prefix divergence = %d, want 1 (length mismatch index)", d)
	}
	if Equal(a, short) {
		t.Fatal("different lengths reported equal")
	}
}

func TestEqualConsidersIterationStructure(t *testing.T) {
	a, b := NewRecorder(4), NewRecorder(4)
	a.Record(0, 0, 1, 0, 0)
	b.Record(1, 0, 1, 0, 0)
	if Equal(a, b) {
		t.Fatal("different iteration structure reported equal")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(16)
	r.Record(0, 0, 1, 2, 0)
	r.Record(0, 1, 2, 0, 0)
	r.Record(1, 0, 1, 1, 0)
	s := r.Summarize()
	if len(s) != 2 {
		t.Fatalf("summaries = %d", len(s))
	}
	if s[0].Iteration != 0 || s[0].Updates != 2 || s[0].Writes != 2 || s[0].Workers != 2 {
		t.Fatalf("iter 0 summary = %+v", s[0])
	}
	if s[1].Updates != 1 || s[1].Workers != 1 {
		t.Fatalf("iter 1 summary = %+v", s[1])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(10000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(0, w, uint32(i), 0, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", r.Len())
	}
	// Every slot must be filled (no two events claimed the same slot).
	seen := map[int64]bool{}
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestConcurrentRecordingAtCapacity drives 8 writers through a recorder
// whose capacity is far below the offered load: truncation must be
// race-clean, every retained slot must be a complete event, and the
// Total()/Len() invariants must hold exactly.
func TestConcurrentRecordingAtCapacity(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 5000
		capacity   = 1024
		totalWant  = writers * perWriter
		valueStamp = uint64(0xabcd0000)
	)
	r := NewRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(i, w, uint32(w*perWriter+i), 1, valueStamp|uint64(w))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != capacity {
		t.Fatalf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Total() != totalWant {
		t.Fatalf("Total = %d, want %d", r.Total(), totalWant)
	}
	if !r.Truncated() || !r.EventsTruncated() {
		t.Fatal("truncation not reported")
	}
	for i, e := range r.Events() {
		if e.Seq != int64(i) {
			t.Fatalf("slot %d has seq %d", i, e.Seq)
		}
		if e.Value&^uint64(0xffff) != valueStamp || e.Writes != 1 {
			t.Fatalf("slot %d incompletely recorded: %+v", i, e)
		}
	}
	// Events() length must agree with Len() and never exceed capacity.
	if len(r.Events()) != r.Len() {
		t.Fatalf("Events()=%d Len()=%d", len(r.Events()), r.Len())
	}
}

// TestConcurrentCommitsAtCapacity exercises the commit log's truncation
// under concurrency. Per-edge ordering is the caller's job, so each worker
// owns disjoint edges here; the shared cursor and counters must stay
// race-clean.
func TestConcurrentCommitsAtCapacity(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
		capacity  = 512
	)
	r := NewRecorder(0)
	r.EnableCommits(capacity, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.RecordCommit(int64(i), 0, uint32(w), uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Commits()); got != capacity {
		t.Fatalf("retained commits = %d, want %d", got, capacity)
	}
	if r.TotalCommits() != writers*perWriter {
		t.Fatalf("TotalCommits = %d, want %d", r.TotalCommits(), writers*perWriter)
	}
	if !r.CommitsTruncated() || !r.Truncated() {
		t.Fatal("commit truncation not reported")
	}
	commits, contested := r.TakeIterCommitStats()
	if commits != writers*perWriter {
		t.Fatalf("iter commits = %d, want %d", commits, writers*perWriter)
	}
	// Each worker re-commits its own edge in iteration 0, so all but the
	// first commit per edge are contested.
	if contested != writers*(perWriter-1) {
		t.Fatalf("contested = %d, want %d", contested, writers*(perWriter-1))
	}
}

// TestWriteCSVGolden pins the exact CSV dump, including the truncation
// footer, against a golden string.
func TestWriteCSVGolden(t *testing.T) {
	r := NewRecorder(2)
	r.Record(0, 0, 7, 2, 11)
	r.Record(1, 3, 9, 0, 12)
	r.Record(1, 0, 8, 0, 13) // dropped
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "seq,iteration,worker,vertex,writes,value\n" +
		"0,0,0,7,2,11\n" +
		"1,1,3,9,0,12\n" +
		"# truncated: 2 of 3 events retained\n"
	if sb.String() != want {
		t.Fatalf("CSV golden mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Untruncated dump has no footer.
	r2 := NewRecorder(2)
	r2.Record(0, 0, 7, 2, 11)
	var sb2 strings.Builder
	if err := r2.WriteCSV(&sb2); err != nil {
		t.Fatal(err)
	}
	want2 := "seq,iteration,worker,vertex,writes,value\n0,0,0,7,2,11\n"
	if sb2.String() != want2 {
		t.Fatalf("CSV golden mismatch (untruncated):\ngot:\n%s\nwant:\n%s", sb2.String(), want2)
	}
}
