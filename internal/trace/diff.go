// Divergence diagnosis between two recorded runs. Two deterministic runs
// of the same configuration produce identical traces; two nondeterministic
// runs may differ in which updates ran, what values they committed, and
// for how many iterations the difference persisted. Diff canonicalizes
// both traces per iteration (keyed by vertex label, so racy capture order
// within an iteration is not itself a divergence) and reports:
//
//   - the first divergent update (earliest iteration, smallest vertex),
//   - the per-iteration divergence frontier (how many updates differ in
//     each iteration — the "wave" a racy commit propagates), and
//   - a propagation-distance histogram: every diverged update classified
//     by its relation to the first divergent update u0 using the paper's
//     Section II partial orders — ≻ (ordered after u0: a later iteration,
//     or later in u0's own block), ≺ (ordered before u0 in its block),
//     ∥ (same iteration, different worker: concurrent with u0) — bucketed
//     by d = iteration distance from u0.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Relation is an update's partial-order relation to the first divergent
// update, per the paper's Section II.
type Relation uint8

const (
	// RelBefore (≺): ordered before the first divergent update (same
	// worker block, earlier execution position).
	RelBefore Relation = iota
	// RelAfter (≻): ordered after the first divergent update (later
	// iteration, or same block and later position).
	RelAfter
	// RelConcurrent (∥): same iteration, different worker — no order.
	RelConcurrent
)

func (r Relation) String() string {
	switch r {
	case RelBefore:
		return "before"
	case RelAfter:
		return "after"
	default:
		return "concurrent"
	}
}

// DiffKind says how a single update diverged.
type DiffKind uint8

const (
	// DiffValue: both runs updated the vertex, with different committed
	// values or write counts.
	DiffValue DiffKind = iota
	// DiffOnlyA: the vertex was updated (or updated more times) in run A.
	DiffOnlyA
	// DiffOnlyB: the vertex was updated (or updated more times) in run B.
	DiffOnlyB
)

func (k DiffKind) String() string {
	switch k {
	case DiffValue:
		return "value"
	case DiffOnlyA:
		return "only-a"
	default:
		return "only-b"
	}
}

// DivergentUpdate identifies one diverged update in canonical order.
type DivergentUpdate struct {
	Iteration int32
	Vertex    uint32
	Kind      DiffKind
	// A and B are the runs' first differing events for the vertex in this
	// iteration; nil on the side that did not update it.
	A *Event
	B *Event
}

// IterDiff is one iteration's divergence frontier.
type IterDiff struct {
	Iteration  int32
	UpdatesA   int
	UpdatesB   int
	OnlyA      int // vertices with more updates in A
	OnlyB      int // vertices with more updates in B
	ValueDiffs int // vertices updated in both with differing value/writes
}

// Diverged reports whether this iteration has any divergence.
func (d IterDiff) Diverged() bool { return d.OnlyA > 0 || d.OnlyB > 0 || d.ValueDiffs > 0 }

// DHist is the propagation-distance histogram: Counts[rel][d] is the
// number of diverged updates at iteration distance d from the first
// divergent update, with relation rel to it. The first divergent update
// itself is not counted.
type DHist struct {
	Before     []int64 // ≺, indexed by d (always d = 0)
	After      []int64 // ≻
	Concurrent []int64 // ∥ (always d = 0)
}

// MaxD returns the largest propagation distance with a nonzero bucket,
// or -1 when the histogram is empty.
func (h *DHist) MaxD() int {
	max := -1
	for _, bs := range [][]int64{h.Before, h.After, h.Concurrent} {
		for d, c := range bs {
			if c > 0 && d > max {
				max = d
			}
		}
	}
	return max
}

func (h *DHist) add(rel Relation, d int) {
	grow := func(b []int64) []int64 {
		for len(b) <= d {
			b = append(b, 0)
		}
		return b
	}
	switch rel {
	case RelBefore:
		h.Before = grow(h.Before)
		h.Before[d]++
	case RelAfter:
		h.After = grow(h.After)
		h.After[d]++
	default:
		h.Concurrent = grow(h.Concurrent)
		h.Concurrent[d]++
	}
}

// Totals returns the per-relation sums.
func (h *DHist) Totals() (before, after, concurrent int64) {
	for _, c := range h.Before {
		before += c
	}
	for _, c := range h.After {
		after += c
	}
	for _, c := range h.Concurrent {
		concurrent += c
	}
	return
}

// DiffReport is the result of comparing two traces.
type DiffReport struct {
	EventsA, EventsB       int64
	TruncatedA, TruncatedB bool

	// First is the first divergent update in canonical (iteration, vertex)
	// order; nil when the traces are equivalent.
	First *DivergentUpdate
	// Diverged counts diverged updates (including First).
	Diverged int64
	// Frontier has one entry per iteration present in either trace, in
	// iteration order.
	Frontier []IterDiff
	// Hist classifies every diverged update after First by relation and
	// propagation distance.
	Hist DHist
}

// Identical reports whether no divergence was found.
func (r *DiffReport) Identical() bool { return r.First == nil }

// iterKey groups events of one trace by (iteration, vertex); events for
// one vertex within one iteration keep capture order (non-core engines may
// update a vertex several times per "iteration" 0).
type vertexEvents struct {
	vertex uint32
	events []*Event
}

func groupByIter(events []Event) map[int32][]*vertexEvents {
	perIter := map[int32]map[uint32][]*Event{}
	for i := range events {
		e := &events[i]
		m := perIter[e.Iteration]
		if m == nil {
			m = map[uint32][]*Event{}
			perIter[e.Iteration] = m
		}
		m[e.Vertex] = append(m[e.Vertex], e)
	}
	out := map[int32][]*vertexEvents{}
	for it, m := range perIter {
		vs := make([]*vertexEvents, 0, len(m))
		for v, evs := range m {
			vs = append(vs, &vertexEvents{vertex: v, events: evs})
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].vertex < vs[j].vertex })
		out[it] = vs
	}
	return out
}

// Diff compares two traces canonically and builds the divergence report.
func Diff(a, b *Trace) *DiffReport {
	rep := &DiffReport{
		EventsA:    int64(len(a.Events)),
		EventsB:    int64(len(b.Events)),
		TruncatedA: a.Truncated(),
		TruncatedB: b.Truncated(),
	}
	ga, gb := groupByIter(a.Events), groupByIter(b.Events)

	iters := map[int32]struct{}{}
	for it := range ga {
		iters[it] = struct{}{}
	}
	for it := range gb {
		iters[it] = struct{}{}
	}
	order := make([]int32, 0, len(iters))
	for it := range iters {
		order = append(order, it)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var divergent []DivergentUpdate
	for _, it := range order {
		va, vb := ga[it], gb[it]
		id := IterDiff{Iteration: it}
		for _, v := range va {
			id.UpdatesA += len(v.events)
		}
		for _, v := range vb {
			id.UpdatesB += len(v.events)
		}
		// Merge-walk the two vertex-sorted lists.
		i, j := 0, 0
		for i < len(va) || j < len(vb) {
			switch {
			case j >= len(vb) || (i < len(va) && va[i].vertex < vb[j].vertex):
				id.OnlyA++
				divergent = append(divergent, DivergentUpdate{
					Iteration: it, Vertex: va[i].vertex, Kind: DiffOnlyA, A: va[i].events[0],
				})
				i++
			case i >= len(va) || vb[j].vertex < va[i].vertex:
				id.OnlyB++
				divergent = append(divergent, DivergentUpdate{
					Iteration: it, Vertex: vb[j].vertex, Kind: DiffOnlyB, B: vb[j].events[0],
				})
				j++
			default:
				ea, eb := va[i].events, vb[j].events
				n := len(ea)
				if len(eb) < n {
					n = len(eb)
				}
				found := false
				for k := 0; k < n && !found; k++ {
					if ea[k].Value != eb[k].Value || ea[k].Writes != eb[k].Writes {
						id.ValueDiffs++
						divergent = append(divergent, DivergentUpdate{
							Iteration: it, Vertex: va[i].vertex, Kind: DiffValue, A: ea[k], B: eb[k],
						})
						found = true
					}
				}
				if !found && len(ea) != len(eb) {
					if len(ea) > len(eb) {
						id.OnlyA++
						divergent = append(divergent, DivergentUpdate{
							Iteration: it, Vertex: va[i].vertex, Kind: DiffOnlyA, A: ea[n], B: eb[n-1],
						})
					} else {
						id.OnlyB++
						divergent = append(divergent, DivergentUpdate{
							Iteration: it, Vertex: va[i].vertex, Kind: DiffOnlyB, A: ea[n-1], B: eb[n],
						})
					}
				}
				i++
				j++
			}
		}
		rep.Frontier = append(rep.Frontier, id)
	}

	rep.Diverged = int64(len(divergent))
	if len(divergent) == 0 {
		return rep
	}
	first := divergent[0]
	rep.First = &first

	// Classify every later diverged update against u0 = First.
	e0 := first.A
	if e0 == nil {
		e0 = first.B
	}
	for _, du := range divergent[1:] {
		d := int(du.Iteration - first.Iteration)
		if d > 0 {
			rep.Hist.add(RelAfter, d)
			continue
		}
		eu := du.A
		if eu == nil {
			eu = du.B
		}
		if eu == nil || e0 == nil {
			rep.Hist.add(RelConcurrent, 0)
			continue
		}
		if eu.Worker != e0.Worker {
			rep.Hist.add(RelConcurrent, 0)
			continue
		}
		// Same worker block: capture order within the block is the
		// execution order (small-label-first in the core engine).
		if eu.Seq < e0.Seq {
			rep.Hist.add(RelBefore, 0)
		} else {
			rep.Hist.add(RelAfter, 0)
		}
	}
	return rep
}

// WriteReport renders the diff report as human-readable text.
func (r *DiffReport) WriteReport(w io.Writer) error {
	if r.Identical() {
		_, err := fmt.Fprintf(w, "traces identical: %d vs %d events, no divergence\n", r.EventsA, r.EventsB)
		return err
	}
	f := r.First
	side := ""
	switch f.Kind {
	case DiffOnlyA:
		side = " (updated only in run A)"
	case DiffOnlyB:
		side = " (updated only in run B)"
	default:
		if f.A.Value != f.B.Value {
			side = fmt.Sprintf(" (A committed %#x, B committed %#x)", f.A.Value, f.B.Value)
		} else {
			side = fmt.Sprintf(" (value %#x in both, but A wrote %d edges, B wrote %d)", f.A.Value, f.A.Writes, f.B.Writes)
		}
	}
	if _, err := fmt.Fprintf(w, "first divergence: iteration %d vertex %d%s\n", f.Iteration, f.Vertex, side); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "diverged updates: %d of %d/%d recorded\n", r.Diverged, r.EventsA, r.EventsB); err != nil {
		return err
	}
	if r.TruncatedA || r.TruncatedB {
		if _, err := fmt.Fprintf(w, "warning: truncated traces (A=%v B=%v); counts are lower bounds\n", r.TruncatedA, r.TruncatedB); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "divergence frontier (iteration: onlyA onlyB valueDiffs):"); err != nil {
		return err
	}
	for _, id := range r.Frontier {
		if !id.Diverged() {
			continue
		}
		if _, err := fmt.Fprintf(w, "  iter %4d: %6d %6d %6d\n", id.Iteration, id.OnlyA, id.OnlyB, id.ValueDiffs); err != nil {
			return err
		}
	}
	before, after, conc := r.Hist.Totals()
	if _, err := fmt.Fprintf(w, "relations to first divergent update: before(≺)=%d after(≻)=%d concurrent(∥)=%d\n", before, after, conc); err != nil {
		return err
	}
	if maxD := r.Hist.MaxD(); maxD >= 0 {
		if _, err := fmt.Fprintln(w, "propagation-distance histogram (d: before after concurrent):"); err != nil {
			return err
		}
		at := func(b []int64, d int) int64 {
			if d < len(b) {
				return b[d]
			}
			return 0
		}
		for d := 0; d <= maxD; d++ {
			if _, err := fmt.Fprintf(w, "  d=%4d: %8d %8d %8d\n", d, at(r.Hist.Before, d), at(r.Hist.After, d), at(r.Hist.Concurrent, d)); err != nil {
				return err
			}
		}
	}
	return nil
}
