// Package trace records execution paths of engine runs: which update ran
// in which iteration on which worker, which value it committed to its
// vertex, and — when the commit log is enabled — every edge-data word it
// committed, in the physical commit order. The paper frames deterministic
// scheduling as "plotting the execution path of the updates" and attributes
// its overhead to exactly this bookkeeping; recording the path of a
// nondeterministic run makes the difference between runs tangible — two
// deterministic runs produce identical traces, two nondeterministic runs do
// not — and recording the racy-edge winners makes a nondeterministic run
// *replayable* (see the core engine's ReplayTrace).
//
// The recorder is lock-free on the hot path (one atomic append cursor per
// log) and bounded: traces longer than the configured capacity drop the
// tail and report truncation rather than growing without bound.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Event is one recorded update execution.
type Event struct {
	// Iteration is the engine iteration (0-based). Barrier-free executors
	// (async, dist, autonomous) have no iterations and record 0.
	Iteration int32
	// Worker is the executing worker's index.
	Worker int32
	// Vertex is the updated vertex.
	Vertex uint32
	// Writes counts edge writes the update performed.
	Writes uint32
	// Seq is the global record order (capture order: the order updates were
	// dispatched, not a happens-before order across workers).
	Seq int64
	// Value is the vertex data word committed by the update (D_v after
	// f(v) returned).
	Value uint64
}

// Commit is one committed edge-data write. When the caller serializes
// commits per edge (the core engine holds a striped lock around the store
// and the RecordCommit call), Seq order per edge equals the physical store
// order, so the last commit per edge is the racy-edge winner — the value
// Lemmas 1 and 2 say must be one of the competing writes.
type Commit struct {
	// Seq is the global commit order (per-edge physical order).
	Seq int64
	// Update is the capture index (Event.Seq) of the committing update, or
	// -1 when the owner is unknown.
	Update int64
	// Edge is the canonical edge index.
	Edge uint32
	// Iteration is the engine iteration of the commit.
	Iteration int32
	// Value is the committed edge-data word.
	Value uint64
}

// Recorder accumulates events (and optionally edge commits) up to fixed
// capacities.
type Recorder struct {
	events []Event
	cursor atomic.Int64

	// Commit log, allocated by EnableCommits.
	commits      []Commit
	commitCursor atomic.Int64

	// lastCommitIter[e] is the iteration of edge e's most recent commit,
	// -1 when never committed; it detects contested edges (two commits to
	// one edge within one iteration — the racy-winner sites under
	// nondeterministic execution). Guarded by the caller's per-edge commit
	// serialization, like the per-edge Seq order.
	lastCommitIter []int32

	// iterCommits / iterContested accumulate per-iteration commit telemetry,
	// drained by TakeIterCommitStats at the engine barrier.
	iterCommits   atomic.Int64
	iterContested atomic.Int64

	// digest is the recorded run's final-state digest (DigestWords over the
	// vertex then edge words), installed by the engine at run end.
	digest    uint64
	hasDigest bool
}

// NewRecorder returns a Recorder with room for capacity events. Edge-commit
// recording is off until EnableCommits.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{events: make([]Event, capacity)}
}

// EnableCommits allocates the commit log: room for capacity commits over a
// store of `edges` edge slots. Engines that support replay record every
// committed edge write when the log is present.
func (r *Recorder) EnableCommits(capacity, edges int) {
	if capacity < 0 {
		capacity = 0
	}
	r.commits = make([]Commit, capacity)
	r.lastCommitIter = make([]int32, edges)
	for i := range r.lastCommitIter {
		r.lastCommitIter[i] = -1
	}
	r.commitCursor.Store(0)
}

// CommitsEnabled reports whether the commit log is allocated.
func (r *Recorder) CommitsEnabled() bool { return r.commits != nil || r.lastCommitIter != nil }

// Begin reserves the next capture slot for an update on vertex v and
// returns its index, or -1 when the trace is at capacity (the event is
// counted but dropped). Safe for concurrent use. Complete the event with
// Finish once the update has run.
func (r *Recorder) Begin(iteration, worker int, vertex uint32) int64 {
	seq := r.cursor.Add(1) - 1
	if seq >= int64(len(r.events)) {
		return -1
	}
	r.events[seq] = Event{
		Iteration: int32(iteration),
		Worker:    int32(worker),
		Vertex:    vertex,
		Seq:       seq,
	}
	return seq
}

// Finish completes the event reserved by Begin with the update's write
// count and committed vertex value. idx -1 (a dropped event) is a no-op.
func (r *Recorder) Finish(idx int64, writes int, value uint64) {
	if idx < 0 {
		return
	}
	e := &r.events[idx]
	e.Writes = uint32(writes)
	e.Value = value
}

// Record appends a complete event (Begin + Finish). Safe for concurrent
// use. Events beyond the capacity are counted but dropped.
func (r *Recorder) Record(iteration, worker int, vertex uint32, writes int, value uint64) {
	r.Finish(r.Begin(iteration, worker, vertex), writes, value)
}

// RecordCommit appends one committed edge write owned by the update at
// capture index `update` (-1 if unknown). The caller MUST serialize the
// physical store and this call per edge (e.g. under a striped lock): that
// is what makes per-edge Seq order equal physical commit order, the
// property replay relies on. Commits beyond the capacity are counted but
// dropped.
func (r *Recorder) RecordCommit(update int64, iteration int, edge uint32, value uint64) {
	r.iterCommits.Add(1)
	if li := r.lastCommitIter; li != nil && int(edge) < len(li) {
		if li[edge] == int32(iteration) {
			r.iterContested.Add(1)
		}
		li[edge] = int32(iteration)
	}
	seq := r.commitCursor.Add(1) - 1
	if seq >= int64(len(r.commits)) {
		return
	}
	r.commits[seq] = Commit{
		Seq:       seq,
		Update:    update,
		Edge:      edge,
		Iteration: int32(iteration),
		Value:     value,
	}
}

// TakeIterCommitStats returns and resets the commit telemetry accumulated
// since the previous call: total commits and contested commits (a commit to
// an edge already committed in the same iteration). Engines drain it at the
// iteration barrier for the observability layer.
func (r *Recorder) TakeIterCommitStats() (commits, contested int64) {
	return r.iterCommits.Swap(0), r.iterContested.Swap(0)
}

// SetDigest installs the final-state digest of the recorded run (see
// DigestWords). Call once, after the run, from a single goroutine.
func (r *Recorder) SetDigest(d uint64) { r.digest, r.hasDigest = d, true }

// Digest returns the recorded final-state digest, if one was installed.
func (r *Recorder) Digest() (uint64, bool) { return r.digest, r.hasDigest }

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	n := r.cursor.Load()
	if n > int64(len(r.events)) {
		return len(r.events)
	}
	return int(n)
}

// EventsTruncated reports whether events were dropped for capacity.
func (r *Recorder) EventsTruncated() bool { return r.cursor.Load() > int64(len(r.events)) }

// CommitsTruncated reports whether commits were dropped for capacity.
func (r *Recorder) CommitsTruncated() bool { return r.commitCursor.Load() > int64(len(r.commits)) }

// Truncated reports whether any part of the trace was dropped for capacity.
func (r *Recorder) Truncated() bool { return r.EventsTruncated() || r.CommitsTruncated() }

// Total returns the number of Begin/Record calls, including dropped ones.
func (r *Recorder) Total() int64 { return r.cursor.Load() }

// TotalCommits returns the number of RecordCommit calls, including dropped
// ones.
func (r *Recorder) TotalCommits() int64 { return r.commitCursor.Load() }

// Events returns the retained events in capture order. The returned slice
// aliases internal storage; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events[:r.Len()] }

// Commits returns the retained commits in commit order. The returned slice
// aliases internal storage; callers must not mutate it.
func (r *Recorder) Commits() []Commit {
	n := r.commitCursor.Load()
	if n > int64(len(r.commits)) {
		n = int64(len(r.commits))
	}
	return r.commits[:n]
}

// Reset clears the recorder (events, commits, digest) for reuse.
func (r *Recorder) Reset() {
	r.cursor.Store(0)
	r.commitCursor.Store(0)
	r.iterCommits.Store(0)
	r.iterContested.Store(0)
	for i := range r.lastCommitIter {
		r.lastCommitIter[i] = -1
	}
	r.digest, r.hasDigest = 0, false
}

// Path returns the execution path as vertex ids in capture order —
// the paper's "execution path of the updates".
func (r *Recorder) Path() []uint32 {
	evs := r.Events()
	out := make([]uint32, len(evs))
	for i, e := range evs {
		out[i] = e.Vertex
	}
	return out
}

// Equal reports whether two recorders captured identical paths (same
// vertices in the same order with the same iteration structure). Worker
// assignment is ignored: the same logical path on different workers is
// still the same path.
func Equal(a, b *Recorder) bool {
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) || a.Truncated() != b.Truncated() {
		return false
	}
	for i := range ea {
		if ea[i].Vertex != eb[i].Vertex || ea[i].Iteration != eb[i].Iteration {
			return false
		}
	}
	return true
}

// Divergence returns the first capture index at which two paths differ,
// or -1 if one is a prefix of the other (including full equality) — the
// trace analog of the paper's difference degree.
func Divergence(a, b *Recorder) int {
	ea, eb := a.Events(), b.Events()
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		if ea[i].Vertex != eb[i].Vertex {
			return i
		}
	}
	if len(ea) != len(eb) {
		return n
	}
	return -1
}

// IterationSummary aggregates one iteration's events.
type IterationSummary struct {
	Iteration int
	Updates   int
	Writes    int64
	Workers   int // distinct workers observed
}

// Summarize groups the trace by iteration.
func (r *Recorder) Summarize() []IterationSummary {
	return summarize(r.Events())
}

func summarize(events []Event) []IterationSummary {
	byIter := map[int32]*IterationSummary{}
	workerSets := map[int32]map[int32]struct{}{}
	for _, e := range events {
		s := byIter[e.Iteration]
		if s == nil {
			s = &IterationSummary{Iteration: int(e.Iteration)}
			byIter[e.Iteration] = s
			workerSets[e.Iteration] = map[int32]struct{}{}
		}
		s.Updates++
		s.Writes += int64(e.Writes)
		workerSets[e.Iteration][e.Worker] = struct{}{}
	}
	out := make([]IterationSummary, 0, len(byIter))
	for it, s := range byIter {
		s.Workers = len(workerSets[it])
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iteration < out[j].Iteration })
	return out
}

// WriteCSV emits the trace as CSV (seq,iteration,worker,vertex,writes,value).
func (r *Recorder) WriteCSV(w io.Writer) error {
	return writeCSV(w, r.Events(), r.EventsTruncated(), r.Len(), r.Total())
}

func writeCSV(w io.Writer, events []Event, truncated bool, retained int, total int64) error {
	if _, err := fmt.Fprintln(w, "seq,iteration,worker,vertex,writes,value"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n", e.Seq, e.Iteration, e.Worker, e.Vertex, e.Writes, e.Value); err != nil {
			return err
		}
	}
	if truncated {
		if _, err := fmt.Fprintf(w, "# truncated: %d of %d events retained\n", retained, total); err != nil {
			return err
		}
	}
	return nil
}

// DigestWords folds a word slice into a running FNV-1a-style digest; chain
// calls to digest multiple arrays (conventionally vertices, then the edge
// snapshot). Use DigestSeed as the initial value.
func DigestWords(h uint64, words []uint64) uint64 {
	for _, w := range words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}

// DigestSeed is the initial value for DigestWords chains (FNV-1a offset
// basis).
const DigestSeed uint64 = 0xcbf29ce484222325
