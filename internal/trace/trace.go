// Package trace records execution paths of engine runs: which update ran
// in which iteration on which worker, and which edges it wrote. The paper
// frames deterministic scheduling as "plotting the execution path of the
// updates" and attributes its overhead to exactly this bookkeeping;
// recording the path of a nondeterministic run makes the difference
// between runs tangible — two deterministic runs produce identical traces,
// two nondeterministic runs do not.
//
// The recorder is lock-free on the hot path (one atomic append cursor)
// and bounded: traces longer than the configured capacity drop the tail
// and report truncation rather than growing without bound.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Event is one recorded update execution.
type Event struct {
	// Iteration is the engine iteration (0-based).
	Iteration int32
	// Worker is the executing worker's index.
	Worker int32
	// Vertex is the updated vertex.
	Vertex uint32
	// Writes counts edge writes the update performed.
	Writes uint32
	// Seq is the global record order (capture order, not a happens-before
	// order across workers).
	Seq int64
}

// Recorder accumulates events up to a fixed capacity.
type Recorder struct {
	events []Event
	cursor atomic.Int64
}

// NewRecorder returns a Recorder with room for capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Record appends an event. Safe for concurrent use. Events beyond the
// capacity are counted but dropped.
func (r *Recorder) Record(iteration, worker int, vertex uint32, writes int) {
	seq := r.cursor.Add(1) - 1
	if seq >= int64(len(r.events)) {
		return
	}
	r.events[seq] = Event{
		Iteration: int32(iteration),
		Worker:    int32(worker),
		Vertex:    vertex,
		Writes:    uint32(writes),
		Seq:       seq,
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	n := r.cursor.Load()
	if n > int64(len(r.events)) {
		return len(r.events)
	}
	return int(n)
}

// Truncated reports whether events were dropped for capacity.
func (r *Recorder) Truncated() bool { return r.cursor.Load() > int64(len(r.events)) }

// Total returns the number of Record calls, including dropped ones.
func (r *Recorder) Total() int64 { return r.cursor.Load() }

// Events returns the retained events in capture order. The returned slice
// aliases internal storage; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events[:r.Len()] }

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() { r.cursor.Store(0) }

// Path returns the execution path as vertex ids in capture order —
// the paper's "execution path of the updates".
func (r *Recorder) Path() []uint32 {
	evs := r.Events()
	out := make([]uint32, len(evs))
	for i, e := range evs {
		out[i] = e.Vertex
	}
	return out
}

// Equal reports whether two recorders captured identical paths (same
// vertices in the same order with the same iteration structure). Worker
// assignment is ignored: the same logical path on different workers is
// still the same path.
func Equal(a, b *Recorder) bool {
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) || a.Truncated() != b.Truncated() {
		return false
	}
	for i := range ea {
		if ea[i].Vertex != eb[i].Vertex || ea[i].Iteration != eb[i].Iteration {
			return false
		}
	}
	return true
}

// Divergence returns the first capture index at which two paths differ,
// or -1 if one is a prefix of the other (including full equality) — the
// trace analog of the paper's difference degree.
func Divergence(a, b *Recorder) int {
	ea, eb := a.Events(), b.Events()
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		if ea[i].Vertex != eb[i].Vertex {
			return i
		}
	}
	if len(ea) != len(eb) {
		return n
	}
	return -1
}

// IterationSummary aggregates one iteration's events.
type IterationSummary struct {
	Iteration int
	Updates   int
	Writes    int64
	Workers   int // distinct workers observed
}

// Summarize groups the trace by iteration.
func (r *Recorder) Summarize() []IterationSummary {
	byIter := map[int32]*IterationSummary{}
	workerSets := map[int32]map[int32]struct{}{}
	for _, e := range r.Events() {
		s := byIter[e.Iteration]
		if s == nil {
			s = &IterationSummary{Iteration: int(e.Iteration)}
			byIter[e.Iteration] = s
			workerSets[e.Iteration] = map[int32]struct{}{}
		}
		s.Updates++
		s.Writes += int64(e.Writes)
		workerSets[e.Iteration][e.Worker] = struct{}{}
	}
	out := make([]IterationSummary, 0, len(byIter))
	for it, s := range byIter {
		s.Workers = len(workerSets[it])
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iteration < out[j].Iteration })
	return out
}

// WriteCSV emits the trace as CSV (seq,iteration,worker,vertex,writes).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seq,iteration,worker,vertex,writes"); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", e.Seq, e.Iteration, e.Worker, e.Vertex, e.Writes); err != nil {
			return err
		}
	}
	if r.Truncated() {
		if _, err := fmt.Fprintf(w, "# truncated: %d of %d events retained\n", r.Len(), r.Total()); err != nil {
			return err
		}
	}
	return nil
}
