package push

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/gen"
	"ndgraph/internal/obs"
)

func TestNewEngineValidation(t *testing.T) {
	g, _ := gen.Ring(4)
	if _, err := NewEngine(nil, ModeCAS, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEngine(g, ModePlain, 4); err == nil {
		t.Error("parallel ModePlain accepted (lost pushes are never retried)")
	}
	if _, err := NewEngine(g, ModePlain, 1); err != nil {
		t.Errorf("single-threaded ModePlain rejected: %v", err)
	}
}

func TestRunRequiresRelaxFuncs(t *testing.T) {
	g, _ := gen.Ring(4)
	e, err := NewEngine(g, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), Relax{}); err == nil {
		t.Fatal("empty Relax accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeCAS.String() != "cas" || ModePlain.String() != "plain" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestPushBFSMatchesPull(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 81)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		dist, res, err := BFS(g, 0, ModeCAS, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("threads=%d: did not converge", threads)
		}
		want := referencePushBFS(g, 0)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("threads=%d: dist[%d] = %v, want %v", threads, v, dist[v], want[v])
			}
		}
	}
}

func referencePushBFS(g interface {
	N() int
	OutNeighbors(uint32) []uint32
}, source uint32) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if math.IsInf(dist[u], 1) {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestPushSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 82)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 2, 13)
	want := algorithms.ReferenceSSSP(g, 2, s.Weights)
	dist, res, err := SSSP(g, 2, s.Weights, ModeCAS, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestPushWCCMatchesUnionFind(t *testing.T) {
	g, err := gen.RMAT(300, 1200, gen.DefaultRMAT, 83)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	for _, mode := range []Mode{ModeCAS, ModePlain} {
		threads := 4
		if mode == ModePlain {
			threads = 1
		}
		labels, res, err := WCC(g, mode, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("%v: label[%d] = %d, want %d", mode, v, labels[v], want[v])
			}
		}
	}
}

func TestPushStatsAccounting(t *testing.T) {
	g, err := gen.Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	dist, res, err := BFS(g, 0, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dist[9] != 9 {
		t.Fatalf("chain end dist = %v", dist[9])
	}
	// Each of the 9 edges is relaxed at least once and wins exactly once.
	if res.Wins != 9 {
		t.Fatalf("Wins = %d, want 9", res.Wins)
	}
	if res.Pushes < res.Wins {
		t.Fatalf("Pushes (%d) < Wins (%d)", res.Pushes, res.Wins)
	}
	if res.Iterations != 10 {
		t.Fatalf("Iterations = %d, want 10 (9 hops + quiesce)", res.Iterations)
	}
}

func BenchmarkPushBFS(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 84)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BFS(g, 0, ModeCAS, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// nonQuiescing is a relax that reschedules every relaxed vertex forever:
// Better always accepts, so the frontier never drains. Message sleeps a
// little per call to keep individual iterations slow enough that the
// watchdog/cancellation paths, not the iteration cap, end the run.
func nonQuiescing() Relax {
	return Relax{
		Message: func(srcVal uint64, _ uint32) uint64 {
			time.Sleep(20 * time.Microsecond)
			return srcVal
		},
		Better: func(_, _ uint64) bool { return true },
	}
}

// Cancelling the context must end a non-quiescing run promptly (within one
// iteration of the cancel) with the context's error and Converged=false —
// the same contract PR 1 gave the core/async/shard/dist engines.
func TestPushContextCancellation(t *testing.T) {
	g, err := gen.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, ModeCAS, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Frontier().ScheduleAll()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	res, err := e.Run(ctx, nonQuiescing())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("cancelled run reported Converged")
	}
	if res.Iterations == 0 {
		t.Fatal("run returned before doing any work (cancel should land mid-run)")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
}

// An already-expired deadline must return before the first iteration.
func TestPushContextPreExpired(t *testing.T) {
	g, err := gen.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Frontier().ScheduleAll()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Run(ctx, nonQuiescing())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 || res.Pushes != 0 {
		t.Fatalf("pre-cancelled run did work: %+v", res)
	}
}

// StallWindow must abort a run whose active-vertex count stops reaching
// new minima, wrapping core.ErrStalled like the other engines.
func TestPushStallWatchdog(t *testing.T) {
	g, err := gen.Ring(32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, ModeCAS, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.StallWindow = 4
	e.Frontier().ScheduleAll()
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal },
		Better:  func(_, _ uint64) bool { return true },
	})
	if !errors.Is(err, core.ErrStalled) {
		t.Fatalf("err = %v, want core.ErrStalled", err)
	}
	if res.Converged {
		t.Fatal("stalled run reported Converged")
	}
	// Pass 0 establishes the best size; the watchdog trips at the barrier
	// entering pass StallWindow, after StallWindow full iterations ran.
	if res.Iterations != 4 {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, e.StallWindow)
	}
}

// A converging run with a StallWindow wider than the run must finish
// cleanly with no stall error.
func TestPushStallWatchdogDoesNotTripConvergingRun(t *testing.T) {
	g, err := gen.Chain(40)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, ModeCAS, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.StallWindow = 100 // wider than the 40-iteration chain sweep
	for v := range e.Vertices {
		e.Vertices[v] = math.MaxUint64
	}
	e.Vertices[0] = 0
	e.Frontier().ScheduleNow(0)
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal + 1 },
		Better:  func(c, cur uint64) bool { return c < cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range e.Vertices {
		if want := uint64(v); e.Vertices[v] != want {
			t.Fatalf("vertex %d = %d, want %d", v, e.Vertices[v], want)
		}
	}
}

// Telemetry must count sources with at least one winning push, not every
// relaxed source. On a 10-vertex chain BFS the frontier always holds one
// vertex; every iteration but the last wins exactly one push, and the
// final iteration (the chain's sink, no out-edges) wins none — so summed
// Updates is n-1 and the last event reports 0, not its frontier size.
func TestPushTelemetryCountsWinningSourcesOnly(t *testing.T) {
	const n = 10
	g, err := gen.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	o := obs.New(obs.Options{RingSize: 64})
	defer o.Close()
	e.Observe(o)
	for v := range e.Vertices {
		e.Vertices[v] = math.MaxUint64
	}
	e.Vertices[0] = 0
	e.Frontier().ScheduleNow(0)
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal + 1 },
		Better:  func(c, cur uint64) bool { return c < cur },
	})
	if err != nil || !res.Converged {
		t.Fatalf("run: %v (converged=%v)", err, res.Converged)
	}
	evs := o.Events()
	if len(evs) != n {
		t.Fatalf("got %d events, want %d", len(evs), n)
	}
	var updates int64
	for _, ev := range evs {
		if ev.Scheduled != 1 {
			t.Fatalf("iter %d: Scheduled = %d, want 1", ev.Iter, ev.Scheduled)
		}
		updates += ev.Updates
	}
	if updates != n-1 {
		t.Fatalf("summed Updates = %d, want %d (winning sources only)", updates, n-1)
	}
	if last := evs[len(evs)-1]; last.Updates != 0 {
		t.Fatalf("final iteration Updates = %d, want 0 (sink wins nothing)", last.Updates)
	}
}
