package push

import (
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/gen"
)

func TestNewEngineValidation(t *testing.T) {
	g, _ := gen.Ring(4)
	if _, err := NewEngine(nil, ModeCAS, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEngine(g, ModePlain, 4); err == nil {
		t.Error("parallel ModePlain accepted (lost pushes are never retried)")
	}
	if _, err := NewEngine(g, ModePlain, 1); err != nil {
		t.Errorf("single-threaded ModePlain rejected: %v", err)
	}
}

func TestRunRequiresRelaxFuncs(t *testing.T) {
	g, _ := gen.Ring(4)
	e, err := NewEngine(g, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Relax{}); err == nil {
		t.Fatal("empty Relax accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeCAS.String() != "cas" || ModePlain.String() != "plain" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestPushBFSMatchesPull(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 81)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		dist, res, err := BFS(g, 0, ModeCAS, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("threads=%d: did not converge", threads)
		}
		want := referencePushBFS(g, 0)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("threads=%d: dist[%d] = %v, want %v", threads, v, dist[v], want[v])
			}
		}
	}
}

func referencePushBFS(g interface {
	N() int
	OutNeighbors(uint32) []uint32
}, source uint32) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if math.IsInf(dist[u], 1) {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestPushSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 82)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 2, 13)
	want := algorithms.ReferenceSSSP(g, 2, s.Weights)
	dist, res, err := SSSP(g, 2, s.Weights, ModeCAS, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestPushWCCMatchesUnionFind(t *testing.T) {
	g, err := gen.RMAT(300, 1200, gen.DefaultRMAT, 83)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	for _, mode := range []Mode{ModeCAS, ModePlain} {
		threads := 4
		if mode == ModePlain {
			threads = 1
		}
		labels, res, err := WCC(g, mode, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("%v: label[%d] = %d, want %d", mode, v, labels[v], want[v])
			}
		}
	}
}

func TestPushStatsAccounting(t *testing.T) {
	g, err := gen.Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	dist, res, err := BFS(g, 0, ModeCAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dist[9] != 9 {
		t.Fatalf("chain end dist = %v", dist[9])
	}
	// Each of the 9 edges is relaxed at least once and wins exactly once.
	if res.Wins != 9 {
		t.Fatalf("Wins = %d, want 9", res.Wins)
	}
	if res.Pushes < res.Wins {
		t.Fatalf("Pushes (%d) < Wins (%d)", res.Pushes, res.Wins)
	}
	if res.Iterations != 10 {
		t.Fatalf("Iterations = %d, want 10 (9 hops + quiesce)", res.Iterations)
	}
}

func BenchmarkPushBFS(b *testing.B) {
	g, err := gen.RMAT(2000, 16000, gen.DefaultRMAT, 84)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BFS(g, 0, ModeCAS, 4); err != nil {
			b.Fatal(err)
		}
	}
}
