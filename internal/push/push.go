// Package push implements the push-mode execution model the paper
// contrasts with its pull-mode system model and defers to future work
// ("more sufficient conditions (e.g., those considering the push mode)").
//
// In push mode (Ligra-style) the data dependences live on the *vertices*:
// the update of v pushes a message along each out-edge directly into the
// destination's data word, combining it with a monotone "better-of"
// operation. Two atomicity disciplines are provided:
//
//   - ModeCAS: the combine is a compare-and-swap retry loop — the paper's
//     description of Ligra ("use atomic compare-and-swap to guarantee the
//     atomicity"). Lost updates are impossible, so monotone push
//     algorithms converge to exact results.
//   - ModePlain: the combine is a racy read-test-write relying only on
//     word atomicity. Unlike the pull-mode edge scenario of the paper's
//     Theorem 2, a lost push is NOT retried by a later iteration (the
//     loser believes it won and never re-pushes), so per-operation
//     atomicity alone is *insufficient* in push mode — an instructive
//     negative result that complements the paper's pull-mode findings.
//     Valid only single-threaded, where it is exact.
package push

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/frontier"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// Mode selects the push combine discipline.
type Mode int

const (
	// ModeCAS uses compare-and-swap retry loops (exact under parallelism).
	ModeCAS Mode = iota
	// ModePlain uses racy read-test-write (exact only single-threaded).
	ModePlain
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeCAS {
		return "cas"
	}
	return "plain"
}

// Relax describes a monotone push computation.
type Relax struct {
	// Message computes the value pushed along canonical edge e from the
	// source's current value.
	Message func(srcVal uint64, e uint32) uint64
	// Better reports whether candidate strictly improves on current; the
	// destination adopts candidate when true. Better must be a strict
	// partial improvement test (irreflexive) or the computation will not
	// quiesce.
	Better func(candidate, current uint64) bool
}

// Result summarizes a push run.
type Result struct {
	Iterations int
	Pushes     int64 // edge relaxations attempted
	Wins       int64 // relaxations that improved the destination
	Converged  bool
	Duration   time.Duration
}

// Engine executes monotone push computations over a graph.
type Engine struct {
	g    *graph.Graph
	mode Mode
	p    int

	// Vertices holds the per-vertex data words; accessed atomically in
	// ModeCAS.
	Vertices []uint64

	front    *frontier.Frontier
	maxIters int

	// StallWindow enables the divergence watchdog, mirroring the core
	// engine's: if the scheduled-vertex count reaches no new minimum for
	// StallWindow consecutive iterations, Run aborts with an error
	// wrapping core.ErrStalled and a diagnostic partial Result. 0 (the
	// default) disables. Set before Run.
	StallWindow int

	// pool holds the persistent push workers, reused across iterations.
	pool *sched.Pool

	// observer, when non-nil, receives one event per iteration; set with
	// Observe before Run.
	observer *obs.Observer

	// trace, when non-nil, records one event per relaxed source vertex
	// (iteration, worker, vertex, win count, source value); set with Trace
	// before Run.
	trace *trace.Recorder
}

// NewEngine builds a push engine. threads < 1 defaults to GOMAXPROCS;
// ModePlain with more than one thread is rejected.
func NewEngine(g *graph.Graph, mode Mode, threads int) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("push: nil graph")
	}
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	if mode == ModePlain && threads > 1 {
		return nil, fmt.Errorf("push: ModePlain is only exact single-threaded; refusing %d threads (lost pushes are never retried)", threads)
	}
	return &Engine{
		g:        g,
		mode:     mode,
		p:        threads,
		Vertices: make([]uint64, g.N()),
		front:    frontier.NewFrontier(g.N()),
		maxIters: core.DefaultMaxIters,
		pool:     sched.NewPoolNamed(threads, "push"),
	}, nil
}

// Observe attaches an observer: each iteration emits one telemetry event
// (pushes as edge reads, wins as edge writes). Call before Run; nil
// detaches.
func (e *Engine) Observe(o *obs.Observer) {
	e.observer = o
	if e.pool != nil {
		e.pool.SetTimed(o.Enabled())
	}
}

// Trace attaches an execution-path recorder: each relaxed source vertex
// records one event whose Writes field counts winning pushes and whose
// Value is the source's data word at relax time. Call before Run; nil
// detaches. Push mode has no per-edge commit log — the racy state is the
// destination vertex word, which the recorded wins describe.
func (e *Engine) Trace(rec *trace.Recorder) { e.trace = rec }

// Frontier exposes the scheduled set for seeding.
func (e *Engine) Frontier() *frontier.Frontier { return e.front }

// Close releases the engine's persistent worker pool. The engine stays
// usable — the next Run re-creates the pool — but Close makes the release
// deterministic instead of waiting for the pool's finalizer.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// Run pushes to quiescence: each iteration relaxes every out-edge of every
// scheduled vertex; destinations that improve are scheduled for the next
// iteration. ctx, when non-nil, cancels or deadlines the run: it is
// checked at every iteration barrier and Run returns the partial Result
// plus the context's error within one iteration of cancellation — the
// same contract PR 1 gave the core/async/shard/dist engines.
func (e *Engine) Run(ctx context.Context, r Relax) (Result, error) {
	if r.Message == nil || r.Better == nil {
		return Result{}, fmt.Errorf("push: Relax requires Message and Better")
	}
	var pushes, wins, winners atomic.Int64
	res := Result{Converged: true}
	if e.pool == nil { // re-create after Close
		e.pool = sched.NewPoolNamed(e.p, "push")
		e.pool.SetTimed(e.observer.Enabled())
	}
	// One relax closure for the whole run, so the per-iteration dispatch
	// through the pool performs no allocation. curIter is written only at
	// the barrier between dispatches.
	curIter := 0
	relax := func(worker, vi int) {
		v := uint32(vi)
		srcVal := e.load(v)
		lo, _ := e.g.OutEdgeIndex(v)
		uWins := 0
		for k, u := range e.g.OutNeighbors(v) {
			cand := r.Message(srcVal, lo+uint32(k))
			pushes.Add(1)
			if e.combine(u, cand, r.Better) {
				uWins++
				e.front.Schedule(int(u))
			}
		}
		if uWins > 0 {
			wins.Add(int64(uWins))
			winners.Add(1)
		}
		if t := e.trace; t != nil {
			t.Record(curIter, worker, v, uWins, srcVal)
		}
	}
	start := time.Now()
	finish := func() {
		res.Pushes = pushes.Load()
		res.Wins = wins.Load()
		res.Duration = time.Since(start)
	}
	bestActive := e.g.N() + 1
	stalled := 0
	for e.front.Size() > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Converged = false
				finish()
				return res, err
			}
		}
		if res.Iterations >= e.maxIters {
			res.Converged = false
			break
		}
		if k := e.StallWindow; k > 0 {
			if size := e.front.Size(); size < bestActive {
				bestActive, stalled = size, 0
			} else if stalled++; stalled >= k {
				res.Converged = false
				finish()
				return res, fmt.Errorf("push: iteration %d: active vertices %d (best %d) unimproved for %d iterations: %w",
					res.Iterations, e.front.Size(), bestActive, k, core.ErrStalled)
			}
		}
		curIter = res.Iterations
		members := e.front.Members()
		prevPushes, prevWins, prevWinners := pushes.Load(), wins.Load(), winners.Load()
		e.pool.RunBlocks(members, relax)
		if o := e.observer; o != nil {
			wall, wait := e.pool.TakeBarrierStats()
			o.Emit(obs.Event{
				Engine:    obs.EnginePush,
				Iter:      int64(res.Iterations),
				Scheduled: int64(len(members)),
				// Updates counts sources with at least one winning push,
				// not every relaxed source: a source whose pushes all
				// lose changed nothing, and counting it would inflate
				// push-engine updates against the other engines' "state
				// actually advanced" semantics.
				Updates:          winners.Load() - prevWinners,
				EdgeReads:        pushes.Load() - prevPushes,
				EdgeWrites:       wins.Load() - prevWins,
				RWConflicts:      -1,
				WWConflicts:      -1,
				Residual:         float64(len(members)) / float64(e.g.N()),
				BarrierWaitNanos: int64(wait),
				DurationNanos:    int64(wall),
			})
		}
		res.Iterations++
		e.front.Advance()
	}
	finish()
	return res, nil
}

func (e *Engine) load(v uint32) uint64 {
	if e.mode == ModeCAS {
		return atomic.LoadUint64(&e.Vertices[v])
	}
	return e.Vertices[v]
}

// combine installs cand into u's word if it improves, returning whether it
// won. ModeCAS retries until the candidate is installed or no longer an
// improvement; ModePlain does one racy read-test-write.
func (e *Engine) combine(u uint32, cand uint64, better func(c, cur uint64) bool) bool {
	if e.mode == ModePlain {
		if better(cand, e.Vertices[u]) {
			e.Vertices[u] = cand
			return true
		}
		return false
	}
	for {
		cur := atomic.LoadUint64(&e.Vertices[u])
		if !better(cand, cur) {
			return false
		}
		if atomic.CompareAndSwapUint64(&e.Vertices[u], cur, cand) {
			return true
		}
	}
}
