package push

import (
	"context"
	"math"

	"ndgraph/internal/edgedata"
	"ndgraph/internal/graph"
)

// BFS runs push-mode breadth-first search from source and returns the hop
// distances (+Inf where unreachable).
func BFS(g *graph.Graph, source uint32, mode Mode, threads int) ([]float64, Result, error) {
	e, err := NewEngine(g, mode, threads)
	if err != nil {
		return nil, Result{}, err
	}
	inf := edgedata.FromFloat64(math.Inf(1))
	for v := range e.Vertices {
		e.Vertices[v] = inf
	}
	e.Vertices[source] = edgedata.FromFloat64(0)
	e.Frontier().ScheduleNow(int(source))
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 {
			return edgedata.FromFloat64(edgedata.ToFloat64(srcVal) + 1)
		},
		Better: lessFloat,
	})
	if err != nil {
		return nil, Result{}, err
	}
	return decodeFloats(e.Vertices), res, nil
}

// SSSP runs push-mode single-source shortest paths over the given per-edge
// weights (canonical edge index order).
func SSSP(g *graph.Graph, source uint32, weights []float64, mode Mode, threads int) ([]float64, Result, error) {
	e, err := NewEngine(g, mode, threads)
	if err != nil {
		return nil, Result{}, err
	}
	inf := edgedata.FromFloat64(math.Inf(1))
	for v := range e.Vertices {
		e.Vertices[v] = inf
	}
	e.Vertices[source] = edgedata.FromFloat64(0)
	e.Frontier().ScheduleNow(int(source))
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, eIdx uint32) uint64 {
			return edgedata.FromFloat64(edgedata.ToFloat64(srcVal) + weights[eIdx])
		},
		Better: lessFloat,
	})
	if err != nil {
		return nil, Result{}, err
	}
	return decodeFloats(e.Vertices), res, nil
}

// WCC runs push-mode weakly-connected components; because pushes only flow
// along out-edges, the graph is symmetrized first so labels can travel both
// ways, matching the "weakly" connected semantics.
func WCC(g *graph.Graph, mode Mode, threads int) ([]uint32, Result, error) {
	u := g.Undirected()
	e, err := NewEngine(u, mode, threads)
	if err != nil {
		return nil, Result{}, err
	}
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal },
		Better:  func(c, cur uint64) bool { return c < cur },
	})
	if err != nil {
		return nil, Result{}, err
	}
	labels := make([]uint32, len(e.Vertices))
	for v, w := range e.Vertices {
		labels[v] = uint32(w)
	}
	return labels, res, nil
}

func lessFloat(c, cur uint64) bool {
	return edgedata.ToFloat64(c) < edgedata.ToFloat64(cur)
}

func decodeFloats(words []uint64) []float64 {
	out := make([]float64, len(words))
	for i, w := range words {
		out[i] = edgedata.ToFloat64(w)
	}
	return out
}
