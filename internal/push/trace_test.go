package push

import (
	"context"
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/trace"
)

// The push engine records one trace event per relaxed source vertex; the
// event's Writes field counts winning pushes, so the trace's write total
// must equal the run's win total.
func TestPushTraceRecordsRelaxations(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 83)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	e, err := NewEngine(u, ModeCAS, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := trace.NewRecorder(1 << 18)
	e.Trace(rec)
	for v := range e.Vertices {
		e.Vertices[v] = uint64(v)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(context.Background(), Relax{
		Message: func(srcVal uint64, _ uint32) uint64 { return srcVal },
		Better:  func(c, cur uint64) bool { return c < cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if rec.Total() == 0 {
		t.Fatal("no trace events recorded")
	}
	var wins int64
	maxIter := int32(-1)
	for _, ev := range rec.Events() {
		wins += int64(ev.Writes)
		if ev.Iteration > maxIter {
			maxIter = ev.Iteration
		}
	}
	if wins != res.Wins {
		t.Fatalf("trace counted %d wins, run reported %d", wins, res.Wins)
	}
	if int(maxIter) != res.Iterations-1 {
		t.Fatalf("trace saw max iteration %d, run did %d iterations", maxIter, res.Iterations)
	}
}
