// Package metrics implements the result-variance measurements of the
// paper's Section V-C: rank orderings of converged PageRank vectors and
// the *difference degree* between two orderings — the minimal index at
// which they disagree (0-based, as in the paper's example where
// r1 = {1,2,3,5,7} and r2 = {1,2,3,7,5} have difference degree 3). For
// PageRank a larger difference degree is better: the variation is confined
// to less significant pages.
package metrics

import (
	"math"
	"sort"
)

// RankOrder returns vertex ids sorted by descending score; ties broken by
// ascending vertex id so that orderings are total and comparisons
// deterministic.
func RankOrder(scores []float64) []uint32 {
	order := make([]uint32, len(scores))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	return order
}

// DifferenceDegree returns the smallest index at which the two orderings
// differ, or min(len) if one is a prefix of the other (len if identical).
// Orderings of different lengths are compared over the shared prefix.
func DifferenceDegree(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// MeanPairwiseDifferenceDegree averages DifferenceDegree over all C(k,2)
// pairs of the given orderings — the paper's Table II statistic ("each
// figure is the average of 10 (i.e., C(5,2)) difference degrees").
// It returns 0 for fewer than two orderings.
func MeanPairwiseDifferenceDegree(orderings [][]uint32) float64 {
	k := len(orderings)
	if k < 2 {
		return 0
	}
	sum, count := 0, 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += DifferenceDegree(orderings[i], orderings[j])
			count++
		}
	}
	return float64(sum) / float64(count)
}

// MeanCrossDifferenceDegree averages DifferenceDegree over all |a|×|b|
// cross pairs of two groups of orderings — the paper's Table III statistic
// (difference degrees "between different configurations ... computed by
// averaging the difference degrees pairwise").
func MeanCrossDifferenceDegree(a, b [][]uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum, count := 0, 0
	for _, x := range a {
		for _, y := range b {
			sum += DifferenceDegree(x, y)
			count++
		}
	}
	return float64(sum) / float64(count)
}

// TopKAgreement reports the fraction of the top-k positions at which two
// orderings hold the same vertex — used for the paper's observation that
// "for the pages with higher rank (ranking number smaller than 100), the
// results from all these selected scenarios are identical".
func TopKAgreement(a, b []uint32, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(a) {
		k = len(a)
	}
	if k > len(b) {
		k = len(b)
	}
	if k == 0 {
		return 1
	}
	same := 0
	for i := 0; i < k; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(k)
}

// LInfDistance returns the maximum absolute component difference of two
// equally sized vectors. Panics on length mismatch.
func LInfDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: LInfDistance length mismatch")
	}
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// L1Distance returns the sum of absolute component differences. Panics on
// length mismatch.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: L1Distance length mismatch")
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Summary holds basic descriptive statistics.
type Summary struct {
	Min, Max, Mean, StdDev float64
	N                      int
}

// Summarize computes descriptive statistics of xs (population standard
// deviation). An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(xs)))
	return s
}

// SpearmanFootrule returns the normalized sum of absolute rank
// displacements between two orderings of the same element set: 0 means
// identical order, 1 the maximal possible displacement. Elements missing
// from either ordering are ignored. Complements DifferenceDegree: the
// difference degree locates the *first* divergence, the footrule measures
// the *total* movement (the paper's "variation happens in pages of less
// significance" has small footrule but early-vs-late first divergence).
func SpearmanFootrule(a, b []uint32) float64 {
	pos := make(map[uint32]int, len(b))
	for i, v := range b {
		pos[v] = i
	}
	n := 0
	var sum int64
	for i, v := range a {
		j, ok := pos[v]
		if !ok {
			continue
		}
		n++
		d := i - j
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	if n < 2 {
		return 0
	}
	// Maximal footrule for n elements is ⌊n²/2⌋ — the integer floor, so an
	// odd-length full reversal normalizes to exactly 1.0.
	max := float64((n * n) / 2)
	return float64(sum) / max
}

// KendallTauDistance counts discordant pairs between two orderings of the
// same element set, normalized to [0, 1]; 0 means identical order. It runs
// in O(n log n) via merge-sort inversion counting. Orderings must be
// permutations of each other; extra elements of either are ignored.
func KendallTauDistance(a, b []uint32) float64 {
	pos := make(map[uint32]int, len(b))
	for i, v := range b {
		pos[v] = i
	}
	seq := make([]int, 0, len(a))
	for _, v := range a {
		if p, ok := pos[v]; ok {
			seq = append(seq, p)
		}
	}
	n := len(seq)
	if n < 2 {
		return 0
	}
	inv := countInversions(seq)
	total := float64(n) * float64(n-1) / 2
	return float64(inv) / total
}

func countInversions(a []int) int64 {
	if len(a) < 2 {
		return 0
	}
	buf := make([]int, len(a))
	var rec func(lo, hi int) int64
	rec = func(lo, hi int) int64 {
		if hi-lo < 2 {
			return 0
		}
		mid := (lo + hi) / 2
		inv := rec(lo, mid) + rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if a[i] <= a[j] {
				buf[k] = a[i]
				i++
			} else {
				buf[k] = a[j]
				inv += int64(mid - i)
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = a[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = a[j]
			j++
			k++
		}
		copy(a[lo:hi], buf[lo:hi])
		return inv
	}
	return rec(0, len(a))
}
