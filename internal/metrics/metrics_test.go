package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ndgraph/internal/rng"
)

func TestRankOrderDescending(t *testing.T) {
	scores := []float64{0.5, 2.0, 1.0, 2.0}
	order := RankOrder(scores)
	// 1 and 3 tie at 2.0 → ascending id; then 2, then 0.
	want := []uint32{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRankOrderIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		scores := make([]float64, 50)
		for i := range scores {
			scores[i] = r.Float64()
		}
		order := RankOrder(scores)
		seen := make([]bool, len(scores))
		for _, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for i := 1; i < len(order); i++ {
			if scores[order[i-1]] < scores[order[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferenceDegreePaperExample(t *testing.T) {
	// The paper's own example: r1 = {1,2,3,5,7}, r2 = {1,2,3,7,5} → 3.
	r1 := []uint32{1, 2, 3, 5, 7}
	r2 := []uint32{1, 2, 3, 7, 5}
	if got := DifferenceDegree(r1, r2); got != 3 {
		t.Fatalf("DifferenceDegree = %d, want 3", got)
	}
}

func TestDifferenceDegreeIdentical(t *testing.T) {
	a := []uint32{4, 2, 9}
	if got := DifferenceDegree(a, a); got != 3 {
		t.Fatalf("identical orderings: %d, want len", got)
	}
}

func TestDifferenceDegreeFirstElement(t *testing.T) {
	if got := DifferenceDegree([]uint32{1, 2}, []uint32{2, 1}); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestDifferenceDegreePrefix(t *testing.T) {
	if got := DifferenceDegree([]uint32{1, 2, 3}, []uint32{1, 2}); got != 2 {
		t.Fatalf("prefix: %d, want 2", got)
	}
}

func TestDifferenceDegreeSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]uint32, 20)
		b := make([]uint32, 20)
		for i := range a {
			a[i] = uint32(r.Intn(10))
			b[i] = uint32(r.Intn(10))
		}
		return DifferenceDegree(a, b) == DifferenceDegree(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanPairwiseDifferenceDegree(t *testing.T) {
	o := [][]uint32{
		{1, 2, 3},
		{1, 2, 3},
		{1, 3, 2},
	}
	// Pairs: (0,1)=3, (0,2)=1, (1,2)=1 → mean 5/3.
	want := 5.0 / 3.0
	if got := MeanPairwiseDifferenceDegree(o); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if MeanPairwiseDifferenceDegree(o[:1]) != 0 {
		t.Fatal("single ordering should give 0")
	}
}

func TestMeanCrossDifferenceDegree(t *testing.T) {
	a := [][]uint32{{1, 2, 3}, {1, 2, 3}}
	b := [][]uint32{{1, 3, 2}}
	// Cross pairs: both give 1 → mean 1.
	if got := MeanCrossDifferenceDegree(a, b); got != 1 {
		t.Fatalf("cross mean = %v, want 1", got)
	}
	if MeanCrossDifferenceDegree(nil, b) != 0 {
		t.Fatal("empty group should give 0")
	}
}

func TestTopKAgreement(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	b := []uint32{1, 2, 4, 3}
	if got := TopKAgreement(a, b, 2); got != 1 {
		t.Fatalf("top-2 = %v, want 1", got)
	}
	if got := TopKAgreement(a, b, 4); got != 0.5 {
		t.Fatalf("top-4 = %v, want 0.5", got)
	}
	if got := TopKAgreement(a, b, 0); got != 1 {
		t.Fatalf("k=0 = %v, want 1", got)
	}
	if got := TopKAgreement(a, b, 100); got != 0.5 {
		t.Fatalf("k beyond len = %v, want 0.5", got)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1.5, 2, 1}
	if got := LInfDistance(a, b); got != 2 {
		t.Fatalf("LInf = %v", got)
	}
	if got := L1Distance(a, b); got != 2.5 {
		t.Fatalf("L1 = %v", got)
	}
	for name, f := range map[string]func(){
		"LInf": func() { LInfDistance(a, b[:2]) },
		"L1":   func() { L1Distance(a, b[:2]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestKendallTauDistance(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	if KendallTauDistance(a, a) != 0 {
		t.Fatal("identical orderings should have distance 0")
	}
	rev := []uint32{4, 3, 2, 1}
	if got := KendallTauDistance(a, rev); got != 1 {
		t.Fatalf("reversed = %v, want 1", got)
	}
	oneSwap := []uint32{1, 2, 4, 3}
	want := 1.0 / 6.0 // one discordant pair of C(4,2)=6
	if got := KendallTauDistance(a, oneSwap); math.Abs(got-want) > 1e-12 {
		t.Fatalf("one swap = %v, want %v", got, want)
	}
	if KendallTauDistance([]uint32{1}, []uint32{1}) != 0 {
		t.Fatal("singleton should be 0")
	}
}

func TestKendallTauRandomSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 30
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i)
		}
		b := append([]uint32(nil), a...)
		r.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		d1, d2 := KendallTauDistance(a, b), KendallTauDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRankOrder(b *testing.B) {
	r := rng.New(1)
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankOrder(scores)
	}
}

func BenchmarkDifferenceDegree(b *testing.B) {
	r := rng.New(2)
	a := make([]uint32, 100000)
	for i := range a {
		a[i] = uint32(i)
	}
	c := append([]uint32(nil), a...)
	// Perturb the tail so the scan goes deep.
	i, j := len(c)-2, len(c)-1
	c[i], c[j] = c[j], c[i]
	_ = r
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		DifferenceDegree(a, c)
	}
}

func TestSpearmanFootrule(t *testing.T) {
	cases := []struct {
		name string
		a, b []uint32
		want float64
	}{
		{"identical", []uint32{0, 1, 2, 3}, []uint32{0, 1, 2, 3}, 0},
		// Full reversal is the maximal displacement, so it must normalize to
		// exactly 1.0 — for odd n too, where the correct denominator is the
		// integer ⌊n²/2⌋ (n=3: sum |i-j| = 2+0+2 = 4 = ⌊9/2⌋), not n²/2 = 4.5.
		{"even reversal", []uint32{0, 1, 2, 3}, []uint32{3, 2, 1, 0}, 1},
		{"odd reversal", []uint32{0, 1, 2}, []uint32{2, 1, 0}, 1},
		{"odd reversal n=5", []uint32{0, 1, 2, 3, 4}, []uint32{4, 3, 2, 1, 0}, 1},
		// Adjacent swap of n=4: displacement 1+1 over ⌊16/2⌋ = 8.
		{"adjacent swap", []uint32{0, 1, 2, 3}, []uint32{1, 0, 2, 3}, 0.25},
		// Elements absent from either ordering are ignored; the shared set
		// {1, 2} is reversed, n=2, sum 2 over ⌊4/2⌋ = 2.
		{"partial overlap", []uint32{1, 2, 9}, []uint32{2, 1, 7}, 1},
		{"degenerate single", []uint32{5}, []uint32{5}, 0},
		{"degenerate empty", nil, nil, 0},
		{"disjoint", []uint32{1, 2, 3, 4}, []uint32{9, 8}, 0},
	}
	for _, tc := range cases {
		if got := SpearmanFootrule(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: SpearmanFootrule = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSpearmanFootruleNeverExceedsOne(t *testing.T) {
	// Every permutation of n=5 must land in [0, 1] — the old float n²/2
	// denominator kept reversals strictly below 1 for odd n.
	perm := []uint32{0, 1, 2, 3, 4}
	base := []uint32{0, 1, 2, 3, 4}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			got := SpearmanFootrule(base, perm)
			if got < 0 || got > 1 {
				t.Fatalf("SpearmanFootrule(%v) = %v, outside [0, 1]", perm, got)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}
