package eligibility

import (
	"encoding/json"
	"fmt"
)

// A Certificate is the machine-readable product of the semantic
// verification passes (internal/analysis: propcheck, kernelcheck,
// admitcheck): the facts engine admission needs, keyed by an FNV-1a
// hash of the source they were derived from. Engines accept a
// certificate in place of a probe run — Verdict() re-derives the gate
// outcomes from the carried profile and properties and refuses a
// tampered certificate whose recorded gates disagree — while the hash
// lets any holder of the current analysis detect staleness (Stale) and
// force re-analysis after the function changed.
type Certificate struct {
	// Name identifies the subject: the algorithm's declared name for
	// updates ("wcc", "pagerank"), the kernel's Name field for kernels.
	Name string `json:"name"`
	// Kind is "update" (an update function + Properties + ResidualDelta)
	// or "kernel" (a paired-direction Kernel literal).
	Kind string `json:"kind"`
	// SourceHash is the FNV-1a identity of the analyzed declarations
	// ("fnv1a:<16 hex>"). Any token-level edit changes it.
	SourceHash string `json:"source_hash"`

	// Update facts (Kind == "update").
	Profile              *StaticProfile `json:"profile,omitempty"`
	Props                *Properties    `json:"props,omitempty"`
	Theorem              int            `json:"theorem,omitempty"`
	DeterministicResults bool           `json:"deterministic_results,omitempty"`
	NoSyncOK             bool           `json:"nosync_ok,omitempty"`
	EpsilonStopOK        bool           `json:"epsilon_stop_ok,omitempty"`
	// MergeVerified reports that the update's merge was compiled and the
	// semilattice laws backing a Monotonic declaration held; false means
	// unverified (outside the evaluator's fragment), not refuted — a
	// refutation is a lint failure and never becomes a certificate.
	MergeVerified bool `json:"merge_verified,omitempty"`
	// ResidualDeltaVerified reports the residual metric laws were
	// checked and held (meaningful for ε-admissible algorithms).
	ResidualDeltaVerified bool `json:"residual_delta_verified,omitempty"`

	// Kernel facts (Kind == "kernel").
	Kernel *KernelCert `json:"kernel,omitempty"`
}

// KernelCert is the kernel slice of a certificate: the verified order
// laws of Better and the validated capability flags.
type KernelCert struct {
	// DirectionConsistent: Message is pure and Better a verified strict
	// order, so push and pull relax the same edges to the same fixed
	// point.
	DirectionConsistent bool `json:"direction_consistent"`
	BetterIrreflexive   bool `json:"better_irreflexive"`
	BetterAntisymmetric bool `json:"better_antisymmetric"`
	BetterTransitive    bool `json:"better_transitive"`
	BetterTotal         bool `json:"better_total"`
	// EdgeIndexed / FirstOfferWins are the declared capability flags,
	// re-validated against the code by kernelcheck.
	EdgeIndexed    bool   `json:"edge_indexed"`
	FirstOfferWins bool   `json:"first_offer_wins"`
	Unreached      uint64 `json:"unreached,omitempty"`
}

// Verdict converts an update certificate into an eligibility verdict
// with Source "cert", re-deriving the gates from the carried profile and
// properties and refusing certificates whose recorded outcomes disagree
// with the re-derivation (tampering, or facts produced by incompatible
// analysis logic).
func (c *Certificate) Verdict() (*Verdict, error) {
	if c == nil {
		return nil, fmt.Errorf("eligibility: nil certificate")
	}
	if c.Kind != "update" {
		return nil, fmt.Errorf("eligibility: certificate %q is a %q certificate, not an update certificate", c.Name, c.Kind)
	}
	if c.Profile == nil || c.Props == nil {
		return nil, fmt.Errorf("eligibility: certificate %q carries no profile/properties facts", c.Name)
	}
	v := AdviseStatic(*c.Props, *c.Profile)
	if v.Theorem != c.Theorem ||
		v.DeterministicResults != c.DeterministicResults ||
		(v.NoSync() == nil) != c.NoSyncOK ||
		(v.EpsilonStop() == nil) != c.EpsilonStopOK {
		return nil, fmt.Errorf(
			"eligibility: certificate %q is inconsistent: recorded gates (theorem=%d nosync=%v εstop=%v det=%v) disagree with re-derivation (theorem=%d nosync=%v εstop=%v det=%v) — re-run analysis",
			c.Name, c.Theorem, c.NoSyncOK, c.EpsilonStopOK, c.DeterministicResults,
			v.Theorem, v.NoSync() == nil, v.EpsilonStop() == nil, v.DeterministicResults)
	}
	v.Source = "cert"
	v.Reasons = append(v.Reasons,
		fmt.Sprintf("admitted on eligibility certificate %q (%s)", c.Name, c.SourceHash))
	return &v, nil
}

// Stale reports whether the certificate no longer matches the current
// source: the holder re-hashed the analyzed declarations and got
// currentHash. A stale certificate must not admit anything — re-analyze.
func (c *Certificate) Stale(currentHash string) bool {
	return c == nil || c.SourceHash != currentHash
}

// AdmitKernel checks a kernel certificate against a concrete kernel's
// identity and declared capability flags — the hybrid engine's
// admission: the certificate must be a kernel certificate for the same
// name, direction-consistent, and must agree on every capability flag
// the executors condition on.
func (c *Certificate) AdmitKernel(name string, edgeIndexed, firstOfferWins bool) error {
	if c == nil {
		return fmt.Errorf("eligibility: nil kernel certificate")
	}
	if c.Kind != "kernel" || c.Kernel == nil {
		return fmt.Errorf("eligibility: certificate %q is not a kernel certificate", c.Name)
	}
	if c.Name != name {
		return fmt.Errorf("eligibility: kernel certificate is for %q, not %q", c.Name, name)
	}
	if !c.Kernel.DirectionConsistent {
		return fmt.Errorf("eligibility: kernel %q is not certified direction-consistent; push/pull switching refused", name)
	}
	if c.Kernel.EdgeIndexed != edgeIndexed {
		return fmt.Errorf("eligibility: kernel %q EdgeIndexed=%v disagrees with certificate (%v)", name, edgeIndexed, c.Kernel.EdgeIndexed)
	}
	if c.Kernel.FirstOfferWins != firstOfferWins {
		return fmt.Errorf("eligibility: kernel %q FirstOfferWins=%v disagrees with certificate (%v)", name, firstOfferWins, c.Kernel.FirstOfferWins)
	}
	return nil
}

// EncodeCertificates renders certificates as indented JSON — the -cert
// output of cmd/ndlint and the embedded registry format.
func EncodeCertificates(certs []Certificate) ([]byte, error) {
	return json.MarshalIndent(certs, "", "  ")
}

// DecodeCertificates parses EncodeCertificates output.
func DecodeCertificates(data []byte) ([]Certificate, error) {
	var certs []Certificate
	if err := json.Unmarshal(data, &certs); err != nil {
		return nil, fmt.Errorf("eligibility: decoding certificates: %w", err)
	}
	return certs, nil
}
