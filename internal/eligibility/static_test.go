package eligibility

import (
	"strings"
	"testing"
)

// TestAdviseRejectionRationales pins the human-readable rationale strings of
// the advisor's rejection and variance paths: the coloring-style WW +
// non-monotonic case, the missing det-async premise, the RW case with no
// convergence premise, and the approximate-convergence variance wording.
func TestAdviseRejectionRationales(t *testing.T) {
	cases := []struct {
		name         string
		props        Properties
		profile      ConflictProfile
		wantEligible bool
		wantPhrases  []string
	}{
		{
			name: "WW non-monotonic (coloring-style) is ineligible",
			props: Properties{
				Name:              "coloring",
				ConvergesDetAsync: true,
				Monotonic:         false,
				Convergence:       Absolute,
			},
			profile:      ConflictProfile{WW: 7},
			wantEligible: false,
			wantPhrases: []string{
				"NOT ELIGIBLE",
				"write-write conflicts on 7 edge(s)",
				"not monotonic",
				"corrupted edge values may never be corrected",
			},
		},
		{
			name: "WW without det-async premise names the failed premise",
			props: Properties{
				Name:        "ww-no-premise",
				Monotonic:   true,
				Convergence: Absolute,
			},
			profile:      ConflictProfile{WW: 3},
			wantEligible: false,
			wantPhrases: []string{
				"NOT ELIGIBLE",
				"does not converge under deterministic asynchronous execution",
				"Theorem 2's premise fails",
			},
		},
		{
			name: "WW missing both premises reports both findings",
			props: Properties{
				Name:        "labelprop-ww",
				Convergence: Absolute,
			},
			profile:      ConflictProfile{WW: 1},
			wantEligible: false,
			wantPhrases: []string{
				"not monotonic",
				"Theorem 2's premise fails",
			},
		},
		{
			name: "RW with no convergence premise is ineligible",
			props: Properties{
				Name:        "labelprop",
				Convergence: Absolute,
			},
			profile:      ConflictProfile{RW: 9},
			wantEligible: false,
			wantPhrases: []string{
				"NOT ELIGIBLE",
				"no convergence premise holds",
			},
		},
		{
			name: "approximate convergence warns about run-to-run variance",
			props: Properties{
				Name:                   "pagerank",
				ConvergesSynchronously: true,
				ConvergesDetAsync:      true,
				Convergence:            Approximate,
			},
			profile:      ConflictProfile{RW: 12},
			wantEligible: true,
			wantPhrases: []string{
				"ELIGIBLE (Theorem 1)",
				"results may vary run to run",
				"convergence is approximate (relative ε)",
				"run-to-run variance",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Advise(tc.props, tc.profile)
			if v.Eligible != tc.wantEligible {
				t.Fatalf("Eligible = %v, want %v (%+v)", v.Eligible, tc.wantEligible, v)
			}
			s := v.String()
			for _, phrase := range tc.wantPhrases {
				if !strings.Contains(s, phrase) {
					t.Errorf("verdict missing %q:\n%s", phrase, s)
				}
			}
		})
	}
}

func TestStaticProfileClasses(t *testing.T) {
	cases := []struct {
		name   string
		sp     StaticProfile
		class  string
		rw, ww bool
	}{
		{"pure reader", StaticProfile{ReadsIn: true, ReadsOut: true}, "RO", false, false},
		{"pagerank shape", StaticProfile{ReadsIn: true, WritesOut: true, WritesVertex: true}, "RW", true, false},
		{"sssp shape", StaticProfile{ReadsIn: true, ReadsOut: true, WritesOut: true}, "RW", true, false},
		{"wcc shape", StaticProfile{ReadsIn: true, ReadsOut: true, WritesIn: true, WritesOut: true}, "WW", true, true},
		{"in-writer only", StaticProfile{WritesIn: true, ReadsIn: true}, "RO", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.sp.Class(); got != tc.class {
				t.Errorf("Class() = %q, want %q", got, tc.class)
			}
			if got := tc.sp.PotentialRW(); got != tc.rw {
				t.Errorf("PotentialRW() = %v, want %v", got, tc.rw)
			}
			if got := tc.sp.PotentialWW(); got != tc.ww {
				t.Errorf("PotentialWW() = %v, want %v", got, tc.ww)
			}
		})
	}
}

func TestStaticProfileOverApproximates(t *testing.T) {
	ww := StaticProfile{ReadsIn: true, ReadsOut: true, WritesIn: true, WritesOut: true}
	rw := StaticProfile{ReadsIn: true, WritesOut: true}
	ro := StaticProfile{ReadsIn: true}
	for _, tc := range []struct {
		name string
		sp   StaticProfile
		c    ConflictProfile
		want bool
	}{
		{"WW covers everything", ww, ConflictProfile{RW: 5, WW: 3}, true},
		{"RW covers RW census", rw, ConflictProfile{RW: 5}, true},
		{"RW covers empty census", rw, ConflictProfile{}, true},
		{"RW does not cover WW census", rw, ConflictProfile{WW: 1}, false},
		{"RO does not cover RW census", ro, ConflictProfile{RW: 1}, false},
	} {
		if got := tc.sp.OverApproximates(tc.c); got != tc.want {
			t.Errorf("%s: OverApproximates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAdviseStaticMatchesAdviseOnPotential(t *testing.T) {
	props := Properties{
		Name:                   "wcc",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
	sp := StaticProfile{ReadsIn: true, ReadsOut: true, WritesIn: true, WritesOut: true}
	v := AdviseStatic(props, sp)
	if !v.Eligible || v.Theorem != 2 {
		t.Fatalf("static WCC verdict = %+v", v)
	}
	if v.Source != "static" {
		t.Fatalf("Source = %q, want static", v.Source)
	}
	if !strings.Contains(v.String(), "[source: static]") {
		t.Fatalf("String() missing source tag:\n%s", v)
	}
	if !strings.Contains(v.String(), "static access profile: WW") {
		t.Fatalf("String() missing profile line:\n%s", v)
	}
}
