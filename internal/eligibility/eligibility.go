// Package eligibility operationalizes the paper's central question — "is
// your graph algorithm eligible for nondeterministic execution?" — as an
// advisor that combines declared algorithm properties with an observed
// conflict profile and answers with the applicable sufficient condition:
//
//   - Theorem 1: the algorithm converges under the synchronous (BSP) model
//     and its nondeterministic execution produces only read-write conflicts
//     on edges ⇒ it converges nondeterministically. (The paper extends the
//     premise to algorithms that converge under a deterministic
//     asynchronous scheduler, since the same chain-to-convergence exists.)
//   - Theorem 2: the algorithm converges under deterministic asynchronous
//     execution and is monotonic ⇒ it converges nondeterministically even
//     with write-write conflicts, recovering from corrupted edge values.
//
// The conflict profile is gathered by probing: one instrumented
// deterministic run classifies each edge's logical conflicts (package
// edgedata's census), which depend on the algorithm's access pattern, not
// on timing, so a sequential probe is faithful.
package eligibility

import (
	"fmt"
	"strings"
)

// Condition describes how an algorithm detects convergence.
type Condition int

const (
	// Absolute: convergence is a predicate on exact values (e.g. "no label
	// changed"). Traversal algorithms use this; their nondeterministic
	// final results equal the deterministic ones.
	Absolute Condition = iota
	// Approximate: convergence is a relative threshold between old and new
	// values (e.g. |f(D_v) − D_v| < ε). Fixed-point iterations use this;
	// their nondeterministic results vary run to run (Section V-C).
	Approximate
)

// String names the condition.
func (c Condition) String() string {
	if c == Absolute {
		return "absolute"
	}
	return "approximate"
}

// Properties are the facts an algorithm declares about itself — the
// premises of the two theorems.
type Properties struct {
	// Name identifies the algorithm in reports.
	Name string
	// ConvergesSynchronously: the algorithm converges under the BSP model
	// (Theorem 1's premise).
	ConvergesSynchronously bool
	// ConvergesDetAsync: the algorithm converges under a deterministic
	// asynchronous scheduler (Theorem 2's premise, and the extension of
	// Theorem 1).
	ConvergesDetAsync bool
	// Monotonic: the computed values move in only one direction (the
	// second premise of Theorem 2).
	Monotonic bool
	// Convergence describes the convergence condition, which decides
	// whether nondeterministic results are reproducible.
	Convergence Condition
}

// ConflictProfile is the observed classification of edge conflicts.
type ConflictProfile struct {
	// RW counts edges with read-write conflicts (one endpoint update reads
	// while the other writes, same iteration).
	RW uint64
	// WW counts edges with write-write conflicts (both endpoint updates
	// write, same iteration).
	WW uint64
}

// Verdict is the advisor's answer.
type Verdict struct {
	// Eligible reports whether nondeterministic execution is covered by a
	// sufficient condition.
	Eligible bool
	// Source records how the conflict profile was obtained: "probe" for an
	// instrumented runtime census, "static" for a compile-time access
	// profile (see AdviseStatic), or "" when unspecified.
	Source string
	// Theorem is 1 or 2 when Eligible (the applicable condition), else 0.
	Theorem int
	// DeterministicResults reports whether nondeterministic runs will
	// reproduce the deterministic final results exactly (monotone +
	// absolute convergence), as opposed to converging to run-dependent
	// values.
	DeterministicResults bool
	// Reasons explains the verdict, one finding per line.
	Reasons []string
}

// String renders the verdict for CLI output.
func (v Verdict) String() string {
	var b strings.Builder
	if v.Eligible {
		fmt.Fprintf(&b, "ELIGIBLE (Theorem %d)", v.Theorem)
		if v.DeterministicResults {
			b.WriteString(", results identical to deterministic execution")
		} else {
			b.WriteString(", results may vary run to run")
		}
	} else {
		b.WriteString("NOT ELIGIBLE")
	}
	if v.Source != "" {
		fmt.Fprintf(&b, " [source: %s]", v.Source)
	}
	for _, r := range v.Reasons {
		b.WriteString("\n  - ")
		b.WriteString(r)
	}
	return b.String()
}

// NoSync gates admission to the barrier-free work-stealing execution tier:
// the tier runs with no iteration barriers, no locks, and no coordination
// beyond per-word atomicity, so only algorithms covered by one of the
// paper's sufficient conditions (Theorem 1: RW-only conflicts + a
// convergence premise; Theorem 2: monotone + det-async convergence) may
// opt in. A nil receiver is "no verdict was obtained" and is refused —
// callers must probe or statically analyze before going barrier-free.
func (v *Verdict) NoSync() error {
	if v == nil {
		return fmt.Errorf("eligibility: no-sync execution requires an eligibility verdict (run Probe or AdviseStatic first)")
	}
	if !v.Eligible {
		msg := "eligibility: algorithm is NOT ELIGIBLE for nondeterministic execution; no-sync tier refused"
		if len(v.Reasons) > 0 {
			msg += ": " + strings.Join(v.Reasons, "; ")
		}
		return fmt.Errorf("%s", msg)
	}
	if v.Theorem != 1 && v.Theorem != 2 {
		return fmt.Errorf("eligibility: verdict eligible but covered by no known theorem (%d); no-sync tier refused", v.Theorem)
	}
	return nil
}

// EpsilonStop gates admission to the ε-aware stopping rule: terminating a
// barrier-free run when the windowed residual falls below ε instead of
// waiting for exact quiescence. The rule is sound exactly for the Theorem-1
// fixed-point family (Eedi et al.'s non-blocking PageRank is the model):
// the convergence-chain premise makes the residual trend to zero under any
// schedule, and the convergence contract is already approximate, so cutting
// the tail at ε changes the answer by at most ε-order terms the paper's
// Section V-C variance analysis has priced in anyway.
//
// Refused for everything else, deliberately:
//   - Theorem-2-only algorithms (monotone traversals) carry an *absolute*
//     convergence contract — the differential suite pins their fixed points
//     byte-identical to the deterministic engine — and an ε cut would stop
//     a ripple mid-flight, publishing labels that are simply wrong, not
//     ε-close.
//   - Verdicts with DeterministicResults promise exact reproducibility;
//     ε-stopping would silently break that promise.
//
// A nil receiver is "no verdict was obtained" and is refused.
func (v *Verdict) EpsilonStop() error {
	if v == nil {
		return fmt.Errorf("eligibility: ε-stopping requires an eligibility verdict (run Probe or AdviseStatic first)")
	}
	if !v.Eligible {
		msg := "eligibility: algorithm is NOT ELIGIBLE for nondeterministic execution; ε-stopping refused"
		if len(v.Reasons) > 0 {
			msg += ": " + strings.Join(v.Reasons, "; ")
		}
		return fmt.Errorf("%s", msg)
	}
	if v.Theorem != 1 {
		return fmt.Errorf("eligibility: ε-stopping is justified by Theorem 1's convergence-chain premise only; verdict cites Theorem %d, run to exact quiescence", v.Theorem)
	}
	if v.DeterministicResults {
		return fmt.Errorf("eligibility: verdict promises deterministic results (monotone + absolute convergence); ε-stopping would break byte-identical fixed points, run to exact quiescence")
	}
	return nil
}

// Advise applies the paper's sufficient conditions to the declared
// properties and observed conflicts.
func Advise(p Properties, c ConflictProfile) Verdict {
	v := Verdict{}
	switch {
	case c.WW == 0 && c.RW == 0:
		v.Eligible = true
		v.Theorem = 1
		v.Reasons = append(v.Reasons,
			"no edge conflicts observed: concurrent updates never compete, nondeterministic execution is trivially safe")
	case c.WW > 0:
		// Write-write conflicts demand Theorem 2.
		if p.ConvergesDetAsync && p.Monotonic {
			v.Eligible = true
			v.Theorem = 2
			v.Reasons = append(v.Reasons,
				fmt.Sprintf("write-write conflicts on %d edge(s); algorithm converges det-async and is monotonic, so corrupted values are recovered (Theorem 2)", c.WW))
		} else {
			if !p.Monotonic {
				v.Reasons = append(v.Reasons,
					fmt.Sprintf("write-write conflicts on %d edge(s) but the algorithm is not monotonic: corrupted edge values may never be corrected", c.WW))
			}
			if !p.ConvergesDetAsync {
				v.Reasons = append(v.Reasons,
					"algorithm does not converge under deterministic asynchronous execution, so Theorem 2's premise fails")
			}
			return v
		}
	default: // RW only
		if p.ConvergesSynchronously || p.ConvergesDetAsync {
			v.Eligible = true
			v.Theorem = 1
			premise := "synchronous"
			if !p.ConvergesSynchronously {
				premise = "deterministic asynchronous"
			}
			v.Reasons = append(v.Reasons,
				fmt.Sprintf("only read-write conflicts (%d edge(s)); algorithm converges under the %s model, so results propagate along the convergence chain in finite iterations (Theorem 1)", c.RW, premise))
		} else {
			v.Reasons = append(v.Reasons,
				"read-write conflicts present but no convergence premise holds (neither synchronous nor deterministic asynchronous)")
			return v
		}
	}
	// Result reproducibility (Section IV discussion + Section V-C).
	if v.Eligible {
		if p.Convergence == Absolute && p.Monotonic {
			v.DeterministicResults = true
			v.Reasons = append(v.Reasons,
				"convergence is an absolute condition on monotone values: final results are independent of scheduling order")
		} else {
			v.Reasons = append(v.Reasons,
				"convergence is approximate (relative ε): expect run-to-run variance in converged values (see the paper's Tables II/III)")
		}
	}
	return v
}
