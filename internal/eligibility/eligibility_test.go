package eligibility

import (
	"strings"
	"testing"
)

func TestNoConflictsTriviallyEligible(t *testing.T) {
	v := Advise(Properties{Name: "x"}, ConflictProfile{})
	if !v.Eligible || v.Theorem != 1 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestPageRankProfileTheorem1(t *testing.T) {
	p := Properties{
		Name:                   "pagerank",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              false,
		Convergence:            Approximate,
	}
	v := Advise(p, ConflictProfile{RW: 1000})
	if !v.Eligible || v.Theorem != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	if v.DeterministicResults {
		t.Fatal("approximate-convergence algorithm flagged as reproducible")
	}
	if !strings.Contains(v.String(), "Theorem 1") {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestWCCProfileTheorem2(t *testing.T) {
	p := Properties{
		Name:              "wcc",
		ConvergesDetAsync: true,
		Monotonic:         true,
		Convergence:       Absolute,
	}
	v := Advise(p, ConflictProfile{RW: 10, WW: 500})
	if !v.Eligible || v.Theorem != 2 {
		t.Fatalf("verdict = %+v", v)
	}
	if !v.DeterministicResults {
		t.Fatal("monotone absolute algorithm not flagged reproducible")
	}
}

func TestNonMonotoneWithWWNotEligible(t *testing.T) {
	p := Properties{
		Name:              "coloring",
		ConvergesDetAsync: true,
		Monotonic:         false,
		Convergence:       Absolute,
	}
	v := Advise(p, ConflictProfile{WW: 5})
	if v.Eligible {
		t.Fatalf("non-monotone WW algorithm declared eligible: %+v", v)
	}
	if !strings.Contains(v.String(), "NOT ELIGIBLE") {
		t.Fatalf("String() = %q", v.String())
	}
	if len(v.Reasons) == 0 {
		t.Fatal("no reasons given")
	}
}

func TestWWWithoutDetAsyncPremise(t *testing.T) {
	p := Properties{Monotonic: true, ConvergesDetAsync: false}
	v := Advise(p, ConflictProfile{WW: 1})
	if v.Eligible {
		t.Fatalf("missing det-async premise but eligible: %+v", v)
	}
}

func TestRWOnlyViaDetAsyncExtension(t *testing.T) {
	// The paper extends Theorem 1 to algorithms that converge under a
	// deterministic asynchronous scheduler.
	p := Properties{ConvergesSynchronously: false, ConvergesDetAsync: true}
	v := Advise(p, ConflictProfile{RW: 3})
	if !v.Eligible || v.Theorem != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	found := false
	for _, r := range v.Reasons {
		if strings.Contains(r, "deterministic asynchronous") {
			found = true
		}
	}
	if !found {
		t.Fatal("extension premise not cited in reasons")
	}
}

func TestRWOnlyNoPremiseNotEligible(t *testing.T) {
	v := Advise(Properties{}, ConflictProfile{RW: 3})
	if v.Eligible {
		t.Fatalf("no-premise RW algorithm eligible: %+v", v)
	}
}

func TestConditionString(t *testing.T) {
	if Absolute.String() != "absolute" || Approximate.String() != "approximate" {
		t.Fatal("Condition.String mismatch")
	}
}

func TestVerdictNoSyncGate(t *testing.T) {
	var nilV *Verdict
	if err := nilV.NoSync(); err == nil {
		t.Error("nil verdict admitted")
	}
	bad := &Verdict{Eligible: false, Reasons: []string{"WW without monotonicity", "no det-async premise"}}
	if err := bad.NoSync(); err == nil {
		t.Error("ineligible verdict admitted")
	} else if !strings.Contains(err.Error(), "WW without monotonicity") {
		t.Errorf("refusal lost the verdict's reasons: %v", err)
	}
	malformed := &Verdict{Eligible: true, Theorem: 3}
	if err := malformed.NoSync(); err == nil {
		t.Error("unknown-theorem verdict admitted")
	}
	for _, th := range []int{1, 2} {
		ok := &Verdict{Eligible: true, Theorem: th}
		if err := ok.NoSync(); err != nil {
			t.Errorf("Theorem %d verdict refused: %v", th, err)
		}
	}
}

func TestVerdictEpsilonStopGate(t *testing.T) {
	var nilV *Verdict
	if err := nilV.EpsilonStop(); err == nil {
		t.Error("nil verdict admitted to ε-stopping")
	}
	if err := (&Verdict{Eligible: false, Reasons: []string{"no premise"}}).EpsilonStop(); err == nil {
		t.Error("ineligible verdict admitted to ε-stopping")
	} else if !strings.Contains(err.Error(), "no premise") {
		t.Errorf("refusal lost the verdict's reasons: %v", err)
	}
	// Theorem 2 (monotone traversals) must run to exact quiescence: an ε
	// cut would stop a ripple mid-flight.
	if err := (&Verdict{Eligible: true, Theorem: 2}).EpsilonStop(); err == nil {
		t.Error("Theorem-2 verdict admitted to ε-stopping")
	}
	// A deterministic-results promise is incompatible with ε-stopping even
	// under Theorem 1.
	if err := (&Verdict{Eligible: true, Theorem: 1, DeterministicResults: true}).EpsilonStop(); err == nil {
		t.Error("deterministic-results verdict admitted to ε-stopping")
	}
	// The PageRank shape: Theorem 1, approximate convergence.
	if err := (&Verdict{Eligible: true, Theorem: 1}).EpsilonStop(); err != nil {
		t.Errorf("Theorem-1 approximate verdict refused: %v", err)
	}
	// The real PageRank verdict (static profile) must pass the gate.
	pr := Advise(Properties{Name: "pagerank", ConvergesSynchronously: true, ConvergesDetAsync: true, Convergence: Approximate},
		ConflictProfile{RW: 10})
	if err := pr.EpsilonStop(); err != nil {
		t.Errorf("PageRank-shaped verdict refused: %v", err)
	}
	// The real WCC verdict (monotone, WW conflicts) must be refused.
	wcc := Advise(Properties{Name: "wcc", ConvergesSynchronously: true, ConvergesDetAsync: true, Monotonic: true, Convergence: Absolute},
		ConflictProfile{RW: 5, WW: 5})
	if err := wcc.EpsilonStop(); err == nil {
		t.Error("WCC-shaped Theorem-2 verdict admitted to ε-stopping")
	}
}
