package eligibility

import "fmt"

// StaticProfile is the compile-time counterpart of ConflictProfile: instead
// of counting conflicting edges observed by a probe run, it records which
// sides of an edge an update function can touch, as determined by reading
// the function's source (package internal/analysis, pass conflictclass).
//
// The mapping to the paper's system model: edge (u→v) is accessed by f(u)
// through the Out* view calls and by f(v) through the In* calls. A conflict
// requires the two endpoint updates to access the shared word concurrently,
// so the *potential* conflict classes follow from which calls appear in the
// update function — independent of any particular graph or schedule.
type StaticProfile struct {
	// ReadsIn / ReadsOut record InEdgeVal / OutEdgeVal calls.
	ReadsIn, ReadsOut bool
	// WritesIn / WritesOut record SetInEdgeVal / SetOutEdgeVal calls.
	WritesIn, WritesOut bool
	// WritesVertex records SetVertex calls (never a conflict — D_v is
	// owned by f(v) — but useful for completeness reporting).
	WritesVertex bool
}

// PotentialRW reports whether some edge can see a read-write conflict: one
// endpoint's update writes the word while the other endpoint's reads it.
func (sp StaticProfile) PotentialRW() bool {
	return (sp.WritesOut && sp.ReadsIn) || (sp.WritesIn && sp.ReadsOut)
}

// PotentialWW reports whether some edge can see a write-write conflict:
// both endpoints' updates write the shared word.
func (sp StaticProfile) PotentialWW() bool {
	return sp.WritesIn && sp.WritesOut
}

// Class names the static conflict class: "RO" (no edge writes), "RW"
// (read-write conflicts possible, no write-write), or "WW" (write-write
// conflicts possible).
func (sp StaticProfile) Class() string {
	switch {
	case sp.PotentialWW():
		return "WW"
	case sp.PotentialRW():
		return "RW"
	case sp.WritesIn || sp.WritesOut:
		// Writes exist but the opposite endpoint never reads or writes:
		// the edge word is effectively private to one endpoint.
		return "RO"
	default:
		return "RO"
	}
}

// Potential converts the static profile to a ConflictProfile usable with
// Advise: a possible conflict class is represented as count 1 ("at least
// one edge may conflict"), an impossible one as 0. By construction this is
// the worst case over all graphs and schedules.
func (sp StaticProfile) Potential() ConflictProfile {
	var c ConflictProfile
	if sp.PotentialRW() {
		c.RW = 1
	}
	if sp.PotentialWW() {
		c.WW = 1
	}
	return c
}

// OverApproximates reports whether the static profile is a sound upper
// bound on an observed census: every conflict class the probe saw must be
// statically possible. (The converse need not hold — a statically possible
// conflict may not materialize on a particular graph.)
func (sp StaticProfile) OverApproximates(c ConflictProfile) bool {
	if c.RW > 0 && !sp.PotentialRW() {
		return false
	}
	if c.WW > 0 && !sp.PotentialWW() {
		return false
	}
	return true
}

// String renders the profile compactly, e.g. "WW(reads in+out, writes in+out)".
func (sp StaticProfile) String() string {
	side := func(in, out bool) string {
		switch {
		case in && out:
			return "in+out"
		case in:
			return "in"
		case out:
			return "out"
		default:
			return "none"
		}
	}
	return fmt.Sprintf("%s(reads %s, writes %s)",
		sp.Class(), side(sp.ReadsIn, sp.ReadsOut), side(sp.WritesIn, sp.WritesOut))
}

// AdviseStatic applies the paper's sufficient conditions to the declared
// properties and a statically derived access profile. The verdict carries
// Source "static" so CLI output can distinguish it from a probe-based one;
// because the static profile is a worst case over all graphs, a static
// ELIGIBLE verdict is stronger than a probe-based one (it holds for every
// input), while a static NOT ELIGIBLE only says no sufficient condition
// covers the worst case — a conflict-free graph may still be fine.
func AdviseStatic(p Properties, sp StaticProfile) Verdict {
	v := Advise(p, sp.Potential())
	v.Source = "static"
	v.Reasons = append([]string{fmt.Sprintf("static access profile: %s", sp)}, v.Reasons...)
	return v
}
