package edgedata

import (
	"sync"
	"testing"
)

func TestCensusNoAccessesNoConflicts(t *testing.T) {
	c := NewCensus(100)
	rw, ww := c.Tally()
	if rw != 0 || ww != 0 {
		t.Fatalf("empty census tallied rw=%d ww=%d", rw, ww)
	}
}

func TestCensusSameSideReadWriteIsNotConflict(t *testing.T) {
	// WCC-style: the source endpoint reads then writes its own edge.
	c := NewCensus(10)
	c.RecordRead(3, SideSrc)
	c.RecordWrite(3, SideSrc)
	rw, ww := c.Tally()
	if rw != 0 || ww != 0 {
		t.Fatalf("same-side read+write classified as conflict: rw=%d ww=%d", rw, ww)
	}
}

func TestCensusReadWriteConflict(t *testing.T) {
	// PageRank-style: source writes (scatter), destination reads (gather).
	c := NewCensus(10)
	c.RecordWrite(5, SideSrc)
	c.RecordRead(5, SideDst)
	rw, ww := c.Tally()
	if rw != 1 || ww != 0 {
		t.Fatalf("rw=%d ww=%d, want rw=1 ww=0", rw, ww)
	}
	// Mirror orientation.
	c.RecordRead(6, SideSrc)
	c.RecordWrite(6, SideDst)
	rw, ww = c.Tally()
	if rw != 1 || ww != 0 {
		t.Fatalf("mirror: rw=%d ww=%d, want rw=1 ww=0", rw, ww)
	}
}

func TestCensusWriteWriteConflict(t *testing.T) {
	// WCC-style: both endpoints write the shared edge.
	c := NewCensus(10)
	c.RecordWrite(2, SideSrc)
	c.RecordWrite(2, SideDst)
	c.RecordRead(2, SideSrc) // reads do not downgrade a WW conflict
	rw, ww := c.Tally()
	if rw != 0 || ww != 1 {
		t.Fatalf("rw=%d ww=%d, want rw=0 ww=1", rw, ww)
	}
}

func TestCensusTallyClearsFlags(t *testing.T) {
	c := NewCensus(10)
	c.RecordWrite(1, SideSrc)
	c.RecordRead(1, SideDst)
	c.Tally()
	rw, ww := c.Tally()
	if rw != 0 || ww != 0 {
		t.Fatalf("flags survived Tally: rw=%d ww=%d", rw, ww)
	}
}

func TestCensusTotalsAccumulate(t *testing.T) {
	c := NewCensus(100)
	for iter := 0; iter < 3; iter++ {
		c.RecordWrite(1, SideSrc)
		c.RecordRead(1, SideDst)
		c.RecordWrite(2, SideSrc)
		c.RecordWrite(2, SideDst)
		c.Tally()
	}
	rw, ww := c.Totals()
	if rw != 3 || ww != 3 {
		t.Fatalf("Totals = (%d,%d), want (3,3)", rw, ww)
	}
	c.Reset()
	if rw, ww := c.Totals(); rw != 0 || ww != 0 {
		t.Fatal("Reset did not clear totals")
	}
}

func TestCensusPackedNeighborsIndependent(t *testing.T) {
	// Edges 0..7 share one packed word; flags must not bleed.
	c := NewCensus(8)
	c.RecordWrite(0, SideSrc)
	c.RecordWrite(0, SideDst)
	c.RecordWrite(1, SideSrc)
	c.RecordRead(1, SideDst)
	c.RecordRead(2, SideSrc)
	rw, ww := c.Tally()
	if rw != 1 || ww != 1 {
		t.Fatalf("rw=%d ww=%d, want rw=1 ww=1", rw, ww)
	}
}

func TestCensusConcurrentRecording(t *testing.T) {
	const edges = 1000
	c := NewCensus(edges)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for e := uint32(0); e < edges; e++ {
			c.RecordWrite(e, SideSrc)
		}
	}()
	go func() {
		defer wg.Done()
		for e := uint32(0); e < edges; e++ {
			c.RecordWrite(e, SideDst)
		}
	}()
	wg.Wait()
	_, ww := c.Tally()
	if ww != edges {
		t.Fatalf("ww = %d, want %d", ww, edges)
	}
}

func BenchmarkCensusRecordWrite(b *testing.B) {
	c := NewCensus(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RecordWrite(uint32(i)&(1<<16-1), SideSrc)
	}
}
