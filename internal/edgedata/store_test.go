package edgedata

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func allModes() []Mode {
	return []Mode{ModeSequential, ModeLocked, ModeAligned, ModeAtomic}
}

func TestModeStringParse(t *testing.T) {
	for _, m := range allModes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode String empty")
	}
}

func TestConcurrentModesExcludesSequential(t *testing.T) {
	for _, m := range ConcurrentModes() {
		if m == ModeSequential {
			t.Fatal("ConcurrentModes includes ModeSequential")
		}
	}
	if len(ConcurrentModes()) != 3 {
		t.Fatalf("ConcurrentModes = %v, want the paper's three methods", ConcurrentModes())
	}
}

func TestStoreBasicAllModes(t *testing.T) {
	for _, m := range allModes() {
		s := New(m, 100)
		if s.Len() != 100 {
			t.Fatalf("%v: Len = %d", m, s.Len())
		}
		if s.Mode() != m {
			t.Fatalf("Mode() = %v, want %v", s.Mode(), m)
		}
		s.Store(7, 0xdeadbeef)
		if got := s.Load(7); got != 0xdeadbeef {
			t.Fatalf("%v: Load(7) = %#x", m, got)
		}
		if got := s.Load(8); got != 0 {
			t.Fatalf("%v: untouched slot = %#x", m, got)
		}
		s.Fill(42)
		for e := uint32(0); e < 100; e++ {
			if s.Load(e) != 42 {
				t.Fatalf("%v: Fill missed slot %d", m, e)
			}
		}
		snap := s.Snapshot()
		if len(snap) != 100 || snap[3] != 42 {
			t.Fatalf("%v: Snapshot = len %d, [3]=%d", m, len(snap), snap[3])
		}
		snap[3] = 0
		if s.Load(3) != 42 {
			t.Fatalf("%v: Snapshot aliases store", m)
		}
	}
}

func TestCompareAndSwapAllModes(t *testing.T) {
	for _, m := range allModes() {
		s := New(m, 4)
		s.Store(1, 10)
		if !s.CompareAndSwap(1, 10, 20) {
			t.Fatalf("%v: CAS with matching old failed", m)
		}
		if s.Load(1) != 20 {
			t.Fatalf("%v: CAS did not store", m)
		}
		if s.CompareAndSwap(1, 10, 30) {
			t.Fatalf("%v: CAS with stale old succeeded", m)
		}
		if s.Load(1) != 20 {
			t.Fatalf("%v: failed CAS mutated the slot", m)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative": func() { New(ModeAtomic, -1) },
		"bad mode": func() { New(Mode(77), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Under concurrent single-writer-per-slot traffic, every mode that claims
// concurrency safety must end with each slot holding the writer's final
// value (per-word atomicity: no torn or lost final writes when writers
// don't contend on the same slot).
func TestConcurrentDisjointWriters(t *testing.T) {
	const slots = 1024
	for _, m := range ConcurrentModes() {
		s := New(m, slots)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for e := uint32(w); e < slots; e += 4 {
					for round := 0; round < 50; round++ {
						s.Store(e, uint64(e)<<8|uint64(round))
					}
				}
			}(w)
		}
		wg.Wait()
		for e := uint32(0); e < slots; e++ {
			if got := s.Load(e); got != uint64(e)<<8|49 {
				t.Fatalf("%v: slot %d = %#x", m, e, got)
			}
		}
	}
}

// Lemma 1/2 analog: with two goroutines racing a write against reads of the
// same slot, every observed value must be one of the two committed values —
// never a torn mix. (ModeAligned relies on hardware word atomicity; this
// test intentionally exercises that benign race, so it must not run under
// the race detector for that mode.)
func TestNoTornReads(t *testing.T) {
	if raceEnabled {
		t.Skip("benign-race test skipped under -race (covered for atomic/locked modes elsewhere)")
	}
	const a, b = 0x1111111111111111, 0x2222222222222222
	for _, m := range ConcurrentModes() {
		s := New(m, 1)
		s.Store(0, a)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 20000; i++ {
				if i%2 == 0 {
					s.Store(0, a)
				} else {
					s.Store(0, b)
				}
			}
		}()
		bad := 0
		for i := 0; i < 20000; i++ {
			if v := s.Load(0); v != a && v != b {
				bad++
			}
		}
		<-done
		if bad > 0 {
			t.Fatalf("%v: observed %d torn values", m, bad)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return math.IsNaN(ToFloat64(FromFloat64(x)))
		}
		return ToFloat64(FromFloat64(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ToFloat64(Inf), 1) {
		t.Fatal("Inf sentinel does not decode to +Inf")
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(x uint32) bool { return ToUint32(FromUint32(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreLoad(b *testing.B) {
	for _, m := range allModes() {
		b.Run(m.String(), func(b *testing.B) {
			s := New(m, 1<<16)
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				e := uint32(i) & (1<<16 - 1)
				s.Store(e, uint64(i))
				sink += s.Load(e)
			}
			_ = sink
		})
	}
}

func TestSnapshotIntoAllModes(t *testing.T) {
	for _, m := range allModes() {
		s := New(m, 6)
		for e := 0; e < 6; e++ {
			s.Store(uint32(e), uint64(100+e))
		}

		// nil dst allocates a fresh slice equal to Snapshot().
		got := s.SnapshotInto(nil)
		want := s.Snapshot()
		if len(got) != 6 {
			t.Fatalf("%v: SnapshotInto(nil) len = %d, want 6", m, len(got))
		}
		for e := range want {
			if got[e] != want[e] {
				t.Fatalf("%v: slot %d = %d, want %d", m, e, got[e], want[e])
			}
		}

		// A dst with sufficient capacity is reused, not reallocated.
		s.Store(3, 999)
		reused := s.SnapshotInto(got)
		if &reused[0] != &got[0] {
			t.Fatalf("%v: SnapshotInto reallocated despite sufficient capacity", m)
		}
		if reused[3] != 999 {
			t.Fatalf("%v: reused snapshot slot 3 = %d, want 999", m, reused[3])
		}

		// An undersized dst grows; the result still carries every slot.
		small := make([]uint64, 0, 2)
		grown := s.SnapshotInto(small)
		if len(grown) != 6 || grown[5] != 105 {
			t.Fatalf("%v: grown snapshot = %v", m, grown)
		}

		// An oversized dst is trimmed to exactly n slots.
		big := make([]uint64, 10)
		trimmed := s.SnapshotInto(big)
		if len(trimmed) != 6 {
			t.Fatalf("%v: oversized dst trimmed to %d, want 6", m, len(trimmed))
		}
		if &trimmed[0] != &big[0] {
			t.Fatalf("%v: oversized dst was reallocated", m)
		}
	}
}

func TestSnapshotIntoSteadyStateDoesNotAllocate(t *testing.T) {
	for _, m := range allModes() {
		s := New(m, 512)
		s.Fill(7)
		buf := s.SnapshotInto(nil)
		if avg := testing.AllocsPerRun(50, func() { buf = s.SnapshotInto(buf) }); avg != 0 {
			t.Errorf("%v: SnapshotInto into warm buffer allocates %.1f, want 0", m, avg)
		}
	}
}
