//go:build race

package edgedata

// raceEnabled reports whether the race detector is active in this build.
// The ModeAligned store performs deliberate benign word races (the paper's
// architecture-support atomicity method); tests that exercise those races
// consult this flag to skip themselves under -race.
const raceEnabled = true
