package edgedata

import "sync/atomic"

// Side identifies which endpoint of an edge an access came from. An edge
// (u→v) can only ever be touched by the update functions of its two
// endpoints: f(u) reaches it as an out-edge (SideSrc) and f(v) as an
// in-edge (SideDst). Recording the side therefore identifies the accessing
// update without tracking thread IDs.
type Side int

const (
	// SideSrc marks an access by the update function of the edge's source.
	SideSrc Side = iota
	// SideDst marks an access by the update function of the edge's
	// destination.
	SideDst
)

// Per-edge census flags, 4 bits per edge packed 8 edges to a uint32.
const (
	censusReadSrc = 1 << iota
	censusReadDst
	censusWriteSrc
	censusWriteDst
	censusBits      = 4
	censusPerWord   = 32 / censusBits
	censusFlagsMask = 1<<censusBits - 1
)

// Census classifies the *logical* conflicts of one iteration: a read-write
// conflict is an edge read by one of its endpoint updates and written by
// the other within the same iteration; a write-write conflict is an edge
// written by both endpoint updates. This is the paper's Section III notion
// of "competing operations to the edges" — it depends on the algorithm's
// access pattern and the scheduled set, not on accidental timing, so it is
// reproducible even on a single-core machine.
//
// RecordRead and RecordWrite are safe for concurrent use; Tally and Reset
// must only run at a barrier.
type Census struct {
	flags []uint32 // atomic; censusBits flags per edge

	rw atomic.Uint64 // cumulative read-write conflict edges
	ww atomic.Uint64 // cumulative write-write conflict edges
}

// NewCensus returns a Census for m edges.
func NewCensus(m int) *Census {
	return &Census{flags: make([]uint32, (m+censusPerWord-1)/censusPerWord)}
}

func (c *Census) or(e uint32, bit uint32) {
	w := e / censusPerWord
	shift := (e % censusPerWord) * censusBits
	mask := bit << shift
	addr := &c.flags[w]
	for {
		old := atomic.LoadUint32(addr)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint32(addr, old, old|mask) {
			return
		}
	}
}

// RecordRead notes that edge e was read from the given side.
func (c *Census) RecordRead(e uint32, side Side) {
	if side == SideSrc {
		c.or(e, censusReadSrc)
	} else {
		c.or(e, censusReadDst)
	}
}

// RecordWrite notes that edge e was written from the given side.
func (c *Census) RecordWrite(e uint32, side Side) {
	if side == SideSrc {
		c.or(e, censusWriteSrc)
	} else {
		c.or(e, censusWriteDst)
	}
}

// Tally scans the iteration's flags, adds the classified conflicts to the
// cumulative totals, clears the flags, and returns the per-iteration
// counts. Call exactly once per iteration, at the barrier.
func (c *Census) Tally() (rw, ww int) {
	for w := range c.flags {
		word := atomic.LoadUint32(&c.flags[w])
		if word == 0 {
			continue
		}
		atomic.StoreUint32(&c.flags[w], 0)
		for i := 0; i < censusPerWord; i++ {
			f := (word >> (uint32(i) * censusBits)) & censusFlagsMask
			if f == 0 {
				continue
			}
			readSrc := f&censusReadSrc != 0
			readDst := f&censusReadDst != 0
			writeSrc := f&censusWriteSrc != 0
			writeDst := f&censusWriteDst != 0
			if writeSrc && writeDst {
				ww++
			} else if (readSrc && writeDst) || (readDst && writeSrc) {
				// Note: an endpoint reading and writing its own side (e.g.
				// WCC's read-compare-write in one update) is not a
				// conflict; only cross-side read/write pairs are.
				rw++
			}
		}
	}
	c.rw.Add(uint64(rw))
	c.ww.Add(uint64(ww))
	return rw, ww
}

// Totals returns the cumulative conflict-edge counts across all tallied
// iterations.
func (c *Census) Totals() (rw, ww uint64) { return c.rw.Load(), c.ww.Load() }

// Reset clears both the per-iteration flags and the cumulative totals.
func (c *Census) Reset() {
	for w := range c.flags {
		atomic.StoreUint32(&c.flags[w], 0)
	}
	c.rw.Store(0)
	c.ww.Store(0)
}
