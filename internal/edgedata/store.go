// Package edgedata holds the mutable per-edge data words and implements the
// paper's three methods of guaranteeing the atomicity of individual reads
// and writes (Section III):
//
//  1. explicit locking/unlocking of the edge data (ModeLocked);
//  2. leveraging architecture support — word-aligned data within a single
//     cache line, whose transfer is atomic (ModeAligned);
//  3. leveraging language support — atomic primitives (ModeAtomic; Go's
//     sync/atomic is sequentially consistent, the closest the language
//     offers to C++ memory_order_relaxed).
//
// Every edge carries exactly one 64-bit word of mutable data. Algorithms
// encode their per-edge payload (a float weight for PageRank, a component
// label for WCC, a distance for SSSP/BFS) into that word with the
// conversion helpers in this package. Restricting mutable edge state to one
// aligned word is what makes method 2 sound: a 64-bit aligned load or store
// never tears on the platforms Go supports, so under nondeterministic
// execution a racing edge commits to one of the competing values — exactly
// the guarantee Lemmas 1 and 2 of the paper require. (These are still data
// races by the letter of the Go memory model; they are the *benign* races
// the paper studies. Tests that run under -race use ModeAtomic or
// ModeLocked.)
package edgedata

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Mode selects the atomicity-guaranteeing method for a Store.
type Mode int

const (
	// ModeSequential performs plain loads and stores with no
	// synchronization of any kind. Valid only for single-threaded
	// (deterministic) execution.
	ModeSequential Mode = iota
	// ModeLocked guards every read and write with a per-edge mutex — the
	// paper's explicit locking/unlocking method (highest overhead).
	ModeLocked
	// ModeAligned performs plain 64-bit aligned loads and stores, relying
	// on the hardware's cache-line transfer atomicity — the paper's
	// architecture-support method (fastest, benign data races).
	ModeAligned
	// ModeAtomic uses sync/atomic operations — the paper's
	// language/compiler-support method.
	ModeAtomic
	numModes
)

// String returns the mode's name as used in harness output.
func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "seq"
	case ModeLocked:
		return "lock"
	case ModeAligned:
		return "arch"
	case ModeAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps a name produced by String back to a Mode.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < numModes; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("edgedata: unknown mode %q", s)
}

// ConcurrentModes lists the modes that are safe for nondeterministic
// (multi-worker) execution, in the order the paper presents them.
func ConcurrentModes() []Mode { return []Mode{ModeLocked, ModeAligned, ModeAtomic} }

// Store is a flat array of one mutable 64-bit word per edge, indexed by the
// canonical edge index of package graph. Load and Store are individually
// atomic according to the Store's Mode; no larger granularity is
// synchronized — that is the paper's minimal-granularity atomicity model.
type Store interface {
	// Len returns the number of edge slots.
	Len() int
	// Load reads the word of edge e.
	Load(e uint32) uint64
	// Store writes the word of edge e.
	Store(e uint32, v uint64)
	// CompareAndSwap atomically replaces edge e's word with new if it
	// equals old, reporting success. Used by the push-mode extension;
	// on ModeSequential and ModeAligned it is implemented without
	// hardware atomicity and is only valid single-threaded.
	CompareAndSwap(e uint32, old, new uint64) bool
	// Fill sets every slot to v. Not concurrency-safe; initialization and
	// barrier-time use only.
	Fill(v uint64)
	// Snapshot copies all slots into a fresh slice. Not concurrency-safe;
	// barrier-time use only.
	Snapshot() []uint64
	// SnapshotInto copies all slots into dst, reallocating only when dst's
	// capacity is insufficient, and returns the filled slice (dst may be
	// nil). It is the allocation-free Snapshot for per-iteration use: the
	// engine passes the previous iteration's buffer back in. Not
	// concurrency-safe; barrier-time use only.
	SnapshotInto(dst []uint64) []uint64
	// Mode reports the atomicity method this store implements.
	Mode() Mode
}

// New returns a Store with n slots implementing the given mode, with all
// slots zero.
func New(mode Mode, n int) Store {
	if n < 0 {
		panic("edgedata: negative store size")
	}
	switch mode {
	case ModeSequential:
		return &plainStore{words: make([]uint64, n), mode: ModeSequential}
	case ModeAligned:
		return &plainStore{words: make([]uint64, n), mode: ModeAligned}
	case ModeAtomic:
		return &atomicStore{words: make([]uint64, n)}
	case ModeLocked:
		return &lockedStore{words: make([]uint64, n), locks: make([]sync.Mutex, n)}
	default:
		panic(fmt.Sprintf("edgedata: unknown mode %d", int(mode)))
	}
}

// plainStore backs both ModeSequential and ModeAligned: plain loads and
// stores on a []uint64, which Go guarantees to be 8-byte aligned. The two
// modes differ only in intent: Sequential promises single-threaded use,
// Aligned deliberately allows benign word-level races.
type plainStore struct {
	words []uint64
	mode  Mode
}

func (s *plainStore) Len() int                 { return len(s.words) }
func (s *plainStore) Load(e uint32) uint64     { return s.words[e] }
func (s *plainStore) Store(e uint32, v uint64) { s.words[e] = v }
func (s *plainStore) CompareAndSwap(e uint32, old, new uint64) bool {
	if s.words[e] != old {
		return false
	}
	s.words[e] = new
	return true
}
func (s *plainStore) Fill(v uint64) {
	for i := range s.words {
		s.words[i] = v
	}
}
func (s *plainStore) Snapshot() []uint64 {
	return s.SnapshotInto(nil)
}
func (s *plainStore) SnapshotInto(dst []uint64) []uint64 {
	dst = sized(dst, len(s.words))
	copy(dst, s.words)
	return dst
}
func (s *plainStore) Mode() Mode { return s.mode }

// sized returns dst resized to n slots, reallocating only when its
// capacity is insufficient.
func sized(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

// atomicStore implements ModeAtomic with sync/atomic word operations.
type atomicStore struct {
	words []uint64
}

func (s *atomicStore) Len() int                 { return len(s.words) }
func (s *atomicStore) Load(e uint32) uint64     { return atomic.LoadUint64(&s.words[e]) }
func (s *atomicStore) Store(e uint32, v uint64) { atomic.StoreUint64(&s.words[e], v) }
func (s *atomicStore) CompareAndSwap(e uint32, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&s.words[e], old, new)
}
func (s *atomicStore) Fill(v uint64) {
	for i := range s.words {
		atomic.StoreUint64(&s.words[i], v)
	}
}
func (s *atomicStore) Snapshot() []uint64 {
	return s.SnapshotInto(nil)
}
func (s *atomicStore) SnapshotInto(dst []uint64) []uint64 {
	dst = sized(dst, len(s.words))
	for i := range s.words {
		dst[i] = atomic.LoadUint64(&s.words[i])
	}
	return dst
}
func (s *atomicStore) Mode() Mode { return ModeAtomic }

// lockedStore implements ModeLocked: one mutex per edge, acquired around
// every individual load and store, exactly as the paper's explicit
// locking/unlocking method prescribes ("a lock is defined for each edge,
// and an access to the edge must first acquire the lock").
type lockedStore struct {
	words []uint64
	locks []sync.Mutex
}

func (s *lockedStore) Len() int { return len(s.words) }
func (s *lockedStore) Load(e uint32) uint64 {
	s.locks[e].Lock()
	v := s.words[e]
	s.locks[e].Unlock()
	return v
}
func (s *lockedStore) Store(e uint32, v uint64) {
	s.locks[e].Lock()
	s.words[e] = v
	s.locks[e].Unlock()
}
func (s *lockedStore) CompareAndSwap(e uint32, old, new uint64) bool {
	s.locks[e].Lock()
	defer s.locks[e].Unlock()
	if s.words[e] != old {
		return false
	}
	s.words[e] = new
	return true
}
func (s *lockedStore) Fill(v uint64) {
	for i := range s.words {
		s.words[i] = v
	}
}
func (s *lockedStore) Snapshot() []uint64 {
	return s.SnapshotInto(nil)
}
func (s *lockedStore) SnapshotInto(dst []uint64) []uint64 {
	dst = sized(dst, len(s.words))
	copy(dst, s.words)
	return dst
}
func (s *lockedStore) Mode() Mode { return ModeLocked }

// Word encoding helpers. Algorithms store one of these payload types per
// edge; keeping the conversions here concentrates all bit-punning in one
// audited place.

// FromFloat64 encodes a float64 payload.
func FromFloat64(f float64) uint64 { return math.Float64bits(f) }

// ToFloat64 decodes a float64 payload.
func ToFloat64(w uint64) float64 { return math.Float64frombits(w) }

// FromUint32 encodes a uint32 payload (e.g. a WCC component label).
func FromUint32(u uint32) uint64 { return uint64(u) }

// ToUint32 decodes a uint32 payload.
func ToUint32(w uint64) uint32 { return uint32(w) }

// Inf is the encoded "infinite distance" sentinel used by SSSP and BFS.
var Inf = FromFloat64(math.Inf(1))
