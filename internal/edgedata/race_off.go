//go:build !race

package edgedata

// raceEnabled reports whether the race detector is active in this build.
const raceEnabled = false
