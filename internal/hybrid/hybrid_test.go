package hybrid

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/obs"
	"ndgraph/internal/trace"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 1); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := gen.Ring(4)
	e, err := NewEngine(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(context.Background(), algorithms.Kernel{}); err == nil {
		t.Error("empty Kernel accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" {
		t.Fatal("Direction.String mismatch")
	}
}

// The Beamer policy must flip exactly at its threshold boundaries, with
// hysteresis from the previous direction.
func TestBeamerPolicyThresholdBoundary(t *testing.T) {
	p := BeamerPolicy(14, 24)
	base := Stats{N: 2400, M: 14000, RemainingInDeg: 14000, BottomUp: true}
	// Pushing: switch to pull strictly above the pull-sweep cost estimate
	// (RemainingInDeg+N)/alpha = (14000+2400)/14 = 1171.
	s := base
	s.Growing = true
	s.Prev, s.FrontierOutDeg = Push, 1171
	if got := p(s); got != Push {
		t.Fatalf("at boundary (1171): %v, want push", got)
	}
	s.FrontierOutDeg = 1172
	if got := p(s); got != Pull {
		t.Fatalf("above boundary (1172): %v, want pull", got)
	}
	// A full-gather kernel (no FirstOfferWins) never pulls, however far
	// past the threshold the frontier grows.
	s.BottomUp = false
	s.FrontierOutDeg = int64(s.M)
	if got := p(s); got != Push {
		t.Fatalf("full-gather kernel above threshold: %v, want push", got)
	}
	s.BottomUp = true
	// A shrinking frontier never switches to pull, whatever its degree.
	s.Growing = false
	if got := p(s); got != Push {
		t.Fatalf("shrinking frontier above boundary: %v, want push", got)
	}
	// Pulling: return to push strictly below N/beta = 100.
	s = base
	s.Prev, s.FrontierSize = Pull, 100
	if got := p(s); got != Pull {
		t.Fatalf("at boundary (100): %v, want pull", got)
	}
	s.FrontierSize = 99
	if got := p(s); got != Push {
		t.Fatalf("below boundary (99): %v, want push", got)
	}
	// Hysteresis: identical stats, different previous direction, can give
	// different answers (the dead band between the two thresholds).
	mid := Stats{N: 2400, M: 14000, RemainingInDeg: 14000, FrontierOutDeg: 500, FrontierSize: 500, Growing: true}
	mid.Prev = Push
	inPush := p(mid)
	mid.Prev = Pull
	inPull := p(mid)
	if inPush != Push || inPull != Pull {
		t.Fatalf("dead band not sticky: from push %v, from pull %v", inPush, inPull)
	}
}

func forced(d Direction) Policy { return func(Stats) Direction { return d } }

func alternating() Policy {
	return func(s Stats) Direction { return Direction(s.Iter % 2) }
}

// All-push, all-pull, and alternating forced policies must all converge to
// the reference fixed point and record exactly the forced direction
// sequence — the mid-run switch loses nothing.
func TestForcedDirectionSequences(t *testing.T) {
	g, err := gen.RMAT(240, 1500, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	want := algorithms.ReferenceWCC(u)
	cases := []struct {
		name   string
		policy Policy
		check  func(t *testing.T, res Result)
	}{
		{"all-push", forced(Push), func(t *testing.T, res Result) {
			if got := res.SwitchTrace(); strings.ContainsRune(got, 'L') {
				t.Fatalf("forced push ran pull: %s", got)
			}
			if res.Switches != 0 {
				t.Fatalf("Switches = %d, want 0", res.Switches)
			}
		}},
		{"all-pull", forced(Pull), func(t *testing.T, res Result) {
			if got := res.SwitchTrace(); strings.ContainsRune(got, 'P') {
				t.Fatalf("forced pull ran push: %s", got)
			}
			if res.Switches != 0 {
				t.Fatalf("Switches = %d, want 0", res.Switches)
			}
		}},
		{"alternating", alternating(), func(t *testing.T, res Result) {
			got := res.SwitchTrace()
			for i := range got {
				want := byte('P')
				if i%2 == 1 {
					want = 'L'
				}
				if got[i] != want {
					t.Fatalf("iteration %d ran %c, want %c (trace %s)", i, got[i], want, got)
				}
			}
			if res.Switches != len(got)-1 {
				t.Fatalf("Switches = %d, want %d", res.Switches, len(got)-1)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(u, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			e.Policy = tc.policy
			res, err := e.Run(context.Background(), algorithms.WCCKernel())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			for v := range want {
				if uint32(e.Vertices[v]) != want[v] {
					t.Fatalf("vertex %d: label %d, want %d", v, e.Vertices[v], want[v])
				}
			}
			tc.check(t, res)
		})
	}
}

// WCC is a full-gather kernel (offers differ per source, so the pull
// sweep has no early exit), and a full gather measures slower than push
// at every frontier density — the default policy must keep the whole run
// in push even though S_0 = V maximizes frontier out-degree, and land on
// the exact reference fixed point.
func TestDefaultPolicyWCCStaysPush(t *testing.T) {
	g, err := gen.RMAT(400, 3000, gen.DefaultRMAT, 21)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	want := algorithms.ReferenceWCC(u)
	e, err := NewEngine(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), algorithms.WCCKernel())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, d := range res.Directions {
		if d != Push {
			t.Fatalf("iteration %d chose %v, want push (trace %s)", i, d, res.SwitchTrace())
		}
	}
	if res.Switches != 0 {
		t.Fatalf("Switches = %d, want 0", res.Switches)
	}
	for v := range want {
		if uint32(e.Vertices[v]) != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, e.Vertices[v], want[v])
		}
	}
}

// BFS from one source starts maximally sparse: the default policy must
// open with push, and the distances must match the reference exactly in
// every direction regime.
func TestBFSAgainstReference(t *testing.T) {
	g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 33)
	if err != nil {
		t.Fatal(err)
	}
	bfs := algorithms.NewBFS(g, 0)
	want := algorithms.ReferenceSSSP(g, 0, bfs.Weights)
	for _, tc := range []struct {
		name   string
		policy Policy
	}{{"beamer", nil}, {"all-pull", forced(Pull)}, {"alternating", alternating()}} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			e.Policy = tc.policy
			res, err := e.Run(context.Background(), algorithms.BFSKernel(0))
			if err != nil || !res.Converged {
				t.Fatalf("run: %v (converged=%v)", err, res.Converged)
			}
			if tc.policy == nil {
				got := res.SwitchTrace()
				if res.Directions[0] != Push {
					t.Fatalf("single-seed BFS opened with %v, want push (trace %s)", res.Directions[0], got)
				}
				// BFS is a bottom-up kernel, so once the frontier engulfs
				// the RMAT hubs the Beamer threshold must actually fire.
				if !strings.ContainsRune(got, 'L') {
					t.Fatalf("default policy never pulled (trace %s)", got)
				}
			}
			for v := range want {
				if got := edgedata.ToFloat64(e.Vertices[v]); got != want[v] {
					t.Fatalf("vertex %d: dist %v, want %v", v, got, want[v])
				}
			}
		})
	}
}

// SSSP with randomized weights must match the reference through direction
// switches too — the canonical edge index hands pull the same weight push
// would read.
func TestSSSPAgainstReference(t *testing.T) {
	g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 55)
	if err != nil {
		t.Fatal(err)
	}
	sssp := algorithms.NewSSSP(g, 0, 99)
	want := algorithms.ReferenceSSSP(g, 0, sssp.Weights)
	e, err := NewEngine(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Policy = alternating()
	res, err := e.Run(context.Background(), algorithms.SSSPKernel(0, sssp.Weights))
	if err != nil || !res.Converged {
		t.Fatalf("run: %v (converged=%v)", err, res.Converged)
	}
	for v := range want {
		if got := edgedata.ToFloat64(e.Vertices[v]); got != want[v] {
			t.Fatalf("vertex %d: dist %v, want %v", v, got, want[v])
		}
	}
}

// Each iteration's telemetry event carries the direction it executed
// with, matching the recorded direction sequence one-to-one.
func TestObsEventsTagDirection(t *testing.T) {
	g, err := gen.RMAT(240, 1500, gen.DefaultRMAT, 11)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	e, err := NewEngine(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	o := obs.New(obs.Options{RingSize: 256})
	defer o.Close()
	e.Observe(o)
	e.Policy = alternating()
	res, err := e.Run(context.Background(), algorithms.WCCKernel())
	if err != nil {
		t.Fatal(err)
	}
	evs := o.Events()
	if len(evs) != res.Iterations {
		t.Fatalf("%d events for %d iterations", len(evs), res.Iterations)
	}
	for i, ev := range evs {
		if ev.Engine != obs.EngineHybrid {
			t.Fatalf("event %d engine %v", i, ev.Engine)
		}
		if ev.Direction != res.Directions[i].String() {
			t.Fatalf("event %d direction %q, want %q", i, ev.Direction, res.Directions[i])
		}
	}
}

// Trace recording spans direction switches: both directions record one
// event per adopted improvement with the adopted value, so the recorded
// total matches Result.Updates and iterations from both regimes appear.
func TestTraceSpansDirectionSwitches(t *testing.T) {
	g, err := gen.RMAT(240, 1500, gen.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	e, err := NewEngine(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := trace.NewRecorder(1 << 18)
	e.Trace(rec)
	e.Policy = alternating()
	res, err := e.Run(context.Background(), algorithms.WCCKernel())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() != int64(res.Updates) {
		t.Fatalf("recorded %d events, Updates = %d", rec.Total(), res.Updates)
	}
	seen := map[int32]bool{}
	for _, ev := range rec.Events() {
		seen[ev.Iteration] = true
	}
	if len(res.Directions) > 1 && !seen[0] {
		t.Fatal("no events from iteration 0")
	}
	if !seen[1] {
		t.Fatal("no events from iteration 1 (other direction)")
	}
}

// Cancellation must end a non-quiescing hybrid run promptly with the
// context's error, in either direction.
func TestHybridContextCancellation(t *testing.T) {
	g, err := gen.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		policy Policy
	}{{"push", forced(Push)}, {"pull", forced(Pull)}} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(g, 2)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			e.Policy = tc.policy
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(5*time.Millisecond, cancel)
			res, err := e.Run(ctx, nonQuiescingKernel())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res.Converged {
				t.Fatal("cancelled run reported Converged")
			}
		})
	}
}

func nonQuiescingKernel() algorithms.Kernel {
	k := algorithms.WCCKernel()
	k.Message = func(srcVal uint64, _ uint32) uint64 {
		time.Sleep(10 * time.Microsecond)
		return srcVal
	}
	k.Better = func(_, _ uint64) bool { return true }
	return k
}

// The stall watchdog aborts a run whose frontier stops shrinking.
func TestHybridStallWatchdog(t *testing.T) {
	g, err := gen.Ring(32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.StallWindow = 3
	e.Policy = forced(Push)
	k := algorithms.WCCKernel()
	k.Better = func(_, _ uint64) bool { return true }
	res, err := e.Run(context.Background(), k)
	if !errors.Is(err, core.ErrStalled) {
		t.Fatalf("err = %v, want core.ErrStalled", err)
	}
	if res.Converged {
		t.Fatal("stalled run reported Converged")
	}
}

// A chain BFS exercises the sparse extreme: every frontier is one vertex,
// so the default policy must never leave push.
func TestChainStaysPush(t *testing.T) {
	g, err := gen.Chain(50)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), algorithms.BFSKernel(0))
	if err != nil || !res.Converged {
		t.Fatalf("run: %v", err)
	}
	if got := res.SwitchTrace(); strings.ContainsRune(got, 'L') {
		t.Fatalf("chain BFS pulled: %s", got)
	}
	inf := edgedata.FromFloat64(math.Inf(1))
	for v := range e.Vertices {
		if e.Vertices[v] == inf {
			t.Fatalf("vertex %d unreachable on a chain", v)
		}
		if got := edgedata.ToFloat64(e.Vertices[v]); got != float64(v) {
			t.Fatalf("vertex %d: dist %v, want %d", v, got, v)
		}
	}
}
