// Package hybrid implements a direction-optimizing executor: at every
// iteration barrier it chooses push (relax the out-edges of the scheduled
// set, CAS combine — the Ligra-style discipline of internal/push) or pull
// (every vertex gathers offers from its in-neighbors that are scheduled,
// merging monotonically — the paper's pull-mode edge scenario) based on
// Beamer-style frontier-density thresholds.
//
// Push costs O(out-degree of the frontier) edge relaxations but pays a
// CAS per improving offer, and on a dense frontier most CASes contend for
// the same hot destinations. Pull costs O(m) in-edge membership tests but
// writes each vertex word at most once per iteration, with no CAS at all
// — cheaper exactly when the frontier is dense. The crossover is the
// classic direction-optimizing BFS result (Beamer et al., and Besta et
// al.'s push-vs-pull analysis in PAPERS.md): switch to pull when the
// frontier's unexplored out-edge work exceeds a fraction 1/alpha of the
// remaining in-edge work, and back to push when the frontier shrinks
// below n/beta vertices.
//
// Why switching is safe: both directions relax the same edge set {(u,v) :
// u scheduled} with the same Kernel.Message/Better pair over the same
// canonical edge indices, and the merge is monotone. Under the paper's
// Theorem 2 (absolute convergence of monotone min-merge), any interleaving
// — including a fresh same-iteration value observed by a pull gather —
// converges to the unique fixed point, so every direction sequence yields
// results byte-identical to the deterministic core engine. The
// differential suite pins exactly that.
package hybrid

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/frontier"
	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// Direction is the edge-traversal direction of one iteration.
type Direction uint8

const (
	// Push relaxes the out-edges of scheduled vertices (sparse frontier).
	Push Direction = iota
	// Pull has every vertex gather from scheduled in-neighbors (dense
	// frontier).
	Pull
)

// String names the direction as tagged on telemetry events.
func (d Direction) String() string {
	if d == Push {
		return "push"
	}
	return "pull"
}

// Stats is the barrier-time snapshot a Policy decides from. All fields
// are O(1) to produce: the frontier maintains its cardinality and
// scheduled out-degree at Schedule time (PR 7's accounting fix), and the
// engine tracks the in-degree of the never-yet-scheduled region.
type Stats struct {
	// Iter is the upcoming iteration index.
	Iter int
	// FrontierSize is |S_n|.
	FrontierSize int
	// FrontierOutDeg is the summed out-degree of S_n — the edge
	// relaxations a push iteration would attempt.
	FrontierOutDeg int64
	// RemainingInDeg is the summed in-degree of vertices that have never
	// been scheduled — Beamer's unexplored-region edge count, the work a
	// pull iteration could still usefully gather.
	RemainingInDeg int64
	// BottomUp reports that the kernel declares FirstOfferWins, so a pull
	// iteration runs the skip-reached, stop-at-first-scheduled-neighbor
	// bottom-up sweep whose cost the Beamer thresholds model. Without it
	// a pull iteration is a full monotone gather that streams every
	// in-edge of every vertex regardless of frontier shape — measured
	// never cheaper than pushing the frontier's out-edges on the
	// benchmark graphs — so the default policy declines to pull.
	BottomUp bool
	// N and M are the graph's vertex and edge counts.
	N, M int
	// Growing reports whether the frontier is larger than the previous
	// iteration's — Beamer's growing-phase guard, which keeps shrinking
	// endgame frontiers (whose remaining in-degree also tends to zero)
	// from flipping to pull.
	Growing bool
	// Prev is the previous iteration's direction (Push at iteration 0),
	// for hysteresis.
	Prev Direction
}

// Policy chooses the direction for one iteration from its barrier stats.
type Policy func(Stats) Direction

// Default Beamer thresholds: alpha divides the remaining in-edge work to
// get the push-to-pull crossover, beta divides n for the pull-to-push
// return. The values are Beamer's published tuning (alpha=14, beta=24),
// which transfer well because they express ratios of edge work, not
// absolute sizes.
const (
	DefaultAlpha = 14
	DefaultBeta  = 24
)

// BeamerPolicy returns the classic direction-optimizing heuristic with
// hysteresis: while pushing, switch to pull when the frontier is growing
// and its out-edge work exceeds a pull sweep's cost divided by alpha;
// while pulling, return to push when the frontier drops below n/beta
// vertices. Two refinements to Beamer's published m_f > m_u/alpha:
//
//   - A pull sweep reads every vertex word once before it touches any
//     edge, so the cost model is RemainingInDeg + N rather than the
//     edge-only m_u — on graphs with m ~ n (web-google) the pure edge
//     ratio recommends pulls whose O(n) scan can never pay for itself.
//   - Pull is only considered for BottomUp kernels. alpha amortizes the
//     unexplored region's in-degree over the bottom-up sweep's early
//     exits; a full-gather pull has no early exit and streams all m
//     in-edges every iteration, which measures slower than any push on
//     every benchmark graph, so full-gather kernels always push unless a
//     custom policy forces otherwise.
//
// alpha or beta <= 0 select the defaults.
func BeamerPolicy(alpha, beta int64) Policy {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	return func(s Stats) Direction {
		if s.Prev == Push {
			if s.BottomUp && s.Growing && s.FrontierOutDeg > (s.RemainingInDeg+int64(s.N))/alpha {
				return Pull
			}
			return Push
		}
		if int64(s.FrontierSize) < int64(s.N)/beta {
			return Push
		}
		return Pull
	}
}

// Result summarizes a hybrid run.
type Result struct {
	Iterations int
	// Offers counts candidate computations: push relaxations plus pull
	// gathers from scheduled in-neighbors.
	Offers int64
	// Updates counts adopted improvements: CAS wins in push iterations,
	// vertex improvements in pull iterations.
	Updates int64
	// Directions records the chosen direction of every iteration, in
	// order — the switch trace ndbench prints and the forced-direction
	// tests assert.
	Directions []Direction
	// Switches counts direction changes across the run.
	Switches  int
	Converged bool
	Duration  time.Duration
}

// SwitchTrace renders Directions as one character per iteration: 'P' for
// push, 'L' for pull.
func (r Result) SwitchTrace() string {
	b := make([]byte, len(r.Directions))
	for i, d := range r.Directions {
		if d == Push {
			b[i] = 'P'
		} else {
			b[i] = 'L'
		}
	}
	return string(b)
}

// wcounters is one worker's iteration counters, padded to a cache line so
// the hot loops never false-share — unlike the push engine's single
// shared atomics, which are a measured contention cost on dense
// frontiers.
type wcounters struct {
	offers  int64
	wins    int64
	winners int64 // sources with >=1 win (push) / improved vertices (pull)
	_       [40]byte
}

// Engine executes paired push/pull kernels with per-barrier direction
// choice.
type Engine struct {
	g *graph.Graph
	p int

	// Vertices holds the per-vertex data words. Cross-worker accesses are
	// atomic in both directions (CAS combine in push; atomic load of
	// neighbors + atomic self-store in pull), so runs are race-clean.
	Vertices []uint64

	front    *frontier.Frontier
	outDeg   []uint32
	maxIters int

	// Policy chooses the direction each iteration; nil means
	// BeamerPolicy(DefaultAlpha, DefaultBeta). Set before Run — the
	// forced-direction tests and ndbench sweeps install custom policies.
	Policy Policy

	// StallWindow enables the divergence watchdog shared with the other
	// engines: abort with core.ErrStalled when the scheduled count
	// reaches no new minimum for StallWindow consecutive iterations. 0
	// disables.
	StallWindow int

	// touched marks vertices that have ever been scheduled;
	// remainingInDeg is the summed in-degree of the rest (Stats).
	touched        *frontier.Bitset
	remainingInDeg int64

	pool     *sched.Pool
	counters []wcounters
	observer *obs.Observer
	trace    *trace.Recorder

	// cert, when installed via Certify, is validated against every kernel
	// Run is handed before any iteration executes.
	cert *eligibility.Certificate
}

// NewEngine builds a hybrid engine. threads < 1 defaults to GOMAXPROCS.
func NewEngine(g *graph.Graph, threads int) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("hybrid: nil graph")
	}
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	deg := make([]uint32, g.N())
	for v := range deg {
		deg[v] = uint32(g.OutDegree(uint32(v)))
	}
	f := frontier.NewFrontier(g.N())
	f.AttachOutDegrees(deg)
	return &Engine{
		g:        g,
		p:        threads,
		Vertices: make([]uint64, g.N()),
		front:    f,
		outDeg:   deg,
		maxIters: core.DefaultMaxIters,
		touched:  frontier.NewBitset(g.N()),
		pool:     sched.NewPoolNamed(threads, "hybrid"),
		counters: make([]wcounters, threads),
	}, nil
}

// Observe attaches an observer: each iteration emits one event tagged
// with the chosen direction. Call before Run; nil detaches.
func (e *Engine) Observe(o *obs.Observer) {
	e.observer = o
	if e.pool != nil {
		e.pool.SetTimed(o.Enabled())
	}
}

// Trace attaches an execution-path recorder. Both directions record one
// event per adopted improvement — (iteration, worker, vertex, 1, adopted
// value) — so a trace spanning direction switches stays uniform and
// ndtrace diff compares hybrid runs against any other engine's without
// caring where each iteration's direction came from.
func (e *Engine) Trace(rec *trace.Recorder) { e.trace = rec }

// Frontier exposes the scheduled set for seeding.
func (e *Engine) Frontier() *frontier.Frontier { return e.front }

// Certify installs an eligibility certificate (ndlint -cert /
// algorithms.CertificateFor("kernel", name)) that Run validates before
// executing: the certificate must be a kernel certificate for the same
// Name, certified direction-consistent (Better a verified strict order,
// so push/pull switching reaches the same fixed point), and must agree
// with the kernel's EdgeIndexed and FirstOfferWins flags — the two
// capabilities the pull sweeps condition on. nil uninstalls. Without a
// certificate Run trusts the kernel's declarations as before; with one,
// a kernel whose declarations drifted from what was verified is refused.
func (e *Engine) Certify(c *eligibility.Certificate) { e.cert = c }

// Close releases the persistent worker pool; the next Run re-creates it.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// Run executes the kernel to quiescence. ctx, when non-nil, is checked at
// every iteration barrier; on cancellation Run returns the partial Result
// and the context's error. The kernel's Undirected requirement is the
// caller's to satisfy (pass g.Undirected() to NewEngine).
func (e *Engine) Run(ctx context.Context, k algorithms.Kernel) (Result, error) {
	if k.Init == nil || k.Message == nil || k.Better == nil {
		return Result{}, fmt.Errorf("hybrid: Kernel requires Init, Message, and Better")
	}
	if e.cert != nil {
		if err := e.cert.AdmitKernel(k.Name, k.EdgeIndexed, k.FirstOfferWins); err != nil {
			return Result{}, fmt.Errorf("hybrid: %w", err)
		}
	}
	vals, seeds := k.Init(e.g)
	if len(vals) != e.g.N() {
		return Result{}, fmt.Errorf("hybrid: Kernel.Init returned %d words for %d vertices", len(vals), e.g.N())
	}
	copy(e.Vertices, vals)
	e.front.LoadCurrent(nil)
	if seeds == nil {
		e.front.ScheduleAll()
	} else {
		e.front.ScheduleNowAll(seeds)
	}
	e.touched.ClearAll()
	e.remainingInDeg = int64(e.g.M())

	res := Result{Converged: true}
	policy := e.Policy
	if policy == nil {
		policy = BeamerPolicy(DefaultAlpha, DefaultBeta)
	}
	if e.pool == nil { // re-create after Close
		e.pool = sched.NewPoolNamed(e.p, "hybrid")
		e.pool.SetTimed(e.observer.Enabled())
	}

	// Both direction closures are bound once per run so per-iteration
	// dispatch through the pool allocates nothing.
	curIter := 0
	pushFn := func(worker, vi int) {
		v := uint32(vi)
		srcVal := atomic.LoadUint64(&e.Vertices[v])
		lo, _ := e.g.OutEdgeIndex(v)
		c := &e.counters[worker]
		uWins := 0
		for i, u := range e.g.OutNeighbors(v) {
			cand := k.Message(srcVal, lo+uint32(i))
			c.offers++
			if e.combine(u, cand, k.Better) {
				uWins++
				e.front.Schedule(int(u))
				if t := e.trace; t != nil {
					t.Record(curIter, worker, u, 1, cand)
				}
			}
		}
		if uWins > 0 {
			c.wins += int64(uWins)
			c.winners++
		}
	}
	n := e.g.N()
	// Three pull sweeps, strongest applicable capability first:
	//
	//   - FirstOfferWins (BFS-like): skip reached vertices with one word
	//     load, stop at the first scheduled in-neighbor. Reached values
	//     are never written again and unreached values are never read, so
	//     the sweep needs no atomics at all.
	//   - value-only kernels (WCC): full monotone gather, but without
	//     streaming the in-edge-index array Message would ignore.
	//   - edge-indexed kernels (SSSP): full gather with canonical edge
	//     indices for the per-edge data lookup.
	//
	// The full gathers must merge offers from ALL scheduled in-neighbors
	// — a Beamer-style early exit would adopt one offer and skip a better
	// one whose source leaves the frontier, losing the update forever.
	// Cross-worker value accesses there are atomic (neighbor loads,
	// self-store); a mid-iteration fresh value is at least as good as the
	// barrier value under monotonicity, so the fixed point is unchanged.
	var pullFn func(worker int)
	switch {
	case k.FirstOfferWins:
		pullFn = func(worker int) {
			lo := n * worker / e.p
			hi := n * (worker + 1) / e.p
			c := &e.counters[worker]
			for vi := lo; vi < hi; vi++ {
				if e.Vertices[vi] != k.Unreached {
					continue
				}
				for _, u := range e.g.InNeighbors(uint32(vi)) {
					if !e.front.Scheduled(int(u)) {
						continue
					}
					val := k.Message(e.Vertices[u], 0)
					e.Vertices[vi] = val
					e.front.Schedule(vi)
					c.offers++
					c.wins++
					c.winners++
					if t := e.trace; t != nil {
						t.Record(curIter, worker, uint32(vi), 1, val)
					}
					break
				}
			}
		}
	case !k.EdgeIndexed:
		pullFn = func(worker int) {
			lo := n * worker / e.p
			hi := n * (worker + 1) / e.p
			c := &e.counters[worker]
			for vi := lo; vi < hi; vi++ {
				v := uint32(vi)
				ins := e.g.InNeighbors(v)
				if len(ins) == 0 {
					continue
				}
				best := e.Vertices[v] // only this worker writes v's word
				improved := false
				for _, u := range ins {
					if !e.front.Scheduled(int(u)) {
						continue
					}
					cand := k.Message(atomic.LoadUint64(&e.Vertices[u]), 0)
					c.offers++
					if k.Better(cand, best) {
						best = cand
						improved = true
					}
				}
				if improved {
					atomic.StoreUint64(&e.Vertices[v], best)
					e.front.Schedule(vi)
					c.wins++
					c.winners++
					if t := e.trace; t != nil {
						t.Record(curIter, worker, v, 1, best)
					}
				}
			}
		}
	default:
		pullFn = func(worker int) {
			lo := n * worker / e.p
			hi := n * (worker + 1) / e.p
			c := &e.counters[worker]
			for vi := lo; vi < hi; vi++ {
				v := uint32(vi)
				ins := e.g.InNeighbors(v)
				if len(ins) == 0 {
					continue
				}
				idx := e.g.InEdgeIndices(v)
				best := e.Vertices[v] // only this worker writes v's word
				improved := false
				for i, u := range ins {
					if !e.front.Scheduled(int(u)) {
						continue
					}
					cand := k.Message(atomic.LoadUint64(&e.Vertices[u]), idx[i])
					c.offers++
					if k.Better(cand, best) {
						best = cand
						improved = true
					}
				}
				if improved {
					atomic.StoreUint64(&e.Vertices[v], best)
					e.front.Schedule(vi)
					c.wins++
					c.winners++
					if t := e.trace; t != nil {
						t.Record(curIter, worker, v, 1, best)
					}
				}
			}
		}
	}

	e.observer.SetPhase("hybrid: running")
	start := time.Now()
	finish := func() { res.Duration = time.Since(start) }
	bestActive := n + 1
	stalled := 0
	prev := Push
	prevSize := 0
	for e.front.Size() > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Converged = false
				finish()
				return res, err
			}
		}
		if res.Iterations >= e.maxIters {
			res.Converged = false
			break
		}
		if w := e.StallWindow; w > 0 {
			if size := e.front.Size(); size < bestActive {
				bestActive, stalled = size, 0
			} else if stalled++; stalled >= w {
				res.Converged = false
				finish()
				return res, fmt.Errorf("hybrid: iteration %d: active vertices %d (best %d) unimproved for %d iterations: %w",
					res.Iterations, e.front.Size(), bestActive, w, core.ErrStalled)
			}
		}

		members := e.front.Members()
		for _, v := range members {
			if !e.touched.Test(v) {
				e.touched.Set(v)
				e.remainingInDeg -= int64(e.g.InDegree(uint32(v)))
			}
		}
		dir := policy(Stats{
			Iter:           res.Iterations,
			FrontierSize:   e.front.Size(),
			FrontierOutDeg: e.front.CurrentOutDegree(),
			RemainingInDeg: e.remainingInDeg,
			BottomUp:       k.FirstOfferWins,
			N:              n,
			M:              e.g.M(),
			Growing:        e.front.Size() > prevSize,
			Prev:           prev,
		})
		if res.Iterations > 0 && dir != prev {
			res.Switches++
		}
		res.Directions = append(res.Directions, dir)
		curIter = res.Iterations

		if dir == Push {
			e.pool.RunBlocks(members, pushFn)
		} else {
			e.pool.RunEach(pullFn)
		}

		var offers, wins, winners int64
		for w := range e.counters {
			c := &e.counters[w]
			offers += c.offers
			wins += c.wins
			winners += c.winners
			c.offers, c.wins, c.winners = 0, 0, 0
		}
		res.Offers += offers
		res.Updates += wins
		if o := e.observer; o != nil {
			wall, wait := e.pool.TakeBarrierStats()
			o.Emit(obs.Event{
				Engine:           obs.EngineHybrid,
				Iter:             int64(res.Iterations),
				Scheduled:        int64(len(members)),
				Updates:          winners,
				EdgeReads:        offers,
				EdgeWrites:       wins,
				RWConflicts:      -1,
				WWConflicts:      -1,
				Residual:         float64(len(members)) / float64(n),
				BarrierWaitNanos: int64(wait),
				DurationNanos:    int64(wall),
				Direction:        dir.String(),
			})
		}
		prev = dir
		prevSize = e.front.Size()
		res.Iterations++
		e.front.Advance()
	}
	finish()
	if o := e.observer; o != nil {
		if res.Converged {
			o.SetPhase("hybrid: converged")
		} else {
			o.SetPhase("hybrid: stopped")
		}
	}
	return res, nil
}

// combine CAS-installs cand into u's word if it improves, as in the push
// engine's ModeCAS.
func (e *Engine) combine(u uint32, cand uint64, better func(c, cur uint64) bool) bool {
	for {
		cur := atomic.LoadUint64(&e.Vertices[u])
		if !better(cand, cur) {
			return false
		}
		if atomic.CompareAndSwapUint64(&e.Vertices[u], cur, cand) {
			return true
		}
	}
}
