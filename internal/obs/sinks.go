package obs

import (
	"bufio"
	"expvar"
	"io"
	"math"
	"strconv"
	"sync"
)

// Sink consumes emitted events. Sinks are called synchronously under the
// observer's lock, in emit order; a slow sink therefore backpressures
// emitters, which is the honest tradeoff for losing no events (the ring
// buffer absorbs nothing a sink hasn't seen). Consume must not call back
// into the Observer.
type Sink interface {
	// Consume receives one event. The pointed-to Event is only valid for
	// the duration of the call; implementations must copy what they keep.
	Consume(ev *Event)
	// Close flushes and releases the sink.
	Close() error
}

// JSONLSink renders each event as one JSON object per line. The encoder is
// hand-rolled over a reusable buffer so a steady-state Consume performs no
// heap allocation — with the JSONL sink attached, the core engine's hot
// path stays within the <5% updates/s budget asserted by the benchmarks.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // closed by Close when the target is a file
	buf []byte
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer (a file), Close closes
// it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 512)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Consume implements Sink.
func (s *JSONLSink) Consume(ev *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, ev.TimeUnixNano, 10)
	b = append(b, `,"engine":"`...)
	b = append(b, ev.Engine.String()...)
	b = append(b, `","iter":`...)
	b = strconv.AppendInt(b, ev.Iter, 10)
	b = append(b, `,"scheduled":`...)
	b = strconv.AppendInt(b, ev.Scheduled, 10)
	b = append(b, `,"updates":`...)
	b = strconv.AppendInt(b, ev.Updates, 10)
	b = append(b, `,"edge_reads":`...)
	b = strconv.AppendInt(b, ev.EdgeReads, 10)
	b = append(b, `,"edge_writes":`...)
	b = strconv.AppendInt(b, ev.EdgeWrites, 10)
	b = append(b, `,"rw":`...)
	b = strconv.AppendInt(b, ev.RWConflicts, 10)
	b = append(b, `,"ww":`...)
	b = strconv.AppendInt(b, ev.WWConflicts, 10)
	b = append(b, `,"residual":`...)
	b = appendFloat(b, ev.Residual)
	b = append(b, `,"barrier_wait_ns":`...)
	b = strconv.AppendInt(b, ev.BarrierWaitNanos, 10)
	b = append(b, `,"duration_ns":`...)
	b = strconv.AppendInt(b, ev.DurationNanos, 10)
	if ev.Direction != "" {
		b = append(b, `,"direction":"`...)
		b = append(b, ev.Direction...)
		b = append(b, '"')
	}
	if ev.Engine == EngineDist {
		b = append(b, `,"messages":`...)
		b = strconv.AppendInt(b, ev.Messages, 10)
		b = append(b, `,"duplicates":`...)
		b = strconv.AppendInt(b, ev.Duplicates, 10)
		b = append(b, `,"drops":`...)
		b = strconv.AppendInt(b, ev.Drops, 10)
	}
	if ev.Engine == EngineNoSync {
		b = append(b, `,"steals":`...)
		b = strconv.AppendInt(b, ev.Steals, 10)
		b = append(b, `,"idle_transitions":`...)
		b = strconv.AppendInt(b, ev.IdleTransitions, 10)
	}
	if ev.DelayP50 != 0 || ev.DelayP99 != 0 || ev.DelayMax != 0 {
		b = append(b, `,"delay_p50":`...)
		b = strconv.AppendInt(b, ev.DelayP50, 10)
		b = append(b, `,"delay_p99":`...)
		b = strconv.AppendInt(b, ev.DelayP99, 10)
		b = append(b, `,"delay_max":`...)
		b = strconv.AppendInt(b, ev.DelayMax, 10)
	}
	b = append(b, "}\n"...)
	s.buf = b
	_, s.err = s.w.Write(b)
}

// Flush forces buffered lines out to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Close implements Sink: flush, then close the underlying file if any.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		cerr := s.c.Close()
		s.c = nil
		if s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exports the observer's per-engine stats as an expvar
// variable under the given name ("ndgraph" if empty), visible on
// /debug/vars of any process that serves expvar. Publishing the same name
// twice (e.g. two observers in one test binary) rebinds it to this
// observer instead of panicking the way expvar.Publish would. Safe on nil
// (no-op).
func (o *Observer) PublishExpvar(name string) {
	if o == nil {
		return
	}
	if name == "" {
		name = "ndgraph"
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	// expvar.Publish panics on duplicate names and has no Unpublish, so
	// each name is published once per process with a forwarder that reads
	// the currently bound observer from expvarTargets.
	expvarTargets.Lock()
	expvarTargets.m[name] = o
	expvarTargets.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		expvarTargets.Lock()
		target := expvarTargets.m[name]
		expvarTargets.Unlock()
		return target.Stats()
	}))
}

// expvarTargets maps published expvar names to their current observer, so
// re-publishing a name (new observer, same process) just swaps the target.
var expvarTargets = struct {
	sync.Mutex
	m map[string]*Observer
}{m: map[string]*Observer{}}

// floatBits round-trips a float64 through its IEEE bits for atomic gauges.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// appendFloat renders f compactly without allocating.
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, f, 'g', 6, 64)
}
