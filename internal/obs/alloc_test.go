//go:build !race

package obs

import (
	"io"
	"testing"
)

// The race detector's instrumentation allocates, so the steady-state
// zero-allocation property is asserted only in non-race builds (mirroring
// internal/core's hot-path tests).

// Emit must be allocation-free in steady state — events are passed by
// value, counters live in a fixed array, the ring stores by copy, and the
// JSONL encoder reuses its buffer — so attaching an observer cannot break
// the engines' zero-alloc iteration guarantee.
func TestEmitSteadyStateDoesNotAllocate(t *testing.T) {
	o := New(Options{RingSize: 8})
	o.AttachSink(NewJSONLSink(io.Discard))
	ev := Event{TimeUnixNano: 1, Engine: EngineCore, Iter: 1, Scheduled: 100, Updates: 100, EdgeReads: 500, EdgeWrites: 50, RWConflicts: 3, WWConflicts: 1, Residual: 0.125, BarrierWaitNanos: 10, DurationNanos: 100}
	for i := 0; i < 16; i++ { // warm: fill the ring, grow the JSONL buffer
		o.Emit(ev)
	}
	if avg := testing.AllocsPerRun(200, func() { o.Emit(ev) }); avg > 0 {
		t.Errorf("Emit allocates %.2f per call in steady state, want 0", avg)
	}
}

// A zero TimeUnixNano makes Emit stamp the wall clock; that path must stay
// allocation-free too, since every engine emits unstamped events.
func TestEmitTimestampPathDoesNotAllocate(t *testing.T) {
	o := New(Options{RingSize: 8})
	ev := Event{Engine: EngineAsync, Updates: 1}
	for i := 0; i < 16; i++ {
		o.Emit(ev)
	}
	if avg := testing.AllocsPerRun(200, func() { o.Emit(ev) }); avg > 0 {
		t.Errorf("Emit (time-stamping path) allocates %.2f per call, want 0", avg)
	}
}
